//! Feature-compression conformance matrix.
//!
//! Crosses {no-feature, bottleneck, quant, both} feature cells ×
//! {none, outage, collapse, rtt-spike, stale-estimate} netsim fault
//! presets × {1, 2, 8} offline workers, and pins three contracts of the
//! feature-compression action family:
//!
//! 1. **Byte-identity across worker counts** — with `feature_actions`
//!    enabled the offline `parallelism` knob must not leak into the
//!    trained scene: every (fault, mode) cell's outcome-annotated
//!    `ExecReport` CSV is byte-for-byte identical under 1, 2 and 8
//!    workers.
//! 2. **Every feature cell executes** — a hand-built two-fork tree whose
//!    partitioned fork carries each knob combination resolves every
//!    request under every fault preset (the collapse-to-floor cell
//!    included), and the composed transfer bytes obey the strict
//!    ordering both < single-knob < identity.
//! 3. **The low-bandwidth flip** — at sub-floor bandwidth the plain
//!    search stays edge-only while the feature-enabled search ships a
//!    compressed cut tensor: a partitioned plan with strictly lower
//!    end-to-end latency.

use cadmc::compress::{BottleneckKnob, CompressionPlan, FeatureAction, QuantKnob};
use cadmc::core::baselines::{random_search, random_search_features};
use cadmc::core::executor::{execute, ExecConfig, Mode, Policy};
use cadmc::core::experiments::{train_scene, Workload};
use cadmc::core::memo::MemoPool;
use cadmc::core::parallel::Parallelism;
use cadmc::core::search::SearchConfig;
use cadmc::core::tree::{ModelTree, TreeNode};
use cadmc::core::{Candidate, EvalEnv, Partition};
use cadmc::latency::{Mbps, Platform};
use cadmc::netsim::{BandwidthTrace, FaultKind, FaultSchedule, Scenario};
use cadmc::nn::{zoo, ModelSpec};

const SEED: u64 = 11;
const REQUESTS: usize = 40;

/// The four feature cells of the matrix, by stable cell name.
fn feature_cells() -> [(&'static str, FeatureAction); 4] {
    [
        ("no-feature", FeatureAction::IDENTITY),
        (
            "bottleneck",
            FeatureAction {
                bottleneck: BottleneckKnob::Half,
                quant: QuantKnob::F32,
            },
        ),
        (
            "quant",
            FeatureAction {
                bottleneck: BottleneckKnob::Off,
                quant: QuantKnob::Int8,
            },
        ),
        (
            "both",
            FeatureAction {
                bottleneck: BottleneckKnob::Half,
                quant: QuantKnob::Int8,
            },
        ),
    ]
}

/// The five fault scenarios of the matrix, by stable cell name.
fn fault_cells() -> Vec<(&'static str, FaultSchedule)> {
    let mut cells = vec![("none", FaultSchedule::none())];
    cells.extend(
        FaultKind::ALL
            .into_iter()
            .map(|k| (k.name(), FaultSchedule::canned(k))),
    );
    cells
}

/// Two-fork tree whose partitioned fork carries the given feature
/// action; child 0 stays edge-only so no fault can fail a request.
fn two_fork_tree(base: &ModelSpec, feature: FeatureAction) -> ModelTree {
    let mut tree = ModelTree::new(base.clone(), 2, vec![1.0, 30.0]);
    let root = tree.push_node(
        None,
        TreeNode {
            level: 0,
            partition_abs: None,
            actions: vec![],
            feature: FeatureAction::IDENTITY,
            children: vec![],
            reward: 0.0,
        },
    );
    let r1 = tree.block_range(1);
    tree.push_node(
        Some(root),
        TreeNode {
            level: 1,
            partition_abs: None,
            actions: vec![],
            feature: FeatureAction::IDENTITY,
            children: vec![],
            reward: 0.0,
        },
    );
    tree.push_node(
        Some(root),
        TreeNode {
            level: 1,
            partition_abs: Some(r1.start),
            actions: vec![],
            feature,
            children: vec![],
            reward: 0.0,
        },
    );
    tree
}

/// Trains the scene with feature actions enabled at the given offline
/// worker count and executes the full fault × mode matrix, returning
/// `(cell label, outcome CSV)` rows.
fn trained_matrix_csvs(workers: usize) -> Vec<(String, String)> {
    let w = Workload {
        model: zoo::tiny_cnn(),
        device: Platform::Phone,
        scenario: Scenario::WifiWeakIndoor,
    };
    let cfg = SearchConfig {
        parallelism: Parallelism::new(workers),
        feature_actions: true,
        ..SearchConfig::quick(SEED)
    };
    let scene = train_scene(&w, &cfg, SEED).expect("valid workload");
    let mut rows = Vec::new();
    for (name, faults) in fault_cells() {
        for mode in [Mode::Emulation, Mode::Field] {
            let ecfg = ExecConfig::new(REQUESTS, mode, SEED).with_faults(faults.clone());
            let report = execute(
                &scene.env,
                &scene.workload.model,
                &Policy::Tree(&scene.tree.tree),
                &scene.test_trace,
                &ecfg,
            );
            assert_eq!(report.outcomes.len(), REQUESTS, "{name}/{mode:?}");
            let mut buf = Vec::new();
            report
                .write_csv_with_outcomes(&mut buf)
                .expect("in-memory CSV write cannot fail");
            rows.push((
                format!("{name}/{mode:?}"),
                String::from_utf8(buf).expect("CSV is ASCII"),
            ));
        }
    }
    rows
}

#[test]
fn feature_search_csvs_are_byte_identical_across_worker_counts() {
    let base = trained_matrix_csvs(1);
    for workers in [2, 8] {
        let got = trained_matrix_csvs(workers);
        assert_eq!(base.len(), got.len());
        for ((cell_a, csv_a), (cell_b, csv_b)) in base.iter().zip(&got) {
            assert_eq!(cell_a, cell_b);
            assert_eq!(
                csv_a, csv_b,
                "cell {cell_a}: feature-search CSV differs between 1 and {workers} workers"
            );
        }
    }
}

#[test]
fn every_feature_cell_resolves_under_every_fault_preset() {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let trace = BandwidthTrace::new(100.0, vec![60.0; 600]);
    let mut first: Option<Vec<(String, String)>> = None;
    for pass in 0..2 {
        let mut rows = Vec::new();
        for (fname, feature) in feature_cells() {
            let tree = two_fork_tree(&base, feature);
            for (cname, faults) in fault_cells() {
                let ecfg = ExecConfig::emulation(REQUESTS, SEED).with_faults(faults.clone());
                let report = execute(&env, &base, &Policy::Tree(&tree), &trace, &ecfg);
                assert_eq!(report.outcomes.len(), REQUESTS, "{fname}/{cname}");
                assert_eq!(
                    report.failed_count(),
                    0,
                    "{fname}/{cname}: an edge-only branch exists, nothing may fail"
                );
                let mut buf = Vec::new();
                report
                    .write_csv_with_outcomes(&mut buf)
                    .expect("in-memory CSV write cannot fail");
                rows.push((
                    format!("{fname}/{cname}"),
                    String::from_utf8(buf).expect("CSV is ASCII"),
                ));
            }
        }
        match &first {
            None => first = Some(rows),
            Some(prev) => {
                assert_eq!(
                    prev, &rows,
                    "feature-cell execution must be deterministic (pass {pass})"
                );
            }
        }
    }
}

#[test]
fn feature_cells_strictly_order_transfer_bytes() {
    let base = zoo::vgg11_cifar();
    let cut = base.len() / 2;
    let identity = CompressionPlan::identity(base.len());
    let compose = |feature: FeatureAction| {
        Candidate::compose(&base, Partition::AfterLayer(cut - 1), &identity)
            .expect("legal cut")
            .with_feature(feature)
    };
    let cells = feature_cells();
    let bytes: Vec<u64> = cells.iter().map(|(_, f)| compose(*f).transfer_bytes()).collect();
    let (none, bottleneck, quant, both) = (bytes[0], bytes[1], bytes[2], bytes[3]);
    assert!(
        both < bottleneck && bottleneck < none,
        "expected both ({both}) < bottleneck ({bottleneck}) < no-feature ({none})"
    );
    assert!(
        both < quant && quant < none,
        "expected both ({both}) < quant ({quant}) < no-feature ({none})"
    );
    // Byte ordering carries through to end-to-end latency at starved
    // bandwidth, where the transfer term dominates.
    let env = EvalEnv::phone();
    let lat: Vec<f64> = cells
        .iter()
        .map(|(_, f)| env.latency_ms(&compose(*f), Mbps(0.5)))
        .collect();
    assert!(lat[3] < lat[1] && lat[1] < lat[0]);
    assert!(lat[3] < lat[2] && lat[2] < lat[0]);
}

/// The acceptance-criterion flip: at sub-floor bandwidth the plain
/// search (no feature actions) settles on an edge-only plan, while the
/// feature-enabled search finds a partitioned plan that ships a
/// compressed cut tensor and is strictly faster end to end.
#[test]
fn sub_floor_bandwidth_flips_edge_only_to_partitioned() {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let bw = Mbps(0.5);
    let episodes = 60;
    let plain = random_search(
        &base,
        &env,
        bw,
        episodes,
        9,
        &MemoPool::new(),
        Parallelism::serial(),
    )
    .expect("valid inputs");
    let feat = random_search_features(
        &base,
        &env,
        bw,
        episodes,
        9,
        &MemoPool::new(),
        Parallelism::serial(),
    )
    .expect("valid inputs");
    assert_eq!(
        plain.best.edge_layers,
        plain.best.model.len(),
        "plain search must stay edge-only when transfer starves"
    );
    assert!(plain.best.feature.is_identity());
    assert!(
        feat.best.edge_layers < feat.best.model.len(),
        "feature search must partition: best kept {} of {} layers on edge",
        feat.best.edge_layers,
        feat.best.model.len()
    );
    assert!(
        !feat.best.feature.is_identity(),
        "the partitioned winner must ship a compressed cut tensor"
    );
    assert!(
        feat.best_eval.latency_ms < plain.best_eval.latency_ms,
        "feature plan must be strictly faster: {} vs {} ms",
        feat.best_eval.latency_ms,
        plain.best_eval.latency_ms
    );
}

//! Property-based integration tests spanning crates: random compression
//! plans, partitions, traces and reward inputs must uphold the system's
//! invariants end to end.

use proptest::prelude::*;

use cadmc::compress::{CompressionPlan, Technique};
use cadmc::core::{Candidate, EvalEnv, Partition, RewardSpec};
use cadmc::latency::{DeviceProfile, Mbps, TransferModel};
use cadmc::netsim::{BandwidthTrace, ProcessConfig};
use cadmc::nn::zoo;

fn arb_technique() -> impl Strategy<Value = Option<Technique>> {
    prop_oneof![
        3 => Just(None),
        1 => (0usize..7).prop_map(|i| Some(Technique::ALL[i])),
    ]
}

fn arb_plan(len: usize) -> impl Strategy<Value = CompressionPlan> {
    proptest::collection::vec(arb_technique(), len).prop_map(CompressionPlan::from_actions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any sanitized plan composes with any partition, preserves the
    /// output shape, and never increases MACCs.
    #[test]
    fn sanitized_plans_always_compose(
        plan in arb_plan(zoo::vgg11_cifar().len()),
        cut in 0usize..20,
    ) {
        let base = zoo::vgg11_cifar();
        let plan = plan.sanitized(&base);
        let partition = if cut == 0 {
            Partition::AllCloud
        } else if cut >= base.len() {
            Partition::AllEdge
        } else {
            Partition::AfterLayer(cut - 1)
        };
        let c = Candidate::compose(&base, partition, &plan).expect("sanitized plan");
        prop_assert_eq!(c.model.output_shape(), base.output_shape());
        prop_assert!(c.model.total_maccs() <= base.total_maccs());
    }

    /// Latency is monotone: more bandwidth never hurts, and compressing
    /// the edge part never increases the edge compute term.
    #[test]
    fn latency_monotone_in_bandwidth(
        plan in arb_plan(zoo::vgg11_cifar().len()),
        bw_lo in 0.2f64..20.0,
        extra in 0.1f64..100.0,
    ) {
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let plan = plan.sanitized(&base);
        let c = Candidate::compose(&base, Partition::AfterLayer(4), &plan).expect("sanitized");
        let lo = env.latency_ms(&c, Mbps(bw_lo));
        let hi = env.latency_ms(&c, Mbps(bw_lo + extra));
        prop_assert!(hi <= lo + 1e-9);
    }

    /// The reward is bounded and monotone in accuracy and latency.
    #[test]
    fn reward_bounded_and_monotone(
        acc in 0.0f64..1.0,
        lat in 0.0f64..1000.0,
        d_acc in 0.001f64..0.2,
        d_lat in 0.1f64..200.0,
    ) {
        let spec = RewardSpec::default();
        let r = spec.reward(acc, lat);
        prop_assert!((0.0..=400.0).contains(&r));
        prop_assert!(spec.reward(acc + d_acc, lat) >= r - 1e-9);
        prop_assert!(spec.reward(acc, lat + d_lat) <= r + 1e-9);
    }

    /// Transfer latency obeys Eq. 6 structure: linear in size given
    /// bandwidth, decreasing in bandwidth, zero only for zero bytes.
    #[test]
    fn transfer_model_structure(
        bytes in 1u64..5_000_000,
        bw in 0.1f64..500.0,
    ) {
        let m = TransferModel::default();
        let t = m.latency_ms(bytes, Mbps(bw));
        prop_assert!(t > 0.0 && t.is_finite());
        prop_assert!(m.latency_ms(bytes * 2, Mbps(bw)) > t);
        prop_assert!(m.latency_ms(bytes, Mbps(bw * 2.0)) <= t);
        prop_assert_eq!(m.latency_ms(0, Mbps(bw)), 0.0);
    }

    /// Synthesized traces are positive, have ordered quartiles, and the
    /// cut-point byte accounting matches the shape algebra.
    #[test]
    fn trace_and_cut_invariants(seed in 0u64..500, mean_low in 0.5f64..5.0) {
        let cfg = ProcessConfig {
            mean_low,
            mean_high: mean_low * 4.0,
            reversion: 1.0,
            sigma: 1.5,
            switch_rate: 0.1,
            dropout_rate: 0.02,
            dropout_secs: 1.0,
            floor: 0.05,
        };
        let trace = BandwidthTrace::synthesize(cfg, 10_000.0, 100.0, seed);
        prop_assert!(trace.samples().iter().all(|&v| v > 0.0));
        let (poor, good) = trace.quartile_levels();
        prop_assert!(poor <= good);

        let base = zoo::alexnet_cifar();
        for i in 0..base.len() {
            prop_assert_eq!(
                base.cut_bytes_after(i),
                base.layer_output(i).transfer_bytes()
            );
        }
    }

    /// Device latency estimation is additive over any split point.
    #[test]
    fn device_latency_additive(split in 1usize..18) {
        let base = zoo::vgg11_cifar();
        let split = split.min(base.len() - 1);
        for profile in [DeviceProfile::phone(), DeviceProfile::tx2(), DeviceProfile::cloud()] {
            let total = profile.model_latency_ms(&base);
            let parts = profile.range_latency_ms(&base, 0, split)
                + profile.range_latency_ms(&base, split, base.len());
            prop_assert!((total - parts).abs() < 1e-9);
        }
    }
}

//! Property-based integration tests spanning crates: random compression
//! plans, partitions, feature-compression knobs, traces and reward
//! inputs must uphold the system's invariants end to end.
//!
//! Regression-file policy: failures found here are pinned as explicit
//! named `#[test]`s (see `pinned_regression_*` below), never via a
//! `.proptest-regressions` file — the vendored proptest stand-in does
//! not read persistence files, so a seed checked in there is silently
//! dead. DESIGN.md §16 records the policy.

use proptest::prelude::*;

use cadmc::compress::{CompressionPlan, FeatureAction, Technique};
use cadmc::core::{Candidate, EvalEnv, Partition, RewardSpec};
use cadmc::latency::{DeviceProfile, Mbps, TransferModel};
use cadmc::netsim::{BandwidthTrace, ProcessConfig};
use cadmc::nn::zoo;

fn arb_technique() -> impl Strategy<Value = Option<Technique>> {
    prop_oneof![
        3 => Just(None),
        1 => (0usize..7).prop_map(|i| Some(Technique::ALL[i])),
    ]
}

fn arb_plan(len: usize) -> impl Strategy<Value = CompressionPlan> {
    proptest::collection::vec(arb_technique(), len).prop_map(CompressionPlan::from_actions)
}

fn arb_feature() -> impl Strategy<Value = FeatureAction> {
    (0usize..FeatureAction::COUNT).prop_map(FeatureAction::from_index)
}

/// Pinned from the one entry the old `.proptest-regressions` file held
/// (it predated the delta-state refactor and was never replayed by the
/// vendored proptest): a late `W1FilterPrune` plus a trailing `F3Gap`
/// composed at cut 14 once shrank to a shape mismatch.
#[test]
fn pinned_regression_filter_prune_then_gap_at_cut_14() {
    let base = zoo::vgg11_cifar();
    let mut actions: Vec<Option<Technique>> = vec![None; base.len()];
    actions[13] = Some(Technique::W1FilterPrune);
    actions[base.len() - 1] = Some(Technique::F3Gap);
    let plan = CompressionPlan::from_actions(actions).sanitized(&base);
    let c = Candidate::compose(&base, Partition::AfterLayer(13), &plan).expect("sanitized plan");
    assert_eq!(c.model.output_shape(), base.output_shape());
    assert!(c.model.total_maccs() <= base.total_maccs());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any sanitized plan composes with any partition, preserves the
    /// output shape, and never increases MACCs.
    #[test]
    fn sanitized_plans_always_compose(
        plan in arb_plan(zoo::vgg11_cifar().len()),
        cut in 0usize..20,
    ) {
        let base = zoo::vgg11_cifar();
        let plan = plan.sanitized(&base);
        let partition = if cut == 0 {
            Partition::AllCloud
        } else if cut >= base.len() {
            Partition::AllEdge
        } else {
            Partition::AfterLayer(cut - 1)
        };
        let c = Candidate::compose(&base, partition, &plan).expect("sanitized plan");
        prop_assert_eq!(c.model.output_shape(), base.output_shape());
        prop_assert!(c.model.total_maccs() <= base.total_maccs());
    }

    /// Latency is monotone: more bandwidth never hurts, and compressing
    /// the edge part never increases the edge compute term.
    #[test]
    fn latency_monotone_in_bandwidth(
        plan in arb_plan(zoo::vgg11_cifar().len()),
        bw_lo in 0.2f64..20.0,
        extra in 0.1f64..100.0,
    ) {
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let plan = plan.sanitized(&base);
        let c = Candidate::compose(&base, Partition::AfterLayer(4), &plan).expect("sanitized");
        let lo = env.latency_ms(&c, Mbps(bw_lo));
        let hi = env.latency_ms(&c, Mbps(bw_lo + extra));
        prop_assert!(hi <= lo + 1e-9);
    }

    /// The reward is bounded and monotone in accuracy and latency.
    #[test]
    fn reward_bounded_and_monotone(
        acc in 0.0f64..1.0,
        lat in 0.0f64..1000.0,
        d_acc in 0.001f64..0.2,
        d_lat in 0.1f64..200.0,
    ) {
        let spec = RewardSpec::default();
        let r = spec.reward(acc, lat);
        prop_assert!((0.0..=400.0).contains(&r));
        prop_assert!(spec.reward(acc + d_acc, lat) >= r - 1e-9);
        prop_assert!(spec.reward(acc, lat + d_lat) <= r + 1e-9);
    }

    /// Transfer latency obeys Eq. 6 structure: linear in size given
    /// bandwidth, decreasing in bandwidth, zero only for zero bytes.
    #[test]
    fn transfer_model_structure(
        bytes in 1u64..5_000_000,
        bw in 0.1f64..500.0,
    ) {
        let m = TransferModel::default();
        let t = m.latency_ms(bytes, Mbps(bw));
        prop_assert!(t > 0.0 && t.is_finite());
        prop_assert!(m.latency_ms(bytes * 2, Mbps(bw)) > t);
        prop_assert!(m.latency_ms(bytes, Mbps(bw * 2.0)) <= t);
        prop_assert_eq!(m.latency_ms(0, Mbps(bw)), 0.0);
    }

    /// Synthesized traces are positive, have ordered quartiles, and the
    /// cut-point byte accounting matches the shape algebra.
    #[test]
    fn trace_and_cut_invariants(seed in 0u64..500, mean_low in 0.5f64..5.0) {
        let cfg = ProcessConfig {
            mean_low,
            mean_high: mean_low * 4.0,
            reversion: 1.0,
            sigma: 1.5,
            switch_rate: 0.1,
            dropout_rate: 0.02,
            dropout_secs: 1.0,
            floor: 0.05,
        };
        let trace = BandwidthTrace::synthesize(cfg, 10_000.0, 100.0, seed);
        prop_assert!(trace.samples().iter().all(|&v| v > 0.0));
        let (poor, good) = trace.quartile_levels();
        prop_assert!(poor <= good);

        let base = zoo::alexnet_cifar();
        for i in 0..base.len() {
            prop_assert_eq!(
                base.cut_bytes_after(i),
                base.layer_output(i).transfer_bytes()
            );
        }
    }

    /// Device latency estimation is additive over any split point.
    #[test]
    fn device_latency_additive(split in 1usize..18) {
        let base = zoo::vgg11_cifar();
        let split = split.min(base.len() - 1);
        for profile in [DeviceProfile::phone(), DeviceProfile::tx2(), DeviceProfile::cloud()] {
            let total = profile.model_latency_ms(&base);
            let parts = profile.range_latency_ms(&base, 0, split)
                + profile.range_latency_ms(&base, split, base.len());
            prop_assert!((total - parts).abs() < 1e-9);
        }
    }

    /// The O(1) range-latency kernel is pinned to the scalar per-layer
    /// walk at 0 ULP for every device and arbitrary (start, end) ranges.
    #[test]
    fn range_latency_matches_scalar_to_zero_ulp(
        a in 0usize..24,
        b in 0usize..24,
        model_idx in 0usize..3,
    ) {
        let base = match model_idx {
            0 => zoo::vgg11_cifar(),
            1 => zoo::alexnet_cifar(),
            _ => zoo::squeezenet_cifar(),
        };
        let (a, b) = (a.min(base.len()), b.min(base.len()));
        let (start, end) = (a.min(b), a.max(b));
        for profile in [DeviceProfile::phone(), DeviceProfile::tx2(), DeviceProfile::cloud()] {
            let fast = profile.range_latency_ms(&base, start, end);
            let scalar = profile.range_latency_ms_scalar(&base, start, end);
            prop_assert_eq!(
                fast.to_bits(), scalar.to_bits(),
                "device range [{}, {}) drifted: fast {} vs scalar {}",
                start, end, fast, scalar
            );
        }
    }

    /// Feature-compression actions on the cut tensor: the O(1) overlay
    /// matches the scalar per-layer walk exactly, never increases the
    /// transfer bytes, and never panics for arbitrary
    /// (knob, cut, model, plan) combinations.
    #[test]
    fn feature_actions_never_inflate_and_match_scalar(
        feature in arb_feature(),
        plan in arb_plan(zoo::vgg11_cifar().len()),
        cut in 0usize..40,
        model_idx in 0usize..5,
    ) {
        let base = match model_idx {
            0 => zoo::vgg11_cifar(),
            1 => zoo::alexnet_cifar(),
            2 => zoo::squeezenet_cifar(),
            3 => zoo::mobilenet_cifar(),
            _ => zoo::vgg16_cifar(),
        };
        // The generated plan targets vgg11's length; identity-pad or
        // truncate so every model still exercises arbitrary plans.
        let mut actions = plan.actions().to_vec();
        actions.resize(base.len(), None);
        let plan = CompressionPlan::from_actions(actions).sanitized(&base);
        let partition = if cut == 0 {
            Partition::AllCloud
        } else if cut >= base.len() {
            Partition::AllEdge
        } else {
            Partition::AfterLayer(cut - 1)
        };
        let c = Candidate::compose(&base, partition, &plan)
            .expect("sanitized plan")
            .with_feature(feature);
        prop_assert!(c.transfer_bytes() <= c.raw_transfer_bytes());
        prop_assert_eq!(c.transfer_bytes(), c.transfer_bytes_scalar());
        // An all-edge composition normalizes the feature away entirely.
        if c.edge_layers == c.model.len() {
            prop_assert!(c.feature.is_identity());
            prop_assert_eq!(c.transfer_bytes(), 0);
        }
        // The latency kernel stays finite under every knob.
        let env = EvalEnv::phone();
        for bw in [0.05, 2.0, 60.0] {
            prop_assert!(env.latency_ms(&c, Mbps(bw)).is_finite());
        }
    }
}

//! Search-quality integration tests: the RL engine's learning behaviour
//! on real (simulated-environment) objectives, at reduced budgets.

use cadmc::core::branch::optimal_branch;
use cadmc::core::experiments::search_comparison;
use cadmc::core::memo::MemoPool;
use cadmc::core::search::{Controllers, SearchConfig};
use cadmc::core::{EvalEnv, NetworkContext};
use cadmc::latency::{Mbps, Platform};
use cadmc::netsim::Scenario;
use cadmc::nn::zoo;

#[test]
fn branch_search_improves_over_episodes() {
    // The mean episode reward of the last third should exceed the first
    // third: the policy is actually learning, not just sampling.
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let ctx = NetworkContext::from_scenario(Scenario::WifiWeakIndoor, 2, 5);
    // ε-exploration injects uniform-random partitions into the episode
    // stream, masking the policy's own improvement; disable it here to
    // isolate the learning signal.
    let cfg = SearchConfig {
        episodes: 90,
        seed: 5,
        explore_epsilon: 0.0,
        ..SearchConfig::default()
    };
    let mut controllers = Controllers::new(&cfg);
    let memo = MemoPool::new();
    let outcome = optimal_branch(
        &mut controllers,
        &base,
        &env,
        Mbps(ctx.median_bandwidth()),
        &cfg,
        &memo,
    )
    .expect("valid inputs");
    let r = &outcome.episode_rewards;
    let third = r.len() / 3;
    let first: f64 = r[..third].iter().sum::<f64>() / third as f64;
    let last: f64 = r[r.len() - third..].iter().sum::<f64>() / third as f64;
    assert!(
        last > first + 1.0,
        "no learning signal: first-third mean {first:.2}, last-third mean {last:.2}"
    );
}

#[test]
fn rl_tree_search_matches_or_beats_baselines_in_hard_context() {
    // The Fig. 7 claim at integration scale: on the weak-WiFi context the
    // RL search should end at least as high as random / ε-greedy.
    let cmp = search_comparison(
        &zoo::vgg11_cifar(),
        Platform::Phone,
        Scenario::WifiWeakIndoor,
        120,
        7,
        cadmc::core::parallel::Parallelism::new(2),
    )
    .expect("valid inputs");
    let (rl, random, eg) = cmp.finals();
    assert!(
        rl >= random - 1.0 && rl >= eg - 1.0,
        "RL {rl:.2} vs random {random:.2} / e-greedy {eg:.2}"
    );
}

#[test]
fn already_compressed_model_gains_little_from_compression() {
    // MobileNet is the C1 reference architecture: the engine's best plan
    // for it should barely move its MACCs (most techniques do not even
    // apply), whereas VGG11 should compress substantially.
    let env = EvalEnv::phone();
    let cfg = SearchConfig {
        episodes: 60,
        seed: 3,
        ..SearchConfig::default()
    };
    let run = |base: &cadmc::nn::ModelSpec| {
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        let outcome = optimal_branch(&mut controllers, base, &env, Mbps(1.0), &cfg, &memo)
            .expect("valid inputs");
        // At 1 Mbps offloading is hopeless, so the best candidate stays on
        // the edge and its MACC ratio reflects pure compression appetite.
        outcome.best.model.total_maccs() as f64 / base.total_maccs() as f64
    };
    let mobilenet_ratio = run(&zoo::mobilenet_cifar());
    let vgg_ratio = run(&zoo::vgg11_cifar());
    assert!(
        vgg_ratio < mobilenet_ratio,
        "VGG11 should compress more: vgg {vgg_ratio:.2} vs mobilenet {mobilenet_ratio:.2}"
    );
    assert!(
        mobilenet_ratio > 0.55,
        "MobileNet should be near-incompressible, got ratio {mobilenet_ratio:.2}"
    );
}

#[test]
fn memo_pool_is_shared_effectively_across_phases() {
    // Boosted tree search reuses the memo pool across branch warmup and
    // tree episodes; the hit rate should be substantial.
    let base = zoo::alexnet_cifar();
    let env = EvalEnv::phone();
    let ctx = NetworkContext::from_scenario(Scenario::WifiWeakIndoor, 2, 2);
    let cfg = SearchConfig {
        episodes: 60,
        seed: 2,
        ..SearchConfig::default()
    };
    let mut controllers = Controllers::new(&cfg);
    let memo = MemoPool::new();
    let _ = cadmc::core::tree_search::tree_search(
        &mut controllers,
        &base,
        &env,
        ctx.levels(),
        3,
        &cfg,
        &memo,
        true,
        Some(ctx.trace()),
    )
    .expect("valid inputs");
    let hits = memo.hits();
    let misses = memo.misses();
    // At short budgets the candidate space is barely revisited; the pool
    // must still be exercised and save at least some re-evaluations.
    assert!(hits > 0, "memo pool never hit: {hits} hits / {misses} misses");
    assert!(misses > 0);
}

//! End-to-end integration: the full offline → online pipeline across all
//! workspace crates, at reduced episode budgets.

use cadmc::core::executor::{execute, ExecConfig, Mode, Policy};
use cadmc::core::experiments::{emulation_table, offline_table, train_scene, Workload};
use cadmc::core::search::SearchConfig;
use cadmc::latency::Platform;
use cadmc::netsim::Scenario;
use cadmc::nn::zoo;

fn quick_cfg(seed: u64) -> SearchConfig {
    SearchConfig {
        episodes: 40,
        hidden: 8,
        seed,
        ..SearchConfig::default()
    }
}

#[test]
fn offline_ordering_tree_ge_branch_ge_surgery() {
    let w = Workload {
        model: zoo::vgg11_cifar(),
        device: Platform::Phone,
        scenario: Scenario::FourGOutdoorQuick,
    };
    let scene = train_scene(&w, &quick_cfg(1), 1).expect("valid inputs");
    let rows = offline_table(std::slice::from_ref(&scene));
    let r = &rows[0];
    assert!(r.branch >= r.surgery - 1e-9, "branch {} < surgery {}", r.branch, r.surgery);
    assert!(r.tree >= r.branch - 1e-9, "tree {} < branch {}", r.tree, r.branch);
}

#[test]
fn emulation_tree_wins_in_volatile_scenes_on_average() {
    // Executed tables replay held-out traces, so single draws are noisy;
    // the paper's claim is about the aggregate.
    let scenes: Vec<_> = [2u64, 3, 4]
        .into_iter()
        .map(|seed| {
            let w = Workload {
                model: zoo::vgg11_cifar(),
                device: Platform::Phone,
                scenario: Scenario::WifiWeakOutdoor,
            };
            train_scene(&w, &quick_cfg(seed), seed).expect("valid inputs")
        })
        .collect();
    let rows = emulation_table(&scenes, Mode::Emulation, 60, 2);
    let mean = |f: fn(&cadmc::core::experiments::ExecutedRow) -> f64| {
        rows.iter().map(f).sum::<f64>() / rows.len() as f64
    };
    let tree_r = mean(|r| r.tree.0);
    let surgery_r = mean(|r| r.surgery.0);
    assert!(
        tree_r >= surgery_r - 2.0,
        "tree mean reward {tree_r:.2} well below surgery {surgery_r:.2}"
    );
    let tree_l = mean(|r| r.tree.1);
    let surgery_l = mean(|r| r.surgery.1);
    assert!(
        tree_l <= surgery_l * 1.05,
        "tree mean latency {tree_l:.1} exceeds surgery {surgery_l:.1}"
    );
}

#[test]
fn field_mode_degrades_all_methods_but_preserves_ordering_on_average() {
    let w = Workload {
        model: zoo::alexnet_cifar(),
        device: Platform::Phone,
        scenario: Scenario::WifiWeakIndoor,
    };
    let scene = train_scene(&w, &quick_cfg(3), 3).expect("valid inputs");
    let scenes = [scene];
    let emu = emulation_table(&scenes, Mode::Emulation, 50, 3);
    let field = emulation_table(&scenes, Mode::Field, 50, 3);
    for (e, f) in emu.iter().zip(&field) {
        // Individual methods can occasionally profit from the time shift
        // that slower requests induce on the replayed trace, so assert on
        // the aggregate: the three methods together must be clearly slower
        // in the field, and no single method may be dramatically faster.
        let e_sum = e.surgery.1 + e.branch.1 + e.tree.1;
        let f_sum = f.surgery.1 + f.branch.1 + f.tree.1;
        assert!(f_sum > 1.15 * e_sum, "field {f_sum:.1} vs emu {e_sum:.1}");
        assert!(f.surgery.1 > 0.9 * e.surgery.1);
        assert!(f.tree.1 > 0.9 * e.tree.1);
    }
}

#[test]
fn executed_tree_composes_only_valid_models() {
    let w = Workload {
        model: zoo::vgg11_cifar(),
        device: Platform::Tx2,
        scenario: Scenario::FourGWeakIndoor,
    };
    let scene = train_scene(&w, &quick_cfg(4), 4).expect("valid inputs");
    // Every branch of the trained tree is a shape-valid deployment.
    let tree = &scene.tree.tree;
    for path in tree.branches() {
        let c = tree.compose_path(&path);
        assert_eq!(c.model.output_shape(), w.model.output_shape());
        assert!(c.edge_layers <= c.model.len());
    }
    // And executing it produces finite, positive latencies.
    let report = execute(
        &scene.env,
        &w.model,
        &Policy::Tree(tree),
        scene.ctx.trace(),
        &ExecConfig::emulation(30, 4),
    );
    for &l in &report.latencies_ms {
        assert!(l.is_finite() && l > 0.0);
    }
    for &a in &report.accuracies {
        assert!((0.5..=1.0).contains(&a));
    }
}

#[test]
fn whole_pipeline_is_deterministic_per_seed() {
    let w = Workload {
        model: zoo::alexnet_cifar(),
        device: Platform::Phone,
        scenario: Scenario::FourGIndoorStatic,
    };
    let run = || {
        let scene = train_scene(&w, &quick_cfg(5), 5).expect("valid inputs");
        let rows = emulation_table(std::slice::from_ref(&scene), Mode::Emulation, 30, 5);
        (
            scene.surgery.evaluation.reward,
            scene.branch_reward,
            rows[0].tree,
        )
    };
    assert_eq!(run(), run());
}

//! # cadmc-bench
//!
//! The benchmark/reproduction harness: one binary per table and figure of
//! the paper's evaluation (see `src/bin/`), plus Criterion
//! microbenchmarks and ablations (see `benches/`). Shared formatting
//! helpers live here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints a horizontal rule of the given width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Rollout worker pool for the harness binaries: `CADMC_WORKERS` if set,
/// otherwise the machine's available parallelism. Worker count never
/// affects results — only wall-clock time.
pub fn workers_from_env() -> cadmc_core::parallel::Parallelism {
    use cadmc_core::parallel::Parallelism;
    std::env::var("CADMC_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or_else(Parallelism::available, Parallelism::new)
}

/// Formats a `(reward, latency, accuracy)` triple as table cells.
pub fn triple(v: (f64, f64, f64)) -> String {
    format!("{:>8.2} {:>9.2} {:>7.2}", v.0, v.1, v.2 * 100.0)
}

/// Renders a simple ASCII sparkline of a series (for reward curves).
pub fn sparkline(values: &[f64]) -> String {
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-9);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * (TICKS.len() - 1) as f64).round() as usize;
            TICKS[idx.min(TICKS.len() - 1)]
        })
        .collect()
}

/// Downsamples a series to at most `n` evenly spaced points.
pub fn downsample(values: &[f64], n: usize) -> Vec<f64> {
    if values.len() <= n || n == 0 {
        return values.to_vec();
    }
    (0..n)
        .map(|i| values[i * (values.len() - 1) / (n - 1)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_length_matches_input() {
        let s = sparkline(&[1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 3);
    }

    #[test]
    fn downsample_preserves_endpoints() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = downsample(&v, 10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0], 0.0);
        assert_eq!(*d.last().unwrap(), 99.0);
    }

    #[test]
    fn triple_formats_percentages() {
        let s = triple((350.0, 50.0, 0.92));
        assert!(s.contains("92.00"));
    }
}

//! Quantifies the cost of the serving observability layer and writes
//! `results/BENCH_metrics_overhead.json` (override the path with
//! `CADMC_BENCH_OUT`).
//!
//! Metrics can be disabled per server (`metrics_enabled: false`); the
//! acceptance bar is that the disabled instrumentation costs a chaos
//! schedule replay less than 2% of its runtime — the same budget the
//! core telemetry layer meets. Measuring that directly is below timer
//! noise, so the bound is computed from first principles, mirroring
//! `telemetry_overhead`:
//!
//! 1. time the *disabled* per-site cost (one branch on a bool) by
//!    hammering the three `ObsState` entry points in a tight loop;
//! 2. count how many observability sites one chaos replay passes
//!    (one `on_admit`/`on_shed` per arrival plus one `on_completion`
//!    per admitted session, straight from the schedule report);
//! 3. bound: `sites_per_run x disabled_ns_per_site / run_ns`.
//!
//! A disabled-vs-enabled end-to-end comparison is reported alongside so
//! the price of turning metrics *on* is visible too.

use std::time::Instant;

use cadmc_serve::metrics::ObsState;
use cadmc_serve::{chaos_arrivals, ChaosConfig, ScheduleReport, Server, ServerConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    sessions: usize,
    reps: usize,
    disabled_ns_per_site: f64,
    sites_per_run: u64,
    disabled_run_ms: f64,
    enabled_run_ms: f64,
    disabled_overhead_bound_pct: f64,
    enabled_overhead_pct: f64,
    pass_under_2pct: bool,
    note: String,
}

/// Per-site disabled cost: each `ObsState` entry point is one branch on
/// the `enabled` bool when metrics are off.
fn disabled_ns_per_site() -> f64 {
    let mut obs = ObsState::new(&ServerConfig {
        metrics_enabled: false,
        ..ServerConfig::default()
    });
    const ITERS: u64 = 20_000_000;
    let start = Instant::now();
    for i in 0..ITERS {
        let t = i as f64;
        obs.on_admit(t, "tenant-0");
        obs.on_shed(t, "tenant-0", "shed:rate");
        std::hint::black_box(obs.on_completion(t, "tenant-0", "ok", None));
    }
    std::hint::black_box(&obs);
    // Three sites per iteration.
    start.elapsed().as_secs_f64() * 1e9 / (3.0 * ITERS as f64)
}

fn run_chaos(chaos: &ChaosConfig, metrics_enabled: bool) -> ScheduleReport {
    let cfg = ServerConfig {
        metrics_enabled,
        ..ServerConfig::default()
    };
    let arrivals = chaos_arrivals(chaos, &cfg);
    let server = Server::new(cfg);
    server.run_schedule(&arrivals, 1, None)
}

fn time_chaos(chaos: &ChaosConfig, metrics_enabled: bool, reps: usize) -> f64 {
    let mut total = 0.0;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(run_chaos(chaos, metrics_enabled));
        total += start.elapsed().as_secs_f64() * 1000.0;
    }
    total / reps as f64
}

fn main() {
    let reps: usize = std::env::var("CADMC_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let chaos = ChaosConfig::default();

    eprintln!("timing the disabled per-site cost (60M obs sites)...");
    let ns_per_site = disabled_ns_per_site();

    eprintln!("counting observability sites in one chaos replay...");
    let probe = run_chaos(&chaos, true);
    // One on_admit or on_shed per arrival, one on_completion per
    // admitted session.
    let sites = 2 * probe.admitted as u64 + probe.shed as u64;
    let sessions = probe.admitted + probe.shed;

    eprintln!("timing the chaos replay with metrics disabled (x{reps})...");
    let disabled_ms = time_chaos(&chaos, false, reps);

    eprintln!("timing the chaos replay with metrics enabled (x{reps})...");
    let enabled_ms = time_chaos(&chaos, true, reps);

    let bound_pct = sites as f64 * ns_per_site / (disabled_ms * 1e6) * 100.0;
    let enabled_pct = (enabled_ms - disabled_ms) / disabled_ms * 100.0;
    let report = Report {
        sessions,
        reps,
        disabled_ns_per_site: ns_per_site,
        sites_per_run: sites,
        disabled_run_ms: disabled_ms,
        enabled_run_ms: enabled_ms,
        disabled_overhead_bound_pct: bound_pct,
        enabled_overhead_pct: enabled_pct,
        pass_under_2pct: bound_pct < 2.0,
        note: "disabled bound = sites_per_run x disabled_ns_per_site / replay time; \
               each disabled site is one branch on ObsState.enabled"
            .to_string(),
    };

    println!("disabled site cost : {ns_per_site:.2} ns");
    println!("sites per replay   : {sites}");
    println!("replay (disabled)  : {disabled_ms:.2} ms");
    println!("replay (enabled)   : {enabled_ms:.2} ms ({enabled_pct:+.1}%)");
    println!(
        "disabled overhead  : {bound_pct:.4}% bound — {}",
        if report.pass_under_2pct { "PASS (<2%)" } else { "FAIL (>=2%)" }
    );

    let out = std::env::var("CADMC_BENCH_OUT")
        .unwrap_or_else(|_| "results/BENCH_metrics_overhead.json".to_string());
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    match std::fs::write(&out, json) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => eprintln!("cannot write {out}: {e}"),
    }
}

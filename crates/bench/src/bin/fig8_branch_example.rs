//! Fig. 8 — illustration of the searching processes by different
//! strategies under "4G indoor static" (VGG11 on the phone).

use cadmc_core::experiments::strategy_illustration;
use cadmc_core::search::SearchConfig;
use cadmc_latency::Platform;
use cadmc_netsim::Scenario;
use cadmc_nn::zoo;

fn main() {
    let episodes: usize = std::env::var("CADMC_EPISODES").ok().and_then(|v| v.parse().ok()).unwrap_or(80);
    let seed: u64 = std::env::var("CADMC_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(7);
    let cfg = SearchConfig { episodes, seed, parallelism: cadmc_bench::workers_from_env(), ..SearchConfig::default() };
    for scenario in [Scenario::FourGIndoorStatic, Scenario::FourGOutdoorQuick] {
        let ill = strategy_illustration(&zoo::vgg11_cifar(), Platform::Phone, scenario, &cfg, seed)
            .expect("valid inputs");
        println!("Fig. 8: strategies under '{}'", ill.scenario);
        println!(
            "bandwidth levels (poor/good): {:.2} / {:.2} Mbps\n",
            ill.levels[0], ill.levels[1]
        );
        println!(
            "{:<22} {:<54} {:>9} {:>9}",
            "Strategy", "Deployment", "planned", "executed"
        );
        cadmc_bench::rule(97);
        println!(
            "{:<22} {:<54} {:>9.2} {:>9.2}",
            "Dynamic DNN surgery", ill.surgery.0, ill.surgery.1, ill.surgery.2
        );
        println!(
            "{:<22} {:<54} {:>9.2} {:>9.2}",
            "Optimal branch", ill.branch.0, ill.branch.1, ill.branch.2
        );
        for (i, (summary, reward)) in ill.tree_branches.iter().enumerate() {
            let exec = if i == 0 {
                format!("{:>9.2}", ill.tree_executed)
            } else {
                format!("{:>9}", "\"")
            };
            println!(
                "{:<22} {:<54} {:>9.2} {exec}",
                format!("Model tree branch {i}"),
                summary,
                reward
            );
        }
        println!(
            "\n(planned = at the context median; executed = Alg. 2 over a held-out trace)\n"
        );
    }
}

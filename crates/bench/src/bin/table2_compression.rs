//! Table 2 — the compression techniques: structural effect of each on
//! VGG11 (replaced structure, new structure, MACC/parameter reduction).

use cadmc_compress::Technique;
use cadmc_nn::zoo;

fn main() {
    let base = zoo::vgg11_cifar();
    println!("Table 2: compression techniques applied to VGG11 (first applicable layer)");
    println!(
        "{:<22} {:<22} {:>10} {:>12} {:>12}",
        "Technique", "Target layer", "layer idx", "MACCs", "params"
    );
    cadmc_bench::rule(84);
    println!(
        "{:<22} {:<22} {:>10} {:>11.1}M {:>11.2}M",
        "(base)", "-", "-",
        base.total_maccs() as f64 / 1e6,
        base.total_params() as f64 / 1e6
    );
    for t in Technique::ALL {
        let Some(idx) = (0..base.len()).find(|&i| t.applicable(&base, i)) else {
            println!("{:<22} {:<22} {:>10}", t.to_string(), "(not applicable)", "-");
            continue;
        };
        let layer = base.layers()[idx].encode();
        let out = t.apply(&base, idx).expect("applicable");
        println!(
            "{:<22} {:<22} {:>10} {:>11.1}M {:>11.2}M",
            t.to_string(),
            layer,
            idx,
            out.total_maccs() as f64 / 1e6,
            out.total_params() as f64 / 1e6
        );
    }
}

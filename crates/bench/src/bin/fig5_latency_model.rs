//! Fig. 5 — estimation models for computational and transfer latency:
//! least-squares fits over (simulated) measurements, with R² per panel.

use cadmc_latency::calibrate::{conv_sweep, fc_sweep, fit_linear, transfer_sweep};
use cadmc_latency::{DeviceProfile, Platform, TransferModel};

fn main() {
    let seed: u64 = std::env::var("CADMC_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(7);
    println!("Fig. 5: latency estimation model fits (slope/intercept/R²)\n");
    println!("{:<10} {:<14} {:>14} {:>12} {:>8}", "Platform", "Panel", "slope (ms/MACC)", "intercept", "R²");
    cadmc_bench::rule(64);
    for platform in [Platform::Phone, Platform::Tx2, Platform::CloudServer] {
        let profile = DeviceProfile::for_platform(platform);
        for kernel in [1usize, 3, 5] {
            let fit = fit_linear(&conv_sweep(&profile, kernel, seed));
            println!(
                "{:<10} {:<14} {:>14.3e} {:>12.3} {:>8.3}",
                platform.name(),
                format!("conv {kernel}x{kernel}"),
                fit.slope,
                fit.intercept,
                fit.r2
            );
        }
        let fit = fit_linear(&fc_sweep(&profile, seed));
        println!(
            "{:<10} {:<14} {:>14.3e} {:>12.3} {:>8.3}",
            platform.name(), "FC", fit.slope, fit.intercept, fit.r2
        );
    }
    let fit = fit_linear(&transfer_sweep(&TransferModel::default(), seed));
    println!(
        "{:<10} {:<14} {:>14.3} {:>12.3} {:>8.3}   (x = transmission ms = S/W)",
        "-", "transfer", fit.slope, fit.intercept, fit.r2
    );
    println!("\nNote: GPU platforms (TX2/cloud) show lower R² — the paper observes the");
    println!("same: parallel execution obscures the MACC-linearity on GPUs.");
}

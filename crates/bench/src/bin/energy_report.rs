//! Device-energy report (extension): the paper motivates compression with
//! energy but evaluates only latency; this binary estimates per-inference
//! edge energy for the three deployments using the mobile energy model.

use cadmc_core::experiments::{train_scene, Workload};
use cadmc_core::search::SearchConfig;
use cadmc_latency::{DeviceProfile, EnergyProfile, Mbps, Platform, Radio, TransferModel};
use cadmc_netsim::Scenario;
use cadmc_nn::zoo;

fn main() {
    let episodes: usize = std::env::var("CADMC_EPISODES").ok().and_then(|v| v.parse().ok()).unwrap_or(60);
    let seed: u64 = std::env::var("CADMC_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(7);
    let cfg = SearchConfig { episodes, seed, parallelism: cadmc_bench::workers_from_env(), ..SearchConfig::default() };
    println!("Per-inference device energy (VGG11, Phone; mJ at the context median)\n");
    println!(
        "{:<22} {:>10} | {:>9} {:>9} {:>9}",
        "Environment", "median bw", "Surgery", "Branch", "Tree"
    );
    cadmc_bench::rule(66);
    let device = DeviceProfile::phone();
    let transfer = TransferModel::default();
    for scenario in [
        Scenario::FourGWeakIndoor,
        Scenario::FourGIndoorStatic,
        Scenario::WifiWeakIndoor,
        Scenario::WifiOutdoorSlow,
    ] {
        let w = Workload {
            model: zoo::vgg11_cifar(),
            device: Platform::Phone,
            scenario,
        };
        let scene = train_scene(&w, &cfg, seed).expect("valid inputs");
        let radio = if scenario.is_4g() { Radio::Cellular } else { Radio::Wifi };
        let energy = EnergyProfile::phone(radio);
        let bw = Mbps(scene.ctx.median_bandwidth());
        let of = |c: &cadmc_core::Candidate| {
            energy.deployment_energy_mj(
                &device,
                &transfer,
                &c.model,
                c.edge_layers,
                c.transfer_bytes(),
                bw,
            )
        };
        // The tree's energy at the median: compose for that bandwidth.
        let (_, tree_cand) = scene.tree.tree.compose(|_| bw.0);
        println!(
            "{:<22} {:>7.2} Mb | {:>9.2} {:>9.2} {:>9.2}",
            scenario.name(),
            bw.0,
            of(&scene.surgery.candidate),
            of(&scene.branch),
            of(&tree_cand)
        );
    }
    println!("\nCompression cuts compute energy; offloading trades compute joules for");
    println!("radio joules — on 4G the radio premium is substantial.");
}

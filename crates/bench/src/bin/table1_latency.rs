//! Table 1 — inference latencies on the Xiaomi MI 6X (input 1×224×224×3).
//!
//! Regenerates the paper's Table 1 from the calibrated phone device
//! profile and the model zoo's MACC accounting.

use cadmc_latency::DeviceProfile;
use cadmc_nn::zoo::{self, ResNetDepth};

fn main() {
    let phone = DeviceProfile::phone();
    let rows = [
        ("VGG19", zoo::vgg19_imagenet(), 5734.89),
        ("ResNet50", zoo::resnet_imagenet(ResNetDepth::D50), 1103.20),
        ("ResNet101", zoo::resnet_imagenet(ResNetDepth::D101), 2238.79),
        ("ResNet152", zoo::resnet_imagenet(ResNetDepth::D152), 3729.10),
    ];
    println!("Table 1: inference latencies on Xiaomi MI 6X (1x224x224x3)");
    println!("{:<12} {:>12} {:>14} {:>14} {:>8}", "Model", "GMACCs", "paper (ms)", "ours (ms)", "diff");
    cadmc_bench::rule(64);
    for (name, model, paper) in rows {
        let ours = phone.model_latency_ms(&model);
        println!(
            "{:<12} {:>12.2} {:>14.2} {:>14.2} {:>7.1}%",
            name,
            model.total_maccs() as f64 / 1e9,
            paper,
            ours,
            100.0 * (ours - paper) / paper
        );
    }
}

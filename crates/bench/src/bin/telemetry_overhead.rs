//! Quantifies the cost of the always-compiled telemetry layer and writes
//! `results/BENCH_telemetry_overhead.json` (override the path with
//! `CADMC_BENCH_OUT`).
//!
//! Telemetry is **off by default**; the acceptance bar is that the
//! disabled instrumentation costs `optimal_branch` less than 2% of its
//! runtime. Measuring that directly is below timer noise, so the bound
//! is computed from first principles:
//!
//! 1. time the *disabled* per-site cost (one relaxed atomic load) by
//!    hammering `span!` / `counter!` / `hist!` in a tight loop;
//! 2. count how many instrumentation sites one search actually passes
//!    (events + histogram samples, from a collected trace);
//! 3. bound: `sites_per_search x disabled_ns_per_site / search_ns`.
//!
//! A disabled-vs-enabled end-to-end comparison is reported alongside so
//! the price of turning tracing *on* is visible too.

use std::time::Instant;

use cadmc_core::branch::optimal_branch;
use cadmc_core::memo::MemoPool;
use cadmc_core::search::{Controllers, SearchConfig};
use cadmc_core::EvalEnv;
use cadmc_latency::Mbps;
use cadmc_nn::zoo;
use cadmc_telemetry as telemetry;
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    episodes: usize,
    reps: usize,
    disabled_ns_per_site: f64,
    sites_per_search: u64,
    disabled_search_ms: f64,
    enabled_search_ms: f64,
    disabled_overhead_bound_pct: f64,
    enabled_overhead_pct: f64,
    pass_under_2pct: bool,
    note: String,
}

/// Per-site disabled cost: each macro site is one relaxed atomic load
/// when no collector is installed.
fn disabled_ns_per_site() -> f64 {
    assert!(!telemetry::enabled(), "collector must not be installed yet");
    const ITERS: u64 = 20_000_000;
    const BOUNDS: &[f64] = &[1.0, 2.0, 4.0];
    let start = Instant::now();
    for i in 0..ITERS {
        let span = telemetry::span!("bench.noop", i = i);
        std::hint::black_box(&span);
        telemetry::counter!("bench.counter", 1);
        telemetry::hist!("bench.hist", BOUNDS, 1.5);
    }
    // Three sites per iteration.
    start.elapsed().as_secs_f64() * 1e9 / (3.0 * ITERS as f64)
}

fn run_search(episodes: usize, seed: u64) {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let cfg = SearchConfig {
        episodes,
        hidden: 8,
        seed,
        ..SearchConfig::default()
    };
    let mut controllers = Controllers::new(&cfg);
    let memo = MemoPool::new();
    let outcome = optimal_branch(&mut controllers, &base, &env, Mbps(8.0), &cfg, &memo)
        .expect("valid inputs");
    memo.publish_telemetry();
    std::hint::black_box(outcome);
}

fn time_search(episodes: usize, reps: usize) -> f64 {
    let mut total = 0.0;
    for rep in 0..reps {
        let start = Instant::now();
        run_search(episodes, 7 + rep as u64);
        total += start.elapsed().as_secs_f64() * 1000.0;
    }
    total / reps as f64
}

/// Instrumentation sites one search passes: every span/event plus every
/// histogram sample and counter increment recorded in a collected trace.
fn sites_per_search(episodes: usize) -> u64 {
    let (builder, sink) = telemetry::Telemetry::builder().with_memory();
    let handle = builder.install().expect("no other collector installed");
    run_search(episodes, 7);
    handle.finish().expect("memory sink cannot fail");
    let report = sink.take().expect("finish fed the sink");
    let hist_samples: u64 = report
        .metrics
        .histograms
        .iter()
        .map(|(_, h)| h.count)
        .sum();
    let counter_increments: u64 = report.metrics.counters.iter().map(|(_, v)| *v).sum();
    report.events.len() as u64 + hist_samples + counter_increments
}

fn main() {
    let episodes: usize = std::env::var("CADMC_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let reps: usize = std::env::var("CADMC_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    eprintln!("timing the disabled per-site cost (60M macro sites)...");
    let ns_per_site = disabled_ns_per_site();

    eprintln!("timing optimal_branch with telemetry disabled ({episodes} episodes x {reps})...");
    let disabled_ms = time_search(episodes, reps);

    eprintln!("counting instrumentation sites in one traced search...");
    let sites = sites_per_search(episodes);

    eprintln!("timing optimal_branch with a collector installed...");
    let (builder, sink) = telemetry::Telemetry::builder().with_memory();
    let handle = builder.install().expect("no other collector installed");
    let enabled_ms = time_search(episodes, reps);
    handle.finish().expect("memory sink cannot fail");
    drop(sink.take());

    let bound_pct = sites as f64 * ns_per_site / (disabled_ms * 1e6) * 100.0;
    let enabled_pct = (enabled_ms - disabled_ms) / disabled_ms * 100.0;
    let report = Report {
        episodes,
        reps,
        disabled_ns_per_site: ns_per_site,
        sites_per_search: sites,
        disabled_search_ms: disabled_ms,
        enabled_search_ms: enabled_ms,
        disabled_overhead_bound_pct: bound_pct,
        enabled_overhead_pct: enabled_pct,
        pass_under_2pct: bound_pct < 2.0,
        note: "disabled bound = sites_per_search x disabled_ns_per_site / search time; \
               each disabled site is one relaxed atomic load"
            .to_string(),
    };

    println!("disabled site cost : {ns_per_site:.2} ns");
    println!("sites per search   : {sites}");
    println!("search (disabled)  : {disabled_ms:.2} ms");
    println!("search (enabled)   : {enabled_ms:.2} ms ({enabled_pct:+.1}%)");
    println!(
        "disabled overhead  : {bound_pct:.4}% bound — {}",
        if report.pass_under_2pct { "PASS (<2%)" } else { "FAIL (>=2%)" }
    );

    let out = std::env::var("CADMC_BENCH_OUT")
        .unwrap_or_else(|_| "results/BENCH_telemetry_overhead.json".to_string());
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    match std::fs::write(&out, json) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => eprintln!("cannot write {out}: {e}"),
    }
}

//! Seed-variance check (extension): re-runs the Table 4 emulation
//! averages across several characterization/search seeds and reports
//! mean ± spread — the executed tables replay held-out traces, so this
//! quantifies how much of the headline numbers is draw luck.

use cadmc_core::executor::Mode;
use cadmc_core::experiments::{averages, emulation_table, train_all};
use cadmc_core::search::SearchConfig;

fn main() {
    let episodes: usize = std::env::var("CADMC_EPISODES").ok().and_then(|v| v.parse().ok()).unwrap_or(60);
    let requests: usize = std::env::var("CADMC_REQUESTS").ok().and_then(|v| v.parse().ok()).unwrap_or(100);
    let seeds: Vec<u64> = vec![7, 17, 27];
    println!(
        "Seed variance of Table 4 VGG11 averages ({} seeds, {episodes} episodes, {requests} requests)\n",
        seeds.len()
    );
    println!(
        "{:>6} | {:>8} {:>9} | {:>8} {:>9} | {:>8} {:>9}",
        "seed", "surg R", "surg ms", "brch R", "brch ms", "tree R", "tree ms"
    );
    cadmc_bench::rule(66);
    let mut per_seed = Vec::new();
    for &seed in &seeds {
        let cfg = SearchConfig { episodes, seed, parallelism: cadmc_bench::workers_from_env(), ..SearchConfig::default() };
        let scenes = train_all(&cfg, seed).expect("valid inputs");
        let rows = emulation_table(&scenes, Mode::Emulation, requests, seed);
        let avg = averages(&rows[..10]); // the 10 VGG11 rows
        println!(
            "{:>6} | {:>8.2} {:>9.2} | {:>8.2} {:>9.2} | {:>8.2} {:>9.2}",
            seed, avg[0].0, avg[0].1, avg[1].0, avg[1].1, avg[2].0, avg[2].1
        );
        per_seed.push(avg);
    }
    cadmc_bench::rule(66);
    let n = per_seed.len() as f64;
    type Avg = [(f64, f64, f64); 3];
    let mean = |f: &dyn Fn(&Avg) -> f64| per_seed.iter().map(f).sum::<f64>() / n;
    let spread = |f: &dyn Fn(&Avg) -> f64| {
        let vals: Vec<f64> = per_seed.iter().map(f).collect();
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        hi - lo
    };
    for (name, idx) in [("surgery", 0usize), ("branch", 1), ("tree", 2)] {
        println!(
            "{:<8} reward {:.2} (spread {:.2}) | latency {:.2} ms (spread {:.2})",
            name,
            mean(&|a| a[idx].0),
            spread(&|a| a[idx].0),
            mean(&|a| a[idx].1),
            spread(&|a| a[idx].1),
        );
    }
    println!("\nThe ordering surgery < branch <= tree should hold for every seed.");
}

//! Validates the machine-readable bench reports against their expected
//! schemas via typed deserialization (every expected field must be
//! present and well-typed), so a harness refactor that drifts a field
//! name fails CI instead of silently producing unreadable JSON.
//!
//! Usage: `bench_schema_check <hot_path.json> <parallel_search.json>
//! [metrics_overhead.json]` (defaults: `results/BENCH_hot_path.json`,
//! `results/BENCH_parallel_search.json`,
//! `results/BENCH_metrics_overhead.json`; the metrics report is only
//! checked when present on disk or named explicitly). Exits non-zero on
//! a missing file, malformed JSON, unknown/missing fields, or
//! non-finite numbers.

use std::process::ExitCode;

use serde::Deserialize;

#[derive(Deserialize)]
struct HotPathMetrics {
    branch_episodes_per_sec: f64,
    tree_episodes_per_sec: f64,
    memo_lookups_per_sec: f64,
    compose_per_sec: f64,
    latency_evals_per_sec: f64,
}

impl HotPathMetrics {
    fn values(&self) -> [f64; 5] {
        [
            self.branch_episodes_per_sec,
            self.tree_episodes_per_sec,
            self.memo_lookups_per_sec,
            self.compose_per_sec,
            self.latency_evals_per_sec,
        ]
    }
}

#[derive(Deserialize)]
struct HotPathSpeedup {
    branch_episodes: f64,
    tree_episodes: f64,
    memo_lookups: f64,
    compose: f64,
    latency_evals: f64,
}

#[derive(Deserialize)]
struct HotPathReport {
    host_parallelism: usize,
    short_mode: bool,
    episodes: usize,
    reps: usize,
    metrics: HotPathMetrics,
    baseline: Option<HotPathMetrics>,
    speedup: Option<HotPathSpeedup>,
    speedup_note: Option<String>,
}

#[derive(Deserialize)]
struct WorkerPoint {
    workers: usize,
    mean_ms: f64,
    speedup_vs_serial: Option<f64>,
}

#[derive(Deserialize)]
struct ShardPoint {
    shards: usize,
    lookups_per_sec: f64,
}

#[derive(Deserialize)]
struct ParallelReport {
    host_parallelism: usize,
    episodes: usize,
    reps: usize,
    tree_search_workers: Vec<WorkerPoint>,
    memo_pool_shards: Vec<ShardPoint>,
    note: String,
    speedup_note: Option<String>,
}

#[derive(Deserialize)]
struct MetricsOverheadReport {
    sessions: usize,
    reps: usize,
    disabled_ns_per_site: f64,
    sites_per_run: u64,
    disabled_run_ms: f64,
    enabled_run_ms: f64,
    disabled_overhead_bound_pct: f64,
    enabled_overhead_pct: f64,
    pass_under_2pct: bool,
    note: String,
}

fn fail(path: &str, msg: &str) -> ExitCode {
    eprintln!("bench_schema_check: {path}: {msg}");
    ExitCode::FAILURE
}

fn check_positive(path: &str, name: &str, v: f64) -> Result<(), ExitCode> {
    if v.is_finite() && v > 0.0 {
        Ok(())
    } else {
        Err(fail(path, &format!("{name} must be finite and positive, got {v}")))
    }
}

fn check_hot_path(path: &str) -> Result<(), ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| fail(path, &e.to_string()))?;
    let report: HotPathReport =
        serde_json::from_str(&text).map_err(|e| fail(path, &e.to_string()))?;
    if report.host_parallelism == 0 || report.episodes == 0 || report.reps == 0 {
        return Err(fail(path, "host_parallelism, episodes and reps must be non-zero"));
    }
    for (name, v) in [
        "branch_episodes_per_sec",
        "tree_episodes_per_sec",
        "memo_lookups_per_sec",
        "compose_per_sec",
        "latency_evals_per_sec",
    ]
    .into_iter()
    .zip(report.metrics.values())
    {
        check_positive(path, name, v)?;
    }
    if let Some(baseline) = &report.baseline {
        for v in baseline.values() {
            check_positive(path, "baseline metric", v)?;
        }
        if report.speedup.is_none() {
            return Err(fail(path, "baseline present but speedup missing"));
        }
    }
    if report.speedup.is_some() && report.baseline.is_none() {
        return Err(fail(path, "speedup present but baseline missing"));
    }
    if let Some(s) = &report.speedup {
        for v in [
            s.branch_episodes,
            s.tree_episodes,
            s.memo_lookups,
            s.compose,
            s.latency_evals,
        ] {
            check_positive(path, "speedup", v)?;
        }
    }
    let _ = &report.speedup_note;
    let _ = report.short_mode;
    Ok(())
}

fn check_parallel(path: &str) -> Result<(), ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| fail(path, &e.to_string()))?;
    let report: ParallelReport =
        serde_json::from_str(&text).map_err(|e| fail(path, &e.to_string()))?;
    if report.host_parallelism == 0 || report.episodes == 0 || report.reps == 0 {
        return Err(fail(path, "host_parallelism, episodes and reps must be non-zero"));
    }
    if report.tree_search_workers.is_empty() || report.memo_pool_shards.is_empty() {
        return Err(fail(path, "worker and shard tables must be non-empty"));
    }
    for p in &report.tree_search_workers {
        if p.workers == 0 {
            return Err(fail(path, "worker count must be non-zero"));
        }
        check_positive(path, "mean_ms", p.mean_ms)?;
        if report.host_parallelism == 1 && p.speedup_vs_serial.is_some() {
            return Err(fail(
                path,
                "single-core host must not publish speedup_vs_serial",
            ));
        }
        if let Some(s) = p.speedup_vs_serial {
            check_positive(path, "speedup_vs_serial", s)?;
        }
    }
    if report.host_parallelism == 1 && report.speedup_note.is_none() {
        return Err(fail(path, "single-core host must carry a speedup_note"));
    }
    for p in &report.memo_pool_shards {
        if p.shards == 0 {
            return Err(fail(path, "shard count must be non-zero"));
        }
        check_positive(path, "lookups_per_sec", p.lookups_per_sec)?;
    }
    if report.note.is_empty() {
        return Err(fail(path, "note must explain how to read the numbers"));
    }
    Ok(())
}

fn check_metrics_overhead(path: &str) -> Result<(), ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| fail(path, &e.to_string()))?;
    let report: MetricsOverheadReport =
        serde_json::from_str(&text).map_err(|e| fail(path, &e.to_string()))?;
    if report.sessions == 0 || report.reps == 0 || report.sites_per_run == 0 {
        return Err(fail(path, "sessions, reps and sites_per_run must be non-zero"));
    }
    check_positive(path, "disabled_ns_per_site", report.disabled_ns_per_site)?;
    check_positive(path, "disabled_run_ms", report.disabled_run_ms)?;
    check_positive(path, "enabled_run_ms", report.enabled_run_ms)?;
    check_positive(
        path,
        "disabled_overhead_bound_pct",
        report.disabled_overhead_bound_pct,
    )?;
    if !report.enabled_overhead_pct.is_finite() {
        return Err(fail(path, "enabled_overhead_pct must be finite"));
    }
    if !report.pass_under_2pct {
        return Err(fail(
            path,
            &format!(
                "disabled-path overhead bound {:.4}% breaches the <2% budget",
                report.disabled_overhead_bound_pct
            ),
        ));
    }
    if report.note.is_empty() {
        return Err(fail(path, "note must explain how to read the numbers"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let hot = args
        .first()
        .cloned()
        .unwrap_or_else(|| "results/BENCH_hot_path.json".to_string());
    let par = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "results/BENCH_parallel_search.json".to_string());
    let metrics = args.get(2).cloned();

    if let Err(code) = check_hot_path(&hot) {
        return code;
    }
    if let Err(code) = check_parallel(&par) {
        return code;
    }
    // The metrics-overhead report is newer than the other two; only
    // require it when named explicitly or already generated.
    let metrics_default = "results/BENCH_metrics_overhead.json".to_string();
    let metrics_path = metrics.unwrap_or(metrics_default);
    let mut checked = format!("{hot}, {par}");
    if args.len() >= 3 || std::path::Path::new(&metrics_path).exists() {
        if let Err(code) = check_metrics_overhead(&metrics_path) {
            return code;
        }
        checked.push_str(&format!(", {metrics_path}"));
    }
    println!("bench_schema_check: ok ({checked})");
    ExitCode::SUCCESS
}

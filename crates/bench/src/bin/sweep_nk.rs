//! N/K design-space sweep (extension): executed reward vs tree shape and
//! the edge-storage price of context-awareness.

use cadmc_core::experiments::nk_sweep;
use cadmc_core::search::SearchConfig;
use cadmc_latency::Platform;
use cadmc_netsim::Scenario;
use cadmc_nn::zoo;

fn main() {
    let episodes: usize = std::env::var("CADMC_EPISODES").ok().and_then(|v| v.parse().ok()).unwrap_or(50);
    let seed: u64 = std::env::var("CADMC_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(7);
    let cfg = SearchConfig { episodes, seed, parallelism: cadmc_bench::workers_from_env(), ..SearchConfig::default() };
    println!("N/K sweep: VGG11, Phone, WiFi (weak) indoor ({episodes} episodes per cell)\n");
    println!("{:>3} {:>3} {:>10} {:>12} {:>14} {:>8}", "N", "K", "reward", "latency ms", "storage MB", "nodes");
    cadmc_bench::rule(56);
    let points = nk_sweep(
        &zoo::vgg11_cifar(),
        Platform::Phone,
        Scenario::WifiWeakIndoor,
        &[2, 3, 4],
        &[2, 3],
        &cfg,
        seed,
    )
    .expect("valid inputs");
    for p in &points {
        println!(
            "{:>3} {:>3} {:>10.2} {:>12.2} {:>14.2} {:>8}",
            p.n,
            p.k,
            p.reward,
            p.latency_ms,
            p.storage_bytes as f64 / 1e6,
            p.nodes
        );
    }
    let base = zoo::vgg11_cifar();
    println!("\nsingle base model storage: {:.2} MB", base.param_bytes() as f64 / 1e6);
    println!("paper setting: N = 3, K = 2.");
}

//! Table 3 — offline training reward of the three methods across all 14
//! paper workloads (VGG11 phone/TX2, AlexNet phone).

use cadmc_core::experiments::{offline_table, train_all};
use cadmc_core::search::SearchConfig;

fn main() {
    let episodes: usize = std::env::var("CADMC_EPISODES").ok().and_then(|v| v.parse().ok()).unwrap_or(60);
    let seed: u64 = std::env::var("CADMC_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(7);
    let cfg = SearchConfig { episodes, seed, parallelism: cadmc_bench::workers_from_env(), ..SearchConfig::default() };
    eprintln!("training 14 scenes ({episodes} episodes each)...");
    let scenes = train_all(&cfg, seed).expect("valid inputs");
    let rows = offline_table(&scenes);

    println!("Table 3: offline training reward");
    println!("{:<10} {:<8} {:<22} {:>9} {:>9} {:>9}", "Model", "Device", "Environment", "Surgery", "Branch", "Tree");
    cadmc_bench::rule(72);
    let mut last_model = String::new();
    let mut sums: Vec<(String, f64, f64, f64, usize)> = Vec::new();
    for r in &rows {
        if r.model != last_model {
            last_model = r.model.clone();
            sums.push((r.model.clone(), 0.0, 0.0, 0.0, 0));
        }
        let s = sums.last_mut().unwrap();
        s.1 += r.surgery;
        s.2 += r.branch;
        s.3 += r.tree;
        s.4 += 1;
        println!(
            "{:<10} {:<8} {:<22} {:>9.2} {:>9.2} {:>9.2}",
            r.model, r.device, r.scenario, r.surgery, r.branch, r.tree
        );
    }
    cadmc_bench::rule(72);
    for (model, s, b, t, n) in sums {
        let n = n as f64;
        println!(
            "{:<10} {:<8} {:<22} {:>9.2} {:>9.2} {:>9.2}",
            model, "-", "Average", s / n, b / n, t / n
        );
    }
    println!("\npaper averages (VGG11): 352.14 / 355.92 / 359.57; (AlexNet): 347.05 / 357.64 / 359.56");
}

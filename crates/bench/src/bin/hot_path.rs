//! Episode hot-path throughput harness: times the four operations the
//! search spends its life in — branch episodes, tree episodes, memo
//! probes and candidate composition — and writes
//! `results/BENCH_hot_path.json` (override with `CADMC_BENCH_OUT`).
//!
//! If a baseline file exists (`results/BENCH_hot_path_before.json`, or
//! `CADMC_BASELINE`), the report embeds it and publishes per-metric
//! speedups, so the JSON is self-contained evidence of a perf change on
//! one host. Knobs: `CADMC_SHORT=1` shrinks every loop for CI smoke
//! runs; `CADMC_EPISODES` / `CADMC_REPS` override the episode budget.

use std::time::Instant;

use cadmc_core::memo::MemoPool;
use cadmc_core::parallel::Parallelism;
use cadmc_core::search::{Controllers, SearchConfig};
use cadmc_core::tree_search::tree_search;
use cadmc_core::{Candidate, EvalEnv, NetworkContext, Partition};
use cadmc_latency::Mbps;
use cadmc_netsim::Scenario;
use cadmc_nn::zoo;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize, Clone, Copy)]
struct Metrics {
    branch_episodes_per_sec: f64,
    tree_episodes_per_sec: f64,
    memo_lookups_per_sec: f64,
    compose_per_sec: f64,
    latency_evals_per_sec: f64,
}

#[derive(Serialize, Deserialize)]
struct Speedup {
    branch_episodes: f64,
    tree_episodes: f64,
    memo_lookups: f64,
    compose: f64,
    latency_evals: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    host_parallelism: usize,
    short_mode: bool,
    episodes: usize,
    reps: usize,
    metrics: Metrics,
    baseline: Option<Metrics>,
    speedup: Option<Speedup>,
    speedup_note: Option<String>,
}

fn time_branch(episodes: usize, reps: usize) -> f64 {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let mut total = 0.0;
    for rep in 0..reps {
        let cfg = SearchConfig {
            episodes,
            hidden: 8,
            seed: 11 + rep as u64,
            parallelism: Parallelism::serial(),
            ..SearchConfig::default()
        };
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        let start = Instant::now();
        let out = cadmc_core::branch::optimal_branch(
            &mut controllers,
            &base,
            &env,
            Mbps(10.0),
            &cfg,
            &memo,
        )
        .expect("valid inputs");
        total += start.elapsed().as_secs_f64();
        std::hint::black_box(out);
    }
    (episodes * reps) as f64 / total
}

fn time_tree(episodes: usize, reps: usize) -> f64 {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let ctx = NetworkContext::from_scenario(Scenario::WifiWeakIndoor, 2, 7);
    let mut total = 0.0;
    for rep in 0..reps {
        let cfg = SearchConfig {
            episodes,
            hidden: 8,
            seed: 7 + rep as u64,
            parallelism: Parallelism::serial(),
            ..SearchConfig::default()
        };
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        let start = Instant::now();
        let out = tree_search(
            &mut controllers,
            &base,
            &env,
            ctx.levels(),
            3,
            &cfg,
            &memo,
            false,
            None,
        )
        .expect("valid inputs");
        total += start.elapsed().as_secs_f64();
        std::hint::black_box(out);
    }
    (episodes * reps) as f64 / total
}

fn cut_candidates(base: &cadmc_nn::ModelSpec) -> Vec<Candidate> {
    (0..base.len())
        .map(|i| {
            Candidate::compose(
                base,
                Partition::AfterLayer(i),
                &cadmc_compress::CompressionPlan::identity(base.len()),
            )
            .expect("identity plans compose")
        })
        .collect()
}

fn time_memo(lookups: usize) -> f64 {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let candidates = cut_candidates(&base);
    let memo = MemoPool::new();
    for c in &candidates {
        memo.get_or_insert_with(c, 10.0, || env.evaluate(&base, c, Mbps(10.0)));
    }
    let start = Instant::now();
    for i in 0..lookups {
        std::hint::black_box(memo.get(&candidates[i % candidates.len()], 10.0));
    }
    lookups as f64 / start.elapsed().as_secs_f64()
}

fn time_compose(iters: usize) -> f64 {
    let base = zoo::vgg11_cifar();
    let plan = cadmc_compress::CompressionPlan::identity(base.len());
    let start = Instant::now();
    for i in 0..iters {
        let cut = i % base.len();
        std::hint::black_box(
            Candidate::compose(&base, Partition::AfterLayer(cut), &plan)
                .expect("identity plans compose"),
        );
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

fn time_latency(iters: usize) -> f64 {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let candidates = cut_candidates(&base);
    let start = Instant::now();
    for i in 0..iters {
        let c = &candidates[i % candidates.len()];
        std::hint::black_box(env.latency_ms(c, Mbps(10.0)));
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let short = std::env::var("CADMC_SHORT").is_ok_and(|v| v == "1");
    let episodes: usize = std::env::var("CADMC_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if short { 10 } else { 40 });
    let reps: usize = std::env::var("CADMC_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if short { 1 } else { 3 });
    let micro_iters = if short { 2_000 } else { 50_000 };
    let host = Parallelism::available().workers;

    eprintln!("timing branch search ({episodes} episodes x {reps} reps)...");
    let branch = time_branch(episodes, reps);
    eprintln!("timing tree search ({episodes} episodes x {reps} reps)...");
    let tree = time_tree(episodes, reps);
    eprintln!("timing memo probes, compose, latency kernels ({micro_iters} iters)...");
    let memo = time_memo(micro_iters);
    let compose = time_compose(micro_iters / 10);
    let latency = time_latency(micro_iters);

    let metrics = Metrics {
        branch_episodes_per_sec: branch,
        tree_episodes_per_sec: tree,
        memo_lookups_per_sec: memo,
        compose_per_sec: compose,
        latency_evals_per_sec: latency,
    };

    let baseline_path = std::env::var("CADMC_BASELINE")
        .unwrap_or_else(|_| "results/BENCH_hot_path_before.json".to_string());
    let baseline: Option<Metrics> = std::fs::read_to_string(&baseline_path)
        .ok()
        .and_then(|text| serde_json::from_str::<Report>(&text).ok())
        .map(|r| r.metrics);

    let speedup = baseline.map(|b| Speedup {
        branch_episodes: metrics.branch_episodes_per_sec / b.branch_episodes_per_sec,
        tree_episodes: metrics.tree_episodes_per_sec / b.tree_episodes_per_sec,
        memo_lookups: metrics.memo_lookups_per_sec / b.memo_lookups_per_sec,
        compose: metrics.compose_per_sec / b.compose_per_sec,
        latency_evals: metrics.latency_evals_per_sec / b.latency_evals_per_sec,
    });
    let speedup_note = if baseline.is_none() {
        Some(format!(
            "no baseline at {baseline_path}; this run records absolute throughput only"
        ))
    } else if host == 1 {
        Some(
            "single-thread comparison on a 1-core host; multi-worker speedup claims \
             are not published from this machine"
                .to_string(),
        )
    } else {
        None
    };

    let report = Report {
        host_parallelism: host,
        short_mode: short,
        episodes,
        reps,
        metrics,
        baseline,
        speedup,
        speedup_note,
    };

    println!("{:<28} {:>14}", "metric", "per second");
    println!("{:<28} {:>14.1}", "branch episodes", branch);
    println!("{:<28} {:>14.1}", "tree episodes", tree);
    println!("{:<28} {:>14.0}", "memo lookups", memo);
    println!("{:<28} {:>14.0}", "compose", compose);
    println!("{:<28} {:>14.0}", "latency evals", latency);
    if let Some(s) = &report.speedup {
        println!(
            "speedup vs baseline: branch {:.2}x, tree {:.2}x, memo {:.2}x, compose {:.2}x, latency {:.2}x",
            s.branch_episodes, s.tree_episodes, s.memo_lookups, s.compose, s.latency_evals
        );
    }

    let out = std::env::var("CADMC_BENCH_OUT")
        .unwrap_or_else(|_| "results/BENCH_hot_path.json".to_string());
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&out, json).expect("write bench report");
    eprintln!("wrote {out}");
}

//! Fig. 1 — real-world network context: bandwidth fluctuation samples.
//!
//! The paper shows two measured traces (4G while moving quickly outdoors,
//! weak WiFi indoors) fluctuating drastically within ~1 s. This binary
//! prints the synthesized equivalents with their statistics.

use cadmc_bench::{downsample, sparkline};
use cadmc_netsim::Scenario;

fn main() {
    let seed: u64 = std::env::var("CADMC_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(7);
    println!("Fig. 1: real-world network contexts (synthesized, 60 s @ 10 Hz)\n");
    for scenario in [Scenario::FourGOutdoorQuick, Scenario::WifiWeakIndoor] {
        let trace = scenario.trace(seed);
        let (poor, good) = trace.quartile_levels();
        // Largest change within any 1-second window.
        let mut max_1s_jump: f64 = 0.0;
        let s = trace.samples();
        for w in s.windows(10) {
            let lo = w.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            max_1s_jump = max_1s_jump.max(hi - lo);
        }
        println!("{}", scenario.name());
        println!("  {}", sparkline(&downsample(s, 100)));
        println!(
            "  mean {:.2} Mbps | std {:.2} | quartiles (poor/good) {:.2}/{:.2} | max 1s swing {:.2} Mbps",
            trace.mean(), trace.std_dev(), poor, good, max_1s_jump
        );
        println!();
    }
}

//! Table 4 — emulation results: reward / latency / accuracy of the three
//! methods, replaying each scene's bandwidth trace with estimated
//! latencies.

use cadmc_core::executor::Mode;
use cadmc_core::experiments::{averages, emulation_table, train_all};
use cadmc_core::search::SearchConfig;

fn main() {
    let episodes: usize = std::env::var("CADMC_EPISODES").ok().and_then(|v| v.parse().ok()).unwrap_or(60);
    let requests: usize = std::env::var("CADMC_REQUESTS").ok().and_then(|v| v.parse().ok()).unwrap_or(120);
    let seed: u64 = std::env::var("CADMC_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(7);
    let cfg = SearchConfig { episodes, seed, parallelism: cadmc_bench::workers_from_env(), ..SearchConfig::default() };
    eprintln!("training 14 scenes ({episodes} episodes each)...");
    let scenes = train_all(&cfg, seed).expect("valid inputs");
    let rows = emulation_table(&scenes, Mode::Emulation, requests, seed);

    println!("Table 4: emulation results ({requests} requests per run)");
    println!(
        "{:<10} {:<8} {:<22} | {:^26} | {:^26} | {:^26}",
        "Model", "Device", "Environment", "Surgery (R/ms/%)", "Branch (R/ms/%)", "Tree (R/ms/%)"
    );
    cadmc_bench::rule(128);
    for r in &rows {
        println!(
            "{:<10} {:<8} {:<22} | {} | {} | {}",
            r.model, r.device, r.scenario,
            cadmc_bench::triple(r.surgery),
            cadmc_bench::triple(r.branch),
            cadmc_bench::triple(r.tree)
        );
    }
    cadmc_bench::rule(128);
    for (model, group) in [("VGG11", &rows[..10]), ("AlexNet", &rows[10..])] {
        let avg = averages(group);
        println!(
            "{:<10} {:<8} {:<22} | {} | {} | {}",
            model, "-", "Average",
            cadmc_bench::triple(avg[0]),
            cadmc_bench::triple(avg[1]),
            cadmc_bench::triple(avg[2])
        );
        let red = 100.0 * (avg[0].1 - avg[2].1) / avg[0].1;
        let acc = 100.0 * (avg[0].2 - avg[2].2);
        println!("{:<42} tree vs surgery: {:.1}% latency reduction, {:.2} pp accuracy loss", "", red, acc);
    }
    println!("\npaper (VGG11 avg): 78.28 -> 60.91 -> 56.11 ms; accuracy 92.01 -> 90.65 -> 90.77 %");
}

//! Measures the wall-clock speedup of parallel episode rollouts and the
//! sharded memo pool, writing a machine-readable table to
//! `results/BENCH_parallel_search.json` (override the path with
//! `CADMC_BENCH_OUT`).
//!
//! The worker count never changes search results — the determinism
//! regression tests pin that — so the numbers here are pure scheduling.
//! Interpret them against `host_parallelism`: on a single-core host every
//! worker count collapses onto one CPU and speedup hovers around 1.0 (the
//! fan-out overhead itself is what is being measured); the parallel win
//! requires as many cores as workers.

use std::time::Instant;

use cadmc_core::memo::MemoPool;
use cadmc_core::parallel::Parallelism;
use cadmc_core::search::{Controllers, SearchConfig};
use cadmc_core::tree_search::tree_search;
use cadmc_core::{EvalEnv, NetworkContext};
use cadmc_netsim::Scenario;
use cadmc_nn::zoo;
use serde::Serialize;

#[derive(Serialize)]
struct WorkerPoint {
    workers: usize,
    mean_ms: f64,
    /// `None` (serialized as `null`) when the host cannot actually run
    /// the workers concurrently (host_parallelism == 1): a "speedup"
    /// there would only measure fan-out overhead, not parallel
    /// scheduling.
    speedup_vs_serial: Option<f64>,
}

#[derive(Serialize)]
struct ShardPoint {
    shards: usize,
    lookups_per_sec: f64,
}

#[derive(Serialize)]
struct Report {
    host_parallelism: usize,
    episodes: usize,
    reps: usize,
    tree_search_workers: Vec<WorkerPoint>,
    memo_pool_shards: Vec<ShardPoint>,
    note: String,
    /// Set only on hosts that cannot validate a multi-worker speedup.
    speedup_note: Option<String>,
}

fn time_tree_search(workers: usize, episodes: usize, reps: usize) -> f64 {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let ctx = NetworkContext::from_scenario(Scenario::WifiWeakIndoor, 2, 7);
    let mut total = 0.0;
    for rep in 0..reps {
        let cfg = SearchConfig {
            episodes,
            hidden: 8,
            seed: 7 + rep as u64,
            parallelism: Parallelism::new(workers),
            ..SearchConfig::default()
        };
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        let start = Instant::now();
        let result = tree_search(
            &mut controllers,
            &base,
            &env,
            ctx.levels(),
            3,
            &cfg,
            &memo,
            false,
            None,
        )
        .expect("valid inputs");
        total += start.elapsed().as_secs_f64() * 1000.0;
        std::hint::black_box(result);
    }
    total / reps as f64
}

fn time_memo_shards(shards: usize) -> f64 {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let candidates: Vec<_> = (0..base.len())
        .map(|i| {
            cadmc_core::Candidate::compose(
                &base,
                cadmc_core::Partition::AfterLayer(i),
                &cadmc_compress::CompressionPlan::identity(base.len()),
            )
            .unwrap()
        })
        .collect();
    let memo = MemoPool::with_shards(shards);
    for c in &candidates {
        memo.get_or_insert_with(c, 10.0, || env.evaluate(&base, c, cadmc_latency::Mbps(10.0)));
    }
    const THREADS: usize = 4;
    const LOOKUPS: usize = 50_000;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let memo = &memo;
            let candidates = &candidates;
            scope.spawn(move || {
                for i in 0..LOOKUPS {
                    std::hint::black_box(memo.get(&candidates[(i + t) % candidates.len()], 10.0));
                }
            });
        }
    });
    (THREADS * LOOKUPS) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let episodes: usize = std::env::var("CADMC_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let reps: usize = std::env::var("CADMC_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let host = Parallelism::available().workers;

    eprintln!("timing tree_search across worker counts ({episodes} episodes x {reps} reps)...");
    let mut worker_points = Vec::new();
    let serial_ms = time_tree_search(1, episodes, reps);
    worker_points.push(WorkerPoint {
        workers: 1,
        mean_ms: serial_ms,
        speedup_vs_serial: (host > 1).then_some(1.0),
    });
    for workers in [2usize, 4, 8] {
        let mean_ms = time_tree_search(workers, episodes, reps);
        worker_points.push(WorkerPoint {
            workers,
            mean_ms,
            speedup_vs_serial: (host > 1).then(|| serial_ms / mean_ms),
        });
    }

    eprintln!("timing memo pool lookups across shard counts...");
    let shard_points: Vec<ShardPoint> = [1usize, 4, 16]
        .into_iter()
        .map(|shards| ShardPoint {
            shards,
            lookups_per_sec: time_memo_shards(shards),
        })
        .collect();

    let report = Report {
        host_parallelism: host,
        episodes,
        reps,
        tree_search_workers: worker_points,
        memo_pool_shards: shard_points,
        note: format!(
            "worker count is bit-identical in results (see parallel_determinism tests); \
             speedups are wall-clock only and require as many cores as workers — \
             this run saw {host} core(s)"
        ),
        speedup_note: (host == 1).then(|| {
            "single-core host: every worker count shares one CPU, so no speedup \
             claim is made (speedup_vs_serial omitted); timings measure fan-out \
             overhead only"
                .to_string()
        }),
    };

    println!("{:<9} {:>10} {:>9}", "workers", "mean ms", "speedup");
    for p in &report.tree_search_workers {
        match p.speedup_vs_serial {
            Some(s) => println!("{:<9} {:>10.1} {:>8.2}x", p.workers, p.mean_ms, s),
            None => println!("{:<9} {:>10.1} {:>9}", p.workers, p.mean_ms, "n/a"),
        }
    }
    if let Some(note) = &report.speedup_note {
        println!("\nnote: {note}");
    }
    println!("\n{:<9} {:>16}", "shards", "lookups/s");
    for p in &report.memo_pool_shards {
        println!("{:<9} {:>16.0}", p.shards, p.lookups_per_sec);
    }

    let out = std::env::var("CADMC_BENCH_OUT")
        .unwrap_or_else(|_| "results/BENCH_parallel_search.json".to_string());
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&out, json).expect("write bench report");
    eprintln!("wrote {out}");
}

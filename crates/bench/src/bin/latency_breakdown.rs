//! Per-layer latency breakdown and cut-point table for VGG11 — the
//! Neurosurgeon-style diagnostic behind the surgery baseline: for each
//! candidate cut it shows edge time, transfer time and cloud time, making
//! the optimal partition visually obvious.

use cadmc_core::{Candidate, EvalEnv, Partition};
use cadmc_latency::Mbps;
use cadmc_nn::zoo;

fn main() {
    let bw: f64 = std::env::var("CADMC_BANDWIDTH").ok().and_then(|v| v.parse().ok()).unwrap_or(10.0);
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    println!("Per-layer breakdown: VGG11 on Phone, transfers at {bw} Mbps\n");
    println!(
        "{:>3} {:<20} {:>12} {:>10} {:>12}",
        "i", "layer", "MACCs", "edge ms", "out bytes"
    );
    cadmc_bench::rule(62);
    for i in 0..base.len() {
        let layer = &base.layers()[i];
        println!(
            "{:>3} {:<20} {:>12} {:>10.2} {:>12}",
            i,
            layer.encode(),
            base.layer_maccs(i),
            env.edge.layer_latency_ms(layer, base.layer_input(i)),
            base.cut_bytes_after(i)
        );
    }

    println!("\nCut-point table (edge + transfer + cloud = total):");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9}",
        "cut", "edge ms", "xfer ms", "cloud ms", "total"
    );
    cadmc_bench::rule(52);
    let plan = cadmc_compress::CompressionPlan::identity(base.len());
    let mut options = vec![Partition::AllCloud];
    options.extend((0..base.len() - 1).map(Partition::AfterLayer));
    options.push(Partition::AllEdge);
    let mut best: Option<(String, f64)> = None;
    for p in options {
        let c = Candidate::compose(&base, p, &plan).expect("identity plan");
        let m = &c.model;
        let te = env.edge.range_latency_ms(m, 0, c.edge_layers);
        let tt = env.transfer.latency_ms(c.transfer_bytes(), Mbps(bw));
        let tc = env.cloud.range_latency_ms(m, c.edge_layers, m.len()).max(0.0);
        let total = te + tt + tc;
        println!(
            "{:<12} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            p.to_string(),
            te,
            tt,
            tc,
            total
        );
        if best.as_ref().is_none_or(|(_, b)| total < *b) {
            best = Some((p.to_string(), total));
        }
    }
    let (name, total) = best.expect("options non-empty");
    println!("\noptimal static cut at {bw} Mbps: {name} ({total:.2} ms)");
}

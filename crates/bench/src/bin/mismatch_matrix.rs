//! Context-mismatch robustness (extension): reward of trees trained on
//! one scenario but executed in another.

use cadmc_core::experiments::mismatch_matrix;
use cadmc_core::search::SearchConfig;
use cadmc_latency::Platform;
use cadmc_netsim::Scenario;
use cadmc_nn::zoo;

fn main() {
    let episodes: usize = std::env::var("CADMC_EPISODES").ok().and_then(|v| v.parse().ok()).unwrap_or(80);
    let seed: u64 = std::env::var("CADMC_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(7);
    let cfg = SearchConfig { episodes, seed, parallelism: cadmc_bench::workers_from_env(), ..SearchConfig::default() };
    let scenarios = [
        Scenario::FourGIndoorStatic,
        Scenario::FourGOutdoorQuick,
        Scenario::WifiWeakIndoor,
        Scenario::WifiOutdoorSlow,
    ];
    println!("Context mismatch (VGG11, Phone): executed reward of tree trained on row, run in column\n");
    let m = mismatch_matrix(&zoo::vgg11_cifar(), Platform::Phone, &scenarios, &cfg, 120, seed)
        .expect("valid inputs");
    print!("{:<22}", "trained \\ executed");
    for s in &m.scenarios {
        print!(" {:>20}", s);
    }
    println!();
    cadmc_bench::rule(22 + 21 * m.scenarios.len());
    for (i, row) in m.rewards.iter().enumerate() {
        print!("{:<22}", m.scenarios[i]);
        for (j, r) in row.iter().enumerate() {
            let marker = if i == j { "*" } else { " " };
            print!(" {:>19.2}{marker}", r);
        }
        println!();
    }
    println!("\n(* = matched context) mean diagonal advantage: {:.2} reward", m.mean_diagonal_advantage());
}

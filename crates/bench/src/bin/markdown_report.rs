//! Renders the offline / emulation / field tables as GitHub-flavored
//! markdown (the mechanical data sections of EXPERIMENTS.md).

use cadmc_core::executor::Mode;
use cadmc_core::experiments::{
    emulation_table, executed_markdown, offline_markdown, offline_table, train_all,
};
use cadmc_core::search::SearchConfig;

fn main() {
    let episodes: usize = std::env::var("CADMC_EPISODES").ok().and_then(|v| v.parse().ok()).unwrap_or(120);
    let requests: usize = std::env::var("CADMC_REQUESTS").ok().and_then(|v| v.parse().ok()).unwrap_or(150);
    let seed: u64 = std::env::var("CADMC_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(7);
    let cfg = SearchConfig { episodes, seed, parallelism: cadmc_bench::workers_from_env(), ..SearchConfig::default() };
    eprintln!("training 14 scenes ({episodes} episodes each)...");
    let scenes = train_all(&cfg, seed).expect("valid inputs");

    println!("## Table 3 — offline training reward\n");
    println!("{}", offline_markdown(&offline_table(&scenes)));

    println!("## Table 4 — emulation (held-out traces)\n");
    let rows = emulation_table(&scenes, Mode::Emulation, requests, seed);
    println!("{}", executed_markdown(&rows, "emulation"));

    println!("## Table 5 — field test\n");
    let rows = emulation_table(&scenes, Mode::Field, requests, seed);
    println!("{}", executed_markdown(&rows, "field"));
}

//! Quality ablations of the design choices DESIGN.md calls out:
//! backward-estimation rule (mean vs max), fair-chance exploration
//! (on/off), and optimal-branch boosting (on/off). Prints the mean branch
//! reward the tree search reaches under each setting.

use cadmc_core::experiments::{K_LEVELS, N_BLOCKS};
use cadmc_core::memo::MemoPool;
use cadmc_core::search::{Controllers, SearchConfig};
use cadmc_core::tree::BackwardRule;
use cadmc_core::tree_search::tree_search;
use cadmc_core::{EvalEnv, NetworkContext};
use cadmc_netsim::Scenario;
use cadmc_nn::zoo;

fn run(cfg: &SearchConfig, boost: bool, seed: u64) -> f64 {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let ctx = NetworkContext::from_scenario(Scenario::WifiWeakIndoor, K_LEVELS, seed);
    let mut controllers = Controllers::new(cfg);
    let memo = MemoPool::new();
    let result = tree_search(
        &mut controllers,
        &base,
        &env,
        ctx.levels(),
        N_BLOCKS,
        cfg,
        &memo,
        boost,
        Some(ctx.trace()),
    )
    .expect("valid inputs");
    result.tree.mean_branch_reward()
}

fn main() {
    let episodes: usize = std::env::var("CADMC_EPISODES").ok().and_then(|v| v.parse().ok()).unwrap_or(60);
    let seeds: Vec<u64> = vec![7, 17, 27];
    println!("Quality ablations (VGG11, Phone, WiFi (weak) indoor, {episodes} episodes, {} seeds)\n", seeds.len());
    println!("{:<34} {:>12}", "Variant", "mean reward");
    cadmc_bench::rule(48);

    let variants: Vec<(&str, SearchConfig, bool)> = vec![
        (
            "paper (mean, fair-chance, boost)",
            SearchConfig { episodes, ..SearchConfig::default() },
            true,
        ),
        (
            "backward rule = max",
            SearchConfig { episodes, backward_rule: BackwardRule::Max, ..SearchConfig::default() },
            true,
        ),
        (
            "no fair-chance exploration",
            SearchConfig { episodes, alpha: 0.0, ..SearchConfig::default() },
            true,
        ),
        (
            "no branch boosting",
            SearchConfig { episodes, ..SearchConfig::default() },
            false,
        ),
        (
            "entropy bonus b=0.01",
            SearchConfig { episodes, entropy_beta: 0.01, ..SearchConfig::default() },
            true,
        ),
        (
            "no epsilon exploration",
            SearchConfig { episodes, explore_epsilon: 0.0, ..SearchConfig::default() },
            true,
        ),
    ];
    for (name, cfg, boost) in variants {
        let mean: f64 = seeds
            .iter()
            .map(|&s| run(&SearchConfig { seed: s, ..cfg }, boost, s))
            .sum::<f64>()
            / seeds.len() as f64;
        println!("{:<34} {:>12.2}", name, mean);
    }
}

//! Fig. 7 — comparison of search methods (RL vs random vs ε-greedy) on
//! the model-tree space under "4G indoor static".

use cadmc_bench::{downsample, sparkline};
use cadmc_core::baselines::{epsilon_greedy_search, random_search};
use cadmc_core::branch::optimal_branch;
use cadmc_core::experiments::search_comparison;
use cadmc_core::memo::MemoPool;
use cadmc_core::parallel::Parallelism;
use cadmc_core::search::{Controllers, SearchConfig};
use cadmc_core::{EvalEnv, NetworkContext};
use cadmc_latency::{Mbps, Platform};
use cadmc_netsim::Scenario;
use cadmc_nn::zoo;

fn main() {
    let episodes: usize = std::env::var("CADMC_EPISODES").ok().and_then(|v| v.parse().ok()).unwrap_or(80);
    let seed: u64 = std::env::var("CADMC_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(7);
    let par = std::env::var("CADMC_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or_else(Parallelism::available, Parallelism::new);
    println!("Fig. 7: search method comparison (VGG11, Phone; {episodes} episodes per method)\n");
    for scenario in [Scenario::FourGIndoorStatic, Scenario::WifiWeakIndoor] {
        println!("context: {}", scenario.name());
        let cmp =
            search_comparison(&zoo::vgg11_cifar(), Platform::Phone, scenario, episodes, seed, par)
                .expect("valid inputs");
        let (rl, random, eg) = cmp.finals();
        for (name, curve, final_v) in [
            ("RL (ours)", &cmp.rl, rl),
            ("random", &cmp.random, random),
            ("e-greedy", &cmp.epsilon_greedy, eg),
        ] {
            println!("  {:<10} best {:>7.2}  {}", name, final_v, sparkline(&downsample(curve, 60)));
        }
        println!();
    }
    // Second panel: the same comparison on the Alg. 1 (single-branch)
    // space at the weak-WiFi median bandwidth.
    println!("branch-space comparison (Alg. 1, WiFi (weak) indoor median):");
    let env = EvalEnv::phone();
    let base = zoo::vgg11_cifar();
    let ctx = NetworkContext::from_scenario(Scenario::WifiWeakIndoor, 2, seed);
    let bw = Mbps(ctx.median_bandwidth());
    let cfg = SearchConfig { episodes, seed, parallelism: par, ..SearchConfig::default() };
    let mut controllers = Controllers::new(&cfg);
    let rl = optimal_branch(&mut controllers, &base, &env, bw, &cfg, &MemoPool::new())
        .expect("valid inputs");
    let rnd = random_search(&base, &env, bw, episodes, seed, &MemoPool::new(), par)
        .expect("valid inputs");
    let eg = epsilon_greedy_search(&base, &env, bw, episodes, 0.3, seed, &MemoPool::new(), par)
        .expect("valid inputs");
    for (name, out) in [("RL (ours)", &rl), ("random", &rnd), ("e-greedy", &eg)] {
        let curve = out.best_so_far();
        println!(
            "  {:<10} best {:>7.2}  {}",
            name,
            curve.last().copied().unwrap_or(0.0),
            sparkline(&downsample(&curve, 60))
        );
    }
    println!();
    println!("paper (4G indoor static): RL 367.70 > e-greedy 358.90 ~ random 358.77");
    println!("(in our environment the static context's optimum is trivially reachable —");
    println!(" every method finds it; the weak-WiFi context separates the methods)");
}

//! Criterion microbenchmarks for the online path: Alg. 2 tree walking /
//! composition and memo-pool lookups — the operations on the inference
//! critical path.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

use cadmc_core::memo::MemoPool;
use cadmc_core::search::{Controllers, SearchConfig};
use cadmc_core::tree_search::tree_search;
use cadmc_core::{Candidate, EvalEnv, Evaluation, RewardSpec};
use cadmc_nn::zoo;

fn bench_compose(c: &mut Criterion) {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let cfg = SearchConfig {
        episodes: 10,
        ..SearchConfig::quick(1)
    };
    let mut controllers = Controllers::new(&cfg);
    let memo = MemoPool::new();
    let result = tree_search(
        &mut controllers,
        &base,
        &env,
        &[2.0, 10.0],
        3,
        &cfg,
        &memo,
        false,
        None,
    )
    .expect("valid inputs");
    let tree = result.tree;
    c.bench_function("tree_compose_alg2", |b| {
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let bw = if flip { 2.0 } else { 10.0 };
            black_box(tree.compose(|_| bw))
        })
    });
}

fn bench_memo(c: &mut Criterion) {
    let base = zoo::vgg11_cifar();
    let cand = Candidate::base_all_edge(&base);
    let pool = MemoPool::new();
    let spec = RewardSpec::default();
    pool.get_or_insert_with(&cand, 10.0, || Evaluation::new(0.92, 50.0, &spec));
    c.bench_function("memo_pool_hit", |b| {
        b.iter(|| {
            black_box(pool.get_or_insert_with(&cand, 10.0, || {
                Evaluation::new(0.92, 50.0, &spec)
            }))
        })
    });
}

criterion_group!(benches, bench_compose, bench_memo);
criterion_main!(benches);

//! Criterion microbenchmarks for the latency substrate: whole-model
//! estimation (Table 1 path) and the min-cut surgery planner.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

use cadmc_core::surgery;
use cadmc_core::EvalEnv;
use cadmc_latency::{DeviceProfile, Mbps};
use cadmc_nn::zoo::{self, ResNetDepth};

fn bench_model_latency(c: &mut Criterion) {
    let phone = DeviceProfile::phone();
    let vgg19 = zoo::vgg19_imagenet();
    let r152 = zoo::resnet_imagenet(ResNetDepth::D152);
    c.bench_function("latency_estimate_vgg19", |b| {
        b.iter(|| black_box(phone.model_latency_ms(&vgg19)))
    });
    c.bench_function("latency_estimate_resnet152", |b| {
        b.iter(|| black_box(phone.model_latency_ms(&r152)))
    });
}

fn bench_surgery_mincut(c: &mut Criterion) {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    c.bench_function("surgery_mincut_vgg11", |b| {
        b.iter(|| black_box(surgery::optimal_partition_mincut(&base, &env, Mbps(10.0))))
    });
    c.bench_function("surgery_scan_vgg11", |b| {
        b.iter(|| black_box(surgery::optimal_partition_scan(&base, &env, Mbps(10.0))))
    });
}

criterion_group!(benches, bench_model_latency, bench_surgery_mincut);
criterion_main!(benches);

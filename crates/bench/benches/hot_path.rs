//! Criterion microbenchmarks for the episode hot path: the four kernels
//! the searches spend their time in — delta sampling + memo-keyed
//! scoring (branch episodes), the O(1) latency kernel vs. its scalar
//! oracle, fused candidate composition, and memo probes (single and
//! batched). Companion to the `hot_path` harness binary, which writes
//! the machine-readable `results/BENCH_hot_path.json`.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

use cadmc_compress::CompressionPlan;
use cadmc_core::branch::optimal_branch;
use cadmc_core::memo::MemoPool;
use cadmc_core::search::{Controllers, SearchConfig};
use cadmc_core::{Candidate, EvalEnv, Partition};
use cadmc_latency::Mbps;
use cadmc_nn::zoo;

fn cut_candidates(base: &cadmc_nn::ModelSpec) -> Vec<Candidate> {
    (0..base.len())
        .map(|i| {
            Candidate::compose(
                base,
                Partition::AfterLayer(i),
                &CompressionPlan::identity(base.len()),
            )
            .expect("identity plans compose")
        })
        .collect()
}

fn bench_branch_episodes(c: &mut Criterion) {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let cfg = SearchConfig {
        episodes: 8,
        ..SearchConfig::quick(1)
    };
    c.bench_function("hot_path/branch_8_episodes_vgg11", |b| {
        b.iter(|| {
            let mut controllers = Controllers::new(&cfg);
            let memo = MemoPool::new();
            black_box(optimal_branch(
                &mut controllers,
                &base,
                &env,
                Mbps(10.0),
                &cfg,
                &memo,
            ))
        })
    });
}

fn bench_latency_kernel(c: &mut Criterion) {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let candidates = cut_candidates(&base);
    c.bench_function("hot_path/latency_kernel_all_cuts", |b| {
        b.iter(|| {
            for cand in &candidates {
                black_box(env.latency_ms(cand, Mbps(10.0)));
            }
        })
    });
    c.bench_function("hot_path/latency_scalar_oracle_all_cuts", |b| {
        b.iter(|| {
            for cand in &candidates {
                black_box(env.latency_ms_scalar(cand, Mbps(10.0)));
            }
        })
    });
}

fn bench_compose(c: &mut Criterion) {
    let base = zoo::vgg11_cifar();
    let plan = CompressionPlan::identity(base.len());
    c.bench_function("hot_path/compose_all_cuts", |b| {
        b.iter(|| {
            for cut in 0..base.len() {
                black_box(
                    Candidate::compose(&base, Partition::AfterLayer(cut), &plan)
                        .expect("identity plans compose"),
                );
            }
        })
    });
}

fn bench_memo_probes(c: &mut Criterion) {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let candidates = cut_candidates(&base);
    let memo = MemoPool::new();
    for cand in &candidates {
        memo.get_or_insert_with(cand, 10.0, || env.evaluate(&base, cand, Mbps(10.0)));
    }
    let keys: Vec<u64> = candidates
        .iter()
        .map(|cand| MemoPool::key(cand, 10.0))
        .collect();
    c.bench_function("hot_path/memo_single_probes", |b| {
        b.iter(|| {
            for &k in &keys {
                black_box(memo.get_key(k));
            }
        })
    });
    c.bench_function("hot_path/memo_batched_probe", |b| {
        b.iter(|| black_box(memo.probe_many(&keys)))
    });
}

criterion_group!(
    benches,
    bench_branch_episodes,
    bench_latency_kernel,
    bench_compose,
    bench_memo_probes
);
criterion_main!(benches);

//! Telemetry overhead microbenchmarks.
//!
//! The telemetry layer is compiled into every hot path but **off by
//! default**: each `span!`/`counter!`/`hist!` site degenerates to one
//! relaxed atomic load. This bench measures (a) that disabled per-site
//! cost directly, (b) a full `optimal_branch` search with telemetry
//! disabled — the production configuration — and (c) the same search
//! with a collector installed, to show what turning tracing on costs.
//!
//! The `telemetry_overhead` harness binary combines (a) and (b) into the
//! <2% disabled-overhead bound recorded in
//! `results/BENCH_telemetry_overhead.json`.

use criterion::{criterion_group, criterion_main, Criterion};

use cadmc_core::branch::optimal_branch;
use cadmc_core::memo::MemoPool;
use cadmc_core::search::{Controllers, SearchConfig};
use cadmc_core::EvalEnv;
use cadmc_latency::Mbps;
use cadmc_nn::zoo;
use cadmc_telemetry as telemetry;

fn bench_disabled_primitives(c: &mut Criterion) {
    assert!(!telemetry::enabled(), "bench requires the default off state");
    let mut group = c.benchmark_group("telemetry_disabled");
    group.bench_function("span_enter_drop", |b| {
        b.iter(|| {
            let span = telemetry::span!("bench.noop", x = 1u64);
            std::hint::black_box(&span);
        });
    });
    group.bench_function("counter_add", |b| {
        b.iter(|| telemetry::counter!("bench.counter", 1));
    });
    group.bench_function("hist_record", |b| {
        const BOUNDS: &[f64] = &[1.0, 2.0, 4.0];
        b.iter(|| telemetry::hist!("bench.hist", BOUNDS, 1.5));
    });
    group.finish();
}

fn run_search(seed: u64) {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let cfg = SearchConfig {
        episodes: 20,
        hidden: 8,
        seed,
        ..SearchConfig::default()
    };
    let mut controllers = Controllers::new(&cfg);
    let memo = MemoPool::new();
    let outcome = optimal_branch(&mut controllers, &base, &env, Mbps(8.0), &cfg, &memo)
        .expect("valid inputs");
    std::hint::black_box(outcome);
}

fn bench_search_disabled(c: &mut Criterion) {
    assert!(!telemetry::enabled(), "bench requires the default off state");
    let mut group = c.benchmark_group("optimal_branch");
    group.sample_size(10);
    group.bench_function("telemetry_disabled", |b| b.iter(|| run_search(7)));
    group.finish();
}

fn bench_search_enabled(c: &mut Criterion) {
    let (builder, sink) = telemetry::Telemetry::builder().with_memory();
    let handle = builder.install().expect("no other session in this bench");
    let mut group = c.benchmark_group("optimal_branch");
    group.sample_size(10);
    group.bench_function("telemetry_enabled", |b| b.iter(|| run_search(7)));
    group.finish();
    handle.finish().expect("memory sink cannot fail");
    std::hint::black_box(sink.take());
}

criterion_group!(
    benches,
    bench_disabled_primitives,
    bench_search_disabled,
    bench_search_enabled
);
criterion_main!(benches);

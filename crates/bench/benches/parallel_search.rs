//! Microbenchmarks for the parallel rollout engine: tree search across
//! worker counts (serial vs fanned-out episode batches) and the sharded
//! memo pool under thread contention (1 / 4 / 16 shards).
//!
//! Worker count never changes results (see the `parallel_determinism`
//! integration tests), so these benches measure pure scheduling cost. On
//! a single-core host the worker sweep degenerates to overhead
//! measurement; run on a multicore machine to see the fan-out win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cadmc_core::memo::MemoPool;
use cadmc_core::parallel::Parallelism;
use cadmc_core::search::{Controllers, SearchConfig};
use cadmc_core::tree_search::tree_search;
use cadmc_core::{Candidate, EvalEnv, NetworkContext};
use cadmc_netsim::Scenario;
use cadmc_nn::zoo;

fn search_cfg(workers: usize) -> SearchConfig {
    SearchConfig {
        episodes: 20,
        hidden: 8,
        seed: 7,
        parallelism: Parallelism::new(workers),
        ..SearchConfig::default()
    }
}

fn bench_tree_search_workers(c: &mut Criterion) {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let ctx = NetworkContext::from_scenario(Scenario::WifiWeakIndoor, 2, 7);
    let mut group = c.benchmark_group("tree_search_workers");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let cfg = search_cfg(workers);
                    let mut controllers = Controllers::new(&cfg);
                    let memo = MemoPool::new();
                    tree_search(
                        &mut controllers,
                        &base,
                        &env,
                        ctx.levels(),
                        3,
                        &cfg,
                        &memo,
                        false,
                        None,
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_memo_shards(c: &mut Criterion) {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    // A pool of distinct candidates to look up (pre-evaluated once so the
    // bench measures cache traffic, not evaluation).
    let candidates: Vec<Candidate> = (0..base.len())
        .map(|i| {
            Candidate::compose(
                &base,
                cadmc_core::Partition::AfterLayer(i),
                &cadmc_compress::CompressionPlan::identity(base.len()),
            )
            .unwrap()
        })
        .collect();
    let mut group = c.benchmark_group("memo_pool_shards");
    group.sample_size(10);
    for shards in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                let memo = MemoPool::with_shards(shards);
                for c in &candidates {
                    memo.get_or_insert_with(c, 10.0, || env.evaluate(&base, c, cadmc_latency::Mbps(10.0)));
                }
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for t in 0..4 {
                            let memo = &memo;
                            let candidates = &candidates;
                            scope.spawn(move || {
                                for i in 0..2_000usize {
                                    let c = &candidates[(i + t) % candidates.len()];
                                    criterion::black_box(memo.get(c, 10.0));
                                }
                            });
                        }
                    });
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tree_search_workers, bench_memo_shards);
criterion_main!(benches);

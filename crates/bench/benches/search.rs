//! Criterion microbenchmarks for the RL searches: episode throughput of
//! Alg. 1 (branch) and Alg. 3 (tree).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

use cadmc_core::branch::optimal_branch;
use cadmc_core::memo::MemoPool;
use cadmc_core::search::{Controllers, SearchConfig};
use cadmc_core::tree_search::tree_search;
use cadmc_core::EvalEnv;
use cadmc_latency::Mbps;
use cadmc_nn::zoo;

fn bench_branch_episode(c: &mut Criterion) {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let cfg = SearchConfig {
        episodes: 1,
        ..SearchConfig::quick(1)
    };
    c.bench_function("branch_search_episode_vgg11", |b| {
        b.iter(|| {
            let mut controllers = Controllers::new(&cfg);
            let memo = MemoPool::new();
            black_box(optimal_branch(
                &mut controllers,
                &base,
                &env,
                Mbps(10.0),
                &cfg,
                &memo,
            ))
        })
    });
}

fn bench_tree_episode(c: &mut Criterion) {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let cfg = SearchConfig {
        episodes: 1,
        ..SearchConfig::quick(1)
    };
    let levels = [2.0, 10.0];
    c.bench_function("tree_search_episode_vgg11", |b| {
        b.iter(|| {
            let mut controllers = Controllers::new(&cfg);
            let memo = MemoPool::new();
            black_box(tree_search(
                &mut controllers,
                &base,
                &env,
                &levels,
                3,
                &cfg,
                &memo,
                false,
                None,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_branch_episode, bench_tree_episode
}
criterion_main!(benches);

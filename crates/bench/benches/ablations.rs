//! Criterion timing ablations: memo pool on/off and controller width —
//! the cost knobs DESIGN.md calls out. (Quality ablations are printed by
//! the `ablation_quality` binary.)

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cadmc_core::branch::optimal_branch;
use cadmc_core::memo::MemoPool;
use cadmc_core::search::{Controllers, SearchConfig};
use cadmc_core::EvalEnv;
use cadmc_latency::Mbps;
use cadmc_nn::zoo;

fn bench_memo_effect(c: &mut Criterion) {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let mut group = c.benchmark_group("memo_ablation");
    group.sample_size(10);
    for shared in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("branch_30ep", if shared { "shared_memo" } else { "fresh_memo" }),
            &shared,
            |b, &shared| {
                let persistent = MemoPool::new();
                b.iter(|| {
                    let cfg = SearchConfig {
                        episodes: 30,
                        ..SearchConfig::quick(1)
                    };
                    let mut controllers = Controllers::new(&cfg);
                    let fresh = MemoPool::new();
                    let memo = if shared { &persistent } else { &fresh };
                    black_box(optimal_branch(
                        &mut controllers,
                        &base,
                        &env,
                        Mbps(10.0),
                        &cfg,
                        memo,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_hidden_width(c: &mut Criterion) {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let mut group = c.benchmark_group("controller_width");
    group.sample_size(10);
    for hidden in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(hidden), &hidden, |b, &hidden| {
            b.iter(|| {
                let cfg = SearchConfig {
                    episodes: 5,
                    hidden,
                    ..SearchConfig::quick(1)
                };
                let mut controllers = Controllers::new(&cfg);
                let memo = MemoPool::new();
                black_box(optimal_branch(
                    &mut controllers,
                    &base,
                    &env,
                    Mbps(10.0),
                    &cfg,
                    &memo,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_memo_effect, bench_hidden_width);
criterion_main!(benches);

//! Serving-observability aggregation microbenchmarks.
//!
//! The windowed aggregation path runs inside the serving hot loop, so
//! its two cost profiles both matter: the *disabled* profile (metrics
//! off — every `ObsState` call must degenerate to one branch) and the
//! *enabled* profile (the per-observation cost of the histogram and
//! SLO bookkeeping). The `metrics_overhead` harness binary turns the
//! disabled numbers into the <2% bound recorded in
//! `results/BENCH_metrics_overhead.json`.

use criterion::{criterion_group, criterion_main, Criterion};

use cadmc_serve::metrics::ObsState;
use cadmc_serve::ServerConfig;
use cadmc_telemetry::{WindowAggregator, WindowConfig};

fn disabled_obs() -> ObsState {
    ObsState::new(&ServerConfig {
        metrics_enabled: false,
        ..ServerConfig::default()
    })
}

fn bench_disabled_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_disabled");
    let mut obs = disabled_obs();
    group.bench_function("on_admit", |b| {
        b.iter(|| obs.on_admit(1.0, "tenant-0"));
    });
    group.bench_function("on_completion", |b| {
        b.iter(|| obs.on_completion(1.0, "tenant-0", "ok", None));
    });
    group.finish();
}

fn bench_enabled_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_enabled");
    let mut obs = ObsState::new(&ServerConfig::default());
    let mut t = 0.0f64;
    group.bench_function("on_completion", |b| {
        b.iter(|| {
            t += 0.1;
            obs.on_completion(t, "tenant-0", "ok", None)
        });
    });
    let mut agg = WindowAggregator::new(WindowConfig::default());
    let mut t2 = 0.0f64;
    group.bench_function("observe_latency", |b| {
        b.iter(|| {
            t2 += 0.1;
            agg.observe_latency(t2, "tenant-0", "ok", 42.0);
        });
    });
    group.bench_function("snapshot_render", |b| {
        b.iter(|| agg.snapshot().render());
    });
    group.finish();
}

fn bench_shard_merge(c: &mut Criterion) {
    let cfg = WindowConfig::default();
    let shards: Vec<WindowAggregator> = (0..8)
        .map(|w| {
            let mut a = WindowAggregator::new(cfg.clone());
            for i in 0..500u64 {
                let t = (i % 60) as f64 * 1_000.0;
                a.observe_latency(t, "tenant-0", "ok", (w * 7 + i as usize) as f64);
            }
            a
        })
        .collect();
    c.bench_function("metrics_merge_8_shards", |b| {
        b.iter(|| WindowAggregator::merged(&shards).expect("non-empty"));
    });
}

criterion_group!(
    benches,
    bench_disabled_obs,
    bench_enabled_aggregation,
    bench_shard_merge
);
criterion_main!(benches);

//! Reproduces the EXPERIMENTS.md "outage robustness" entry: the same
//! steady 60 Mbps scene, clean vs. canned cloud-link outages, for a
//! two-fork VGG11 tree whose child 0 is an edge-only branch.
//!
//! Run with: `cargo run --release -p cadmc-core --example fault_outage`

use cadmc_core::executor::{execute, ExecConfig, Policy};
use cadmc_core::tree::{ModelTree, TreeNode};
use cadmc_core::EvalEnv;
use cadmc_netsim::{BandwidthTrace, FaultSchedule};
use cadmc_nn::{zoo, ModelSpec};

fn two_fork_tree(base: &ModelSpec) -> ModelTree {
    let mut tree = ModelTree::new(base.clone(), 2, vec![1.0, 30.0]);
    let root = tree.push_node(
        None,
        TreeNode {
            level: 0,
            partition_abs: None,
            actions: vec![],
            feature: cadmc_compress::FeatureAction::IDENTITY,
            children: vec![],
            reward: 0.0,
        },
    );
    let r1 = tree.block_range(1);
    for partition_abs in [None, Some(r1.start)] {
        tree.push_node(
            Some(root),
            TreeNode {
                level: 1,
                partition_abs,
                actions: vec![],
                feature: cadmc_compress::FeatureAction::IDENTITY,
                children: vec![],
                reward: 0.0,
            },
        );
    }
    tree
}

fn main() {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let tree = two_fork_tree(&base);
    let trace = BandwidthTrace::new(100.0, vec![60.0; 600]);
    for (label, faults) in [
        ("clean", FaultSchedule::none()),
        ("canned outage", FaultSchedule::canned_outage()),
        ("harsh mix", FaultSchedule::from_preset("harsh").expect("known preset")),
    ] {
        let cfg = ExecConfig::emulation(200, 13).with_faults(faults);
        let r = execute(&env, &base, &Policy::Tree(&tree), &trace, &cfg);
        println!(
            "{label:>13}: mean {:7.2} ms | p95 {:7.2} ms | accuracy {:.2} % | \
             ok {} | retried {} | degraded {} | failed {}",
            r.mean_latency_ms(),
            r.p95_latency_ms(),
            100.0 * r.mean_accuracy(),
            r.outcomes.len() - r.retried_count() - r.degraded_count() - r.failed_count(),
            r.retried_count(),
            r.degraded_count(),
            r.failed_count(),
        );
    }
}

//! The Markov Decision Process formalization of model transformation
//! (§V-A).
//!
//! The paper models the search as an MDP `M = (S, A, P, r, γ)`:
//!
//! * **State** — the DNN with its current partition/compression
//!   configuration, encoded as the sequence of Eq. 1 layer strings;
//! * **Action** — either a *partition* (split the model between edge and
//!   cloud) or a *compression* (rewrite one layer with a Table 2
//!   technique);
//! * **Transition** — deterministic: every action maps one state to
//!   exactly one next state;
//! * **Reward** — only terminal states are rewarded (Eq. 7), and
//!   `γ = 1` so every step of an episode shares the terminal reward.
//!
//! The search code in [`crate::branch`] / [`crate::tree_search`] operates
//! directly on controllers for efficiency; this module provides the
//! faithful explicit formulation, used by tests and by anyone wanting to
//! plug in a different search strategy.

use std::sync::{Arc, OnceLock};

use cadmc_compress::{CompressError, FeatureAction, Technique};
use cadmc_nn::ModelSpec;

use crate::candidate::Partition;

/// An MDP state: the (possibly already transformed) model plus its
/// placement configuration.
///
/// Represented as a *delta* over the immutable base spec: the shared
/// `Arc` base, the ordered compression steps taken so far, and the
/// partition decision. A transition therefore allocates O(changed
/// layers) — a partition step shares every `Arc` and clones nothing —
/// instead of cloning the whole model. The materialized model is cached
/// per state (and shared by clones) so `model()` stays cheap.
#[derive(Debug, Clone)]
pub struct State {
    /// The untransformed base model, shared by every state of an episode.
    base: Arc<ModelSpec>,
    /// Compression steps applied so far, in order. Each `(layer,
    /// technique)` indexes the model *as it stood* when the step was
    /// taken (techniques can change the layer count).
    steps: Vec<(usize, Technique)>,
    /// The partition decision, once taken.
    partition: Option<Partition>,
    /// The feature-compression decision for the cut tensor, once taken.
    /// Only legal after a transfer-bearing partition.
    feature: Option<FeatureAction>,
    /// Materialized model for `steps` (set eagerly by [`transition`];
    /// shared across clones). Empty-step states read `base` directly.
    cache: Arc<OnceLock<ModelSpec>>,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.partition == other.partition
            && self.feature == other.feature
            && self.model() == other.model()
    }
}

impl State {
    /// The initial state: an unpartitioned, uncompressed base model.
    pub fn initial(base: impl Into<Arc<ModelSpec>>) -> Self {
        Self {
            base: base.into(),
            steps: Vec::new(),
            partition: None,
            feature: None,
            cache: Arc::new(OnceLock::new()),
        }
    }

    /// The current model structure (materialized lazily from the delta).
    pub fn model(&self) -> &ModelSpec {
        if self.steps.is_empty() {
            &self.base
        } else {
            self.cache.get_or_init(|| self.replay())
        }
    }

    /// The partition decision, once taken.
    pub fn partition(&self) -> Option<Partition> {
        self.partition
    }

    /// The feature-compression decision for the cut tensor, once taken.
    pub fn feature(&self) -> Option<FeatureAction> {
        self.feature
    }

    /// The compression steps taken so far (the state's action delta).
    pub fn steps(&self) -> &[(usize, Technique)] {
        &self.steps
    }

    /// Re-applies `steps` to the base. Only reached if a state with
    /// steps was built without its cache (transitions fill it eagerly).
    fn replay(&self) -> ModelSpec {
        let mut m = ModelSpec::clone(&self.base);
        for &(layer, technique) in &self.steps {
            m = technique
                .apply(&m, layer)
                .expect("recorded steps replay deterministically");
        }
        m
    }

    /// The paper's string encoding of the state (Eq. 1 per layer).
    pub fn encode(&self) -> String {
        let mut placement = match self.partition {
            None => "unplaced".to_string(),
            Some(p) => p.to_string(),
        };
        if let Some(f) = self.feature {
            placement.push_str(&format!(" feat:{}", f.code()));
        }
        format!("{} [{placement}]", self.model().encode())
    }

    /// Whether both decision stages are complete (partition taken).
    pub fn is_terminal(&self) -> bool {
        self.partition.is_some()
    }
}

/// An MDP action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Fix the edge/cloud split.
    Partition(Partition),
    /// Rewrite layer `layer` with `technique`.
    Compress {
        /// Target layer index in the current state's model.
        layer: usize,
        /// The Table 2 technique to apply.
        technique: Technique,
    },
    /// Compress the cut tensor with a bottleneck × quantization pair.
    /// Only legal after a transfer-bearing partition (never all-edge),
    /// and at most once per episode.
    Feature(FeatureAction),
}

/// Errors from applying an action.
#[derive(Debug, Clone, PartialEq)]
pub enum TransitionError {
    /// The compression rewrite failed.
    Compress(CompressError),
    /// A second partition was attempted.
    AlreadyPartitioned,
    /// Compression was attempted at or beyond the cut (the paper never
    /// compresses the cloud part).
    BeyondCut {
        /// The offending layer.
        layer: usize,
    },
    /// A feature action was attempted before the partition decision, or
    /// on an all-edge placement where no cut tensor exists.
    FeatureWithoutTransfer,
    /// A second feature action was attempted.
    FeatureAlreadySet,
}

impl std::fmt::Display for TransitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransitionError::Compress(e) => write!(f, "compression failed: {e}"),
            TransitionError::AlreadyPartitioned => write!(f, "state is already partitioned"),
            TransitionError::BeyondCut { layer } => {
                write!(f, "layer {layer} lies in the cloud part and cannot be compressed")
            }
            TransitionError::FeatureWithoutTransfer => write!(
                f,
                "feature compression needs a transfer-bearing partition; the state is \
                 unpartitioned or all-edge"
            ),
            TransitionError::FeatureAlreadySet => {
                write!(f, "the cut tensor's feature action was already decided")
            }
        }
    }
}

impl std::error::Error for TransitionError {}

impl From<CompressError> for TransitionError {
    fn from(e: CompressError) -> Self {
        TransitionError::Compress(e)
    }
}

/// The deterministic transition function `P(s, a) → s'`.
///
/// # Errors
///
/// Returns a [`TransitionError`] when the action is invalid in `state`;
/// valid actions always succeed (the transition probability is 1, per
/// §V-A "all the probabilities are deterministic").
pub fn transition(state: &State, action: Action) -> Result<State, TransitionError> {
    match action {
        Action::Partition(p) => {
            if state.partition.is_some() {
                return Err(TransitionError::AlreadyPartitioned);
            }
            // O(1): every Arc is shared with the parent; the steps vec is
            // the only per-state allocation.
            Ok(State {
                base: Arc::clone(&state.base),
                steps: state.steps.clone(),
                partition: Some(p),
                feature: state.feature,
                cache: Arc::clone(&state.cache),
            })
        }
        Action::Feature(f) => {
            let transfers = match state.partition {
                None | Some(Partition::AllEdge) => false,
                Some(Partition::AllCloud) | Some(Partition::AfterLayer(_)) => true,
            };
            if !transfers {
                return Err(TransitionError::FeatureWithoutTransfer);
            }
            if state.feature.is_some() {
                return Err(TransitionError::FeatureAlreadySet);
            }
            // O(1): the cut-tensor overlay touches no layer, so every Arc
            // is shared with the parent.
            Ok(State {
                base: Arc::clone(&state.base),
                steps: state.steps.clone(),
                partition: state.partition,
                feature: Some(f),
                cache: Arc::clone(&state.cache),
            })
        }
        Action::Compress { layer, technique } => {
            if let Some(p) = state.partition {
                let edge_len = match p {
                    Partition::AllEdge => state.model().len(),
                    Partition::AllCloud => 0,
                    Partition::AfterLayer(i) => i + 1,
                };
                if layer >= edge_len {
                    return Err(TransitionError::BeyondCut { layer });
                }
            }
            // One rewrite on the parent's materialized model; the result
            // pre-fills the child's cache so it never replays the chain.
            let model = technique.apply(state.model(), layer)?;
            let mut steps = Vec::with_capacity(state.steps.len() + 1);
            steps.extend_from_slice(&state.steps);
            steps.push((layer, technique));
            Ok(State {
                base: Arc::clone(&state.base),
                steps,
                partition: state.partition,
                feature: state.feature,
                cache: Arc::new(OnceLock::from(model)),
            })
        }
    }
}

/// Enumerates the valid actions in `state` — the (large) action space the
/// controllers sample from.
pub fn valid_actions(state: &State) -> Vec<Action> {
    let mut out = Vec::new();
    let model = state.model();
    if state.partition.is_none() {
        out.push(Action::Partition(Partition::AllCloud));
        out.extend((0..model.len() - 1).map(|i| Action::Partition(Partition::AfterLayer(i))));
        out.push(Action::Partition(Partition::AllEdge));
    }
    let edge_len = match state.partition {
        None | Some(Partition::AllEdge) => model.len(),
        Some(Partition::AllCloud) => 0,
        Some(Partition::AfterLayer(i)) => i + 1,
    };
    for layer in 0..edge_len {
        for technique in Technique::applicable_at(model, layer) {
            out.push(Action::Compress { layer, technique });
        }
    }
    // The cut-tensor knobs: available exactly once, after a
    // transfer-bearing partition (identity is the default, not an action).
    let transfers = matches!(
        state.partition,
        Some(Partition::AllCloud) | Some(Partition::AfterLayer(_))
    );
    if transfers && state.feature.is_none() {
        out.extend(
            FeatureAction::ALL
                .iter()
                .filter(|f| !f.is_identity())
                .map(|&f| Action::Feature(f)),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;

    #[test]
    fn transitions_are_deterministic() {
        let s = State::initial(zoo::vgg11_cifar());
        let a = Action::Compress {
            layer: 2,
            technique: Technique::C1MobileNet,
        };
        assert_eq!(transition(&s, a).unwrap(), transition(&s, a).unwrap());
    }

    #[test]
    fn double_partition_rejected() {
        let s = State::initial(zoo::vgg11_cifar());
        let s2 = transition(&s, Action::Partition(Partition::AllEdge)).unwrap();
        assert!(s2.is_terminal());
        assert_eq!(
            transition(&s2, Action::Partition(Partition::AllCloud)),
            Err(TransitionError::AlreadyPartitioned)
        );
    }

    #[test]
    fn compression_beyond_cut_rejected() {
        let s = State::initial(zoo::vgg11_cifar());
        let s2 = transition(&s, Action::Partition(Partition::AfterLayer(1))).unwrap();
        let err = transition(
            &s2,
            Action::Compress {
                layer: 5,
                technique: Technique::C1MobileNet,
            },
        );
        assert_eq!(err, Err(TransitionError::BeyondCut { layer: 5 }));
    }

    #[test]
    fn valid_actions_shrink_after_partition() {
        let s = State::initial(zoo::vgg11_cifar());
        let before = valid_actions(&s).len();
        let s2 = transition(&s, Action::Partition(Partition::AfterLayer(2))).unwrap();
        let after = valid_actions(&s2).len();
        assert!(after < before);
        // All remaining actions are edge-side compressions or cut-tensor
        // feature knobs.
        for a in valid_actions(&s2) {
            match a {
                Action::Compress { layer, .. } => assert!(layer <= 2),
                Action::Feature(f) => assert!(!f.is_identity()),
                Action::Partition(_) => panic!("partition already taken"),
            }
        }
    }

    #[test]
    fn feature_requires_transfer_and_is_single_shot() {
        let s = State::initial(zoo::vgg11_cifar());
        let feat = Action::Feature(FeatureAction::from_index(4));
        // Before any partition: no cut tensor exists yet.
        assert_eq!(
            transition(&s, feat),
            Err(TransitionError::FeatureWithoutTransfer)
        );
        // All-edge: still no transfer.
        let edge = transition(&s, Action::Partition(Partition::AllEdge)).unwrap();
        assert_eq!(
            transition(&edge, feat),
            Err(TransitionError::FeatureWithoutTransfer)
        );
        assert!(valid_actions(&edge)
            .iter()
            .all(|a| !matches!(a, Action::Feature(_))));
        // A transfer-bearing cut accepts exactly one feature decision.
        let cut = transition(&s, Action::Partition(Partition::AfterLayer(1))).unwrap();
        let n_feature = valid_actions(&cut)
            .iter()
            .filter(|a| matches!(a, Action::Feature(_)))
            .count();
        assert_eq!(n_feature, FeatureAction::COUNT - 1);
        let decided = transition(&cut, feat).unwrap();
        assert_eq!(decided.feature(), Some(FeatureAction::from_index(4)));
        assert_eq!(
            transition(&decided, feat),
            Err(TransitionError::FeatureAlreadySet)
        );
        assert!(valid_actions(&decided)
            .iter()
            .all(|a| !matches!(a, Action::Feature(_))));
        // The overlay shares the model allocation (O(1) transition).
        assert!(std::ptr::eq(cut.model(), decided.model()));
        assert!(decided.encode().contains("feat:"));
    }

    #[test]
    fn encode_includes_placement() {
        let s = State::initial(zoo::tiny_cnn());
        assert!(s.encode().contains("unplaced"));
        let s2 = transition(&s, Action::Partition(Partition::AllCloud)).unwrap();
        assert!(s2.encode().contains("all-cloud"));
    }

    #[test]
    fn partition_transition_shares_the_model_allocation() {
        let s = State::initial(zoo::vgg11_cifar());
        let s2 = transition(&s, Action::Partition(Partition::AllEdge)).unwrap();
        // The delta representation makes partitioning O(1): both states
        // read the same base allocation.
        assert!(std::ptr::eq(s.model(), s2.model()));
    }

    #[test]
    fn compress_transition_materializes_one_rewrite() {
        let s = State::initial(zoo::vgg11_cifar());
        let a = Action::Compress {
            layer: 2,
            technique: Technique::C1MobileNet,
        };
        let s2 = transition(&s, a).unwrap();
        assert_eq!(s2.steps(), &[(2, Technique::C1MobileNet)]);
        assert_eq!(
            s2.model(),
            &Technique::C1MobileNet.apply(s.model(), 2).unwrap()
        );
        // A later partition shares the materialized model allocation.
        let s3 = transition(&s2, Action::Partition(Partition::AllEdge)).unwrap();
        assert!(std::ptr::eq(s2.model(), s3.model()));
    }

    #[test]
    fn every_valid_action_transitions_successfully() {
        let s = State::initial(zoo::tiny_cnn());
        for a in valid_actions(&s) {
            transition(&s, a).unwrap_or_else(|e| panic!("action {a:?} failed: {e}"));
        }
    }
}

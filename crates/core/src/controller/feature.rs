//! The feature-compression controller: the third policy head of the
//! enlarged action space.
//!
//! Unlike the partition and compression controllers, this policy decides a
//! single categorical action — which [`FeatureAction`] (bottleneck ×
//! quantization pair) to apply to the cut tensor — so it needs no
//! recurrence: a linear head over a three-feature context embedding
//! (bandwidth, relative cut position, raw cut-tensor size) suffices.
//! Sampling goes through the same [`sample_masked`]/[`EpisodeTape`]
//! machinery as the other controllers, so REINFORCE trains all three
//! policies jointly from one episode reward.
//!
//! The controller is only instantiated when feature actions are enabled
//! (`SearchConfig::feature_actions`): its parameters never register and it
//! never draws from the episode RNG otherwise, preserving the bit-exact
//! feature-disabled determinism contract.

use cadmc_autodiff::{Matrix, ParamId, ParamSet, VarId};
use cadmc_compress::FeatureAction;
use rand::rngs::StdRng;

use super::policy::{sample_masked, EpisodeTape};

/// Width of the feature-policy context embedding.
pub const FEATURE_EMBED_DIM: usize = 3;

/// Context embedding for the feature decision at a prospective cut:
/// log-compressed bandwidth (like [`super::embed_layer`]'s last feature),
/// the cut's relative depth, and the log-compressed raw cut-tensor bytes.
fn embed_cut(bandwidth_mbps: f64, edge_len: usize, base_len: usize, raw_bytes: u64) -> Matrix {
    let mut v = vec![0.0f32; FEATURE_EMBED_DIM];
    v[0] = ((bandwidth_mbps as f32) + 1.0).ln() / (1000.0f32).ln();
    v[1] = if base_len == 0 {
        0.0
    } else {
        edge_len as f32 / base_len as f32
    };
    v[2] = ((raw_bytes as f32) + 1.0).ln() / (1e9f32).ln();
    Matrix::from_vec(1, FEATURE_EMBED_DIM, v)
}

/// Linear feature-compression policy π_f.
#[derive(Debug, Clone)]
pub struct FeatureController {
    head_w: ParamId,
    head_b: ParamId,
}

impl FeatureController {
    /// Registers the controller's parameters under `prefix`.
    pub fn new(params: &mut ParamSet, prefix: &str, seed: u64) -> Self {
        let head_w = params.insert(
            format!("{prefix}.head.w"),
            Matrix::seeded_xavier(FEATURE_EMBED_DIM, FeatureAction::COUNT, seed ^ 0xfe),
        );
        let head_b = params.insert(
            format!("{prefix}.head.b"),
            Matrix::zeros(1, FeatureAction::COUNT),
        );
        Self { head_w, head_b }
    }

    /// Builds the `1 × FeatureAction::COUNT` logits row for a cut.
    fn logits(
        &self,
        tape: &mut EpisodeTape,
        params: &ParamSet,
        bandwidth: f64,
        edge_len: usize,
        base_len: usize,
        raw_bytes: u64,
    ) -> VarId {
        let x = tape
            .graph
            .constant(embed_cut(bandwidth, edge_len, base_len, raw_bytes));
        let w = tape.graph.param(params, self.head_w);
        let b = tape.graph.param(params, self.head_b);
        let lin = tape.graph.matmul(x, w);
        tape.graph.add_broadcast_row(lin, b)
    }

    /// Samples a feature action for a cut, recording its log-probability
    /// on the tape (one extra categorical decision per episode).
    pub fn sample(
        &self,
        tape: &mut EpisodeTape,
        params: &ParamSet,
        bandwidth: f64,
        edge_len: usize,
        base_len: usize,
        raw_bytes: u64,
        rng: &mut StdRng,
    ) -> FeatureAction {
        let l = self.logits(tape, params, bandwidth, edge_len, base_len, raw_bytes);
        let allowed = [true; FeatureAction::COUNT];
        let (pick, _) = sample_masked(tape, l, &allowed, rng);
        FeatureAction::from_index(pick)
    }

    /// Greedy (argmax) feature action — used at deployment time.
    pub fn best(
        &self,
        params: &ParamSet,
        bandwidth: f64,
        edge_len: usize,
        base_len: usize,
        raw_bytes: u64,
    ) -> FeatureAction {
        let mut tape = EpisodeTape::new();
        let l = self.logits(&mut tape, params, bandwidth, edge_len, base_len, raw_bytes);
        let row = tape.graph.value(l);
        let mut best = 0;
        for i in 1..FeatureAction::COUNT {
            if row.at(0, i) > row.at(0, best) {
                best = i;
            }
        }
        FeatureAction::from_index(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_cover_the_action_space() {
        let mut params = ParamSet::new();
        let ctl = FeatureController::new(&mut params, "f", 1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let mut tape = EpisodeTape::new();
            let a = ctl.sample(&mut tape, &params, 2.0, 3, 11, 65_536, &mut rng);
            seen.insert(a.index());
            assert_eq!(tape.len(), 1, "exactly one decision recorded");
        }
        assert!(
            seen.len() >= 5,
            "untrained policy should explore broadly, saw {}",
            seen.len()
        );
    }

    #[test]
    fn best_is_deterministic() {
        let mut params = ParamSet::new();
        let ctl = FeatureController::new(&mut params, "f", 2);
        let a = ctl.best(&params, 2.0, 3, 11, 65_536);
        let b = ctl.best(&params, 2.0, 3, 11, 65_536);
        assert_eq!(a, b);
    }

    #[test]
    fn context_changes_logits() {
        let a = embed_cut(1.0, 1, 11, 1 << 20);
        let b = embed_cut(100.0, 9, 11, 1 << 10);
        assert_ne!(a, b);
        for &v in a.data() {
            assert!((0.0..=1.5).contains(&v));
        }
    }
}

//! Layer embeddings for the controllers.
//!
//! The controllers read each DNN layer as its Eq. 1 hyper-parameter tuple
//! `(l, k, s, p, n)` (Fig. 6 shows strings like `Conv_layer,3,1,1,64`
//! feeding the LSTMs). We embed the tuple as a one-hot layer kind plus
//! normalized numeric features, and append the bandwidth context the
//! controller is conditioning on.

use cadmc_autodiff::Matrix;
use cadmc_nn::{LayerSpec, ModelSpec};

/// Width of a layer embedding vector.
pub const EMBED_DIM: usize = LayerSpec::NUM_KINDS + 6;

/// Embeds layer `idx` of `spec` for a controller conditioned on
/// `bandwidth_mbps`.
///
/// # Panics
///
/// Panics if `idx` is out of range.
pub fn embed_layer(spec: &ModelSpec, idx: usize, bandwidth_mbps: f64) -> Matrix {
    assert!(idx < spec.len(), "layer index out of range");
    let layer = &spec.layers()[idx];
    let (_, k, s, p, n) = layer.hyperparams();
    let mut v = vec![0.0f32; EMBED_DIM];
    v[layer.kind_id()] = 1.0;
    let base = LayerSpec::NUM_KINDS;
    v[base] = k as f32 / 11.0;
    v[base + 1] = s as f32 / 4.0;
    v[base + 2] = p as f32 / 3.0;
    v[base + 3] = ((n as f32) + 1.0).ln() / (4096.0f32).ln();
    let maccs = spec.layer_maccs(idx) as f32;
    v[base + 4] = (maccs + 1.0).ln() / (1e9f32).ln();
    v[base + 5] = ((bandwidth_mbps as f32) + 1.0).ln() / (1000.0f32).ln();
    Matrix::from_vec(1, EMBED_DIM, v)
}

/// Embeds every layer of `spec` in order.
pub fn embed_model(spec: &ModelSpec, bandwidth_mbps: f64) -> Vec<Matrix> {
    (0..spec.len())
        .map(|i| embed_layer(spec, i, bandwidth_mbps))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;

    #[test]
    fn embedding_has_fixed_width() {
        let base = zoo::vgg11_cifar();
        for i in 0..base.len() {
            assert_eq!(embed_layer(&base, i, 10.0).shape(), (1, EMBED_DIM));
        }
    }

    #[test]
    fn kind_onehot_is_exclusive() {
        let base = zoo::vgg11_cifar();
        let e = embed_layer(&base, 0, 10.0);
        let ones: usize = e.data()[..LayerSpec::NUM_KINDS]
            .iter()
            .filter(|&&v| v == 1.0)
            .count();
        assert_eq!(ones, 1);
    }

    #[test]
    fn bandwidth_changes_embedding() {
        let base = zoo::vgg11_cifar();
        let a = embed_layer(&base, 0, 1.0);
        let b = embed_layer(&base, 0, 100.0);
        assert_ne!(a, b);
    }

    #[test]
    fn features_are_bounded() {
        let base = zoo::vgg19_imagenet();
        for i in 0..base.len() {
            let e = embed_layer(&base, i, 500.0);
            for &v in e.data() {
                assert!((0.0..=1.5).contains(&v), "feature {v} out of band");
            }
        }
    }
}

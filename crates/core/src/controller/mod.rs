//! The reinforcement-learning controllers of the decision engine (Fig. 6):
//! a bidirectional-LSTM **partition controller**, a bidirectional-LSTM
//! **compression controller**, and the Monte-Carlo policy-gradient
//! machinery that trains them (§VI-C/D).

mod compression;
mod embed;
mod feature;
mod learning_tests;
mod partition;
mod policy;

pub use compression::{CompressionController, HeadState, NONE_OPTION, NUM_OPTIONS};
pub use embed::{embed_layer, embed_model, EMBED_DIM};
pub use feature::{FeatureController, FEATURE_EMBED_DIM};
pub use partition::{PartitionAction, PartitionController};
pub use policy::{sample_masked, EpisodeTape, Reinforce};

//! The compression search controller (lower half of the paper's Fig. 6).
//!
//! A bidirectional LSTM reads the edge model's layer sequence; a shared
//! linear head maps each position's hidden state to logits over the seven
//! Table 2 techniques plus "no compression". Inapplicable techniques are
//! masked out per layer, and mutually-conflicting FC-head rewrites (F3
//! versus other F-techniques) are excluded during sequential sampling so
//! every sampled plan is applicable by construction.

use cadmc_autodiff::{BiLstm, Matrix, ParamId, ParamSet, VarId};
use cadmc_compress::{CompressionPlan, Technique};
use cadmc_nn::ModelSpec;
use rand::rngs::StdRng;

use super::embed::{embed_model, EMBED_DIM};
use super::policy::{sample_masked, EpisodeTape};

/// Number of options per layer: the seven techniques plus "none".
pub const NUM_OPTIONS: usize = Technique::ALL.len() + 1;

/// Index of the "no compression" option.
pub const NONE_OPTION: usize = Technique::ALL.len();

/// Tracks which FC-head rewrites were already taken earlier in the model
/// (by this block or an ancestor block along a tree path), so conflicting
/// actions can be masked: F3 rewrites the whole FC head and therefore
/// conflicts with any other F-technique.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeadState {
    /// An F3 (GAP) rewrite was already chosen.
    pub f3_used: bool,
    /// An F1/F2 (SVD/KSVD) rewrite was already chosen.
    pub f_used: bool,
}

/// LSTM compression policy.
#[derive(Debug, Clone)]
pub struct CompressionController {
    bilstm: BiLstm,
    head_w: ParamId,
    head_b: ParamId,
}

impl CompressionController {
    /// Registers the controller's parameters under `prefix`.
    pub fn new(params: &mut ParamSet, prefix: &str, hidden: usize, seed: u64) -> Self {
        let bilstm = BiLstm::new(params, &format!("{prefix}.lstm"), EMBED_DIM, hidden, seed);
        let head_w = params.insert(
            format!("{prefix}.head.w"),
            Matrix::seeded_xavier(2 * hidden, NUM_OPTIONS, seed ^ 0xc1),
        );
        let head_b = params.insert(format!("{prefix}.head.b"), Matrix::zeros(1, NUM_OPTIONS));
        Self {
            bilstm,
            head_w,
            head_b,
        }
    }

    /// Builds per-layer logits (`spec.len()` rows of `1 × NUM_OPTIONS`).
    pub fn layer_logits(
        &self,
        tape: &mut EpisodeTape,
        params: &ParamSet,
        spec: &ModelSpec,
        bandwidth: f64,
    ) -> Vec<VarId> {
        let inputs: Vec<VarId> = embed_model(spec, bandwidth)
            .into_iter()
            .map(|m| tape.graph.constant(m))
            .collect();
        let hs = self.bilstm.run(&mut tape.graph, params, &inputs);
        let w = tape.graph.param(params, self.head_w);
        let b = tape.graph.param(params, self.head_b);
        hs.into_iter()
            .map(|h| {
                let lin = tape.graph.matmul(h, w);
                tape.graph.add_broadcast_row(lin, b)
            })
            .collect()
    }

    /// Samples a per-layer compression plan for `spec` (typically the edge
    /// slice). The returned plan is applicable to `spec` by construction.
    pub fn sample(
        &self,
        tape: &mut EpisodeTape,
        params: &ParamSet,
        spec: &ModelSpec,
        bandwidth: f64,
        rng: &mut StdRng,
    ) -> CompressionPlan {
        let mut state = HeadState::default();
        self.sample_with_state(tape, params, spec, bandwidth, rng, &mut state)
    }

    /// Like [`sample`], but threading the FC-head conflict state across
    /// calls — the model-tree search samples each block separately along a
    /// path, and an F3 chosen in an ancestor block must mask F-techniques
    /// in descendants.
    ///
    /// [`sample`]: CompressionController::sample
    pub fn sample_with_state(
        &self,
        tape: &mut EpisodeTape,
        params: &ParamSet,
        spec: &ModelSpec,
        bandwidth: f64,
        rng: &mut StdRng,
        state: &mut HeadState,
    ) -> CompressionPlan {
        let logits = self.layer_logits(tape, params, spec, bandwidth);
        let mut plan = CompressionPlan::identity(spec.len());
        let mut f3_used = state.f3_used;
        let mut f_used = state.f_used;
        for (i, l) in logits.into_iter().enumerate() {
            let mut allowed = [false; NUM_OPTIONS];
            allowed[NONE_OPTION] = true;
            for t in Technique::applicable_at(spec, i) {
                let conflict = match t {
                    // F3 rewrites the whole FC head: at most one, and not
                    // after another F-technique already targeted the head.
                    Technique::F3Gap => f3_used || f_used,
                    // F1/F2 target FC layers that an F3 would remove.
                    Technique::F1Svd | Technique::F2Ksvd => f3_used,
                    _ => false,
                };
                if !conflict {
                    allowed[t.index()] = true;
                }
            }
            let (pick, _) = sample_masked(tape, l, &allowed, rng);
            if pick != NONE_OPTION {
                let t = Technique::ALL[pick];
                plan.set(i, Some(t));
                match t {
                    Technique::F3Gap => f3_used = true,
                    Technique::F1Svd | Technique::F2Ksvd => f_used = true,
                    _ => {}
                }
            }
        }
        debug_assert_eq!(
            plan,
            plan.sanitized(spec),
            "sampled plan should be applicable by construction"
        );
        state.f3_used = f3_used;
        state.f_used = f_used;
        plan
    }

    /// Greedy (argmax) plan — used at deployment time.
    pub fn best(&self, params: &ParamSet, spec: &ModelSpec, bandwidth: f64) -> CompressionPlan {
        let mut tape = EpisodeTape::new();
        let logits = self.layer_logits(&mut tape, params, spec, bandwidth);
        let mut plan = CompressionPlan::identity(spec.len());
        let mut f3_used = false;
        let mut f_used = false;
        for (i, l) in logits.into_iter().enumerate() {
            let row = tape.graph.value(l);
            let mut best_opt = NONE_OPTION;
            let mut best_score = row.at(0, NONE_OPTION);
            for t in Technique::applicable_at(spec, i) {
                let conflict = match t {
                    Technique::F3Gap => f3_used || f_used,
                    Technique::F1Svd | Technique::F2Ksvd => f3_used,
                    _ => false,
                };
                if !conflict && row.at(0, t.index()) > best_score {
                    best_score = row.at(0, t.index());
                    best_opt = t.index();
                }
            }
            if best_opt != NONE_OPTION {
                let t = Technique::ALL[best_opt];
                plan.set(i, Some(t));
                match t {
                    Technique::F3Gap => f3_used = true,
                    Technique::F1Svd | Technique::F2Ksvd => f_used = true,
                    _ => {}
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;
    use rand::SeedableRng;

    #[test]
    fn sampled_plans_always_apply() {
        let mut params = ParamSet::new();
        let ctl = CompressionController::new(&mut params, "c", 8, 1);
        let base = zoo::vgg11_cifar();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let mut tape = EpisodeTape::new();
            let plan = ctl.sample(&mut tape, &params, &base, 10.0, &mut rng);
            assert!(
                plan.apply(&base).is_ok(),
                "sampled plan {} failed to apply",
                plan.summary()
            );
        }
    }

    #[test]
    fn records_one_logp_per_layer() {
        let mut params = ParamSet::new();
        let ctl = CompressionController::new(&mut params, "c", 8, 2);
        let base = zoo::tiny_cnn();
        let mut rng = StdRng::seed_from_u64(2);
        let mut tape = EpisodeTape::new();
        let _ = ctl.sample(&mut tape, &params, &base, 10.0, &mut rng);
        assert_eq!(tape.len(), base.len());
    }

    #[test]
    fn untrained_policy_explores_compression() {
        let mut params = ParamSet::new();
        let ctl = CompressionController::new(&mut params, "c", 8, 3);
        let base = zoo::vgg11_cifar();
        let mut rng = StdRng::seed_from_u64(3);
        let mut compressed_any = false;
        for _ in 0..10 {
            let mut tape = EpisodeTape::new();
            let plan = ctl.sample(&mut tape, &params, &base, 10.0, &mut rng);
            compressed_any |= !plan.is_identity();
        }
        assert!(compressed_any);
    }

    #[test]
    fn at_most_one_f3_per_plan() {
        let mut params = ParamSet::new();
        let ctl = CompressionController::new(&mut params, "c", 8, 4);
        let base = zoo::vgg11_cifar();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..40 {
            let mut tape = EpisodeTape::new();
            let plan = ctl.sample(&mut tape, &params, &base, 10.0, &mut rng);
            let f3_count = plan
                .actions()
                .iter()
                .filter(|a| **a == Some(Technique::F3Gap))
                .count();
            assert!(f3_count <= 1);
        }
    }

    #[test]
    fn best_plan_applies() {
        let mut params = ParamSet::new();
        let ctl = CompressionController::new(&mut params, "c", 8, 5);
        let base = zoo::vgg11_cifar();
        let plan = ctl.best(&params, &base, 10.0);
        assert!(plan.apply(&base).is_ok());
    }
}

//! Shared policy machinery: episode tapes, masked categorical sampling and
//! the Monte-Carlo policy-gradient (REINFORCE) update with an
//! exponential-moving-average baseline (§VI-D, Eqs. 8–10).

use cadmc_autodiff::{Adam, Gradients, Graph, Matrix, ParamSet, VarId};
use cadmc_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::RngExt;

/// Records the sampled actions' log-probabilities of one episode so the
/// surrogate loss `-(G - b) · Σ log π(a|s)` can be built once the reward
/// is known.
#[derive(Debug, Default)]
pub struct EpisodeTape {
    /// The autodiff graph the episode's policy passes were recorded on.
    pub graph: Graph,
    logps: Vec<VarId>,
    entropies: Vec<VarId>,
}

impl EpisodeTape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the log-probability node of a sampled action.
    pub fn record(&mut self, logp: VarId) {
        self.logps.push(logp);
    }

    /// Number of recorded actions.
    pub fn len(&self) -> usize {
        self.logps.len()
    }

    /// Whether no actions were recorded.
    pub fn is_empty(&self) -> bool {
        self.logps.is_empty()
    }

    /// Mean policy entropy over the episode's sampled decisions (nats);
    /// zero for an empty tape. A telemetry-facing health signal: entropy
    /// collapsing to 0 early means the policy stopped exploring.
    pub fn mean_entropy(&self) -> f64 {
        if self.entropies.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .entropies
            .iter()
            .map(|&v| f64::from(self.graph.value(v).at(0, 0)))
            .sum();
        sum / self.entropies.len() as f64
    }

    /// Sum of recorded log-probabilities (the episode's log-likelihood).
    pub fn total_logp(&self) -> f32 {
        self.logps
            .iter()
            .map(|&v| self.graph.value(v).at(0, 0))
            .sum()
    }

    /// Builds the REINFORCE surrogate loss with the given advantage and
    /// backpropagates, returning parameter gradients. Consumes the tape.
    ///
    /// Gradient of `-advantage · Σ log π` equals the Eq. 10 estimator
    /// `-∇ log π (G - b)` (minimizing the loss ascends the objective).
    pub fn into_gradients(self, advantage: f32) -> Gradients {
        self.into_gradients_with_entropy(advantage, 0.0)
    }

    /// Like [`into_gradients`], with an entropy bonus: the loss becomes
    /// `-advantage · Σ log π − β · Σ H(π)`, discouraging premature policy
    /// collapse (a standard regularized policy-gradient objective; the
    /// paper's engine needs its ad-hoc fair-chance trick for the same
    /// reason).
    ///
    /// [`into_gradients`]: EpisodeTape::into_gradients
    pub fn into_gradients_with_entropy(mut self, advantage: f32, beta: f32) -> Gradients {
        if self.logps.is_empty() || (advantage == 0.0 && beta == 0.0) {
            return Gradients::default();
        }
        let mut sum = self.logps[0];
        let rest: Vec<VarId> = self.logps[1..].to_vec();
        for v in rest {
            sum = self.graph.add(sum, v);
        }
        let mut loss = self.graph.scale(sum, -advantage);
        if beta != 0.0 && !self.entropies.is_empty() {
            let mut h = self.entropies[0];
            let rest: Vec<VarId> = self.entropies[1..].to_vec();
            for v in rest {
                h = self.graph.add(h, v);
            }
            let bonus = self.graph.scale(h, -beta);
            loss = self.graph.add(loss, bonus);
        }
        self.graph.backward(loss)
    }
}

/// Samples from the softmax of a masked logits row and records the log
/// probability on the tape. Masked-out options get a large negative
/// constant added so they carry (numerically) zero probability mass and
/// receive no gradient preference.
///
/// # Panics
///
/// Panics if no option is allowed, or if mask length differs from the
/// logits width.
pub fn sample_masked(
    tape: &mut EpisodeTape,
    logits: VarId,
    allowed: &[bool],
    rng: &mut StdRng,
) -> (usize, VarId) {
    let width = tape.graph.value(logits).cols();
    assert_eq!(allowed.len(), width, "mask width mismatch");
    assert!(allowed.iter().any(|&a| a), "no allowed action");
    let mask_vals: Vec<f32> = allowed
        .iter()
        .map(|&a| if a { 0.0 } else { -1e9 })
        .collect();
    let mask = tape.graph.constant(Matrix::from_vec(1, width, mask_vals));
    let masked = tape.graph.add(logits, mask);
    let probs = tape.graph.value(masked).softmax_rows();
    let pick = sample_categorical(probs.row(0), rng);
    let logp = tape.graph.pick_log_softmax(masked, &[pick]);
    tape.record(logp);
    let h = tape.graph.entropy_rows(masked);
    tape.entropies.push(h);
    (pick, logp)
}

/// Samples an index from a probability row.
fn sample_categorical(probs: &[f32], rng: &mut StdRng) -> usize {
    let r: f32 = rng.random_range(0.0..1.0);
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if r < acc {
            return i;
        }
    }
    probs.len() - 1
}

/// Monte-Carlo policy-gradient trainer with EMA baseline (Eq. 10).
#[derive(Debug)]
pub struct Reinforce {
    opt: Adam,
    baseline: f64,
    baseline_beta: f64,
    reward_scale: f64,
    clip_norm: f32,
    entropy_beta: f32,
    seen: bool,
    epoch: u64,
}

impl Reinforce {
    /// Trainer with learning rate `lr`; rewards are divided by
    /// `reward_scale` (the paper's max reward 400) before forming
    /// advantages, keeping gradient magnitudes sane.
    pub fn new(lr: f32, reward_scale: f64) -> Self {
        assert!(reward_scale > 0.0, "reward scale must be positive");
        Self {
            opt: Adam::new(lr),
            baseline: 0.0,
            baseline_beta: 0.8,
            reward_scale,
            clip_norm: 5.0,
            entropy_beta: 0.0,
            seen: false,
            epoch: 0,
        }
    }

    /// Enables an entropy bonus with coefficient `beta` (0 disables).
    pub fn with_entropy(mut self, beta: f32) -> Self {
        assert!(beta >= 0.0, "entropy coefficient must be non-negative");
        self.entropy_beta = beta;
        self
    }

    /// Current baseline value (in reward units).
    pub fn baseline(&self) -> f64 {
        self.baseline
    }

    /// Computes the advantage for a reward and updates the EMA baseline.
    pub fn advantage(&mut self, reward: f64) -> f32 {
        if !self.seen {
            self.baseline = reward;
            self.seen = true;
            return 0.0;
        }
        let adv = (reward - self.baseline) / self.reward_scale;
        self.baseline = self.baseline_beta * self.baseline + (1.0 - self.baseline_beta) * reward;
        adv as f32
    }

    /// Applies one optimizer step from a batch of `(tape, reward)`
    /// episodes (gradients are accumulated before stepping).
    pub fn update_batch(
        &mut self,
        params: &mut ParamSet,
        episodes: Vec<(EpisodeTape, f64)>,
    ) {
        self.epoch += 1;
        // Entropy and reward statistics are only computed when a trace is
        // being collected; the disabled path must stay free.
        if telemetry::enabled() && !episodes.is_empty() {
            let n = episodes.len() as f64;
            let mean_reward = episodes.iter().map(|(_, r)| *r).sum::<f64>() / n;
            let mean_entropy =
                episodes.iter().map(|(t, _)| t.mean_entropy()).sum::<f64>() / n;
            telemetry::event!(
                "controller.epoch",
                epoch = self.epoch,
                episodes = episodes.len(),
                mean_reward = mean_reward,
                baseline = self.baseline,
                mean_entropy = mean_entropy,
            );
        }
        let mut acc: Option<Gradients> = None;
        for (tape, reward) in episodes {
            let adv = self.advantage(reward);
            if adv == 0.0 && self.entropy_beta == 0.0 {
                continue;
            }
            let grads = tape.into_gradients_with_entropy(adv, self.entropy_beta);
            match &mut acc {
                Some(a) => a.merge(grads),
                slot @ None => *slot = Some(grads),
            }
        }
        if let Some(mut grads) = acc {
            grads.clip_global_norm(self.clip_norm);
            self.opt.step(params, &grads);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_autodiff::{Matrix, ParamId};
    use rand::SeedableRng;

    fn softmax_of_param(params: &ParamSet, p: ParamId) -> Vec<f32> {
        params.value(p).softmax_rows().row(0).to_vec()
    }

    #[test]
    fn masked_sampling_never_picks_forbidden() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let mut tape = EpisodeTape::new();
            let logits = tape.graph.constant(Matrix::row_vector(&[0.0, 5.0, 0.0]));
            let (pick, _) = sample_masked(&mut tape, logits, &[true, false, true], &mut rng);
            assert_ne!(pick, 1);
        }
    }

    #[test]
    fn reinforce_increases_probability_of_rewarded_action() {
        // A 3-armed bandit: arm 2 pays 10, others pay 0. The policy should
        // concentrate on arm 2.
        let mut params = ParamSet::new();
        let logits_p = params.insert("logits", Matrix::zeros(1, 3));
        let mut trainer = Reinforce::new(0.05, 10.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..300 {
            let mut tape = EpisodeTape::new();
            let logits = tape.graph.param(&params, logits_p);
            let (pick, _) = sample_masked(&mut tape, logits, &[true, true, true], &mut rng);
            let reward = if pick == 2 { 10.0 } else { 0.0 };
            trainer.update_batch(&mut params, vec![(tape, reward)]);
        }
        let probs = softmax_of_param(&params, logits_p);
        assert!(
            probs[2] > 0.8,
            "policy did not concentrate on the paying arm: {probs:?}"
        );
    }

    #[test]
    fn baseline_tracks_rewards() {
        let mut t = Reinforce::new(0.01, 400.0);
        let _ = t.advantage(100.0);
        assert_eq!(t.baseline(), 100.0);
        for _ in 0..50 {
            let _ = t.advantage(200.0);
        }
        assert!((t.baseline() - 200.0).abs() < 5.0);
    }

    #[test]
    fn entropy_bonus_slows_collapse() {
        // Same bandit, two trainers: with a strong entropy bonus the
        // policy must stay strictly less concentrated after the same
        // number of updates.
        let run = |beta: f32| -> f32 {
            let mut params = ParamSet::new();
            let logits_p = params.insert("logits", Matrix::zeros(1, 3));
            let mut trainer = Reinforce::new(0.05, 10.0).with_entropy(beta);
            let mut rng = StdRng::seed_from_u64(3);
            for _ in 0..150 {
                let mut tape = EpisodeTape::new();
                let logits = tape.graph.param(&params, logits_p);
                let (pick, _) = sample_masked(&mut tape, logits, &[true, true, true], &mut rng);
                let reward = if pick == 2 { 10.0 } else { 0.0 };
                trainer.update_batch(&mut params, vec![(tape, reward)]);
            }
            softmax_of_param(&params, logits_p)[2]
        };
        let sharp = run(0.0);
        let regularized = run(0.5);
        assert!(
            regularized < sharp,
            "entropy bonus should keep mass spread: {regularized} vs {sharp}"
        );
        assert!(regularized > 0.34, "still prefers the paying arm");
    }

    #[test]
    fn empty_tape_produces_no_gradients() {
        let tape = EpisodeTape::new();
        let grads = tape.into_gradients(1.0);
        assert!(grads.is_empty());
    }

    #[test]
    fn total_logp_is_negative() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut tape = EpisodeTape::new();
        let logits = tape.graph.constant(Matrix::row_vector(&[0.0, 0.0]));
        let _ = sample_masked(&mut tape, logits, &[true, true], &mut rng);
        assert!(tape.total_logp() < 0.0);
        assert_eq!(tape.len(), 1);
    }
}

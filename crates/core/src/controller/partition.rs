//! The partition search controller (upper half of the paper's Fig. 6).
//!
//! A bidirectional LSTM reads the layer-hyperparameter sequence of a model
//! (or block); each position's hidden state is scored by a shared linear
//! head, and a dedicated head on the sequence summary scores the
//! "no partition" option. The softmax over the `L + 1` scores is the
//! partition policy `π_p`: option `j < L` cuts *before* layer `j` (so
//! `j = 0` offloads everything), option `L` keeps everything on the edge.

use cadmc_autodiff::{BiLstm, Matrix, ParamId, ParamSet, VarId};
use cadmc_nn::ModelSpec;
use rand::rngs::StdRng;
use rand::RngExt;

use super::embed::{embed_model, EMBED_DIM};
use super::policy::{sample_masked, EpisodeTape};

/// The partition decision for one model/block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionAction {
    /// Cut before local layer `j`: layers `[0..j)` stay on the edge, layer
    /// `j` and everything after moves to the cloud (`j = 0` offloads the
    /// whole block).
    CutBefore(usize),
    /// No partition: the whole block stays on the edge.
    NoPartition,
}

/// LSTM partition policy.
#[derive(Debug, Clone)]
pub struct PartitionController {
    bilstm: BiLstm,
    score_w: ParamId,
    score_b: ParamId,
    nopart_w: ParamId,
    nopart_b: ParamId,
}

impl PartitionController {
    /// Registers the controller's parameters under `prefix`.
    pub fn new(params: &mut ParamSet, prefix: &str, hidden: usize, seed: u64) -> Self {
        let bilstm = BiLstm::new(params, &format!("{prefix}.lstm"), EMBED_DIM, hidden, seed);
        let h2 = 2 * hidden;
        let score_w = params.insert(
            format!("{prefix}.score.w"),
            Matrix::seeded_xavier(h2, 1, seed ^ 0xa1),
        );
        let score_b = params.insert(format!("{prefix}.score.b"), Matrix::zeros(1, 1));
        let nopart_w = params.insert(
            format!("{prefix}.nopart.w"),
            Matrix::seeded_xavier(h2, 1, seed ^ 0xa2),
        );
        let nopart_b = params.insert(format!("{prefix}.nopart.b"), Matrix::zeros(1, 1));
        Self {
            bilstm,
            score_w,
            score_b,
            nopart_w,
            nopart_b,
        }
    }

    /// Builds the `1 × (L+1)` partition logits for `spec` at `bandwidth`.
    pub fn logits(
        &self,
        tape: &mut EpisodeTape,
        params: &ParamSet,
        spec: &ModelSpec,
        bandwidth: f64,
    ) -> VarId {
        let inputs: Vec<VarId> = embed_model(spec, bandwidth)
            .into_iter()
            .map(|m| tape.graph.constant(m))
            .collect();
        let hs = self.bilstm.run(&mut tape.graph, params, &inputs);
        let w = tape.graph.param(params, self.score_w);
        let b = tape.graph.param(params, self.score_b);
        let mut scores: Option<VarId> = None;
        for h in &hs {
            let s_lin = tape.graph.matmul(*h, w);
            let s = tape.graph.add(s_lin, b);
            scores = Some(match scores {
                Some(acc) => tape.graph.hcat(acc, s),
                None => s,
            });
        }
        let summary = *hs.last().expect("non-empty model");
        let nw = tape.graph.param(params, self.nopart_w);
        let nb = tape.graph.param(params, self.nopart_b);
        let np_lin = tape.graph.matmul(summary, nw);
        let np = tape.graph.add(np_lin, nb);
        let scores = scores.expect("non-empty model");
        tape.graph.hcat(scores, np)
    }

    /// Samples a partition action for `spec`. With probability
    /// `force_no_partition` the action is forced to [`NoPartition`]
    /// *before* consulting the policy — the paper's "exploration with fair
    /// chances" countermeasure (§VII-A), which prevents the tree search
    /// from collapsing onto first-layer partitions. Forced choices record
    /// no log-probability (they are off-policy exploration).
    ///
    /// [`NoPartition`]: PartitionAction::NoPartition
    pub fn sample(
        &self,
        tape: &mut EpisodeTape,
        params: &ParamSet,
        spec: &ModelSpec,
        bandwidth: f64,
        rng: &mut StdRng,
        force_no_partition: f64,
    ) -> PartitionAction {
        if force_no_partition > 0.0 && rng.random_range(0.0..1.0) < force_no_partition {
            return PartitionAction::NoPartition;
        }
        let logits = self.logits(tape, params, spec, bandwidth);
        let width = spec.len() + 1;
        let allowed = vec![true; width];
        let (pick, _) = sample_masked(tape, logits, &allowed, rng);
        if pick == spec.len() {
            PartitionAction::NoPartition
        } else {
            PartitionAction::CutBefore(pick)
        }
    }

    /// Greedy (argmax) partition action — used at deployment time.
    pub fn best(&self, params: &ParamSet, spec: &ModelSpec, bandwidth: f64) -> PartitionAction {
        let mut tape = EpisodeTape::new();
        let logits = self.logits(&mut tape, params, spec, bandwidth);
        let pick = tape.graph.value(logits).argmax_row(0);
        if pick == spec.len() {
            PartitionAction::NoPartition
        } else {
            PartitionAction::CutBefore(pick)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;
    use rand::SeedableRng;

    #[test]
    fn logits_width_is_layers_plus_one() {
        let mut params = ParamSet::new();
        let ctl = PartitionController::new(&mut params, "p", 8, 1);
        let base = zoo::vgg11_cifar();
        let mut tape = EpisodeTape::new();
        let logits = ctl.logits(&mut tape, &params, &base, 10.0);
        assert_eq!(tape.graph.value(logits).shape(), (1, base.len() + 1));
    }

    #[test]
    fn sample_covers_cut_and_no_partition() {
        let mut params = ParamSet::new();
        let ctl = PartitionController::new(&mut params, "p", 8, 2);
        let base = zoo::tiny_cnn();
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw_cut = false;
        let mut saw_none = false;
        for _ in 0..60 {
            let mut tape = EpisodeTape::new();
            match ctl.sample(&mut tape, &params, &base, 10.0, &mut rng, 0.0) {
                PartitionAction::CutBefore(i) => {
                    assert!(i < base.len());
                    saw_cut = true;
                }
                PartitionAction::NoPartition => saw_none = true,
            }
            assert_eq!(tape.len(), 1);
        }
        assert!(saw_cut && saw_none, "untrained policy should explore both");
    }

    #[test]
    fn forced_no_partition_records_nothing() {
        let mut params = ParamSet::new();
        let ctl = PartitionController::new(&mut params, "p", 8, 3);
        let base = zoo::tiny_cnn();
        let mut rng = StdRng::seed_from_u64(6);
        let mut tape = EpisodeTape::new();
        let a = ctl.sample(&mut tape, &params, &base, 10.0, &mut rng, 1.0);
        assert_eq!(a, PartitionAction::NoPartition);
        assert!(tape.is_empty());
    }

    #[test]
    fn best_is_deterministic() {
        let mut params = ParamSet::new();
        let ctl = PartitionController::new(&mut params, "p", 8, 4);
        let base = zoo::tiny_cnn();
        assert_eq!(
            ctl.best(&params, &base, 10.0),
            ctl.best(&params, &base, 10.0)
        );
    }

    #[test]
    fn bandwidth_conditions_the_policy() {
        // Different bandwidth inputs must produce different logits (the
        // controller takes (B, W) per Alg. 1).
        let mut params = ParamSet::new();
        let ctl = PartitionController::new(&mut params, "p", 8, 5);
        let base = zoo::tiny_cnn();
        let mut t1 = EpisodeTape::new();
        let l1 = ctl.logits(&mut t1, &params, &base, 1.0);
        let mut t2 = EpisodeTape::new();
        let l2 = ctl.logits(&mut t2, &params, &base, 100.0);
        assert_ne!(t1.graph.value(l1), t2.graph.value(l2));
    }
}

//! Behavioural tests: the controllers must demonstrably *learn* from
//! rewards, not merely sample. These train on synthetic reward landscapes
//! with known optima and check the policies concentrate correctly.

#![cfg(test)]

use cadmc_nn::zoo;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::controller::{EpisodeTape, PartitionAction, Reinforce};
use crate::search::{Controllers, SearchConfig};

#[test]
fn partition_controller_learns_a_preferred_cut() {
    // Reward cutting before layer 2 of TinyCnn; everything else is bad.
    let cfg = SearchConfig::quick(11);
    let mut c = Controllers::new(&cfg);
    let base = zoo::tiny_cnn();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..250 {
        let mut tape = EpisodeTape::new();
        let action = c
            .partition
            .sample(&mut tape, &c.params, &base, 10.0, &mut rng, 0.0);
        let reward = match action {
            PartitionAction::CutBefore(2) => 380.0,
            _ => 320.0,
        };
        c.trainer.update_batch(&mut c.params, vec![(tape, reward)]);
    }
    // Greedy decode should now pick the rewarded cut.
    assert_eq!(
        c.partition.best(&c.params, &base, 10.0),
        PartitionAction::CutBefore(2),
        "partition policy failed to concentrate on the rewarded action"
    );
}

#[test]
fn compression_controller_learns_to_abstain_when_compression_is_punished() {
    // Punish any compression at all; the per-layer policy should converge
    // to the identity plan.
    let cfg = SearchConfig::quick(13);
    let mut c = Controllers::new(&cfg);
    let base = zoo::tiny_cnn();
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..250 {
        let mut tape = EpisodeTape::new();
        let plan = c
            .compression
            .sample(&mut tape, &c.params, &base, 10.0, &mut rng);
        let reward = if plan.is_identity() { 380.0 } else { 320.0 };
        c.trainer.update_batch(&mut c.params, vec![(tape, reward)]);
    }
    let best = c.compression.best(&c.params, &base, 10.0);
    assert!(
        best.is_identity(),
        "compression policy should abstain, got {}",
        best.summary()
    );
}

#[test]
fn compression_controller_learns_to_compress_when_rewarded() {
    let cfg = SearchConfig::quick(17);
    let mut c = Controllers::new(&cfg);
    let base = zoo::tiny_cnn();
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..250 {
        let mut tape = EpisodeTape::new();
        let plan = c
            .compression
            .sample(&mut tape, &c.params, &base, 10.0, &mut rng);
        // Reward proportional to number of compressed layers.
        let count = plan.actions().iter().filter(|a| a.is_some()).count();
        let reward = 320.0 + 15.0 * count as f64;
        c.trainer.update_batch(&mut c.params, vec![(tape, reward)]);
    }
    let best = c.compression.best(&c.params, &base, 10.0);
    let count = best.actions().iter().filter(|a| a.is_some()).count();
    assert!(
        count >= 2,
        "policy should compress aggressively, got {}",
        best.summary()
    );
}

#[test]
fn bandwidth_conditioning_can_separate_policies() {
    // A conditioned two-armed bandit: on a single-layer model the policy
    // has exactly two options (offload everything / stay on edge). Reward
    // staying at low bandwidth and offloading at high bandwidth; the same
    // controller must learn both, keyed on its bandwidth input.
    let cfg = SearchConfig {
        episodes: 0,
        lr: 1e-2,
        ..SearchConfig::quick(19)
    };
    let mut c = Controllers::new(&cfg);
    let mut trainer = Reinforce::new(1e-2, 400.0);
    let base = zoo::tiny_cnn()
        .slice(0, 1)
        .expect("single-layer slice");
    let mut rng = StdRng::seed_from_u64(23);
    for i in 0..800 {
        let bw = if i % 2 == 0 { 1.0 } else { 100.0 };
        let mut tape = EpisodeTape::new();
        let action = c
            .partition
            .sample(&mut tape, &c.params, &base, bw, &mut rng, 0.0);
        let good = if bw < 10.0 {
            action == PartitionAction::NoPartition
        } else {
            action == PartitionAction::CutBefore(0)
        };
        let reward = if good { 390.0 } else { 250.0 };
        trainer.update_batch(&mut c.params, vec![(tape, reward)]);
    }
    // Argmax flips are brittle under a shared EMA baseline; assert the
    // *distribution* separated: the policy must put more mass on
    // no-partition at low bandwidth and more mass on offloading at high
    // bandwidth than vice versa.
    let prob = |bw: f64, want_no_partition: bool| -> f32 {
        let mut tape = EpisodeTape::new();
        let logits = c.partition.logits(&mut tape, &c.params, &base, bw);
        let sm = tape.graph.value(logits).softmax_rows();
        if want_no_partition {
            sm.at(0, base.len())
        } else {
            sm.at(0, 0)
        }
    };
    assert!(
        prob(1.0, true) > prob(100.0, true),
        "no-partition mass should be higher at low bandwidth: {} vs {}",
        prob(1.0, true),
        prob(100.0, true)
    );
    assert!(
        prob(100.0, false) > prob(1.0, false),
        "offload mass should be higher at high bandwidth: {} vs {}",
        prob(100.0, false),
        prob(1.0, false)
    );
}

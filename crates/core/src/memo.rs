//! Candidate-evaluation memoization — the paper's "memory pool storing the
//! hash code of searched models to avoid redundant computations" (§VII-A,
//! Training time).
//!
//! The pool is lock-striped: entries are spread over a power-of-two number
//! of independently locked shards selected by the high bits of the cache
//! key, so parallel rollout workers rarely contend on the same mutex.
//! Hit/miss counters are plain atomics and never take a lock.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::candidate::Candidate;
use crate::reward::Evaluation;

/// Default shard count — enough stripes that 8–16 workers rarely collide,
/// small enough that `len()` stays cheap.
pub const DEFAULT_SHARDS: usize = 16;

/// Thread-safe evaluation cache keyed by (model structure, cut, quantized
/// bandwidth), striped over independently locked shards.
#[derive(Debug)]
pub struct MemoPool {
    shards: Vec<Mutex<HashMap<u64, Evaluation>>>,
    /// log2(shards.len()): the shard index is the key's top `shard_bits` bits.
    shard_bits: u32,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl Default for MemoPool {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl MemoPool {
    /// An empty pool with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pool with `shards` lock stripes (rounded up to a power of
    /// two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_bits: n.trailing_zeros(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Number of lock stripes.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Cache key for a candidate at a bandwidth (bandwidth quantized to
    /// 0.01 Mbps so replayed levels hit the same entry).
    pub fn key(candidate: &Candidate, bandwidth_mbps: f64) -> u64 {
        let mut h = DefaultHasher::new();
        candidate.model.structural_hash().hash(&mut h);
        candidate.edge_layers.hash(&mut h);
        ((bandwidth_mbps * 100.0).round() as i64).hash(&mut h);
        h.finish()
    }

    /// Shard index for a key: the top `shard_bits` bits. `DefaultHasher`
    /// mixes well, so high bits spread entries evenly; low bits are left
    /// for the in-shard `HashMap` bucketing.
    fn shard_for(&self, key: u64) -> usize {
        if self.shard_bits == 0 {
            0
        } else {
            (key >> (64 - self.shard_bits)) as usize
        }
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, Evaluation>> {
        &self.shards[self.shard_for(key)]
    }

    /// Locks a shard, recovering from poisoning: a panicking evaluator
    /// can only leave a shard map in a consistent state (entries are
    /// inserted whole), so the cache stays usable instead of cascading
    /// panics through every other rollout worker.
    fn lock(shard: &Mutex<HashMap<u64, Evaluation>>) -> MutexGuard<'_, HashMap<u64, Evaluation>> {
        shard.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the cached evaluation or computes and stores it. Only the
    /// key's shard is locked, and never while `compute` runs; two threads
    /// racing on the same fresh key may both compute, but both store the
    /// same value so lookups stay consistent.
    pub fn get_or_insert_with(
        &self,
        candidate: &Candidate,
        bandwidth_mbps: f64,
        compute: impl FnOnce() -> Evaluation,
    ) -> Evaluation {
        let key = Self::key(candidate, bandwidth_mbps);
        {
            let map = Self::lock(self.shard(key));
            if let Some(&e) = map.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return e;
            }
        }
        let e = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        Self::lock(self.shard(key)).insert(key, e);
        e
    }

    /// Cached evaluation for a candidate, if present (no compute, counts
    /// as a hit or miss).
    pub fn get(&self, candidate: &Candidate, bandwidth_mbps: f64) -> Option<Evaluation> {
        let key = Self::key(candidate, bandwidth_mbps);
        let found = Self::lock(self.shard(key)).get(&key).copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached evaluations across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).len()).sum()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry count per shard, in shard order (for balance diagnostics).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| Self::lock(s).len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::RewardSpec;
    use cadmc_nn::zoo;

    #[test]
    fn second_lookup_hits() {
        let pool = MemoPool::new();
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let spec = RewardSpec::default();
        let mut computed = 0;
        for _ in 0..3 {
            let e = pool.get_or_insert_with(&c, 10.0, || {
                computed += 1;
                Evaluation::new(0.9, 50.0, &spec)
            });
            assert_eq!(e.accuracy, 0.9);
        }
        assert_eq!(computed, 1);
        assert_eq!(pool.hits(), 2);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        // The pool is shared across rollout workers: hammer one key from
        // several threads and check every thread saw the same evaluation
        // and the entry was computed at most a few times (the
        // get/compute/insert window allows benign duplicate compute).
        let pool = std::sync::Arc::new(MemoPool::new());
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let spec = RewardSpec::default();
        let computed = std::sync::Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = pool.clone();
            let c = c.clone();
            let computed = computed.clone();
            handles.push(std::thread::spawn(move || {
                let mut rewards = Vec::new();
                for _ in 0..200 {
                    let e = pool.get_or_insert_with(&c, 10.0, || {
                        computed.fetch_add(1, Ordering::Relaxed);
                        Evaluation::new(0.9, 50.0, &RewardSpec::default())
                    });
                    rewards.push(e.reward);
                }
                rewards
            }));
        }
        let expected = spec.reward(0.9, 50.0);
        for h in handles {
            for r in h.join().expect("thread ok") {
                assert_eq!(r, expected);
            }
        }
        assert!(
            computed.load(Ordering::Relaxed) <= 8,
            "entry recomputed more than once per thread"
        );
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn different_bandwidths_are_different_keys() {
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        assert_ne!(MemoPool::key(&c, 1.0), MemoPool::key(&c, 2.0));
        assert_eq!(MemoPool::key(&c, 1.0), MemoPool::key(&c, 1.001));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(MemoPool::with_shards(1).shards(), 1);
        assert_eq!(MemoPool::with_shards(3).shards(), 4);
        assert_eq!(MemoPool::with_shards(16).shards(), 16);
        assert_eq!(MemoPool::with_shards(0).shards(), 1);
    }

    #[test]
    fn entries_spread_across_shards() {
        // Distinct bandwidths produce distinct keys; with 16 shards and
        // many entries the stripe distribution must not collapse onto a
        // single shard.
        let pool = MemoPool::with_shards(16);
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let spec = RewardSpec::default();
        for i in 0..256 {
            let bw = 1.0 + i as f64;
            pool.get_or_insert_with(&c, bw, || Evaluation::new(0.9, 50.0, &spec));
        }
        let lens = pool.shard_lens();
        assert_eq!(lens.iter().sum::<usize>(), 256);
        assert_eq!(pool.len(), 256);
        let occupied = lens.iter().filter(|&&l| l > 0).count();
        assert!(
            occupied >= 8,
            "keys collapsed onto {occupied} of 16 shards: {lens:?}"
        );
    }

    #[test]
    fn counters_sum_to_lookups_across_threads() {
        // hits + misses must equal total lookups even under contention.
        let pool = std::sync::Arc::new(MemoPool::with_shards(4));
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = pool.clone();
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let bw = 1.0 + ((t * 100 + i) % 40) as f64;
                    pool.get_or_insert_with(&c, bw, || {
                        Evaluation::new(0.9, 50.0, &RewardSpec::default())
                    });
                }
            }));
        }
        for h in handles {
            h.join().expect("thread ok");
        }
        assert_eq!(pool.hits() + pool.misses(), 400);
        // Racing threads may double-compute a key, so misses can exceed
        // distinct keys but never drop below them.
        assert!(pool.misses() >= 40);
        assert_eq!(pool.len(), 40);
    }

    #[test]
    fn single_shard_pool_still_works() {
        let pool = MemoPool::with_shards(1);
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let spec = RewardSpec::default();
        let e = pool.get_or_insert_with(&c, 5.0, || Evaluation::new(0.8, 40.0, &spec));
        let e2 = pool.get_or_insert_with(&c, 5.0, || unreachable!("must hit"));
        assert_eq!(e.reward, e2.reward);
        assert_eq!(pool.shard_lens(), vec![1]);
    }
}

//! Candidate-evaluation memoization — the paper's "memory pool storing the
//! hash code of searched models to avoid redundant computations" (§VII-A,
//! Training time).
//!
//! The pool is lock-striped: entries are spread over a power-of-two number
//! of independently locked shards selected by the high bits of the cache
//! key, so parallel rollout workers rarely contend on the same mutex.
//! Hit/miss/eviction counters are per-shard atomics and never take a lock;
//! they are the *only* reporting surface — totals are published into the
//! telemetry metrics registry via [`MemoPool::publish_telemetry`] rather
//! than printed ad hoc.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use cadmc_telemetry as telemetry;

use crate::candidate::Candidate;
use crate::reward::Evaluation;

/// Default shard count — enough stripes that 8–16 workers rarely collide,
/// small enough that `len()` stays cheap.
pub const DEFAULT_SHARDS: usize = 16;

/// One lock stripe: the entry map plus its lock-free counters. Aligned to
/// a cache line so adjacent shards' mutexes and counters never share one —
/// with 16 shards packed in a `Vec`, unpadded counters put four shards'
/// atomics on the same line and every `fetch_add` invalidates neighbors
/// (false sharing).
#[derive(Debug, Default)]
#[repr(align(64))]
struct Shard {
    map: Mutex<HashMap<u64, Evaluation>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

/// Counter snapshot for one shard (see [`MemoPool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Lookups served from the cache.
    pub hits: usize,
    /// Lookups that had to compute.
    pub misses: usize,
    /// Entries dropped by capacity eviction.
    pub evictions: usize,
    /// Entries currently cached.
    pub entries: usize,
}

/// Thread-safe evaluation cache keyed by (model structure, cut, quantized
/// bandwidth), striped over independently locked shards.
#[derive(Debug)]
pub struct MemoPool {
    shards: Vec<Shard>,
    /// log2(shards.len()): the shard index is the key's top `shard_bits` bits.
    shard_bits: u32,
    /// Max entries per shard; `None` = unbounded. When an insert would
    /// exceed it the whole shard is cleared (a deterministic wholesale
    /// eviction — never dependent on `HashMap` iteration order).
    capacity_per_shard: Option<usize>,
}

impl Default for MemoPool {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl MemoPool {
    /// An empty pool with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pool with `shards` lock stripes (rounded up to a power of
    /// two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        Self::with_shards_and_capacity(shards, None)
    }

    /// An empty pool with `shards` lock stripes and an optional per-shard
    /// entry cap (minimum 1 when given).
    pub fn with_shards_and_capacity(shards: usize, capacity_per_shard: Option<usize>) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| Shard::default()).collect(),
            shard_bits: n.trailing_zeros(),
            capacity_per_shard: capacity_per_shard.map(|c| c.max(1)),
        }
    }

    /// Per-shard entry cap, if bounded.
    pub fn capacity_per_shard(&self) -> Option<usize> {
        self.capacity_per_shard
    }

    /// Number of lock stripes.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Cache key for a candidate at a bandwidth (bandwidth quantized to
    /// 0.01 Mbps so replayed levels hit the same entry).
    pub fn key(candidate: &Candidate, bandwidth_mbps: f64) -> u64 {
        let mut h = DefaultHasher::new();
        candidate.model.structural_hash().hash(&mut h);
        candidate.edge_layers.hash(&mut h);
        ((bandwidth_mbps * 100.0).round() as i64).hash(&mut h);
        h.finish()
    }

    /// Shard index for a key: the top `shard_bits` bits. `DefaultHasher`
    /// mixes well, so high bits spread entries evenly; low bits are left
    /// for the in-shard `HashMap` bucketing.
    fn shard_for(&self, key: u64) -> usize {
        if self.shard_bits == 0 {
            0
        } else {
            (key >> (64 - self.shard_bits)) as usize
        }
    }

    fn shard(&self, key: u64) -> &Shard {
        &self.shards[self.shard_for(key)]
    }

    /// Locks a shard map, recovering from poisoning: a panicking evaluator
    /// can only leave a shard map in a consistent state (entries are
    /// inserted whole), so the cache stays usable instead of cascading
    /// panics through every other rollout worker.
    fn lock(shard: &Shard) -> MutexGuard<'_, HashMap<u64, Evaluation>> {
        shard.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the cached evaluation or computes and stores it. Only the
    /// key's shard is locked, and never while `compute` runs; two threads
    /// racing on the same fresh key may both compute, but both store the
    /// same value so lookups stay consistent.
    pub fn get_or_insert_with(
        &self,
        candidate: &Candidate,
        bandwidth_mbps: f64,
        compute: impl FnOnce() -> Evaluation,
    ) -> Evaluation {
        self.get_or_insert_key_with(Self::key(candidate, bandwidth_mbps), compute)
    }

    /// Key-addressed form of [`MemoPool::get_or_insert_with`], for callers
    /// that derive the key without composing a candidate (the delta-state
    /// hot path).
    pub fn get_or_insert_key_with(
        &self,
        key: u64,
        compute: impl FnOnce() -> Evaluation,
    ) -> Evaluation {
        let shard = self.shard(key);
        {
            let map = Self::lock(shard);
            if let Some(&e) = map.get(&key) {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                return e;
            }
        }
        let e = compute();
        shard.misses.fetch_add(1, Ordering::Relaxed);
        self.insert_entry(key, e);
        e
    }

    /// Stores an evaluation under a key (capacity eviction applies). Does
    /// not touch the hit/miss counters — pair with [`MemoPool::get_key`]
    /// or [`MemoPool::probe_many`], which already counted the miss.
    pub fn insert_key(&self, key: u64, e: Evaluation) {
        self.insert_entry(key, e);
    }

    fn insert_entry(&self, key: u64, e: Evaluation) {
        let shard = self.shard(key);
        let mut map = Self::lock(shard);
        if let Some(cap) = self.capacity_per_shard {
            if map.len() >= cap && !map.contains_key(&key) {
                shard.evictions.fetch_add(map.len(), Ordering::Relaxed);
                map.clear();
            }
        }
        map.insert(key, e);
    }

    /// Cached evaluation for a candidate, if present (no compute, counts
    /// as a hit or miss).
    pub fn get(&self, candidate: &Candidate, bandwidth_mbps: f64) -> Option<Evaluation> {
        let key = Self::key(candidate, bandwidth_mbps);
        self.get_key(key)
    }

    /// Cached evaluation under a key, if present (counts as a hit or
    /// miss).
    pub fn get_key(&self, key: u64) -> Option<Evaluation> {
        let shard = self.shard(key);
        let found = Self::lock(shard).get(&key).copied();
        match found {
            Some(_) => shard.hits.fetch_add(1, Ordering::Relaxed),
            None => shard.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Batched probe for an expansion front: looks up every key, locking
    /// each touched shard exactly once (probes are grouped by shard) and
    /// updating its counters with one `fetch_add` per shard instead of
    /// one per key. Equivalent to calling [`MemoPool::get_key`] per key —
    /// pinned by the batched-vs-single equivalence test.
    pub fn probe_many(&self, keys: &[u64]) -> Vec<Option<Evaluation>> {
        let mut out = vec![None; keys.len()];
        // Group key positions by shard. Sorting a small index vec beats
        // allocating one bucket per shard for typical front sizes.
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| self.shard_for(keys[i]));
        let mut pos = 0;
        while pos < order.len() {
            let shard_idx = self.shard_for(keys[order[pos]]);
            let shard = &self.shards[shard_idx];
            let mut hits = 0;
            let mut misses = 0;
            {
                let map = Self::lock(shard);
                while pos < order.len() && self.shard_for(keys[order[pos]]) == shard_idx {
                    let i = order[pos];
                    match map.get(&keys[i]) {
                        Some(&e) => {
                            out[i] = Some(e);
                            hits += 1;
                        }
                        None => misses += 1,
                    }
                    pos += 1;
                }
            }
            if hits > 0 {
                shard.hits.fetch_add(hits, Ordering::Relaxed);
            }
            if misses > 0 {
                shard.misses.fetch_add(misses, Ordering::Relaxed);
            }
        }
        out
    }

    /// Number of cache hits so far (summed over shards).
    pub fn hits(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of cache misses so far (summed over shards).
    pub fn misses(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.misses.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of entries dropped by capacity eviction (summed over shards).
    pub fn evictions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.evictions.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of cached evaluations across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).len()).sum()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry count per shard, in shard order (for balance diagnostics).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| Self::lock(s).len()).collect()
    }

    /// Counter snapshot per shard, in shard order.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                evictions: s.evictions.load(Ordering::Relaxed),
                entries: Self::lock(s).len(),
            })
            .collect()
    }

    /// Publishes the pool's counters into the telemetry registry: totals
    /// as `memo.hits` / `memo.misses` / `memo.evictions` / `memo.entries`
    /// counters, one `memo.shard` event per shard, and per-shard
    /// `memo.shardNN.{hits,misses,evictions}` gauges (a scrape-friendly
    /// view of the same numbers — gauges overwrite, so publish once per
    /// pool from one thread). Call when the pool's search finishes; a
    /// no-op when telemetry is off.
    pub fn publish_telemetry(&self) {
        if !telemetry::enabled() {
            return;
        }
        for (i, s) in self.stats().iter().enumerate() {
            telemetry::counter!("memo.hits", s.hits as u64);
            telemetry::counter!("memo.misses", s.misses as u64);
            telemetry::counter!("memo.evictions", s.evictions as u64);
            telemetry::counter!("memo.entries", s.entries as u64);
            telemetry::gauge!(&format!("memo.shard{i:02}.hits"), s.hits as f64);
            telemetry::gauge!(&format!("memo.shard{i:02}.misses"), s.misses as f64);
            telemetry::gauge!(&format!("memo.shard{i:02}.evictions"), s.evictions as f64);
            telemetry::event!(
                "memo.shard",
                shard = i,
                hits = s.hits,
                misses = s.misses,
                evictions = s.evictions,
                entries = s.entries,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::RewardSpec;
    use cadmc_nn::zoo;

    #[test]
    fn second_lookup_hits() {
        let pool = MemoPool::new();
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let spec = RewardSpec::default();
        let mut computed = 0;
        for _ in 0..3 {
            let e = pool.get_or_insert_with(&c, 10.0, || {
                computed += 1;
                Evaluation::new(0.9, 50.0, &spec)
            });
            assert_eq!(e.accuracy, 0.9);
        }
        assert_eq!(computed, 1);
        assert_eq!(pool.hits(), 2);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        // The pool is shared across rollout workers: hammer one key from
        // several threads and check every thread saw the same evaluation
        // and the entry was computed at most a few times (the
        // get/compute/insert window allows benign duplicate compute).
        let pool = std::sync::Arc::new(MemoPool::new());
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let spec = RewardSpec::default();
        let computed = std::sync::Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = pool.clone();
            let c = c.clone();
            let computed = computed.clone();
            handles.push(std::thread::spawn(move || {
                let mut rewards = Vec::new();
                for _ in 0..200 {
                    let e = pool.get_or_insert_with(&c, 10.0, || {
                        computed.fetch_add(1, Ordering::Relaxed);
                        Evaluation::new(0.9, 50.0, &RewardSpec::default())
                    });
                    rewards.push(e.reward);
                }
                rewards
            }));
        }
        let expected = spec.reward(0.9, 50.0);
        for h in handles {
            for r in h.join().expect("thread ok") {
                assert_eq!(r, expected);
            }
        }
        assert!(
            computed.load(Ordering::Relaxed) <= 8,
            "entry recomputed more than once per thread"
        );
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn different_bandwidths_are_different_keys() {
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        assert_ne!(MemoPool::key(&c, 1.0), MemoPool::key(&c, 2.0));
        assert_eq!(MemoPool::key(&c, 1.0), MemoPool::key(&c, 1.001));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(MemoPool::with_shards(1).shards(), 1);
        assert_eq!(MemoPool::with_shards(3).shards(), 4);
        assert_eq!(MemoPool::with_shards(16).shards(), 16);
        assert_eq!(MemoPool::with_shards(0).shards(), 1);
    }

    #[test]
    fn entries_spread_across_shards() {
        // Distinct bandwidths produce distinct keys; with 16 shards and
        // many entries the stripe distribution must not collapse onto a
        // single shard.
        let pool = MemoPool::with_shards(16);
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let spec = RewardSpec::default();
        for i in 0..256 {
            let bw = 1.0 + i as f64;
            pool.get_or_insert_with(&c, bw, || Evaluation::new(0.9, 50.0, &spec));
        }
        let lens = pool.shard_lens();
        assert_eq!(lens.iter().sum::<usize>(), 256);
        assert_eq!(pool.len(), 256);
        let occupied = lens.iter().filter(|&&l| l > 0).count();
        assert!(
            occupied >= 8,
            "keys collapsed onto {occupied} of 16 shards: {lens:?}"
        );
    }

    #[test]
    fn counters_sum_to_lookups_across_threads() {
        // hits + misses must equal total lookups even under contention.
        let pool = std::sync::Arc::new(MemoPool::with_shards(4));
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = pool.clone();
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let bw = 1.0 + ((t * 100 + i) % 40) as f64;
                    pool.get_or_insert_with(&c, bw, || {
                        Evaluation::new(0.9, 50.0, &RewardSpec::default())
                    });
                }
            }));
        }
        for h in handles {
            h.join().expect("thread ok");
        }
        assert_eq!(pool.hits() + pool.misses(), 400);
        // Racing threads may double-compute a key, so misses can exceed
        // distinct keys but never drop below them.
        assert!(pool.misses() >= 40);
        assert_eq!(pool.len(), 40);
    }

    #[test]
    fn capacity_evicts_whole_shard_deterministically() {
        // One shard, cap 4: the 5th distinct insert clears the shard,
        // counting 4 evictions, and the pool keeps working.
        let pool = MemoPool::with_shards_and_capacity(1, Some(4));
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let spec = RewardSpec::default();
        for i in 0..5 {
            let bw = 1.0 + i as f64;
            pool.get_or_insert_with(&c, bw, || Evaluation::new(0.9, 50.0, &spec));
        }
        assert_eq!(pool.evictions(), 4);
        assert_eq!(pool.len(), 1);
        // Re-inserting an evicted key recomputes (a miss).
        let misses_before = pool.misses();
        pool.get_or_insert_with(&c, 1.0, || Evaluation::new(0.9, 50.0, &spec));
        assert_eq!(pool.misses(), misses_before + 1);
        // Hitting an existing key at capacity does not evict.
        let evictions_before = pool.evictions();
        pool.get_or_insert_with(&c, 1.0, || unreachable!("must hit"));
        assert_eq!(pool.evictions(), evictions_before);
    }

    #[test]
    fn stats_snapshot_matches_counters() {
        let pool = MemoPool::with_shards(4);
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let spec = RewardSpec::default();
        for i in 0..16 {
            let bw = 1.0 + (i % 8) as f64;
            pool.get_or_insert_with(&c, bw, || Evaluation::new(0.9, 50.0, &spec));
        }
        let stats = pool.stats();
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|s| s.hits).sum::<usize>(), pool.hits());
        assert_eq!(stats.iter().map(|s| s.misses).sum::<usize>(), pool.misses());
        assert_eq!(stats.iter().map(|s| s.entries).sum::<usize>(), pool.len());
        assert_eq!(pool.hits() + pool.misses(), 16);
        assert_eq!(pool.capacity_per_shard(), None);
    }

    #[test]
    fn publish_telemetry_reports_to_registry() {
        let pool = MemoPool::with_shards(2);
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let spec = RewardSpec::default();
        pool.get_or_insert_with(&c, 1.0, || Evaluation::new(0.9, 50.0, &spec));
        pool.get_or_insert_with(&c, 1.0, || unreachable!("must hit"));
        pool.publish_telemetry(); // telemetry off: no-op
        let ((), report) = cadmc_telemetry::testing::with_collector(|| {
            pool.publish_telemetry();
        });
        assert_eq!(report.metrics.counter("memo.hits"), Some(1));
        assert_eq!(report.metrics.counter("memo.misses"), Some(1));
        assert_eq!(report.metrics.counter("memo.entries"), Some(1));
        let shard_events = report
            .events
            .iter()
            .filter(|e| e.name == "memo.shard")
            .count();
        assert_eq!(shard_events, 2);
    }

    #[test]
    fn batched_probe_matches_single_probes() {
        // probe_many must agree with per-key get_key on both values and
        // counter deltas, across shard counts (including the degenerate
        // single shard) and duplicate keys within one batch.
        let spec = RewardSpec::default();
        for shards in [1, 4, 16] {
            let single = MemoPool::with_shards(shards);
            let batched = MemoPool::with_shards(shards);
            let keys: Vec<u64> = (0..64u64)
                .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .collect();
            for (n, &k) in keys.iter().enumerate().filter(|(n, _)| n % 3 != 0) {
                let e = Evaluation::new(0.9, 10.0 + n as f64, &spec);
                single.insert_key(k, e);
                batched.insert_key(k, e);
            }
            let mut probe: Vec<u64> = keys.clone();
            probe.extend_from_slice(&keys[..8]); // duplicates
            let got = batched.probe_many(&probe);
            let want: Vec<Option<Evaluation>> =
                probe.iter().map(|&k| single.get_key(k)).collect();
            assert_eq!(got, want, "{shards} shards");
            assert_eq!(batched.hits(), single.hits(), "{shards} shards");
            assert_eq!(batched.misses(), single.misses(), "{shards} shards");
        }
    }

    #[test]
    fn probe_many_of_empty_front_is_empty() {
        let pool = MemoPool::new();
        assert!(pool.probe_many(&[]).is_empty());
        assert_eq!(pool.hits() + pool.misses(), 0);
    }

    #[test]
    fn key_api_interoperates_with_candidate_api() {
        let pool = MemoPool::new();
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let spec = RewardSpec::default();
        let key = MemoPool::key(&c, 10.0);
        assert_eq!(pool.get_key(key), None);
        let e = pool.get_or_insert_with(&c, 10.0, || Evaluation::new(0.9, 50.0, &spec));
        assert_eq!(pool.get_key(key), Some(e));
        let via_key = pool.get_or_insert_key_with(key, || unreachable!("must hit"));
        assert_eq!(via_key, e);
    }

    #[test]
    fn single_shard_pool_still_works() {
        let pool = MemoPool::with_shards(1);
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let spec = RewardSpec::default();
        let e = pool.get_or_insert_with(&c, 5.0, || Evaluation::new(0.8, 40.0, &spec));
        let e2 = pool.get_or_insert_with(&c, 5.0, || unreachable!("must hit"));
        assert_eq!(e.reward, e2.reward);
        assert_eq!(pool.shard_lens(), vec![1]);
    }
}

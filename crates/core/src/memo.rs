//! Candidate-evaluation memoization — the paper's "memory pool storing the
//! hash code of searched models to avoid redundant computations" (§VII-A,
//! Training time).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use parking_lot::Mutex;

use crate::candidate::Candidate;
use crate::reward::Evaluation;

/// Thread-safe evaluation cache keyed by (model structure, cut, quantized
/// bandwidth).
#[derive(Debug, Default)]
pub struct MemoPool {
    map: Mutex<HashMap<u64, Evaluation>>,
    hits: std::sync::atomic::AtomicUsize,
    misses: std::sync::atomic::AtomicUsize,
}

impl MemoPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache key for a candidate at a bandwidth (bandwidth quantized to
    /// 0.01 Mbps so replayed levels hit the same entry).
    pub fn key(candidate: &Candidate, bandwidth_mbps: f64) -> u64 {
        let mut h = DefaultHasher::new();
        candidate.model.structural_hash().hash(&mut h);
        candidate.edge_layers.hash(&mut h);
        ((bandwidth_mbps * 100.0).round() as i64).hash(&mut h);
        h.finish()
    }

    /// Returns the cached evaluation or computes and stores it.
    pub fn get_or_insert_with(
        &self,
        candidate: &Candidate,
        bandwidth_mbps: f64,
        compute: impl FnOnce() -> Evaluation,
    ) -> Evaluation {
        let key = Self::key(candidate, bandwidth_mbps);
        {
            let map = self.map.lock();
            if let Some(&e) = map.get(&key) {
                self.hits
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return e;
            }
        }
        let e = compute();
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.map.lock().insert(key, e);
        e
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> usize {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of cached evaluations.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::RewardSpec;
    use cadmc_nn::zoo;

    #[test]
    fn second_lookup_hits() {
        let pool = MemoPool::new();
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let spec = RewardSpec::default();
        let mut computed = 0;
        for _ in 0..3 {
            let e = pool.get_or_insert_with(&c, 10.0, || {
                computed += 1;
                Evaluation::new(0.9, 50.0, &spec)
            });
            assert_eq!(e.accuracy, 0.9);
        }
        assert_eq!(computed, 1);
        assert_eq!(pool.hits(), 2);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        // The pool is shared across search workers (`parking_lot::Mutex`):
        // hammer it from several threads and check every thread saw the
        // same evaluation and the entry was computed at most a few times
        // (the get/compute/insert window allows benign duplicate compute).
        let pool = std::sync::Arc::new(MemoPool::new());
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let spec = RewardSpec::default();
        let computed = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = pool.clone();
            let c = c.clone();
            let computed = computed.clone();
            handles.push(std::thread::spawn(move || {
                let mut rewards = Vec::new();
                for _ in 0..200 {
                    let e = pool.get_or_insert_with(&c, 10.0, || {
                        computed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        Evaluation::new(0.9, 50.0, &RewardSpec::default())
                    });
                    rewards.push(e.reward);
                }
                rewards
            }));
        }
        let expected = spec.reward(0.9, 50.0);
        for h in handles {
            for r in h.join().expect("thread ok") {
                assert_eq!(r, expected);
            }
        }
        assert!(
            computed.load(std::sync::atomic::Ordering::Relaxed) <= 8,
            "entry recomputed more than once per thread"
        );
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn different_bandwidths_are_different_keys() {
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        assert_ne!(MemoPool::key(&c, 1.0), MemoPool::key(&c, 2.0));
        assert_eq!(MemoPool::key(&c, 1.0), MemoPool::key(&c, 1.001));
    }
}

//! Shared LRU cache of searched model trees, keyed by
//! `(IR hash, context-distribution hash)`.
//!
//! The serving layer runs one tree search per *distinct* (model, context
//! distribution) pair and then reuses the resulting [`ModelTree`] across
//! every session that presents the same pair. Entries hold
//! `Arc<ModelTree>` so sessions can keep walking a tree even after the
//! cache evicts it; eviction is least-recently-used over a logical tick
//! counter (no wall clock — the cache must behave identically across
//! runs and worker counts).
//!
//! Like [`MemoPool`](crate::memo::MemoPool), the only reporting surface
//! is the telemetry metrics registry ([`TreeCache::publish_telemetry`]);
//! the cache itself never prints.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use cadmc_telemetry as telemetry;

use crate::tree::ModelTree;

/// Default number of distinct (model, context) trees kept resident.
pub const DEFAULT_TREE_CAPACITY: usize = 8;

/// One cached tree plus its LRU bookkeeping.
#[derive(Debug)]
struct Entry {
    key: (u64, u64),
    tree: Arc<ModelTree>,
    last_used: u64,
}

/// Interior state: a small vector scan is cheaper and more predictable
/// than a map for the handful of distinct trees a server keeps warm.
#[derive(Debug)]
struct Inner {
    entries: Vec<Entry>,
    tick: u64,
}

/// Counter snapshot (see [`TreeCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TreeCacheStats {
    /// Lookups served from the cache.
    pub hits: usize,
    /// Lookups that had to search.
    pub misses: usize,
    /// Entries dropped by LRU eviction.
    pub evictions: usize,
    /// Entries currently cached.
    pub entries: usize,
}

/// Thread-safe LRU cache of `Arc<ModelTree>` keyed by
/// `(ir_hash, ctx_hash)`.
#[derive(Debug)]
pub struct TreeCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

impl TreeCache {
    /// A cache holding up to `capacity` trees (floored at 1).
    pub fn new(capacity: usize) -> Self {
        TreeCache {
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
        }
    }

    /// Poison-recovering lock: a panicking holder leaves the state
    /// consistent (every mutation is a single push/remove/assign).
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a tree, refreshing its recency on hit.
    pub fn get(&self, key: (u64, u64)) -> Option<Arc<ModelTree>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.entries.iter_mut().find(|e| e.key == key) {
            e.last_used = tick;
            let tree = Arc::clone(&e.tree);
            drop(inner);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(tree);
        }
        drop(inner);
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Returns the cached tree or computes, stores and returns it. The
    /// lock is *not* held while `search` runs; two threads racing on the
    /// same fresh key may both search, and the first insert wins (both
    /// computed the same tree from the same key, so lookups stay
    /// consistent).
    pub fn get_or_insert_with<F>(&self, key: (u64, u64), search: F) -> Arc<ModelTree>
    where
        F: FnOnce() -> ModelTree,
    {
        if let Some(tree) = self.get(key) {
            return tree;
        }
        self.insert(key, Arc::new(search()))
    }

    /// Inserts a tree, evicting the least-recently-used entry when full.
    /// Returns the resident tree for `key` (the existing one if another
    /// thread inserted first).
    pub fn insert(&self, key: (u64, u64), tree: Arc<ModelTree>) -> Arc<ModelTree> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.entries.iter_mut().find(|e| e.key == key) {
            e.last_used = tick;
            return Arc::clone(&e.tree);
        }
        let mut evicted = 0usize;
        while inner.entries.len() >= self.capacity {
            let oldest = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i);
            match oldest {
                Some(i) => {
                    inner.entries.remove(i);
                    evicted += 1;
                }
                None => break,
            }
        }
        inner.entries.push(Entry {
            key,
            tree: Arc::clone(&tree),
            last_used: tick,
        });
        let resident = inner.entries.len();
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            telemetry::event!(
                "tree_cache.evict",
                evicted = evicted,
                resident = resident,
                ir_hash = key.0,
                ctx_hash = key.1,
            );
        }
        tree
    }

    /// Number of resident trees.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by LRU eviction.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TreeCacheStats {
        TreeCacheStats {
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
            entries: self.len(),
        }
    }

    /// Publishes cache totals into the telemetry metrics registry
    /// (`tree_cache.hits` / `.misses` / `.evictions` / `.entries`
    /// counters plus `tree_cache.{hit_rate,evictions,entries}` gauges
    /// for scrapers). No-op when telemetry is disabled.
    pub fn publish_telemetry(&self) {
        if !telemetry::enabled() {
            return;
        }
        let s = self.stats();
        telemetry::counter!("tree_cache.hits", s.hits as u64);
        telemetry::counter!("tree_cache.misses", s.misses as u64);
        telemetry::counter!("tree_cache.evictions", s.evictions as u64);
        telemetry::counter!("tree_cache.entries", s.entries as u64);
        let lookups = s.hits + s.misses;
        let rate = if lookups == 0 {
            0.0
        } else {
            s.hits as f64 / lookups as f64
        };
        telemetry::gauge!("tree_cache.hit_rate", rate);
        telemetry::gauge!("tree_cache.evictions", s.evictions as f64);
        telemetry::gauge!("tree_cache.entries", s.entries as f64);
    }
}

impl Default for TreeCache {
    fn default() -> Self {
        TreeCache::new(DEFAULT_TREE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ModelTree;
    use cadmc_nn::zoo;

    fn tree(k: usize) -> ModelTree {
        let levels: Vec<f64> = (0..k).map(|i| 2.0 + 10.0 * i as f64).collect();
        ModelTree::new(zoo::tiny_cnn(), 2, levels)
    }

    #[test]
    fn hit_returns_same_tree() {
        let cache = TreeCache::new(2);
        let a = cache.get_or_insert_with((1, 1), || tree(2));
        let b = cache.get_or_insert_with((1, 1), || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = TreeCache::new(2);
        cache.get_or_insert_with((1, 0), || tree(2));
        cache.get_or_insert_with((2, 0), || tree(2));
        // Touch (1, 0) so (2, 0) is the LRU victim.
        assert!(cache.get((1, 0)).is_some());
        cache.get_or_insert_with((3, 0), || tree(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get((2, 0)).is_none());
        assert!(cache.get((1, 0)).is_some());
        assert!(cache.get((3, 0)).is_some());
    }

    #[test]
    fn evicted_tree_stays_usable_through_arc() {
        let cache = TreeCache::new(1);
        let held = cache.get_or_insert_with((1, 0), || tree(2));
        cache.get_or_insert_with((2, 0), || tree(3));
        assert!(cache.get((1, 0)).is_none());
        // The session that held the Arc keeps a fully usable tree.
        assert_eq!(held.k(), 2);
    }

    #[test]
    fn capacity_floors_at_one() {
        let cache = TreeCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.get_or_insert_with((1, 0), || tree(2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn publish_telemetry_reports_to_registry() {
        let cache = TreeCache::new(2);
        cache.get_or_insert_with((9, 9), || tree(2));
        cache.get_or_insert_with((9, 9), || unreachable!("must hit"));
        cache.publish_telemetry(); // telemetry off: no-op
        let ((), report) = cadmc_telemetry::testing::with_collector(|| {
            cache.publish_telemetry();
        });
        assert_eq!(report.metrics.counter("tree_cache.hits"), Some(1));
        assert_eq!(report.metrics.counter("tree_cache.misses"), Some(1));
        assert_eq!(report.metrics.counter("tree_cache.entries"), Some(1));
        assert_eq!(report.metrics.gauge("tree_cache.hit_rate"), Some(0.5));
        assert_eq!(report.metrics.gauge("tree_cache.entries"), Some(1.0));
    }

    #[test]
    fn eviction_emits_event_when_traced() {
        let cache = TreeCache::new(1);
        let ((), report) = cadmc_telemetry::testing::with_collector(|| {
            cache.get_or_insert_with((1, 0), || tree(2));
            cache.get_or_insert_with((2, 0), || tree(3));
            cache.publish_telemetry();
        });
        let evict = report
            .events
            .iter()
            .find(|e| e.name == "tree_cache.evict")
            .expect("eviction event");
        assert_eq!(evict.field_f64("evicted"), Some(1.0));
        assert_eq!(evict.field_f64("ir_hash"), Some(2.0));
        assert_eq!(report.metrics.counter("tree_cache.evictions"), Some(1));
        assert_eq!(report.metrics.gauge("tree_cache.evictions"), Some(1.0));
    }
}

//! Persistence of offline-phase artifacts.
//!
//! The paper's workflow trains model trees offline and ships them to the
//! device for the online phase (Fig. 2); this module provides the
//! serialization boundary: JSON save/load for [`ModelTree`]s and
//! [`Candidate`]s, so a deployment can be produced on a workstation and
//! loaded by an edge runtime.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::candidate::Candidate;
use crate::tree::ModelTree;
use crate::validate::{self, ValidateError};

/// Errors from saving/loading artifacts.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// (De)serialization failure.
    Serde(serde_json::Error),
    /// The artifact deserialized but violates a model-graph invariant.
    Invalid(ValidateError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Serde(e) => write!(f, "serialization error: {e}"),
            PersistError::Invalid(e) => write!(f, "invalid artifact: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Serde(e) => Some(e),
            PersistError::Invalid(e) => Some(e),
        }
    }
}

impl From<ValidateError> for PersistError {
    fn from(e: ValidateError) -> Self {
        PersistError::Invalid(e)
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Serde(e)
    }
}

/// Saves a model tree as pretty-printed JSON.
///
/// # Errors
///
/// Returns [`PersistError`] on filesystem or serialization failure.
pub fn save_tree(tree: &ModelTree, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let json = serde_json::to_string_pretty(tree)?;
    let mut f = fs::File::create(path)?;
    f.write_all(json.as_bytes())?;
    Ok(())
}

/// Loads a model tree saved by [`save_tree`] and audits every model-tree
/// invariant before returning it — a deserialized tree is untrusted input
/// (hand-edited files, version skew), so this is the validation trust
/// boundary for the online phase.
///
/// # Errors
///
/// Returns [`PersistError`] on filesystem or deserialization failure, or
/// [`PersistError::Invalid`] when the tree violates a structural
/// invariant.
pub fn load_tree(path: impl AsRef<Path>) -> Result<ModelTree, PersistError> {
    let json = fs::read_to_string(path)?;
    let tree: ModelTree = serde_json::from_str(&json)?;
    validate::model_tree(&tree)?;
    Ok(tree)
}

/// Saves a candidate deployment as JSON.
///
/// # Errors
///
/// Returns [`PersistError`] on filesystem or serialization failure.
pub fn save_candidate(candidate: &Candidate, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let json = serde_json::to_string_pretty(candidate)?;
    let mut f = fs::File::create(path)?;
    f.write_all(json.as_bytes())?;
    Ok(())
}

/// Loads a candidate saved by [`save_candidate`] and checks it against
/// its own embedded base model.
///
/// # Errors
///
/// Returns [`PersistError`] on filesystem or deserialization failure, or
/// [`PersistError::Invalid`] when the candidate is malformed.
pub fn load_candidate(path: impl AsRef<Path>) -> Result<Candidate, PersistError> {
    let json = fs::read_to_string(path)?;
    let candidate: Candidate = serde_json::from_str(&json)?;
    validate::model_spec(&candidate.model)?;
    Ok(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::MemoPool;
    use crate::search::{Controllers, SearchConfig};
    use crate::tree_search::tree_search;
    use crate::EvalEnv;
    use cadmc_nn::zoo;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cadmc-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn tree_roundtrips_through_disk() {
        let base = zoo::tiny_cnn();
        let env = EvalEnv::phone();
        let cfg = SearchConfig {
            episodes: 10,
            ..SearchConfig::quick(1)
        };
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        let result = tree_search(
            &mut controllers,
            &base,
            &env,
            &[2.0, 10.0],
            3,
            &cfg,
            &memo,
            false,
            None,
        )
        .expect("valid inputs");
        let path = tmp("tree.json");
        save_tree(&result.tree, &path).unwrap();
        let loaded = load_tree(&path).unwrap();
        assert_eq!(loaded, result.tree);
        // The loaded tree composes exactly like the original.
        let (p1, c1) = result.tree.compose(|_| 5.0);
        let (p2, c2) = loaded.compose(|_| 5.0);
        assert_eq!(p1, p2);
        assert_eq!(c1, c2);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn candidate_roundtrips_through_disk() {
        let base = zoo::vgg11_cifar();
        let c = crate::Candidate::base_all_edge(&base);
        let path = tmp("candidate.json");
        save_candidate(&c, &path).unwrap();
        let loaded = load_candidate(&path).unwrap();
        assert_eq!(loaded, c);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_tree("/nonexistent/cadmc/tree.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn load_structurally_invalid_tree_is_rejected() {
        // A tree whose root claims a nonzero level deserializes fine but
        // violates the level-chain invariant; load_tree must reject it.
        let base = zoo::tiny_cnn();
        let mut tree = crate::tree::ModelTree::new(base, 3, vec![2.0, 10.0]);
        tree.push_node(
            None,
            crate::tree::TreeNode {
                level: 1,
                partition_abs: None,
                actions: Vec::new(),
                feature: cadmc_compress::FeatureAction::IDENTITY,
                children: Vec::new(),
                reward: 0.0,
            },
        );
        let path = tmp("invalid-tree.json");
        let json = serde_json::to_string_pretty(&tree).unwrap();
        std::fs::write(&path, json).unwrap();
        let err = load_tree(&path).unwrap_err();
        assert!(matches!(err, PersistError::Invalid(_)), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_garbage_is_serde_error() {
        let path = tmp("garbage.json");
        std::fs::write(&path, "not json at all").unwrap();
        let err = load_tree(&path).unwrap_err();
        assert!(matches!(err, PersistError::Serde(_)));
        let _ = std::fs::remove_file(path);
    }
}

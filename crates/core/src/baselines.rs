//! Non-RL search baselines for Fig. 7: **random search** and **ε-greedy
//! search** over the same (partition × compression) action space and the
//! same episode budget as the RL engine. (The paper rules out exhaustive
//! search: the space grows exponentially in depth.)

use cadmc_compress::{CompressionPlan, FeatureAction, Technique};
use cadmc_latency::Mbps;
use cadmc_nn::ModelSpec;
use cadmc_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::branch::SearchOutcome;
use crate::candidate::{Candidate, Partition};
use crate::delta::DeltaState;
use crate::env::EvalEnv;
use crate::memo::MemoPool;
use crate::parallel::{par_map_indexed, Parallelism};
use crate::reward::Evaluation;
use crate::validate::{self, ValidateError};

/// Episodes per proposal batch: within a batch, proposals are generated in
/// parallel from the best candidate *at batch start* (each episode on its
/// own `seed ^ episode` RNG stream); best-so-far tracking is then applied
/// sequentially in episode order. Fixed — independent of worker count — so
/// results are bit-identical for any [`Parallelism`].
const BASELINE_BATCH: usize = 8;

/// Samples a uniformly random partition for `base`.
pub fn random_partition(base: &ModelSpec, rng: &mut StdRng) -> Partition {
    // Options: all-cloud, interior cuts, all-edge — uniform over L+1.
    let pick = rng.random_range(0..=base.len());
    if pick == 0 {
        Partition::AllCloud
    } else if pick == base.len() {
        Partition::AllEdge
    } else {
        Partition::AfterLayer(pick - 1)
    }
}

/// Samples a uniformly random applicable compression plan for the first
/// `edge_len` layers of `base` (respecting the F3-conflict rule).
pub fn random_plan(base: &ModelSpec, edge_len: usize, rng: &mut StdRng) -> CompressionPlan {
    let mut plan = CompressionPlan::identity(base.len());
    let mut f3_used = false;
    let mut f_used = false;
    for i in 0..edge_len {
        let mut options: Vec<Option<Technique>> = vec![None];
        for t in Technique::applicable_at(base, i) {
            let conflict = match t {
                Technique::F3Gap => f3_used || f_used,
                Technique::F1Svd | Technique::F2Ksvd => f3_used,
                _ => false,
            };
            if !conflict {
                options.push(Some(t));
            }
        }
        let pick = options[rng.random_range(0..options.len())];
        if let Some(t) = pick {
            plan.set(i, Some(t));
            match t {
                Technique::F3Gap => f3_used = true,
                Technique::F1Svd | Technique::F2Ksvd => f_used = true,
                _ => {}
            }
        }
    }
    plan
}

fn edge_len_of(base: &ModelSpec, p: Partition) -> usize {
    match p {
        Partition::AllEdge => base.len(),
        Partition::AllCloud => 0,
        Partition::AfterLayer(i) => i + 1,
    }
}

fn random_proposal(
    base: &ModelSpec,
    rng: &mut StdRng,
) -> (Partition, CompressionPlan, FeatureAction) {
    let partition = random_partition(base, rng);
    let plan = random_plan(base, edge_len_of(base, partition), rng);
    (partition, plan, FeatureAction::IDENTITY)
}

/// Samples a uniformly random feature action for the cut tensor. Only
/// called for transfer-bearing partitions, so the feature-enabled
/// baselines draw from the RNG exactly when the RL engine would.
pub fn random_feature(rng: &mut StdRng) -> FeatureAction {
    FeatureAction::from_index(rng.random_range(0..FeatureAction::COUNT))
}

fn random_proposal_features(
    base: &ModelSpec,
    rng: &mut StdRng,
) -> (Partition, CompressionPlan, FeatureAction) {
    let partition = random_partition(base, rng);
    let plan = random_plan(base, edge_len_of(base, partition), rng);
    let feature = if edge_len_of(base, partition) < base.len() {
        random_feature(rng)
    } else {
        FeatureAction::IDENTITY
    };
    (partition, plan, feature)
}

#[cfg(test)]
fn random_candidate(base: &ModelSpec, rng: &mut StdRng) -> Candidate {
    let (partition, plan, _) = random_proposal(base, rng);
    Candidate::compose(base, partition, &plan).expect("random plans are applicable")
}

/// Proposals stay as (partition, plan) decisions so the episode loop can
/// probe the memo by delta key and only compose candidates on misses or
/// improvements — the same deferral the RL hot path uses.
#[allow(clippy::too_many_arguments)]
fn run_search(
    base: &ModelSpec,
    env: &EvalEnv,
    bandwidth: Mbps,
    episodes: usize,
    seed: u64,
    memo: &MemoPool,
    par: Parallelism,
    propose: impl Fn(&mut StdRng, Option<&Candidate>) -> (Partition, CompressionPlan, FeatureAction)
        + Sync,
) -> Result<SearchOutcome, ValidateError> {
    validate::model_spec(base)?;
    validate::bandwidth(bandwidth.0)?;
    if episodes == 0 {
        return Err(ValidateError::BadConfig {
            field: "episodes",
            detail: "must be at least 1".to_string(),
        });
    }
    let search_span = telemetry::span!(
        "baseline.search",
        episodes = episodes,
        bandwidth = bandwidth.0,
        workers = par.workers,
    );
    let mut episode_rewards = Vec::with_capacity(episodes);
    let mut best: Option<(Candidate, Evaluation)> = None;
    let mut improvers: Vec<(Candidate, Evaluation)> = Vec::new();
    let mut batch_start = 0;
    while batch_start < episodes {
        let batch_end = (batch_start + BASELINE_BATCH).min(episodes);
        let anchor = best.as_ref().map(|(c, _)| c.clone());
        let rollouts = par_map_indexed(batch_end - batch_start, par.workers, |offset| {
            let episode = batch_start + offset;
            let episode_span = telemetry::span!("baseline.episode", episode = episode);
            let mut rng = StdRng::seed_from_u64(seed ^ episode as u64);
            let (partition, plan, feature) = propose(&mut rng, anchor.as_ref());
            let mut delta = DeltaState::from_plan(base, partition, &plan);
            delta.set_feature(feature);
            let key = delta.eval_key(bandwidth.0);
            let eval = memo.get_key(key).unwrap_or_else(|| {
                let candidate = delta
                    .materialize()
                    .expect("random plans are applicable");
                let e = env.evaluate(base, &candidate, bandwidth);
                memo.insert_key(key, e);
                e
            });
            episode_span.record("reward", eval.reward);
            (delta, eval)
        });
        for (delta, eval) in rollouts {
            episode_rewards.push(eval.reward);
            let replace = match &best {
                Some((_, be)) => eval.reward > be.reward,
                None => true,
            };
            if replace {
                let candidate = delta
                    .materialize()
                    .expect("random plans are applicable");
                improvers.push((candidate.clone(), eval));
                best = Some((candidate, eval));
            }
        }
        batch_start = batch_end;
    }
    let (best, best_eval) = best.expect("episodes >= 1 was validated");
    search_span.record("best_reward", best_eval.reward);
    Ok(SearchOutcome {
        best,
        best_eval,
        episode_rewards,
        improvers,
    })
}

/// Pure random search: every episode samples a fresh uniform candidate.
///
/// # Errors
///
/// Returns [`ValidateError`] for an empty model, non-finite bandwidth or
/// a zero episode budget.
pub fn random_search(
    base: &ModelSpec,
    env: &EvalEnv,
    bandwidth: Mbps,
    episodes: usize,
    seed: u64,
    memo: &MemoPool,
    par: Parallelism,
) -> Result<SearchOutcome, ValidateError> {
    run_search(base, env, bandwidth, episodes, seed, memo, par, |rng, _| {
        random_proposal(base, rng)
    })
}

/// ε-greedy search: with probability ε explore a uniform random candidate,
/// otherwise locally mutate the best candidate found so far (re-randomize
/// one layer's compression action, or nudge the partition point). Within a
/// rollout batch, mutations start from the best candidate at batch start.
///
/// # Errors
///
/// Returns [`ValidateError`] for an empty model, non-finite bandwidth,
/// zero episode budget or an ε outside `[0, 1]`.
#[allow(clippy::too_many_arguments)]
pub fn epsilon_greedy_search(
    base: &ModelSpec,
    env: &EvalEnv,
    bandwidth: Mbps,
    episodes: usize,
    epsilon: f64,
    seed: u64,
    memo: &MemoPool,
    par: Parallelism,
) -> Result<SearchOutcome, ValidateError> {
    if !epsilon.is_finite() || !(0.0..=1.0).contains(&epsilon) {
        return Err(ValidateError::BadConfig {
            field: "explore_epsilon",
            detail: format!("probability {epsilon} must be in [0, 1]"),
        });
    }
    run_search(
        base,
        env,
        bandwidth,
        episodes,
        seed,
        memo,
        par,
        |rng, best| match best {
            Some(b) if rng.random_range(0.0..1.0) >= epsilon => mutate(base, b, rng),
            _ => random_proposal(base, rng),
        },
    )
}

/// [`random_search`] over the *enlarged* action space: each proposal also
/// draws a uniform feature-compression action for transfer-bearing cuts.
/// Mirrors what `SearchConfig::feature_actions` does for the RL engine.
///
/// # Errors
///
/// Same as [`random_search`].
pub fn random_search_features(
    base: &ModelSpec,
    env: &EvalEnv,
    bandwidth: Mbps,
    episodes: usize,
    seed: u64,
    memo: &MemoPool,
    par: Parallelism,
) -> Result<SearchOutcome, ValidateError> {
    run_search(base, env, bandwidth, episodes, seed, memo, par, |rng, _| {
        random_proposal_features(base, rng)
    })
}

/// [`epsilon_greedy_search`] over the enlarged action space: explore steps
/// sample a uniform feature action alongside the uniform candidate, and
/// mutations inherit the incumbent's feature.
///
/// # Errors
///
/// Same as [`epsilon_greedy_search`].
#[allow(clippy::too_many_arguments)]
pub fn epsilon_greedy_search_features(
    base: &ModelSpec,
    env: &EvalEnv,
    bandwidth: Mbps,
    episodes: usize,
    epsilon: f64,
    seed: u64,
    memo: &MemoPool,
    par: Parallelism,
) -> Result<SearchOutcome, ValidateError> {
    if !epsilon.is_finite() || !(0.0..=1.0).contains(&epsilon) {
        return Err(ValidateError::BadConfig {
            field: "explore_epsilon",
            detail: format!("probability {epsilon} must be in [0, 1]"),
        });
    }
    run_search(
        base,
        env,
        bandwidth,
        episodes,
        seed,
        memo,
        par,
        |rng, best| match best {
            Some(b) if rng.random_range(0.0..1.0) >= epsilon => mutate(base, b, rng),
            _ => random_proposal_features(base, rng),
        },
    )
}

/// One local move in the (partition × compression) space. The current
/// candidate's feature action rides along unchanged (the delta layer
/// normalizes it to identity if the move removes the transfer).
fn mutate(
    base: &ModelSpec,
    current: &Candidate,
    rng: &mut StdRng,
) -> (Partition, CompressionPlan, FeatureAction) {
    let mut partition = current.partition;
    // Rebuild the plan from the candidate's recorded actions.
    let mut plan = CompressionPlan::identity(base.len());
    for a in &current.actions {
        plan.set(a.layer_index, Some(a.technique));
    }
    if rng.random_range(0.0..1.0) < 0.5 {
        // Nudge the partition point by one layer.
        let cur = match partition {
            Partition::AllCloud => 0isize,
            Partition::AfterLayer(i) => i as isize + 1,
            Partition::AllEdge => base.len() as isize,
        };
        let next = (cur + if rng.random_range(0..2) == 0 { -1 } else { 1 })
            .clamp(0, base.len() as isize);
        partition = if next == 0 {
            Partition::AllCloud
        } else if next == base.len() as isize {
            Partition::AllEdge
        } else {
            Partition::AfterLayer(next as usize - 1)
        };
    } else {
        // Re-randomize one layer's action within the edge region.
        let edge_len = edge_len_of(base, partition);
        if edge_len > 0 {
            let i = rng.random_range(0..edge_len);
            let fresh = random_plan(base, edge_len, rng);
            plan.set(i, fresh.get(i));
        }
    }
    // Clamp the plan to the edge region; conflicts the mutation may have
    // introduced (e.g. a second F3) are dropped when the plan composes —
    // `Candidate::compose` sanitizes, so proposals stay total.
    let edge_len = edge_len_of(base, partition);
    for i in edge_len..base.len() {
        plan.set(i, None);
    }
    (partition, plan, current.feature)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;

    #[test]
    fn random_search_finds_valid_candidates() {
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let memo = MemoPool::new();
        let out = random_search(&base, &env, Mbps(10.0), 40, 1, &memo, Parallelism::serial())
            .expect("valid inputs");
        assert_eq!(out.episode_rewards.len(), 40);
        assert!(out.best_eval.reward > 0.0);
    }

    #[test]
    fn epsilon_greedy_is_at_least_as_good_as_its_explore_phase() {
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let memo = MemoPool::new();
        let out =
            epsilon_greedy_search(&base, &env, Mbps(10.0), 60, 0.3, 2, &memo, Parallelism::serial())
                .expect("valid inputs");
        let curve = out.best_so_far();
        assert!(curve.last().unwrap() >= curve.first().unwrap());
    }

    #[test]
    fn random_candidates_cover_the_space() {
        let base = zoo::vgg11_cifar();
        let mut rng = StdRng::seed_from_u64(3);
        let mut partitions = std::collections::HashSet::new();
        let mut any_compressed = false;
        for _ in 0..60 {
            let c = random_candidate(&base, &mut rng);
            partitions.insert(format!("{}", c.partition));
            any_compressed |= c.is_compressed();
        }
        assert!(partitions.len() > 5, "only {} partitions seen", partitions.len());
        assert!(any_compressed);
    }

    #[test]
    fn mutation_produces_valid_candidates() {
        let base = zoo::vgg11_cifar();
        let mut rng = StdRng::seed_from_u64(4);
        let mut c = random_candidate(&base, &mut rng);
        for _ in 0..50 {
            let (partition, plan, _) = mutate(&base, &c, &mut rng);
            c = Candidate::compose(&base, partition, &plan).expect("mutations compose");
            assert_eq!(c.model.output_shape(), base.output_shape());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let base = zoo::tiny_cnn();
        let env = EvalEnv::phone();
        let a = random_search(&base, &env, Mbps(5.0), 20, 7, &MemoPool::new(), Parallelism::serial())
            .expect("valid inputs");
        let b = random_search(&base, &env, Mbps(5.0), 20, 7, &MemoPool::new(), Parallelism::serial())
            .expect("valid inputs");
        assert_eq!(a.episode_rewards, b.episode_rewards);
    }

    #[test]
    fn feature_baselines_explore_the_enlarged_space() {
        let base = zoo::tiny_cnn();
        let env = EvalEnv::phone();
        let memo = MemoPool::new();
        let out = random_search_features(
            &base,
            &env,
            Mbps(0.5),
            60,
            9,
            &memo,
            Parallelism::serial(),
        )
        .expect("valid inputs");
        assert_eq!(out.episode_rewards.len(), 60);
        // The winner always validates under the enlarged-space rules.
        validate::candidate(&base, &out.best).unwrap();
        // Under starved bandwidth, some improver should have shipped a
        // compressed cut tensor (16–32x fewer bytes dominate the reward).
        let any_feature = out
            .improvers
            .iter()
            .any(|(c, _)| !c.feature.is_identity());
        assert!(any_feature, "no feature action ever improved the search");
    }

    #[test]
    fn plain_baselines_never_pick_features() {
        let base = zoo::tiny_cnn();
        let env = EvalEnv::phone();
        let out = random_search(
            &base,
            &env,
            Mbps(0.5),
            40,
            9,
            &MemoPool::new(),
            Parallelism::serial(),
        )
        .expect("valid inputs");
        assert!(out.best.feature.is_identity());
        assert!(out.improvers.iter().all(|(c, _)| c.feature.is_identity()));
    }

    #[test]
    fn feature_search_is_deterministic_across_workers() {
        let base = zoo::tiny_cnn();
        let env = EvalEnv::phone();
        let serial = epsilon_greedy_search_features(
            &base,
            &env,
            Mbps(0.5),
            30,
            0.3,
            13,
            &MemoPool::new(),
            Parallelism::serial(),
        )
        .expect("valid inputs");
        let parallel = epsilon_greedy_search_features(
            &base,
            &env,
            Mbps(0.5),
            30,
            0.3,
            13,
            &MemoPool::new(),
            Parallelism::new(8),
        )
        .expect("valid inputs");
        assert_eq!(serial.episode_rewards, parallel.episode_rewards);
        assert_eq!(serial.best, parallel.best);
    }

    #[test]
    fn identical_results_for_any_worker_count() {
        let base = zoo::tiny_cnn();
        let env = EvalEnv::phone();
        let serial = epsilon_greedy_search(
            &base,
            &env,
            Mbps(5.0),
            30,
            0.3,
            11,
            &MemoPool::new(),
            Parallelism::serial(),
        )
        .expect("valid inputs");
        let parallel = epsilon_greedy_search(
            &base,
            &env,
            Mbps(5.0),
            30,
            0.3,
            11,
            &MemoPool::new(),
            Parallelism::new(8),
        )
        .expect("valid inputs");
        assert_eq!(serial.episode_rewards, parallel.episode_rewards);
        assert_eq!(serial.best, parallel.best);
    }
}

//! **Algorithm 3 — Model Tree Search**: the two-stage RL procedure
//! (forward generation + backward estimation) that produces a
//! context-aware model tree.
//!
//! Forward generation walks the tree skeleton in BFS order; at each node
//! the partition and compression controllers — conditioned on that fork's
//! bandwidth type — transform the corresponding base block. Branch rewards
//! are computed for complete branches (leaves or partitioned nodes) and
//! propagated to shared ancestors by averaging (backward estimation), and
//! every node's actions are reinforced with its estimated reward.
//!
//! Implementation countermeasures from §VII-A are included: fair-chance
//! exploration (forced no-partition with decaying probability
//! `α·(N−n)/N`), optimal-branch boosting (Alg. 1 pre-training per
//! bandwidth level plus an explicitly grafted boost tree), and the
//! candidate memo pool.

use std::sync::Arc;

use cadmc_accuracy::AppliedAction;
use cadmc_compress::FeatureAction;
use cadmc_latency::Mbps;
use cadmc_netsim::BandwidthTrace;
use cadmc_nn::ModelSpec;
use cadmc_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::branch::optimal_branch;
use crate::executor::{execute, ExecConfig, Policy};
use crate::candidate::{Candidate, Partition};
use crate::controller::{EpisodeTape, HeadState, PartitionAction};
use crate::delta::DeltaState;
use crate::env::EvalEnv;
use crate::memo::MemoPool;
use crate::parallel::{par_map, par_map_indexed};
use crate::search::{Controllers, SearchConfig};
use crate::tree::{ModelTree, TreeNode};
use crate::validate::{self, ValidateError};

/// RNG stream salt for the tree search (`"tree"`).
const TREE_SALT: u64 = 0x7472_6565;

/// Result of a tree search.
#[derive(Debug, Clone)]
pub struct TreeSearchResult {
    /// The best tree found (highest mean branch reward).
    pub tree: ModelTree,
    /// Mean branch reward of each episode's generated tree.
    pub episode_scores: Vec<f64>,
    /// Best branch reward within the returned tree.
    pub best_branch_reward: f64,
}

/// Runs Algorithm 3 for `base` under the discretized bandwidth `levels`,
/// updating `controllers` in place. When `boost` is set, controllers are
/// first warmed with Algorithm 1 under each bandwidth level and an
/// explicit boost tree seeds the best-so-far (§VII-A "optimal branch
/// boosting"). When `selection_trace` is given, the finalists (the trees
/// that successively improved the internal score) are re-ranked by a
/// short emulation against that trace — the offline phase has the scene
/// traces available, and per-level point evaluation systematically
/// overvalues offloading branches relative to replayed execution.
///
/// # Errors
///
/// Returns [`ValidateError`] when the model, bandwidth levels, block
/// count or configuration fails [`validate::tree_inputs`]; no episode
/// runs in that case.
#[allow(clippy::too_many_arguments)]
pub fn tree_search(
    controllers: &mut Controllers,
    base: &ModelSpec,
    env: &EvalEnv,
    levels: &[f64],
    n_blocks: usize,
    cfg: &SearchConfig,
    memo: &MemoPool,
    boost: bool,
    selection_trace: Option<&BandwidthTrace>,
) -> Result<TreeSearchResult, ValidateError> {
    validate::tree_inputs(base, levels, n_blocks, cfg)?;
    let search_span = telemetry::span!(
        "tree.search",
        episodes = cfg.episodes,
        levels = levels.len(),
        blocks = n_blocks,
        boost = boost,
    );
    // Invariant: the best-so-far tree is always the most recently pushed
    // finalist (every improver is pushed when it sets the new best), so
    // no separate best copy is kept — improvers move into the pool.
    let mut best_score = f64::NEG_INFINITY;
    let mut finalists: Vec<ModelTree> = Vec::new();

    // Built once, shared read-only by every episode: the Arc'd base spec
    // (each episode's `ModelTree` now shares it instead of cloning all
    // layers) and the per-level block prefix slices the controllers
    // condition on.
    let base_arc: Arc<ModelSpec> = Arc::new(base.clone());
    let slices = BlockSlices::new(base, n_blocks);

    if boost {
        let _boost_span = telemetry::span!("tree.boost", levels = levels.len());
        let branch_cfg = SearchConfig {
            episodes: (cfg.episodes / 2).max(10),
            ..*cfg
        };
        let mut branch_candidates = Vec::new();
        for &bw in levels {
            let outcome =
                optimal_branch(controllers, base, env, Mbps(bw), &branch_cfg, memo)?;
            // The surgery deployment (min-cut partition, no compression)
            // is a point inside the branch space; floor each level's
            // candidate with it so the boost tree never starts below the
            // static baseline.
            let surgery = crate::surgery::plan(base, env, Mbps(bw));
            if surgery.evaluation.reward > outcome.best_eval.reward {
                branch_candidates.push(surgery.candidate);
            } else {
                branch_candidates.push(outcome.best);
            }
        }
        // Rigid trees (every fork takes the same branch solution) are
        // also valid deployments; include them in the selection pool so
        // the returned tree never executes worse than the best constant-
        // bandwidth branch.
        for cand in &branch_candidates {
            finalists.push(rigid_tree(&base_arc, env, levels, n_blocks, cand, memo));
        }
        let boosted = boost_tree(&base_arc, env, levels, n_blocks, &branch_candidates, memo);
        best_score = boosted.mean_branch_reward();
        finalists.push(boosted);
    }

    // Episodes roll out in batches of `cfg.rollout_batch` from frozen
    // controller parameters, fanned across `cfg.parallelism.workers`
    // threads; each episode generates (and backward-estimates) its tree on
    // its own `seed ^ episode` RNG stream, then the REINFORCE updates are
    // applied sequentially in episode order — bit-identical results for
    // any worker count.
    let mut episode_scores = Vec::with_capacity(cfg.episodes);
    let batch_size = cfg.rollout_batch.max(1);
    let mut batch_start = 0;
    while batch_start < cfg.episodes {
        let batch_end = (batch_start + batch_size).min(cfg.episodes);
        let rollouts = {
            let shared: &Controllers = controllers;
            let base_arc = &base_arc;
            let slices = &slices;
            par_map_indexed(
                batch_end - batch_start,
                cfg.parallelism.workers,
                |offset| {
                    let episode = batch_start + offset;
                    let episode_span = telemetry::span!("tree.episode", episode = episode);
                    let mut rng =
                        StdRng::seed_from_u64(cfg.seed ^ TREE_SALT ^ episode as u64);
                    let (mut tree, tapes) = generate_tree(
                        shared, base_arc, slices, env, levels, n_blocks, cfg, episode,
                        &mut rng, memo,
                    );
                    tree.backward_estimate_with(cfg.backward_rule);
                    episode_span.record("score", tree.mean_branch_reward());
                    (tree, tapes)
                },
            )
        };
        for (tree, tapes) in rollouts {
            let episodes: Vec<(EpisodeTape, f64)> = tapes
                .into_iter()
                .enumerate()
                .map(|(id, tape)| (tape, tree.nodes()[id].reward))
                .collect();
            controllers
                .trainer
                .update_batch(&mut controllers.params, episodes);
            let score = tree.mean_branch_reward();
            telemetry::hist!("tree.score", crate::branch::REWARD_BOUNDS, score);
            episode_scores.push(score);
            if score > best_score {
                best_score = score;
                finalists.push(tree);
            }
        }
        batch_start = batch_end;
    }

    let tree = if let Some(trace) = selection_trace {
        let _rerank_span = telemetry::span!("tree.rerank", finalists = finalists.len());
        // Re-rank the finalists by replayed execution; keep the seeded
        // rigid/boost trees plus the last few RL improvers to bound cost.
        if finalists.len() > 10 {
            finalists.drain(3..finalists.len() - 6);
        }
        // Emulations of distinct finalists are independent — fan them out.
        // The winner is picked by a strictly-greater scan in finalist
        // order, matching the serial semantics exactly.
        let exec_cfg = ExecConfig::emulation(300, cfg.seed);
        let exec_rewards = par_map(&finalists, cfg.parallelism.workers, |cand| {
            let report = execute(env, base, &Policy::Tree(cand), trace, &exec_cfg);
            report.evaluation(&env.reward).reward
        });
        let mut best_exec = f64::NEG_INFINITY;
        let mut winner = finalists.len() - 1;
        for (i, &r) in exec_rewards.iter().enumerate() {
            if r > best_exec {
                best_exec = r;
                winner = i;
            }
        }
        finalists.swap_remove(winner)
    } else {
        // The invariant above puts the internal best at the tail.
        finalists.pop().expect("episodes >= 1 was validated")
    };
    let best_branch_reward = tree
        .best_branch()
        .map(|(path, _)| tree.nodes()[*path.last().expect("non-empty")].reward)
        .unwrap_or(0.0);
    search_span.record("best_branch_reward", best_branch_reward);
    Ok(TreeSearchResult {
        tree,
        episode_scores,
        best_branch_reward,
    })
}

/// Per-level block prefix slices, built once per search and shared
/// read-only by every episode: `edge(level, c)` is
/// `base.slice(range.start, range.start + c)` without the per-node
/// slice reallocation the old per-episode path paid.
struct BlockSlices {
    per_level: Vec<Vec<ModelSpec>>,
}

impl BlockSlices {
    fn new(base: &ModelSpec, n_blocks: usize) -> Self {
        let per_level = base
            .block_ranges(n_blocks)
            .iter()
            .map(|r| {
                (r.start + 1..=r.end)
                    .map(|end| base.slice(r.start, end).expect("valid block slice"))
                    .collect()
            })
            .collect();
        Self { per_level }
    }

    /// The whole block at `level`.
    fn block(&self, level: usize) -> &ModelSpec {
        let v = &self.per_level[level];
        &v[v.len() - 1]
    }

    /// The first `len` layers of the block at `level` (`len >= 1`).
    fn edge(&self, level: usize, len: usize) -> &ModelSpec {
        &self.per_level[level][len - 1]
    }
}

/// Derives the branch decision delta for a root→leaf path: the partition
/// from the first cut on the path plus every action strictly below it —
/// no model composition. Matches [`ModelTree::compose_path`], whose
/// composition drops at-or-beyond-cut actions the same way.
fn path_delta<'a>(tree: &'a ModelTree, path: &[usize]) -> DeltaState<'a> {
    let mut cut: Option<usize> = None;
    let mut feature = FeatureAction::IDENTITY;
    for &id in path {
        let node = &tree.nodes()[id];
        if let Some(abs) = node.partition_abs {
            cut = Some(abs);
            feature = node.feature;
            break;
        }
    }
    let base = tree.base();
    let partition = match cut {
        Some(0) => Partition::AllCloud,
        Some(abs) => Partition::AfterLayer(abs - 1),
        None => Partition::AllEdge,
    };
    let mut delta = DeltaState::new(base, partition);
    delta.set_feature(feature);
    let edge_len = partition.edge_len(base.len());
    for &id in path {
        let node = &tree.nodes()[id];
        for a in &node.actions {
            // Compression never applies at or beyond the cut.
            if a.layer_index < edge_len {
                delta.push_action(a.layer_index, a.technique);
            }
        }
        if node.partition_abs.is_some() {
            break;
        }
    }
    delta
}

/// Scores a branch delta at one bandwidth: probe the memo by key,
/// compose + evaluate only on a miss.
fn score_delta(
    delta: &DeltaState<'_>,
    bw: f64,
    env: &EvalEnv,
    base: &ModelSpec,
    memo: &MemoPool,
) -> f64 {
    let key = delta.eval_key(bw);
    memo.get_key(key)
        .unwrap_or_else(|| {
            let candidate = delta.materialize().expect("tree paths compose");
            let e = env.evaluate(base, &candidate, Mbps(bw));
            memo.insert_key(key, e);
            e
        })
        .reward
}

/// Scores a branch delta as the mean over `levels`: one batched memo
/// probe for the whole front, composing at most once across all misses.
fn score_delta_mean(
    delta: &DeltaState<'_>,
    levels: &[f64],
    env: &EvalEnv,
    base: &ModelSpec,
    memo: &MemoPool,
) -> f64 {
    let keys: Vec<u64> = levels.iter().map(|&bw| delta.eval_key(bw)).collect();
    let probed = memo.probe_many(&keys);
    let mut candidate: Option<Candidate> = None;
    let mut sum = 0.0;
    for ((&bw, &key), hit) in levels.iter().zip(&keys).zip(probed) {
        let e = hit.unwrap_or_else(|| {
            let c = candidate
                .get_or_insert_with(|| delta.materialize().expect("tree paths compose"));
            let e = env.evaluate(base, c, Mbps(bw));
            memo.insert_key(key, e);
            e
        });
        sum += e.reward;
    }
    sum / levels.len() as f64
}

/// Forward generation of one episode's tree. Returns the tree (leaf
/// rewards filled in, interior rewards zero) and one tape per node,
/// indexed by node id.
#[allow(clippy::too_many_arguments)]
fn generate_tree(
    controllers: &Controllers,
    base: &Arc<ModelSpec>,
    slices: &BlockSlices,
    env: &EvalEnv,
    levels: &[f64],
    n_blocks: usize,
    cfg: &SearchConfig,
    episode: usize,
    rng: &mut StdRng,
    memo: &MemoPool,
) -> (ModelTree, Vec<EpisodeTape>) {
    let mut tree = ModelTree::new(Arc::clone(base), n_blocks, levels.to_vec());
    let mut tapes: Vec<EpisodeTape> = Vec::new();
    let mut parents: Vec<Option<usize>> = Vec::new();
    let mut head_states: Vec<HeadState> = Vec::new();
    // The root is shared by all forks: condition it on the levels' mean
    // (`levels[len/2]` would bias toward the *upper* level for K = 2).
    let median_bw = levels.iter().sum::<f64>() / levels.len() as f64;

    // BFS frontier: (parent id, fork index). The root conditions on the
    // median level; child forks condition on their level's bandwidth.
    let mut frontier: Vec<(Option<usize>, usize)> = vec![(None, 0)];
    while let Some((parent, fork)) = frontier.pop() {
        let level = parent.map_or(0, |p| tree.nodes()[p].level + 1);
        let bw = if parent.is_none() {
            median_bw
        } else {
            levels[fork]
        };
        let range = tree.block_range(level);
        let block = slices.block(level);
        let mut tape = EpisodeTape::new();
        let force = cfg.force_no_partition(episode, level + 1, n_blocks);
        let action = controllers.partition.sample(
            &mut tape,
            &controllers.params,
            block,
            bw,
            rng,
            force,
        );
        let (partition_abs, compress_len) = match action {
            PartitionAction::NoPartition => (None, block.len()),
            PartitionAction::CutBefore(c) => (Some(range.start + c), c),
        };
        let mut head_state = parent.map_or_else(HeadState::default, |p| head_states[p]);
        let mut actions: Vec<AppliedAction> = Vec::new();
        if compress_len > 0 {
            let edge_block = slices.edge(level, compress_len);
            let plan = controllers.compression.sample_with_state(
                &mut tape,
                &controllers.params,
                edge_block,
                bw,
                rng,
                &mut head_state,
            );
            for (local, a) in plan.actions().iter().enumerate() {
                if let Some(t) = a {
                    actions.push(AppliedAction {
                        layer_index: range.start + local,
                        technique: *t,
                    });
                }
            }
        }
        // The feature policy decides once per cut node: which bottleneck ×
        // quantization pair to apply to the cut tensor. Only cuts that
        // actually transfer bytes consult it, so the disabled path (and
        // every non-partitioned node) draws nothing from the RNG.
        let feature = match (&controllers.feature, partition_abs) {
            (Some(fc), Some(abs)) if abs < base.len() => {
                let raw_bytes = if abs == 0 {
                    base.input_bytes()
                } else {
                    base.cut_bytes_after(abs - 1)
                };
                let f = fc.sample(
                    &mut tape,
                    &controllers.params,
                    bw,
                    abs,
                    base.len(),
                    raw_bytes,
                    rng,
                );
                if !f.is_identity() {
                    telemetry::event!("compress.feature", action = f.code(), raw_bytes = raw_bytes,);
                    telemetry::counter!("compress.feature.picks", 1);
                }
                f
            }
            _ => FeatureAction::IDENTITY,
        };
        let node = TreeNode {
            level,
            partition_abs,
            actions,
            feature,
            children: Vec::new(),
            reward: 0.0,
        };
        let id = tree.push_node(parent, node);
        tapes.push(tape);
        parents.push(parent);
        head_states.push(head_state);

        let is_leaf = partition_abs.is_some() || level + 1 == n_blocks;
        if is_leaf {
            // Reconstruct the path and score the branch — by its decision
            // delta's key, composing only on a memo miss — at this node's
            // conditioning bandwidth.
            let mut path = vec![id];
            let mut cur = parent;
            while let Some(p) = cur {
                path.push(p);
                cur = parents[p];
            }
            path.reverse();
            let delta = path_delta(&tree, &path);
            // A root-level leaf (the whole tree is one branch) must be
            // judged across all levels, not at a single bandwidth.
            let reward = if parent.is_none() {
                score_delta_mean(&delta, levels, env, base, memo)
            } else {
                score_delta(&delta, bw, env, base, memo)
            };
            tree.node_mut(id).reward = reward;
        } else {
            for k in (0..levels.len()).rev() {
                frontier.push((Some(id), k));
            }
        }
    }
    (tree, tapes)
}

/// Builds a *rigid* tree that always deploys `cand` regardless of
/// measured bandwidth: every node follows the candidate's decisions for
/// its block, with a cut inside an earlier block carried at the first
/// opportunity. Executing it is equivalent to the static candidate.
pub fn rigid_tree(
    base: &Arc<ModelSpec>,
    env: &EvalEnv,
    levels: &[f64],
    n_blocks: usize,
    cand: &crate::candidate::Candidate,
    memo: &MemoPool,
) -> ModelTree {
    let mut tree = ModelTree::new(Arc::clone(base), n_blocks, levels.to_vec());
    let cut_abs = match cand.partition {
        Partition::AllEdge => None,
        Partition::AllCloud => Some(0),
        Partition::AfterLayer(i) => Some(i + 1),
    };
    let node_for_level = |level: usize| -> TreeNode {
        let range = tree_range(base, n_blocks, level);
        let node_cut = match cut_abs {
            Some(c) if c <= range.start => Some(range.start),
            Some(c) if range.contains(&c) => Some(c),
            _ => None,
        };
        let compress_to = node_cut.unwrap_or(range.end);
        let actions: Vec<AppliedAction> = cand
            .actions
            .iter()
            .filter(|a| a.layer_index >= range.start && a.layer_index < compress_to)
            .copied()
            .collect();
        TreeNode {
            level,
            partition_abs: node_cut,
            actions,
            // The node owning the cut carries the candidate's feature
            // action; everywhere else it is structurally identity.
            feature: if node_cut.is_some() {
                cand.feature
            } else {
                FeatureAction::IDENTITY
            },
            children: Vec::new(),
            reward: 0.0,
        }
    };
    // Root may carry a block-0 cut directly.
    let r0 = tree.block_range(0);
    let root_cut = cut_abs.filter(|&c| c < r0.end);
    let root_node = TreeNode {
        partition_abs: root_cut,
        ..node_for_level(0)
    };
    let root = tree.push_node(None, root_node);
    if root_cut.is_none() {
        // BFS-fill a complete K-ary tree of identical levels.
        let mut frontier = vec![root];
        while let Some(parent) = frontier.pop() {
            let level = tree.nodes()[parent].level + 1;
            if level >= n_blocks {
                continue;
            }
            for _ in 0..levels.len() {
                let node = node_for_level(level);
                let stop = node.partition_abs.is_some();
                let id = tree.push_node(Some(parent), node);
                if !stop {
                    frontier.push(id);
                }
            }
        }
    }
    complete_tree(&mut tree, env, memo);
    tree
}

/// Block range helper usable before the tree is fully built.
fn tree_range(base: &ModelSpec, n_blocks: usize, level: usize) -> std::ops::Range<usize> {
    base.block_ranges(n_blocks)[level].clone()
}

/// Builds the explicit boost tree: the root takes the best constant-
/// bandwidth branch solution's block-0 decisions — including its
/// partition, if that branch cuts inside block 0 (e.g. an all-cloud
/// deployment), in which case the whole tree *is* that branch. Otherwise
/// each fork `k` follows branch `k`'s decisions for the remaining blocks
/// (a partition that branch `k` placed inside block 0 is deferred to the
/// start of block 1, since a shared non-partitioned root cannot partition
/// per-fork).
fn boost_tree(
    base: &Arc<ModelSpec>,
    env: &EvalEnv,
    levels: &[f64],
    n_blocks: usize,
    branch_candidates: &[crate::candidate::Candidate],
    memo: &MemoPool,
) -> ModelTree {
    let mut tree = ModelTree::new(Arc::clone(base), n_blocks, levels.to_vec());
    // Root from the branch with the highest reward at its own level.
    let root_src = branch_candidates
        .iter()
        .zip(levels)
        .max_by(|(a, &bwa), (b, &bwb)| {
            let ra = env.evaluate(base, a, Mbps(bwa)).reward;
            let rb = env.evaluate(base, b, Mbps(bwb)).reward;
            ra.total_cmp(&rb)
        })
        .map(|(c, _)| c)
        .expect("one branch candidate per level");
    let r0 = tree.block_range(0);
    let root_cut = match root_src.partition {
        Partition::AllEdge => None,
        Partition::AllCloud => Some(0),
        Partition::AfterLayer(i) => Some(i + 1),
    }
    .filter(|&c| c < r0.end);
    let root_actions: Vec<AppliedAction> = root_src
        .actions
        .iter()
        .filter(|a| r0.contains(&a.layer_index) && root_cut.is_none_or(|c| a.layer_index < c))
        .copied()
        .collect();
    let root = tree.push_node(
        None,
        TreeNode {
            level: 0,
            partition_abs: root_cut,
            actions: root_actions,
            feature: if root_cut.is_some() {
                root_src.feature
            } else {
                FeatureAction::IDENTITY
            },
            children: Vec::new(),
            reward: 0.0,
        },
    );
    if root_cut.is_some() {
        // The best branch offloads within block 0: the tree degenerates to
        // that single branch (the paper concedes stable contexts gain
        // little from adaptation).
        complete_tree(&mut tree, env, memo);
        return tree;
    }

    // Fork k: follow branch k for blocks 1..N.
    for (k, cand) in branch_candidates.iter().enumerate() {
        let bw = levels[k];
        let cut_abs = match cand.partition {
            Partition::AllEdge => None,
            Partition::AllCloud => Some(0),
            Partition::AfterLayer(i) => Some(i + 1),
        };
        let mut parent = root;
        for level in 1..n_blocks {
            let range = tree.block_range(level);
            // Defer any cut from block 0 to the start of this block.
            let node_cut = match cut_abs {
                Some(c) if c <= range.start => Some(range.start),
                Some(c) if range.contains(&c) => Some(c),
                _ => None,
            };
            let compress_to = node_cut.unwrap_or(range.end);
            let actions: Vec<AppliedAction> = cand
                .actions
                .iter()
                .filter(|a| a.layer_index >= range.start && a.layer_index < compress_to)
                .copied()
                .collect();
            let id = tree.push_node(
                Some(parent),
                TreeNode {
                    level,
                    partition_abs: node_cut,
                    actions,
                    feature: if node_cut.is_some() {
                        cand.feature
                    } else {
                        FeatureAction::IDENTITY
                    },
                    children: Vec::new(),
                    reward: 0.0,
                },
            );
            if node_cut.is_some() {
                break;
            }
            parent = id;
            // Other forks at deeper levels replicate the same branch; the
            // outer loop only fills fork k's spine, so fill the sibling
            // forks lazily below.
        }
        let _ = bw;
    }
    complete_tree(&mut tree, env, memo);
    tree
}

/// Fills missing children (with identity blocks) so every interior node
/// has exactly `K` children, then scores all branch leaves.
fn complete_tree(tree: &mut ModelTree, env: &EvalEnv, memo: &MemoPool) {
    let k = tree.k();
    let n = tree.n_blocks();
    // Fill: iterate until no node needs children (node count grows).
    let mut i = 0;
    while i < tree.nodes().len() {
        let node = &tree.nodes()[i];
        let needs = node.partition_abs.is_none()
            && node.level + 1 < n
            && node.children.len() < k;
        if needs {
            let level = node.level + 1;
            while tree.nodes()[i].children.len() < k {
                tree.push_node(
                    Some(i),
                    TreeNode {
                        level,
                        partition_abs: None,
                        actions: Vec::new(),
                        feature: FeatureAction::IDENTITY,
                        children: Vec::new(),
                        reward: 0.0,
                    },
                );
            }
        }
        i += 1;
    }
    // Score every leaf at the bandwidth of the fork that reaches it; a
    // root-only path (the tree degenerated to one branch) is scored as the
    // mean over all K levels so rigid trees are not judged at a single
    // optimistic bandwidth. The whole expansion front is probed against
    // the memo in one batch (one lock per touched shard), and a branch is
    // composed only when one of its bandwidths misses.
    let scored: Vec<(usize, f64)> = {
        let branches = tree.branches();
        let levels: Vec<f64> = tree.levels().to_vec();
        let base = tree.base();
        let mut jobs: Vec<(usize, DeltaState<'_>, Vec<f64>)> =
            Vec::with_capacity(branches.len());
        let mut starts: Vec<usize> = Vec::with_capacity(branches.len());
        let mut keys: Vec<u64> = Vec::new();
        for path in &branches {
            let leaf = *path.last().expect("non-empty branch");
            let delta = path_delta(tree, path);
            let bws: Vec<f64> = if path.len() >= 2 {
                let parent = path[path.len() - 2];
                let fork = tree.nodes()[parent]
                    .children
                    .iter()
                    .position(|&c| c == leaf)
                    .expect("leaf is its parent's child");
                vec![levels[fork]]
            } else {
                levels.clone()
            };
            starts.push(keys.len());
            keys.extend(bws.iter().map(|&bw| delta.eval_key(bw)));
            jobs.push((leaf, delta, bws));
        }
        let probed = memo.probe_many(&keys);
        jobs.into_iter()
            .zip(starts)
            .map(|((leaf, delta, bws), start)| {
                let mut candidate: Option<Candidate> = None;
                let mut sum = 0.0;
                for (j, &bw) in bws.iter().enumerate() {
                    let key = keys[start + j];
                    let e = probed[start + j].unwrap_or_else(|| {
                        let c = candidate.get_or_insert_with(|| {
                            delta.materialize().expect("tree paths compose")
                        });
                        let e = env.evaluate(base, c, Mbps(bw));
                        memo.insert_key(key, e);
                        e
                    });
                    sum += e.reward;
                }
                (leaf, sum / bws.len() as f64)
            })
            .collect()
    };
    for (leaf, reward) in scored {
        tree.node_mut(leaf).reward = reward;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;

    fn quick_search(seed: u64, boost: bool) -> (TreeSearchResult, Controllers) {
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let cfg = SearchConfig {
            episodes: 25,
            ..SearchConfig::quick(seed)
        };
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        let ctx = crate::context::NetworkContext::from_scenario(
            cadmc_netsim::Scenario::WifiWeakIndoor,
            2,
            seed,
        );
        let result = tree_search(
            &mut controllers,
            &base,
            &env,
            ctx.levels(),
            3,
            &cfg,
            &memo,
            boost,
            Some(ctx.trace()),
        )
        .expect("valid inputs");
        (result, controllers)
    }

    #[test]
    fn produces_structurally_valid_trees() {
        let (result, _) = quick_search(1, false);
        let tree = &result.tree;
        assert!(tree.root().is_some());
        for node in tree.nodes() {
            assert!(
                node.children.is_empty() || node.children.len() == tree.k(),
                "interior nodes must have exactly K children"
            );
            if node.partition_abs.is_some() {
                assert!(node.children.is_empty(), "partitioned nodes are leaves");
            }
        }
        // Every branch composes into a valid candidate.
        for path in tree.branches() {
            let c = tree.compose_path(&path);
            assert_eq!(c.model.output_shape(), tree.base().output_shape());
        }
    }

    #[test]
    fn episode_scores_are_rewards() {
        let (result, _) = quick_search(2, false);
        assert_eq!(result.episode_scores.len(), 25);
        for &s in &result.episode_scores {
            assert!((0.0..=400.0).contains(&s));
        }
        assert!(result.best_branch_reward > 0.0);
    }

    #[test]
    fn boosted_search_is_at_least_unboosted_seed_tree() {
        let (boosted, _) = quick_search(3, true);
        // The boosted tree's mean reward can only improve over episodes;
        // sanity: it returns something reasonable.
        assert!(boosted.tree.mean_branch_reward() > 250.0);
    }

    #[test]
    fn compose_from_searched_tree_adapts_to_bandwidth() {
        let (result, _) = quick_search(4, true);
        let tree = &result.tree;
        let (_, poor) = tree.compose(|_| tree.levels()[0] * 0.5);
        let (_, good) = tree.compose(|_| tree.levels()[1] * 2.0);
        // Both compose valid candidates (they may coincide if the tree
        // found a bandwidth-insensitive optimum).
        assert_eq!(poor.model.output_shape(), tree.base().output_shape());
        assert_eq!(good.model.output_shape(), tree.base().output_shape());
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = quick_search(5, false);
        let (b, _) = quick_search(5, false);
        assert_eq!(a.episode_scores, b.episode_scores);
    }
}

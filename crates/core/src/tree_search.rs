//! **Algorithm 3 — Model Tree Search**: the two-stage RL procedure
//! (forward generation + backward estimation) that produces a
//! context-aware model tree.
//!
//! Forward generation walks the tree skeleton in BFS order; at each node
//! the partition and compression controllers — conditioned on that fork's
//! bandwidth type — transform the corresponding base block. Branch rewards
//! are computed for complete branches (leaves or partitioned nodes) and
//! propagated to shared ancestors by averaging (backward estimation), and
//! every node's actions are reinforced with its estimated reward.
//!
//! Implementation countermeasures from §VII-A are included: fair-chance
//! exploration (forced no-partition with decaying probability
//! `α·(N−n)/N`), optimal-branch boosting (Alg. 1 pre-training per
//! bandwidth level plus an explicitly grafted boost tree), and the
//! candidate memo pool.

use cadmc_accuracy::AppliedAction;
use cadmc_latency::Mbps;
use cadmc_netsim::BandwidthTrace;
use cadmc_nn::ModelSpec;
use cadmc_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::branch::optimal_branch;
use crate::executor::{execute, ExecConfig, Policy};
use crate::candidate::Partition;
use crate::controller::{EpisodeTape, HeadState, PartitionAction};
use crate::env::EvalEnv;
use crate::memo::MemoPool;
use crate::parallel::{par_map, par_map_indexed};
use crate::search::{Controllers, SearchConfig};
use crate::tree::{ModelTree, TreeNode};
use crate::validate::{self, ValidateError};

/// RNG stream salt for the tree search (`"tree"`).
const TREE_SALT: u64 = 0x7472_6565;

/// Result of a tree search.
#[derive(Debug, Clone)]
pub struct TreeSearchResult {
    /// The best tree found (highest mean branch reward).
    pub tree: ModelTree,
    /// Mean branch reward of each episode's generated tree.
    pub episode_scores: Vec<f64>,
    /// Best branch reward within the returned tree.
    pub best_branch_reward: f64,
}

/// Runs Algorithm 3 for `base` under the discretized bandwidth `levels`,
/// updating `controllers` in place. When `boost` is set, controllers are
/// first warmed with Algorithm 1 under each bandwidth level and an
/// explicit boost tree seeds the best-so-far (§VII-A "optimal branch
/// boosting"). When `selection_trace` is given, the finalists (the trees
/// that successively improved the internal score) are re-ranked by a
/// short emulation against that trace — the offline phase has the scene
/// traces available, and per-level point evaluation systematically
/// overvalues offloading branches relative to replayed execution.
///
/// # Errors
///
/// Returns [`ValidateError`] when the model, bandwidth levels, block
/// count or configuration fails [`validate::tree_inputs`]; no episode
/// runs in that case.
#[allow(clippy::too_many_arguments)]
pub fn tree_search(
    controllers: &mut Controllers,
    base: &ModelSpec,
    env: &EvalEnv,
    levels: &[f64],
    n_blocks: usize,
    cfg: &SearchConfig,
    memo: &MemoPool,
    boost: bool,
    selection_trace: Option<&BandwidthTrace>,
) -> Result<TreeSearchResult, ValidateError> {
    validate::tree_inputs(base, levels, n_blocks, cfg)?;
    let search_span = telemetry::span!(
        "tree.search",
        episodes = cfg.episodes,
        levels = levels.len(),
        blocks = n_blocks,
        boost = boost,
    );
    let mut best: Option<(ModelTree, f64)> = None;
    let mut finalists: Vec<ModelTree> = Vec::new();

    if boost {
        let _boost_span = telemetry::span!("tree.boost", levels = levels.len());
        let branch_cfg = SearchConfig {
            episodes: (cfg.episodes / 2).max(10),
            ..*cfg
        };
        let mut branch_candidates = Vec::new();
        for &bw in levels {
            let outcome =
                optimal_branch(controllers, base, env, Mbps(bw), &branch_cfg, memo)?;
            // The surgery deployment (min-cut partition, no compression)
            // is a point inside the branch space; floor each level's
            // candidate with it so the boost tree never starts below the
            // static baseline.
            let surgery = crate::surgery::plan(base, env, Mbps(bw));
            if surgery.evaluation.reward > outcome.best_eval.reward {
                branch_candidates.push(surgery.candidate);
            } else {
                branch_candidates.push(outcome.best);
            }
        }
        // Rigid trees (every fork takes the same branch solution) are
        // also valid deployments; include them in the selection pool so
        // the returned tree never executes worse than the best constant-
        // bandwidth branch.
        for cand in &branch_candidates {
            finalists.push(rigid_tree(base, env, levels, n_blocks, cand, memo));
        }
        let boosted = boost_tree(base, env, levels, n_blocks, &branch_candidates, memo);
        let score = boosted.mean_branch_reward();
        finalists.push(boosted.clone());
        best = Some((boosted, score));
    }

    // Episodes roll out in batches of `cfg.rollout_batch` from frozen
    // controller parameters, fanned across `cfg.parallelism.workers`
    // threads; each episode generates (and backward-estimates) its tree on
    // its own `seed ^ episode` RNG stream, then the REINFORCE updates are
    // applied sequentially in episode order — bit-identical results for
    // any worker count.
    let mut episode_scores = Vec::with_capacity(cfg.episodes);
    let batch_size = cfg.rollout_batch.max(1);
    let mut batch_start = 0;
    while batch_start < cfg.episodes {
        let batch_end = (batch_start + batch_size).min(cfg.episodes);
        let rollouts = {
            let shared: &Controllers = controllers;
            par_map_indexed(
                batch_end - batch_start,
                cfg.parallelism.workers,
                |offset| {
                    let episode = batch_start + offset;
                    let episode_span = telemetry::span!("tree.episode", episode = episode);
                    let mut rng =
                        StdRng::seed_from_u64(cfg.seed ^ TREE_SALT ^ episode as u64);
                    let (mut tree, tapes) = generate_tree(
                        shared, base, env, levels, n_blocks, cfg, episode, &mut rng, memo,
                    );
                    tree.backward_estimate_with(cfg.backward_rule);
                    episode_span.record("score", tree.mean_branch_reward());
                    (tree, tapes)
                },
            )
        };
        for (tree, tapes) in rollouts {
            let episodes: Vec<(EpisodeTape, f64)> = tapes
                .into_iter()
                .enumerate()
                .map(|(id, tape)| (tape, tree.nodes()[id].reward))
                .collect();
            controllers
                .trainer
                .update_batch(&mut controllers.params, episodes);
            let score = tree.mean_branch_reward();
            telemetry::hist!("tree.score", crate::branch::REWARD_BOUNDS, score);
            episode_scores.push(score);
            let replace = match &best {
                Some((_, s)) => score > *s,
                None => true,
            };
            if replace {
                finalists.push(tree.clone());
                best = Some((tree, score));
            }
        }
        batch_start = batch_end;
    }

    let (mut tree, _) = best.expect("episodes >= 1 was validated");
    if let Some(trace) = selection_trace {
        let _rerank_span = telemetry::span!("tree.rerank", finalists = finalists.len());
        // Re-rank the finalists by replayed execution; keep the seeded
        // rigid/boost trees plus the last few RL improvers to bound cost.
        if finalists.len() > 10 {
            finalists.drain(3..finalists.len() - 6);
        }
        // Emulations of distinct finalists are independent — fan them out.
        // The winner is picked by a strictly-greater scan in finalist
        // order, matching the serial semantics exactly.
        let exec_cfg = ExecConfig::emulation(300, cfg.seed);
        let exec_rewards = par_map(&finalists, cfg.parallelism.workers, |cand| {
            let report = execute(env, base, &Policy::Tree(cand), trace, &exec_cfg);
            report.evaluation(&env.reward).reward
        });
        let mut best_exec = f64::NEG_INFINITY;
        for (cand, &r) in finalists.iter().zip(&exec_rewards) {
            if r > best_exec {
                best_exec = r;
                tree = cand.clone();
            }
        }
    }
    let best_branch_reward = tree
        .best_branch()
        .map(|(path, _)| tree.nodes()[*path.last().expect("non-empty")].reward)
        .unwrap_or(0.0);
    search_span.record("best_branch_reward", best_branch_reward);
    Ok(TreeSearchResult {
        tree,
        episode_scores,
        best_branch_reward,
    })
}

/// Forward generation of one episode's tree. Returns the tree (leaf
/// rewards filled in, interior rewards zero) and one tape per node,
/// indexed by node id.
#[allow(clippy::too_many_arguments)]
fn generate_tree(
    controllers: &Controllers,
    base: &ModelSpec,
    env: &EvalEnv,
    levels: &[f64],
    n_blocks: usize,
    cfg: &SearchConfig,
    episode: usize,
    rng: &mut StdRng,
    memo: &MemoPool,
) -> (ModelTree, Vec<EpisodeTape>) {
    let mut tree = ModelTree::new(base.clone(), n_blocks, levels.to_vec());
    let mut tapes: Vec<EpisodeTape> = Vec::new();
    let mut parents: Vec<Option<usize>> = Vec::new();
    let mut head_states: Vec<HeadState> = Vec::new();
    // The root is shared by all forks: condition it on the levels' mean
    // (`levels[len/2]` would bias toward the *upper* level for K = 2).
    let median_bw = levels.iter().sum::<f64>() / levels.len() as f64;

    // BFS frontier: (parent id, fork index). The root conditions on the
    // median level; child forks condition on their level's bandwidth.
    let mut frontier: Vec<(Option<usize>, usize)> = vec![(None, 0)];
    while let Some((parent, fork)) = frontier.pop() {
        let level = parent.map_or(0, |p| tree.nodes()[p].level + 1);
        let bw = if parent.is_none() {
            median_bw
        } else {
            levels[fork]
        };
        let range = tree.block_range(level);
        let block = base.slice(range.start, range.end).expect("valid block slice");
        let mut tape = EpisodeTape::new();
        let force = cfg.force_no_partition(episode, level + 1, n_blocks);
        let action = controllers.partition.sample(
            &mut tape,
            &controllers.params,
            &block,
            bw,
            rng,
            force,
        );
        let (partition_abs, compress_len) = match action {
            PartitionAction::NoPartition => (None, block.len()),
            PartitionAction::CutBefore(c) => (Some(range.start + c), c),
        };
        let mut head_state = parent.map_or_else(HeadState::default, |p| head_states[p]);
        let mut actions: Vec<AppliedAction> = Vec::new();
        if compress_len > 0 {
            let edge_block = base
                .slice(range.start, range.start + compress_len)
                .expect("valid block slice");
            let plan = controllers.compression.sample_with_state(
                &mut tape,
                &controllers.params,
                &edge_block,
                bw,
                rng,
                &mut head_state,
            );
            for (local, a) in plan.actions().iter().enumerate() {
                if let Some(t) = a {
                    actions.push(AppliedAction {
                        layer_index: range.start + local,
                        technique: *t,
                    });
                }
            }
        }
        let node = TreeNode {
            level,
            partition_abs,
            actions,
            children: Vec::new(),
            reward: 0.0,
        };
        let id = tree.push_node(parent, node);
        tapes.push(tape);
        parents.push(parent);
        head_states.push(head_state);

        let is_leaf = partition_abs.is_some() || level + 1 == n_blocks;
        if is_leaf {
            // Reconstruct the path and score the composed branch at this
            // node's conditioning bandwidth.
            let mut path = vec![id];
            let mut cur = parent;
            while let Some(p) = cur {
                path.push(p);
                cur = parents[p];
            }
            path.reverse();
            let candidate = tree.compose_path(&path);
            // A root-level leaf (the whole tree is one branch) must be
            // judged across all levels, not at a single bandwidth.
            let reward = if parent.is_none() {
                levels
                    .iter()
                    .map(|&l| {
                        memo.get_or_insert_with(&candidate, l, || {
                            env.evaluate(base, &candidate, Mbps(l))
                        })
                        .reward
                    })
                    .sum::<f64>()
                    / levels.len() as f64
            } else {
                memo.get_or_insert_with(&candidate, bw, || {
                    env.evaluate(base, &candidate, Mbps(bw))
                })
                .reward
            };
            tree.node_mut(id).reward = reward;
        } else {
            for k in (0..levels.len()).rev() {
                frontier.push((Some(id), k));
            }
        }
    }
    (tree, tapes)
}

/// Builds a *rigid* tree that always deploys `cand` regardless of
/// measured bandwidth: every node follows the candidate's decisions for
/// its block, with a cut inside an earlier block carried at the first
/// opportunity. Executing it is equivalent to the static candidate.
pub fn rigid_tree(
    base: &ModelSpec,
    env: &EvalEnv,
    levels: &[f64],
    n_blocks: usize,
    cand: &crate::candidate::Candidate,
    memo: &MemoPool,
) -> ModelTree {
    let mut tree = ModelTree::new(base.clone(), n_blocks, levels.to_vec());
    let cut_abs = match cand.partition {
        Partition::AllEdge => None,
        Partition::AllCloud => Some(0),
        Partition::AfterLayer(i) => Some(i + 1),
    };
    let node_for_level = |level: usize| -> TreeNode {
        let range = tree_range(base, n_blocks, level);
        let node_cut = match cut_abs {
            Some(c) if c <= range.start => Some(range.start),
            Some(c) if range.contains(&c) => Some(c),
            _ => None,
        };
        let compress_to = node_cut.unwrap_or(range.end);
        let actions: Vec<AppliedAction> = cand
            .actions
            .iter()
            .filter(|a| a.layer_index >= range.start && a.layer_index < compress_to)
            .copied()
            .collect();
        TreeNode {
            level,
            partition_abs: node_cut,
            actions,
            children: Vec::new(),
            reward: 0.0,
        }
    };
    // Root may carry a block-0 cut directly.
    let r0 = tree.block_range(0);
    let root_cut = cut_abs.filter(|&c| c < r0.end);
    let root_node = TreeNode {
        partition_abs: root_cut,
        ..node_for_level(0)
    };
    let root = tree.push_node(None, root_node);
    if root_cut.is_none() {
        // BFS-fill a complete K-ary tree of identical levels.
        let mut frontier = vec![root];
        while let Some(parent) = frontier.pop() {
            let level = tree.nodes()[parent].level + 1;
            if level >= n_blocks {
                continue;
            }
            for _ in 0..levels.len() {
                let node = node_for_level(level);
                let stop = node.partition_abs.is_some();
                let id = tree.push_node(Some(parent), node);
                if !stop {
                    frontier.push(id);
                }
            }
        }
    }
    complete_tree(&mut tree, env, memo);
    tree
}

/// Block range helper usable before the tree is fully built.
fn tree_range(base: &ModelSpec, n_blocks: usize, level: usize) -> std::ops::Range<usize> {
    base.block_ranges(n_blocks)[level].clone()
}

/// Builds the explicit boost tree: the root takes the best constant-
/// bandwidth branch solution's block-0 decisions — including its
/// partition, if that branch cuts inside block 0 (e.g. an all-cloud
/// deployment), in which case the whole tree *is* that branch. Otherwise
/// each fork `k` follows branch `k`'s decisions for the remaining blocks
/// (a partition that branch `k` placed inside block 0 is deferred to the
/// start of block 1, since a shared non-partitioned root cannot partition
/// per-fork).
fn boost_tree(
    base: &ModelSpec,
    env: &EvalEnv,
    levels: &[f64],
    n_blocks: usize,
    branch_candidates: &[crate::candidate::Candidate],
    memo: &MemoPool,
) -> ModelTree {
    let mut tree = ModelTree::new(base.clone(), n_blocks, levels.to_vec());
    // Root from the branch with the highest reward at its own level.
    let root_src = branch_candidates
        .iter()
        .zip(levels)
        .max_by(|(a, &bwa), (b, &bwb)| {
            let ra = env.evaluate(base, a, Mbps(bwa)).reward;
            let rb = env.evaluate(base, b, Mbps(bwb)).reward;
            ra.total_cmp(&rb)
        })
        .map(|(c, _)| c)
        .expect("one branch candidate per level");
    let r0 = tree.block_range(0);
    let root_cut = match root_src.partition {
        Partition::AllEdge => None,
        Partition::AllCloud => Some(0),
        Partition::AfterLayer(i) => Some(i + 1),
    }
    .filter(|&c| c < r0.end);
    let root_actions: Vec<AppliedAction> = root_src
        .actions
        .iter()
        .filter(|a| r0.contains(&a.layer_index) && root_cut.is_none_or(|c| a.layer_index < c))
        .copied()
        .collect();
    let root = tree.push_node(
        None,
        TreeNode {
            level: 0,
            partition_abs: root_cut,
            actions: root_actions,
            children: Vec::new(),
            reward: 0.0,
        },
    );
    if root_cut.is_some() {
        // The best branch offloads within block 0: the tree degenerates to
        // that single branch (the paper concedes stable contexts gain
        // little from adaptation).
        complete_tree(&mut tree, env, memo);
        return tree;
    }

    // Fork k: follow branch k for blocks 1..N.
    for (k, cand) in branch_candidates.iter().enumerate() {
        let bw = levels[k];
        let cut_abs = match cand.partition {
            Partition::AllEdge => None,
            Partition::AllCloud => Some(0),
            Partition::AfterLayer(i) => Some(i + 1),
        };
        let mut parent = root;
        for level in 1..n_blocks {
            let range = tree.block_range(level);
            // Defer any cut from block 0 to the start of this block.
            let node_cut = match cut_abs {
                Some(c) if c <= range.start => Some(range.start),
                Some(c) if range.contains(&c) => Some(c),
                _ => None,
            };
            let compress_to = node_cut.unwrap_or(range.end);
            let actions: Vec<AppliedAction> = cand
                .actions
                .iter()
                .filter(|a| a.layer_index >= range.start && a.layer_index < compress_to)
                .copied()
                .collect();
            let id = tree.push_node(
                Some(parent),
                TreeNode {
                    level,
                    partition_abs: node_cut,
                    actions,
                    children: Vec::new(),
                    reward: 0.0,
                },
            );
            if node_cut.is_some() {
                break;
            }
            parent = id;
            // Other forks at deeper levels replicate the same branch; the
            // outer loop only fills fork k's spine, so fill the sibling
            // forks lazily below.
        }
        let _ = bw;
    }
    complete_tree(&mut tree, env, memo);
    tree
}

/// Fills missing children (with identity blocks) so every interior node
/// has exactly `K` children, then scores all branch leaves.
fn complete_tree(tree: &mut ModelTree, env: &EvalEnv, memo: &MemoPool) {
    let k = tree.k();
    let n = tree.n_blocks();
    // Fill: iterate until no node needs children (node count grows).
    let mut i = 0;
    while i < tree.nodes().len() {
        let node = &tree.nodes()[i];
        let needs = node.partition_abs.is_none()
            && node.level + 1 < n
            && node.children.len() < k;
        if needs {
            let level = node.level + 1;
            while tree.nodes()[i].children.len() < k {
                tree.push_node(
                    Some(i),
                    TreeNode {
                        level,
                        partition_abs: None,
                        actions: Vec::new(),
                        children: Vec::new(),
                        reward: 0.0,
                    },
                );
            }
        }
        i += 1;
    }
    // Score every leaf at the bandwidth of the fork that reaches it; a
    // root-only path (the tree degenerated to one branch) is scored as the
    // mean over all K levels so rigid trees are not judged at a single
    // optimistic bandwidth.
    let branches = tree.branches();
    for path in branches {
        let leaf = *path.last().expect("non-empty branch");
        let candidate = tree.compose_path(&path);
        let reward = if path.len() >= 2 {
            let parent = path[path.len() - 2];
            let fork = tree.nodes()[parent]
                .children
                .iter()
                .position(|&c| c == leaf)
                .expect("leaf is its parent's child");
            let bw = tree.levels()[fork];
            memo.get_or_insert_with(&candidate, bw, || {
                env.evaluate(tree.base(), &candidate, Mbps(bw))
            })
            .reward
        } else {
            let levels = tree.levels().to_vec();
            levels
                .iter()
                .map(|&bw| {
                    memo.get_or_insert_with(&candidate, bw, || {
                        env.evaluate(tree.base(), &candidate, Mbps(bw))
                    })
                    .reward
                })
                .sum::<f64>()
                / levels.len() as f64
        };
        tree.node_mut(leaf).reward = reward;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;

    fn quick_search(seed: u64, boost: bool) -> (TreeSearchResult, Controllers) {
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let cfg = SearchConfig {
            episodes: 25,
            ..SearchConfig::quick(seed)
        };
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        let ctx = crate::context::NetworkContext::from_scenario(
            cadmc_netsim::Scenario::WifiWeakIndoor,
            2,
            seed,
        );
        let result = tree_search(
            &mut controllers,
            &base,
            &env,
            ctx.levels(),
            3,
            &cfg,
            &memo,
            boost,
            Some(ctx.trace()),
        )
        .expect("valid inputs");
        (result, controllers)
    }

    #[test]
    fn produces_structurally_valid_trees() {
        let (result, _) = quick_search(1, false);
        let tree = &result.tree;
        assert!(tree.root().is_some());
        for node in tree.nodes() {
            assert!(
                node.children.is_empty() || node.children.len() == tree.k(),
                "interior nodes must have exactly K children"
            );
            if node.partition_abs.is_some() {
                assert!(node.children.is_empty(), "partitioned nodes are leaves");
            }
        }
        // Every branch composes into a valid candidate.
        for path in tree.branches() {
            let c = tree.compose_path(&path);
            assert_eq!(c.model.output_shape(), tree.base().output_shape());
        }
    }

    #[test]
    fn episode_scores_are_rewards() {
        let (result, _) = quick_search(2, false);
        assert_eq!(result.episode_scores.len(), 25);
        for &s in &result.episode_scores {
            assert!((0.0..=400.0).contains(&s));
        }
        assert!(result.best_branch_reward > 0.0);
    }

    #[test]
    fn boosted_search_is_at_least_unboosted_seed_tree() {
        let (boosted, _) = quick_search(3, true);
        // The boosted tree's mean reward can only improve over episodes;
        // sanity: it returns something reasonable.
        assert!(boosted.tree.mean_branch_reward() > 250.0);
    }

    #[test]
    fn compose_from_searched_tree_adapts_to_bandwidth() {
        let (result, _) = quick_search(4, true);
        let tree = &result.tree;
        let (_, poor) = tree.compose(|_| tree.levels()[0] * 0.5);
        let (_, good) = tree.compose(|_| tree.levels()[1] * 2.0);
        // Both compose valid candidates (they may coincide if the tree
        // found a bandwidth-insensitive optimum).
        assert_eq!(poor.model.output_shape(), tree.base().output_shape());
        assert_eq!(good.model.output_shape(), tree.base().output_shape());
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = quick_search(5, false);
        let (b, _) = quick_search(5, false);
        assert_eq!(a.episode_scores, b.episode_scores);
    }
}

//! Model-graph invariant validation — the static gate every search entry
//! point runs before any episode rolls out.
//!
//! The searches (Alg. 1 and Alg. 3) and the online composition (Alg. 2)
//! all assume a well-formed problem: a shape-consistent layer chain, a
//! legal block split, strictly ascending bandwidth levels (so the K fork
//! intervals are disjoint and cover all of `(0, ∞)`), applicable
//! compression actions, and — for a finished tree — the structural
//! invariants of §VI-A (interior nodes fork exactly `K` ways, partitioned
//! nodes are leaves, levels advance one block per edge). A malformed spec
//! that slips past these checks surfaces as a panic deep inside a rollout
//! worker, or worse, as a silently wrong deployment. This module rejects
//! it up front with a diagnostic naming the exact violation.
//!
//! Entry points:
//!
//! * [`branch_inputs`] — gate for [`crate::branch::optimal_branch`] and
//!   the Fig. 7 baseline searches;
//! * [`tree_inputs`] — gate for [`crate::tree_search::tree_search`];
//! * [`model_tree`] — full structural audit of a (deserialized or
//!   searched) [`ModelTree`], also exposed as `cadmc validate`;
//! * the fine-grained checks they compose ([`model_spec`],
//!   [`bandwidth_levels`], [`block_count`], [`compression_plan`],
//!   [`candidate`], [`search_config`]).

use cadmc_compress::CompressionPlan;
use cadmc_nn::ModelSpec;

use crate::candidate::{Candidate, Partition};
use crate::search::SearchConfig;
use crate::tree::ModelTree;

/// A specific, actionable reason a spec, plan, configuration or tree was
/// rejected by the validator.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidateError {
    /// The model has no layers; nothing can be partitioned or compressed.
    EmptyModel {
        /// Name of the offending model.
        name: String,
    },
    /// The recorded layer chain does not shape-check: some layer cannot
    /// consume its predecessor's output (or a deserialized spec's cached
    /// shapes disagree with re-inference).
    ShapeInconsistent {
        /// Name of the offending model.
        name: String,
        /// Index of the first inconsistent layer.
        layer: usize,
        /// Human-readable mismatch description.
        detail: String,
    },
    /// The requested block count cannot split this model.
    BadBlockCount {
        /// Requested number of blocks `N`.
        n_blocks: usize,
        /// Number of layers available.
        layers: usize,
    },
    /// No bandwidth levels were given (`K = 0`).
    NoBandwidthLevels,
    /// A bandwidth level is not a positive finite number.
    BadBandwidthLevel {
        /// Index of the offending level.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Bandwidth levels are not strictly ascending, so the K matching
    /// intervals would not be disjoint (duplicates) or would shuffle fork
    /// semantics (descending order).
    UnsortedBandwidthLevels {
        /// Index of the first out-of-order level.
        index: usize,
        /// The level before it.
        prev: f64,
        /// The out-of-order level.
        next: f64,
    },
    /// A search bandwidth is not a positive finite number.
    BadBandwidth {
        /// The offending value in Mbps.
        value: f64,
    },
    /// A search hyper-parameter is outside its legal range.
    BadConfig {
        /// The offending `SearchConfig` field.
        field: &'static str,
        /// What was wrong and what is accepted.
        detail: String,
    },
    /// A partition cut index points beyond the model.
    CutOutOfRange {
        /// The cut layer index.
        cut: usize,
        /// Number of layers in the model.
        layers: usize,
    },
    /// A compression plan's length disagrees with the model's layer count.
    PlanLengthMismatch {
        /// Plan length.
        plan: usize,
        /// Model layer count.
        layers: usize,
    },
    /// A compression action cannot be applied at its target layer
    /// (wrong layer kind, or rank/ratio bounds unsatisfiable).
    InapplicableAction {
        /// Table 2 code of the technique (e.g. `"F1"`).
        technique: String,
        /// Target layer index.
        layer: usize,
        /// Why it does not apply.
        detail: String,
    },
    /// The tree has no nodes; nothing can be composed from it.
    EmptyTree,
    /// An interior node's child list is neither empty nor exactly `K`.
    WrongForkCount {
        /// Offending node id.
        node: usize,
        /// Observed child count.
        children: usize,
        /// Expected fork count `K`.
        k: usize,
    },
    /// A partitioned node has children (partitioned nodes hand the rest of
    /// the model to the cloud and must be leaves).
    PartitionedNodeHasChildren {
        /// Offending node id.
        node: usize,
    },
    /// A node's level does not advance one block per tree edge.
    BadNodeLevel {
        /// Offending node id.
        node: usize,
        /// Recorded level.
        level: usize,
        /// Level required by its position.
        expected: usize,
    },
    /// A child link is structurally invalid (dangling id, child before
    /// parent, or multiple parents).
    BadChildLink {
        /// Parent node id.
        node: usize,
        /// Offending child id.
        child: usize,
        /// What is wrong with the link.
        detail: String,
    },
    /// A node's partition point falls outside its block's layer range.
    PartitionOutsideBlock {
        /// Offending node id.
        node: usize,
        /// Absolute partition layer index.
        abs: usize,
        /// Block start (inclusive).
        start: usize,
        /// Block end (exclusive-of-layers, inclusive as a cut point).
        end: usize,
    },
    /// A node records a compression action outside its own block (or past
    /// its partition point).
    ActionOutsideBlock {
        /// Offending node id.
        node: usize,
        /// Action's target layer index.
        layer: usize,
        /// Legal range start.
        start: usize,
        /// Legal range end (exclusive).
        end: usize,
    },
    /// A node's reward is NaN or infinite.
    NonFiniteReward {
        /// Offending node id.
        node: usize,
        /// The recorded reward.
        value: f64,
    },
    /// A non-partitioned interior node stops before the last block, so
    /// some bandwidth histories have no branch to follow.
    IncompleteTree {
        /// Offending node id.
        node: usize,
        /// The node's level.
        level: usize,
        /// Total block count `N`.
        n_blocks: usize,
    },
    /// A root→leaf branch fails to compose back into a model with the
    /// base's output shape.
    BranchComposeMismatch {
        /// Index of the branch in [`ModelTree::branches`] order.
        branch: usize,
        /// Mismatch description.
        detail: String,
    },
    /// A candidate records a non-identity feature-compression action but
    /// its partition transfers no bytes (all-edge deployment), so there is
    /// no cut tensor to compress.
    FeatureWithoutTransfer {
        /// Display code of the offending feature action (e.g. `"B2Q8"`).
        feature: String,
    },
    /// A tree node carries a non-identity feature action without owning a
    /// transfer-bearing partition; the feature knob is only meaningful on
    /// the node that cuts the model.
    FeatureOnUnpartitionedNode {
        /// Offending node id.
        node: usize,
        /// Display code of the offending feature action.
        feature: String,
    },
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::EmptyModel { name } => {
                write!(f, "model {name:?} has no layers; add at least one layer before searching")
            }
            ValidateError::ShapeInconsistent { name, layer, detail } => write!(
                f,
                "model {name:?} is shape-inconsistent at layer {layer}: {detail}"
            ),
            ValidateError::BadBlockCount { n_blocks, layers } => write!(
                f,
                "cannot split {layers} layers into {n_blocks} blocks; use 1..={layers} blocks"
            ),
            ValidateError::NoBandwidthLevels => {
                write!(f, "no bandwidth levels given; provide at least one level (K >= 1)")
            }
            ValidateError::BadBandwidthLevel { index, value } => write!(
                f,
                "bandwidth level {index} is {value} Mbps; levels must be positive and finite"
            ),
            ValidateError::UnsortedBandwidthLevels { index, prev, next } => write!(
                f,
                "bandwidth levels must be strictly ascending so fork intervals are \
                 disjoint and cover (0, inf): level {index} is {next} after {prev}"
            ),
            ValidateError::BadBandwidth { value } => write!(
                f,
                "search bandwidth {value} Mbps is not positive and finite"
            ),
            ValidateError::BadConfig { field, detail } => {
                write!(f, "invalid SearchConfig.{field}: {detail}")
            }
            ValidateError::CutOutOfRange { cut, layers } => write!(
                f,
                "partition cut at layer {cut} is out of range for a {layers}-layer model"
            ),
            ValidateError::PlanLengthMismatch { plan, layers } => write!(
                f,
                "compression plan covers {plan} layers but the model has {layers}"
            ),
            ValidateError::InapplicableAction { technique, layer, detail } => write!(
                f,
                "technique {technique} cannot be applied at layer {layer}: {detail}"
            ),
            ValidateError::EmptyTree => {
                write!(f, "model tree has no nodes; train it before composing or saving")
            }
            ValidateError::WrongForkCount { node, children, k } => write!(
                f,
                "node {node} has {children} children; interior nodes need exactly K = {k} \
                 (one per bandwidth type), leaves need zero"
            ),
            ValidateError::PartitionedNodeHasChildren { node } => write!(
                f,
                "node {node} partitions to the cloud but has children; partitioned nodes \
                 must be leaves"
            ),
            ValidateError::BadNodeLevel { node, level, expected } => write!(
                f,
                "node {node} records level {level} but its tree position requires {expected}"
            ),
            ValidateError::BadChildLink { node, child, detail } => {
                write!(f, "node {node} -> child {child}: {detail}")
            }
            ValidateError::PartitionOutsideBlock { node, abs, start, end } => write!(
                f,
                "node {node} partitions at layer {abs}, outside its block's legal cut \
                 range {start}..={end}"
            ),
            ValidateError::ActionOutsideBlock { node, layer, start, end } => write!(
                f,
                "node {node} compresses layer {layer}, outside its block's edge-resident \
                 range {start}..{end}"
            ),
            ValidateError::NonFiniteReward { node, value } => {
                write!(f, "node {node} has non-finite reward {value}")
            }
            ValidateError::IncompleteTree { node, level, n_blocks } => write!(
                f,
                "node {node} at level {level} is an unpartitioned leaf but the tree has \
                 {n_blocks} blocks; every branch must reach level {} or partition",
                n_blocks - 1
            ),
            ValidateError::BranchComposeMismatch { branch, detail } => {
                write!(f, "branch {branch} does not compose a valid deployment: {detail}")
            }
            ValidateError::FeatureWithoutTransfer { feature } => write!(
                f,
                "feature action {feature} is set on an all-edge deployment; feature \
                 compression applies to the cut tensor, which only exists when the \
                 partition transfers bytes"
            ),
            ValidateError::FeatureOnUnpartitionedNode { node, feature } => write!(
                f,
                "node {node} carries feature action {feature} but does not own a \
                 transfer-bearing partition; only the cut node may compress the cut tensor"
            ),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Checks that `spec` is non-empty and its layer chain shape-checks from
/// the recorded input: each layer must consume its predecessor's output
/// and reproduce the recorded per-layer output shape (deserialized specs
/// carry recorded shapes that re-inference must agree with).
///
/// # Errors
///
/// [`ValidateError::EmptyModel`] or [`ValidateError::ShapeInconsistent`].
pub fn model_spec(spec: &ModelSpec) -> Result<(), ValidateError> {
    if spec.is_empty() {
        return Err(ValidateError::EmptyModel {
            name: spec.name().to_string(),
        });
    }
    let mut shape = spec.input_shape();
    for (i, layer) in spec.layers().iter().enumerate() {
        match layer.output_shape(shape) {
            Ok(out) => {
                let recorded = spec.layer_output(i);
                if out != recorded {
                    return Err(ValidateError::ShapeInconsistent {
                        name: spec.name().to_string(),
                        layer: i,
                        detail: format!(
                            "re-inferred output {out} disagrees with recorded {recorded}"
                        ),
                    });
                }
                shape = out;
            }
            Err(e) => {
                return Err(ValidateError::ShapeInconsistent {
                    name: spec.name().to_string(),
                    layer: i,
                    detail: e.to_string(),
                })
            }
        }
    }
    Ok(())
}

/// Checks that `levels` is non-empty, every level is positive and finite,
/// and the sequence is strictly ascending — which makes the K
/// nearest-level matching intervals pairwise disjoint and covering.
///
/// # Errors
///
/// [`ValidateError::NoBandwidthLevels`],
/// [`ValidateError::BadBandwidthLevel`] or
/// [`ValidateError::UnsortedBandwidthLevels`].
pub fn bandwidth_levels(levels: &[f64]) -> Result<(), ValidateError> {
    if levels.is_empty() {
        return Err(ValidateError::NoBandwidthLevels);
    }
    for (i, &l) in levels.iter().enumerate() {
        if !l.is_finite() || l <= 0.0 {
            return Err(ValidateError::BadBandwidthLevel { index: i, value: l });
        }
        if i > 0 && levels[i - 1] >= l {
            return Err(ValidateError::UnsortedBandwidthLevels {
                index: i,
                prev: levels[i - 1],
                next: l,
            });
        }
    }
    Ok(())
}

/// Checks that a single search bandwidth is positive and finite.
///
/// # Errors
///
/// [`ValidateError::BadBandwidth`].
pub fn bandwidth(mbps: f64) -> Result<(), ValidateError> {
    if !mbps.is_finite() || mbps <= 0.0 {
        return Err(ValidateError::BadBandwidth { value: mbps });
    }
    Ok(())
}

/// Checks that `n_blocks` can split `spec` (at least one layer per block).
///
/// # Errors
///
/// [`ValidateError::BadBlockCount`].
pub fn block_count(spec: &ModelSpec, n_blocks: usize) -> Result<(), ValidateError> {
    if n_blocks == 0 || n_blocks > spec.len() {
        return Err(ValidateError::BadBlockCount {
            n_blocks,
            layers: spec.len(),
        });
    }
    Ok(())
}

/// Checks the search hyper-parameters that the rollout machinery divides
/// by or indexes with: episode and batch counts, controller width,
/// learning rate and the exploration probabilities.
///
/// # Errors
///
/// [`ValidateError::BadConfig`] naming the offending field.
pub fn search_config(cfg: &SearchConfig) -> Result<(), ValidateError> {
    if cfg.episodes == 0 {
        return Err(ValidateError::BadConfig {
            field: "episodes",
            detail: "must be at least 1".to_string(),
        });
    }
    if cfg.hidden == 0 {
        return Err(ValidateError::BadConfig {
            field: "hidden",
            detail: "controller width must be at least 1".to_string(),
        });
    }
    if !cfg.lr.is_finite() || cfg.lr <= 0.0 {
        return Err(ValidateError::BadConfig {
            field: "lr",
            detail: format!("learning rate {} must be positive and finite", cfg.lr),
        });
    }
    if !cfg.alpha.is_finite() || !(0.0..=1.0).contains(&cfg.alpha) {
        return Err(ValidateError::BadConfig {
            field: "alpha",
            detail: format!("exploration factor {} must be in [0, 1]", cfg.alpha),
        });
    }
    if !cfg.explore_epsilon.is_finite() || !(0.0..=1.0).contains(&cfg.explore_epsilon) {
        return Err(ValidateError::BadConfig {
            field: "explore_epsilon",
            detail: format!("probability {} must be in [0, 1]", cfg.explore_epsilon),
        });
    }
    if !cfg.entropy_beta.is_finite() || cfg.entropy_beta < 0.0 {
        return Err(ValidateError::BadConfig {
            field: "entropy_beta",
            detail: format!("entropy coefficient {} must be >= 0 and finite", cfg.entropy_beta),
        });
    }
    if cfg.rollout_batch == 0 {
        return Err(ValidateError::BadConfig {
            field: "rollout_batch",
            detail: "must be at least 1".to_string(),
        });
    }
    Ok(())
}

/// Checks a compression plan against a model: length must match and every
/// action must be applicable at its layer when the plan is applied as one
/// transaction (right-to-left, mirroring [`CompressionPlan::apply`]) —
/// this is where SVD rank bounds and prune-ratio feasibility are enforced,
/// via each technique's applicability predicate.
///
/// # Errors
///
/// [`ValidateError::PlanLengthMismatch`] or
/// [`ValidateError::InapplicableAction`].
pub fn compression_plan(spec: &ModelSpec, plan: &CompressionPlan) -> Result<(), ValidateError> {
    if plan.len() != spec.len() {
        return Err(ValidateError::PlanLengthMismatch {
            plan: plan.len(),
            layers: spec.len(),
        });
    }
    let mut probe = spec.clone();
    for idx in (0..plan.len()).rev() {
        if let Some(t) = plan.get(idx) {
            match t.apply(&probe, idx) {
                Ok(next) => probe = next,
                Err(e) => {
                    return Err(ValidateError::InapplicableAction {
                        technique: t.code().to_string(),
                        layer: idx,
                        detail: e.to_string(),
                    })
                }
            }
        }
    }
    Ok(())
}

/// Checks a deployment candidate against its base model: the partition
/// point must be legal and the recorded actions must form an applicable
/// plan over the edge part.
///
/// # Errors
///
/// Any of the model, cut or plan errors.
pub fn candidate(base: &ModelSpec, cand: &Candidate) -> Result<(), ValidateError> {
    model_spec(base)?;
    let edge_len = match cand.partition {
        Partition::AllEdge => base.len(),
        Partition::AllCloud => 0,
        Partition::AfterLayer(i) => {
            if i >= base.len() {
                return Err(ValidateError::CutOutOfRange {
                    cut: i,
                    layers: base.len(),
                });
            }
            i + 1
        }
    };
    if !cand.feature.is_identity() && edge_len == base.len() {
        return Err(ValidateError::FeatureWithoutTransfer {
            feature: cand.feature.code(),
        });
    }
    let mut plan = CompressionPlan::identity(base.len());
    for a in &cand.actions {
        if a.layer_index >= edge_len {
            return Err(ValidateError::ActionOutsideBlock {
                node: 0,
                layer: a.layer_index,
                start: 0,
                end: edge_len,
            });
        }
        plan.set(a.layer_index, Some(a.technique));
    }
    compression_plan(base, &plan)
}

/// Composite gate for Algorithm 1 (optimal branch search) and the Fig. 7
/// baselines: model, bandwidth and configuration.
///
/// # Errors
///
/// The first violated check, in model → bandwidth → config order.
pub fn branch_inputs(
    base: &ModelSpec,
    mbps: f64,
    cfg: &SearchConfig,
) -> Result<(), ValidateError> {
    model_spec(base)?;
    bandwidth(mbps)?;
    search_config(cfg)
}

/// Composite gate for Algorithm 3 (model tree search): model, bandwidth
/// levels, block count and configuration.
///
/// # Errors
///
/// The first violated check, in model → levels → blocks → config order.
pub fn tree_inputs(
    base: &ModelSpec,
    levels: &[f64],
    n_blocks: usize,
    cfg: &SearchConfig,
) -> Result<(), ValidateError> {
    model_spec(base)?;
    bandwidth_levels(levels)?;
    block_count(base, n_blocks)?;
    search_config(cfg)
}

/// Full structural audit of a model tree (§VI-A invariants): run before
/// online composition and on every tree loaded from disk.
///
/// Checks, in order: the base model, the bandwidth levels, the block
/// count, then per node — parent/child link sanity, fork counts
/// (`0` or exactly `K`), partitioned-nodes-are-leaves, level progression,
/// partition and action containment in the node's block, finite rewards,
/// branch completeness — and finally that every root→leaf branch composes
/// a deployment with the base model's output shape.
///
/// # Errors
///
/// The first violated invariant.
pub fn model_tree(tree: &ModelTree) -> Result<(), ValidateError> {
    model_spec(tree.base())?;
    bandwidth_levels(tree.levels())?;
    block_count(tree.base(), tree.n_blocks())?;
    let nodes = tree.nodes();
    if nodes.is_empty() {
        return Err(ValidateError::EmptyTree);
    }
    let k = tree.k();
    let n_blocks = tree.n_blocks();
    // Parent map: each non-root node must be referenced exactly once.
    let mut parent: Vec<Option<usize>> = vec![None; nodes.len()];
    for (id, node) in nodes.iter().enumerate() {
        if !node.children.is_empty() && node.children.len() != k {
            return Err(ValidateError::WrongForkCount {
                node: id,
                children: node.children.len(),
                k,
            });
        }
        if node.partition_abs.is_some() && !node.children.is_empty() {
            return Err(ValidateError::PartitionedNodeHasChildren { node: id });
        }
        for &c in &node.children {
            if c >= nodes.len() {
                return Err(ValidateError::BadChildLink {
                    node: id,
                    child: c,
                    detail: format!("child id out of range (tree has {} nodes)", nodes.len()),
                });
            }
            if c <= id {
                return Err(ValidateError::BadChildLink {
                    node: id,
                    child: c,
                    detail: "children must be inserted after their parent".to_string(),
                });
            }
            if parent[c].is_some() {
                return Err(ValidateError::BadChildLink {
                    node: id,
                    child: c,
                    detail: "node has multiple parents".to_string(),
                });
            }
            parent[c] = Some(id);
        }
    }
    for (id, node) in nodes.iter().enumerate() {
        let expected = match parent[id] {
            None => 0,
            Some(p) => nodes[p].level + 1,
        };
        if node.level != expected || node.level >= n_blocks {
            return Err(ValidateError::BadNodeLevel {
                node: id,
                level: node.level,
                expected,
            });
        }
        let range = tree.block_range(node.level);
        if let Some(abs) = node.partition_abs {
            if abs < range.start || abs > range.end {
                return Err(ValidateError::PartitionOutsideBlock {
                    node: id,
                    abs,
                    start: range.start,
                    end: range.end,
                });
            }
        }
        let action_end = node.partition_abs.unwrap_or(range.end);
        for a in &node.actions {
            if a.layer_index < range.start || a.layer_index >= action_end {
                return Err(ValidateError::ActionOutsideBlock {
                    node: id,
                    layer: a.layer_index,
                    start: range.start,
                    end: action_end,
                });
            }
        }
        if !node.reward.is_finite() {
            return Err(ValidateError::NonFiniteReward {
                node: id,
                value: node.reward,
            });
        }
        // The feature knob compresses the cut tensor, so only the node
        // that owns a transfer-bearing cut may carry a non-identity one.
        if !node.feature.is_identity()
            && !node
                .partition_abs
                .is_some_and(|abs| abs < tree.base().len())
        {
            return Err(ValidateError::FeatureOnUnpartitionedNode {
                node: id,
                feature: node.feature.code(),
            });
        }
        if node.children.is_empty()
            && node.partition_abs.is_none()
            && node.level + 1 < n_blocks
        {
            return Err(ValidateError::IncompleteTree {
                node: id,
                level: node.level,
                n_blocks,
            });
        }
    }
    // Every branch must compose a deployment preserving the base output.
    let expected_out = tree.base().output_shape();
    for (i, path) in tree.branches().iter().enumerate() {
        let cand = tree.compose_path(path);
        if cand.model.output_shape() != expected_out {
            return Err(ValidateError::BranchComposeMismatch {
                branch: i,
                detail: format!(
                    "composed output {} != base output {expected_out}",
                    cand.model.output_shape()
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeNode;
    use cadmc_compress::Technique;
    use cadmc_nn::zoo;

    #[test]
    fn zoo_models_validate() {
        for m in [
            zoo::tiny_cnn(),
            zoo::vgg11_cifar(),
            zoo::alexnet_cifar(),
            zoo::mobilenet_cifar(),
            zoo::squeezenet_cifar(),
        ] {
            model_spec(&m).unwrap();
        }
    }

    #[test]
    fn levels_must_ascend() {
        bandwidth_levels(&[2.0, 10.0]).unwrap();
        assert!(matches!(
            bandwidth_levels(&[]),
            Err(ValidateError::NoBandwidthLevels)
        ));
        assert!(matches!(
            bandwidth_levels(&[10.0, 2.0]),
            Err(ValidateError::UnsortedBandwidthLevels { index: 1, .. })
        ));
        assert!(matches!(
            bandwidth_levels(&[2.0, 2.0]),
            Err(ValidateError::UnsortedBandwidthLevels { .. })
        ));
        assert!(matches!(
            bandwidth_levels(&[0.0, 2.0]),
            Err(ValidateError::BadBandwidthLevel { index: 0, .. })
        ));
        assert!(matches!(
            bandwidth_levels(&[2.0, f64::NAN]),
            Err(ValidateError::BadBandwidthLevel { index: 1, .. })
        ));
    }

    #[test]
    fn block_count_bounds() {
        let m = zoo::tiny_cnn();
        block_count(&m, 1).unwrap();
        block_count(&m, m.len()).unwrap();
        assert!(matches!(
            block_count(&m, 0),
            Err(ValidateError::BadBlockCount { .. })
        ));
        assert!(matches!(
            block_count(&m, m.len() + 1),
            Err(ValidateError::BadBlockCount { .. })
        ));
    }

    #[test]
    fn config_bounds() {
        search_config(&SearchConfig::default()).unwrap();
        let bad = SearchConfig {
            episodes: 0,
            ..SearchConfig::default()
        };
        assert!(matches!(
            search_config(&bad),
            Err(ValidateError::BadConfig { field: "episodes", .. })
        ));
        let bad = SearchConfig {
            lr: -1.0,
            ..SearchConfig::default()
        };
        assert!(matches!(
            search_config(&bad),
            Err(ValidateError::BadConfig { field: "lr", .. })
        ));
        let bad = SearchConfig {
            explore_epsilon: 1.5,
            ..SearchConfig::default()
        };
        assert!(matches!(
            search_config(&bad),
            Err(ValidateError::BadConfig { field: "explore_epsilon", .. })
        ));
    }

    #[test]
    fn plan_applicability_is_checked() {
        let base = zoo::vgg11_cifar();
        let ok = CompressionPlan::identity(base.len());
        compression_plan(&base, &ok).unwrap();
        let mut bad = CompressionPlan::identity(base.len());
        bad.set(1, Some(Technique::C1MobileNet)); // layer 1 is a pool
        assert!(matches!(
            compression_plan(&base, &bad),
            Err(ValidateError::InapplicableAction { layer: 1, .. })
        ));
        let short = CompressionPlan::identity(base.len() - 1);
        assert!(matches!(
            compression_plan(&base, &short),
            Err(ValidateError::PlanLengthMismatch { .. })
        ));
    }

    #[test]
    fn candidate_cut_bounds() {
        let base = zoo::tiny_cnn();
        candidate(&base, &Candidate::base_all_edge(&base)).unwrap();
        let mut c = Candidate::base_all_edge(&base);
        c.partition = Partition::AfterLayer(base.len());
        assert!(matches!(
            candidate(&base, &c),
            Err(ValidateError::CutOutOfRange { .. })
        ));
    }

    fn valid_tree() -> ModelTree {
        let base = zoo::vgg11_cifar();
        let mut tree = ModelTree::new(base, 2, vec![2.0, 10.0]);
        let root = tree.push_node(
            None,
            TreeNode {
                level: 0,
                partition_abs: None,
                actions: vec![],
                feature: cadmc_compress::FeatureAction::IDENTITY,
                children: vec![],
                reward: 1.0,
            },
        );
        for _ in 0..2 {
            tree.push_node(
                Some(root),
                TreeNode {
                    level: 1,
                    partition_abs: None,
                    actions: vec![],
                    feature: cadmc_compress::FeatureAction::IDENTITY,
                    children: vec![],
                    reward: 1.0,
                },
            );
        }
        tree
    }

    #[test]
    fn valid_tree_passes() {
        model_tree(&valid_tree()).unwrap();
    }

    #[test]
    fn empty_tree_is_rejected() {
        let tree = ModelTree::new(zoo::vgg11_cifar(), 2, vec![2.0, 10.0]);
        assert_eq!(model_tree(&tree), Err(ValidateError::EmptyTree));
    }

    #[test]
    fn wrong_fork_count_is_rejected() {
        let base = zoo::vgg11_cifar();
        let mut tree = ModelTree::new(base, 2, vec![2.0, 10.0]);
        let root = tree.push_node(
            None,
            TreeNode {
                level: 0,
                partition_abs: None,
                actions: vec![],
                feature: cadmc_compress::FeatureAction::IDENTITY,
                children: vec![],
                reward: 0.0,
            },
        );
        tree.push_node(
            Some(root),
            TreeNode {
                level: 1,
                partition_abs: None,
                actions: vec![],
                feature: cadmc_compress::FeatureAction::IDENTITY,
                children: vec![],
                reward: 0.0,
            },
        );
        // Only one child where K = 2.
        assert!(matches!(
            model_tree(&tree),
            Err(ValidateError::WrongForkCount { node: 0, children: 1, k: 2 })
        ));
    }

    #[test]
    fn non_finite_reward_is_rejected() {
        let mut tree = valid_tree();
        tree.node_mut(1).reward = f64::NAN;
        assert!(matches!(
            model_tree(&tree),
            Err(ValidateError::NonFiniteReward { node: 1, .. })
        ));
    }

    #[test]
    fn bad_level_is_rejected() {
        let mut tree = valid_tree();
        tree.node_mut(2).level = 0;
        assert!(matches!(
            model_tree(&tree),
            Err(ValidateError::BadNodeLevel { node: 2, .. })
        ));
    }

    #[test]
    fn action_outside_block_is_rejected() {
        let mut tree = valid_tree();
        let last = tree.base().len() - 1;
        tree.node_mut(0).actions.push(cadmc_accuracy::AppliedAction {
            layer_index: last,
            technique: Technique::F1Svd,
        });
        assert!(matches!(
            model_tree(&tree),
            Err(ValidateError::ActionOutsideBlock { node: 0, .. })
        ));
    }

    #[test]
    fn feature_without_transfer_is_rejected() {
        use cadmc_compress::{BottleneckKnob, FeatureAction, QuantKnob};
        let base = zoo::tiny_cnn();
        let feat = FeatureAction {
            bottleneck: BottleneckKnob::Half,
            quant: QuantKnob::Int8,
        };
        // `with_feature` normalizes all-edge to identity, so forge the
        // illegal state directly — exactly what a corrupted artifact would
        // deserialize into.
        let mut c = Candidate::base_all_edge(&base);
        c.feature = feat;
        assert!(matches!(
            candidate(&base, &c),
            Err(ValidateError::FeatureWithoutTransfer { .. })
        ));
        // The same action on a transfer-bearing cut is legal.
        let cut = Candidate::compose(
            &base,
            Partition::AfterLayer(0),
            &CompressionPlan::identity(base.len()),
        )
        .unwrap()
        .with_feature(feat);
        candidate(&base, &cut).unwrap();
    }

    #[test]
    fn feature_on_unpartitioned_node_is_rejected() {
        use cadmc_compress::{BottleneckKnob, FeatureAction, QuantKnob};
        let mut tree = valid_tree();
        tree.node_mut(1).feature = FeatureAction {
            bottleneck: BottleneckKnob::Quarter,
            quant: QuantKnob::Int4,
        };
        assert!(matches!(
            model_tree(&tree),
            Err(ValidateError::FeatureOnUnpartitionedNode { node: 1, .. })
        ));
    }

    #[test]
    fn diagnostics_are_actionable() {
        let msg = ValidateError::BadBlockCount { n_blocks: 9, layers: 4 }.to_string();
        assert!(msg.contains("1..=4"), "{msg}");
        let msg = ValidateError::UnsortedBandwidthLevels {
            index: 1,
            prev: 10.0,
            next: 2.0,
        }
        .to_string();
        assert!(msg.contains("strictly ascending"), "{msg}");
    }
}

//! Property-based tests of the deployment algebra: random trees compose
//! into valid deployments, rewards stay bounded, the surgery min-cut
//! is never beaten by any chain cut, and the executor's degradation
//! policy survives arbitrary seeded fault schedules.

#![cfg(test)]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use cadmc_latency::Mbps;
use cadmc_netsim::{BandwidthTrace, FaultProcessConfig, FaultSchedule};
use cadmc_nn::zoo;
use cadmc_telemetry as telemetry;

use crate::baselines::{random_feature, random_partition, random_plan};
use crate::candidate::{Candidate, Partition};
use crate::env::EvalEnv;
use crate::executor::{execute, ExecConfig, Mode, Policy, RequestOutcome};
use crate::surgery;
use crate::tree::{ModelTree, TreeNode};

/// Builds a random (but structurally valid) model tree via seeded RNG.
fn random_tree(seed: u64, n_blocks: usize, k: usize) -> ModelTree {
    let base = zoo::vgg11_cifar();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = ModelTree::new(base.clone(), n_blocks, (0..k).map(|i| 2.0 + 4.0 * i as f64).collect());
    let mut frontier: Vec<Option<usize>> = vec![None];
    while let Some(parent) = frontier.pop() {
        let level = parent.map_or(0, |p| tree.nodes()[p].level + 1);
        let range = tree.block_range(level);
        use rand::RngExt;
        let pick = rng.random_range(0..=range.len());
        let (partition_abs, compress_len) = if pick == range.len() {
            (None, range.len())
        } else {
            (Some(range.start + pick), pick)
        };
        let mut actions = Vec::new();
        if compress_len > 0 {
            let block = base
                .slice(range.start, range.start + compress_len)
                .expect("valid block");
            let plan = random_plan(&block, compress_len, &mut rng);
            for (local, a) in plan.actions().iter().enumerate() {
                if let Some(t) = a {
                    actions.push(cadmc_accuracy::AppliedAction {
                        layer_index: range.start + local,
                        technique: *t,
                    });
                }
            }
        }
        // Transfer-bearing cut nodes may carry a random feature action,
        // exercising the cut-tensor overlay through the whole tree algebra.
        let feature = match partition_abs {
            Some(abs) if abs < base.len() => random_feature(&mut rng),
            _ => cadmc_compress::FeatureAction::IDENTITY,
        };
        let id = tree.push_node(
            parent,
            TreeNode {
                level,
                partition_abs,
                actions,
                feature,
                children: Vec::new(),
                reward: 0.0,
            },
        );
        if partition_abs.is_none() && level + 1 < n_blocks {
            for _ in 0..k {
                frontier.push(Some(id));
            }
        }
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every branch of every random tree composes into a deployment with
    /// the base model's output shape and a consistent cut index, and
    /// `compose` with any bandwidth lands on one of those branches.
    #[test]
    fn random_trees_compose_validly(seed in 0u64..300, n in 2usize..4, k in 2usize..4) {
        let tree = random_tree(seed, n, k);
        let base_out = tree.base().output_shape();
        let branches = tree.branches();
        prop_assert!(!branches.is_empty());
        for path in &branches {
            let c = tree.compose_path(path);
            prop_assert_eq!(c.model.output_shape(), base_out);
            prop_assert!(c.edge_layers <= c.model.len());
        }
        for bw in [0.5, 5.0, 50.0] {
            let (path, c) = tree.compose(|_| bw);
            prop_assert!(branches.contains(&path));
            prop_assert_eq!(c.model.output_shape(), base_out);
        }
        // Storage accounting never exceeds the naive per-branch copies.
        let naive = branches.len() as u64 * tree.base().param_bytes();
        prop_assert!(tree.edge_storage_bytes() <= naive);
    }

    /// Backward estimation preserves leaf rewards and bounds parents by
    /// their children's extremes (for the mean rule).
    #[test]
    fn backward_estimation_bounds(seed in 0u64..300) {
        let mut tree = random_tree(seed, 3, 2);
        // Assign arbitrary leaf rewards.
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        let leaf_ids: Vec<usize> = tree
            .branches()
            .iter()
            .map(|p| *p.last().expect("non-empty"))
            .collect();
        for &id in &leaf_ids {
            tree.node_mut(id).reward = rng.random_range(300.0..380.0);
        }
        let before: Vec<f64> = leaf_ids.iter().map(|&i| tree.nodes()[i].reward).collect();
        tree.backward_estimate();
        // Leaves unchanged.
        for (&id, &b) in leaf_ids.iter().zip(&before) {
            prop_assert_eq!(tree.nodes()[id].reward, b);
        }
        // Every interior node's reward is within [min, max] of leaf rewards
        // (mean-of-children recursion cannot escape the hull).
        let lo = before.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = before.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for node in tree.nodes() {
            if !node.children.is_empty() {
                prop_assert!(node.reward >= lo - 1e-9 && node.reward <= hi + 1e-9);
            }
        }
    }

    /// The min-cut surgery partition is optimal: no chain cut beats it.
    #[test]
    fn mincut_dominates_every_chain_cut(bw in 0.2f64..200.0) {
        let base = zoo::alexnet_cifar();
        let env = EvalEnv::phone();
        let plan = cadmc_compress::CompressionPlan::identity(base.len());
        let chosen = surgery::optimal_partition_mincut(&base, &env, Mbps(bw));
        let chosen_lat = env.latency_ms(
            &Candidate::compose(&base, chosen, &plan).expect("identity composes"),
            Mbps(bw),
        );
        for p in surgery::partition_options(&base) {
            let lat = env.latency_ms(
                &Candidate::compose(&base, p, &plan).expect("identity composes"),
                Mbps(bw),
            );
            prop_assert!(
                chosen_lat <= lat + 1e-6,
                "cut {p} ({lat:.3} ms) beats min-cut {chosen} ({chosen_lat:.3} ms) at {bw} Mbps"
            );
        }
    }

    /// The executor never panics under arbitrary seeded fault schedules,
    /// and every request resolves to some [`RequestOutcome`] — for both
    /// policies, both fidelity modes, random tree shapes.
    #[test]
    fn executor_survives_arbitrary_fault_schedules(
        seed in 0u64..200,
        fault_seed in 0u64..200,
        outage_rate in 0.0f64..0.3,
        collapse_rate in 0.0f64..0.3,
        rtt_rate in 0.0f64..0.3,
        freeze_rate in 0.0f64..0.3,
        field in proptest::bool::ANY,
    ) {
        let cfg = FaultProcessConfig {
            outage_rate,
            collapse_rate,
            rtt_rate,
            freeze_rate,
            ..FaultProcessConfig::harsh()
        };
        let faults = FaultSchedule::generate(&cfg, 20_000.0, fault_seed);
        let tree = random_tree(seed, 3, 2);
        let base = tree.base().clone();
        let env = EvalEnv::phone();
        let static_c = surgery::plan(&base, &env, Mbps(8.0)).candidate;
        let trace = BandwidthTrace::new(100.0, (0..200).map(|i| 2.0 + (i % 7) as f64 * 3.0).collect());
        let mode = if field { Mode::Field } else { Mode::Emulation };
        let ecfg = ExecConfig::new(12, mode, seed).with_faults(faults);
        for policy in [Policy::Static(&static_c), Policy::Tree(&tree)] {
            let report = execute(&env, &base, &policy, &trace, &ecfg);
            prop_assert_eq!(report.outcomes.len(), 12);
            prop_assert_eq!(report.latencies_ms.len(), 12);
            for (&l, &o) in report.latencies_ms.iter().zip(&report.outcomes) {
                prop_assert!(l.is_finite() && l > 0.0);
                // A failed request carries zero accuracy, everything else
                // a real oracle score; either way it *resolved*.
                let _ = o;
            }
        }
    }

    /// No transfer attempt ever waits past its deadline by more than one
    /// backoff quantum: every `exec.fault` event records a wait equal to
    /// the deadline it was given and a backoff bounded by the policy's
    /// exponential schedule.
    #[test]
    fn deadline_overrun_is_bounded_by_one_backoff_quantum(
        fault_seed in 0u64..300,
        deadline in 5.0f64..200.0,
        max_retries in 0u32..4,
    ) {
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let c = surgery::plan(&base, &env, Mbps(8.0)).candidate;
        prop_assume!(c.edge_layers < c.model.len());
        let faults = FaultSchedule::generate(&FaultProcessConfig::harsh(), 20_000.0, fault_seed);
        prop_assume!(!faults.is_empty());
        let trace = BandwidthTrace::new(100.0, vec![8.0; 200]);
        let mut ecfg = ExecConfig::emulation(20, 9).with_faults(faults);
        ecfg.deadline_ms = Some(deadline);
        ecfg.max_retries = max_retries;
        let backoff_cap = ecfg.backoff_ms * f64::from(1u32 << max_retries);
        let (_, report) = telemetry::testing::with_collector(|| {
            execute(&env, &base, &Policy::Static(&c), &trace, &ecfg);
        });
        for e in report.events.iter().filter(|e| e.name == "exec.fault") {
            let waited = e.field_f64("waited_ms").expect("exec.fault carries waited_ms");
            let backoff = e.field_f64("backoff_ms").expect("exec.fault carries backoff_ms");
            prop_assert!(waited <= deadline + 1e-9, "waited {waited} past deadline {deadline}");
            prop_assert!(backoff <= backoff_cap + 1e-9, "backoff {backoff} above cap {backoff_cap}");
        }
    }

    /// Monotonicity: injecting a fault process never *improves* mean
    /// latency for the same seed. Scoped to where it is structurally
    /// guaranteed — static policy, emulation fidelity, flat trace — so
    /// time-coupling (later requests sampling different trace points)
    /// cannot flip the comparison.
    #[test]
    fn faults_never_improve_mean_latency_on_flat_traces(
        fault_seed in 0u64..300,
        bw in 1.0f64..40.0,
        seed in 0u64..50,
    ) {
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let c = surgery::plan(&base, &env, Mbps(bw)).candidate;
        let trace = BandwidthTrace::new(100.0, vec![bw; 200]);
        let clean_cfg = ExecConfig::emulation(15, seed);
        let clean = execute(&env, &base, &Policy::Static(&c), &trace, &clean_cfg);
        let faults = FaultSchedule::generate(&FaultProcessConfig::harsh(), 20_000.0, fault_seed);
        let faulted_cfg = ExecConfig::emulation(15, seed).with_faults(faults);
        let faulted = execute(&env, &base, &Policy::Static(&c), &trace, &faulted_cfg);
        prop_assert!(faulted.outcomes.iter().all(|&o| o != RequestOutcome::Failed));
        prop_assert!(
            faulted.mean_latency_ms() >= clean.mean_latency_ms() - 1e-9,
            "faults improved latency: {} < {}",
            faulted.mean_latency_ms(),
            clean.mean_latency_ms()
        );
    }

    /// The O(1) prefix-sum latency kernel agrees with the per-layer
    /// scalar walk to 0 ULP — bit-identical floats — for arbitrary
    /// compressed candidates, cut points and bandwidths.
    #[test]
    fn latency_kernel_matches_scalar_oracle_exactly(seed in 0u64..500, bw in 0.05f64..500.0) {
        let base = match seed % 3 {
            0 => zoo::vgg11_cifar(),
            1 => zoo::alexnet_cifar(),
            _ => zoo::tiny_cnn(),
        };
        let env = if seed % 2 == 0 { EvalEnv::phone() } else { EvalEnv::tx2() };
        let mut rng = StdRng::seed_from_u64(seed);
        let partition = random_partition(&base, &mut rng);
        let edge_len = partition.edge_len(base.len());
        let plan = random_plan(&base, edge_len, &mut rng);
        let c = Candidate::compose(&base, partition, &plan)
            .expect("random plan composes")
            .with_feature(random_feature(&mut rng));
        let kernel = env.latency_ms(&c, Mbps(bw));
        let scalar = env.latency_ms_scalar(&c, Mbps(bw));
        prop_assert_eq!(
            kernel.to_bits(),
            scalar.to_bits(),
            "kernel {} != scalar {}",
            kernel,
            scalar
        );
    }

    /// The cut-tensor overlay never *increases* transfer bytes, agrees
    /// with the explicit per-layer scalar walk exactly, and evaluation
    /// with any feature action never panics and stays bounded.
    #[test]
    fn feature_overlay_shrinks_and_matches_scalar(
        seed in 0u64..500,
        bw in 0.05f64..500.0,
        feat_idx in 0usize..9,
    ) {
        let base = match seed % 3 {
            0 => zoo::vgg11_cifar(),
            1 => zoo::alexnet_cifar(),
            _ => zoo::tiny_cnn(),
        };
        let env = EvalEnv::phone();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfea7);
        let partition = random_partition(&base, &mut rng);
        let edge_len = partition.edge_len(base.len());
        let plan = random_plan(&base, edge_len, &mut rng);
        let feature = cadmc_compress::FeatureAction::from_index(feat_idx);
        let plainc = Candidate::compose(&base, partition, &plan).expect("random plan composes");
        let raw = plainc.transfer_bytes();
        let c = plainc.with_feature(feature);
        prop_assert!(c.transfer_bytes() <= raw, "feature inflated the cut tensor");
        prop_assert_eq!(c.transfer_bytes(), c.transfer_bytes_scalar());
        let e = env.evaluate(&base, &c, Mbps(bw));
        prop_assert!((0.0..=400.0).contains(&e.reward));
        prop_assert!(e.latency_ms > 0.0 && e.latency_ms.is_finite());
        prop_assert!((0.5..=1.0).contains(&e.accuracy));
    }

    /// The fused single-splice compose fast path is indistinguishable
    /// from the sequential rewrite oracle: same model (including layer
    /// names, hence structural hash), partition bookkeeping and recorded
    /// actions, for arbitrary plans and cuts.
    #[test]
    fn compose_fast_path_matches_sequential_oracle(seed in 0u64..500) {
        let base = match seed % 3 {
            0 => zoo::vgg11_cifar(),
            1 => zoo::alexnet_cifar(),
            _ => zoo::tiny_cnn(),
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0a7);
        let partition = random_partition(&base, &mut rng);
        let edge_len = partition.edge_len(base.len());
        let plan = random_plan(&base, edge_len, &mut rng);
        let fast = Candidate::compose(&base, partition, &plan).expect("random plan composes");
        let slow =
            Candidate::compose_sequential(&base, partition, &plan).expect("random plan composes");
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(fast.model.structural_hash(), slow.model.structural_hash());
        prop_assert_eq!(fast.transfer_bytes(), slow.transfer_bytes());
    }

    /// Random candidates always evaluate to bounded rewards and positive
    /// latencies, at any bandwidth.
    #[test]
    fn evaluations_are_bounded(seed in 0u64..500, bw in 0.05f64..500.0) {
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let mut rng = StdRng::seed_from_u64(seed);
        let partition = random_partition(&base, &mut rng);
        let edge_len = match partition {
            Partition::AllEdge => base.len(),
            Partition::AllCloud => 0,
            Partition::AfterLayer(i) => i + 1,
        };
        let plan = random_plan(&base, edge_len, &mut rng);
        let c = Candidate::compose(&base, partition, &plan).expect("random plan composes");
        let e = env.evaluate(&base, &c, Mbps(bw));
        prop_assert!((0.0..=400.0).contains(&e.reward));
        prop_assert!(e.latency_ms > 0.0 && e.latency_ms.is_finite());
        prop_assert!((0.5..=1.0).contains(&e.accuracy));
    }
}

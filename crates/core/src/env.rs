//! The evaluation environment: devices, transfer model, accuracy oracle
//! and reward — everything needed to score a [`Candidate`] at a bandwidth.

use cadmc_accuracy::AccuracyOracle;
use cadmc_latency::{DeviceProfile, Mbps, Platform, TransferModel};
use cadmc_nn::ModelSpec;

use crate::candidate::Candidate;
use crate::reward::{Evaluation, RewardSpec};

/// A complete scoring environment (Eq. 3 latency + Eq. 2 accuracy →
/// Eq. 7 reward).
#[derive(Debug, Clone)]
pub struct EvalEnv {
    /// The edge device profile.
    pub edge: DeviceProfile,
    /// The cloud server profile.
    pub cloud: DeviceProfile,
    /// The Eq. 6 transfer model.
    pub transfer: TransferModel,
    /// The accuracy oracle.
    pub oracle: AccuracyOracle,
    /// Reward normalization.
    pub reward: RewardSpec,
}

impl EvalEnv {
    /// Environment with the smartphone as the edge device.
    pub fn phone() -> Self {
        Self::for_edge(Platform::Phone)
    }

    /// Environment with the Jetson TX2 as the edge device.
    pub fn tx2() -> Self {
        Self::for_edge(Platform::Tx2)
    }

    /// Environment for an arbitrary edge platform.
    pub fn for_edge(platform: Platform) -> Self {
        Self {
            edge: DeviceProfile::for_platform(platform),
            cloud: DeviceProfile::cloud(),
            transfer: TransferModel::default(),
            oracle: AccuracyOracle::standard(),
            reward: RewardSpec::default(),
        }
    }

    /// End-to-end latency `T = Te + Tt + Tc` (Eq. 3) of a candidate at a
    /// given bandwidth.
    pub fn latency_ms(&self, candidate: &Candidate, bandwidth: Mbps) -> f64 {
        let m = &candidate.model;
        let cut = candidate.edge_layers;
        let te = self.edge.range_latency_ms(m, 0, cut);
        let tt = self
            .transfer
            .latency_ms(candidate.transfer_bytes(), bandwidth);
        let tc = self.cloud.range_latency_ms(m, cut, m.len());
        te + tt + tc
    }

    /// Differential-testing oracle for [`latency_ms`]: the same Eq. 3 sum
    /// computed by the per-layer scalar walk instead of the O(1)
    /// prefix-sum kernels. The kernel path must agree to 0 ULP (see the
    /// workspace proptests).
    ///
    /// [`latency_ms`]: EvalEnv::latency_ms
    pub fn latency_ms_scalar(&self, candidate: &Candidate, bandwidth: Mbps) -> f64 {
        let m = &candidate.model;
        let cut = candidate.edge_layers;
        let te = self.edge.range_latency_ms_scalar(m, 0, cut);
        let tt = self
            .transfer
            .latency_ms(candidate.transfer_bytes_scalar(), bandwidth);
        let tc = self.cloud.range_latency_ms_scalar(m, cut, m.len());
        te + tt + tc
    }

    /// Full evaluation of a candidate (deployed accuracy from the oracle
    /// over the candidate's recorded actions on `base` plus its
    /// cut-tensor feature compression).
    pub fn evaluate(&self, base: &ModelSpec, candidate: &Candidate, bandwidth: Mbps) -> Evaluation {
        let accuracy = self
            .oracle
            .evaluate_deployed(base, &candidate.actions, candidate.feature);
        let latency = self.latency_ms(candidate, bandwidth);
        Evaluation::new(accuracy, latency, &self.reward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::Partition;
    use cadmc_compress::{CompressionPlan, Technique};
    use cadmc_nn::zoo;

    #[test]
    fn all_edge_latency_has_no_transfer_or_cloud_term() {
        let env = EvalEnv::phone();
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let lat = env.latency_ms(&c, Mbps(10.0));
        let expected = env.edge.model_latency_ms(&base);
        assert!((lat - expected).abs() < 1e-9);
    }

    #[test]
    fn good_bandwidth_makes_offloading_attractive() {
        let env = EvalEnv::phone();
        let base = zoo::vgg11_cifar();
        let plan = CompressionPlan::identity(base.len());
        let edge_only = env.latency_ms(&Candidate::base_all_edge(&base), Mbps(50.0));
        // Late cut: tiny features, most compute still on edge.
        let best_offload = (0..base.len() - 1)
            .map(|i| {
                let c = Candidate::compose(&base, Partition::AfterLayer(i), &plan).unwrap();
                env.latency_ms(&c, Mbps(50.0))
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_offload < edge_only,
            "at 50 Mbps some cut should beat edge-only: {best_offload:.1} vs {edge_only:.1}"
        );
    }

    #[test]
    fn poor_bandwidth_punishes_early_cuts() {
        let env = EvalEnv::phone();
        let base = zoo::vgg11_cifar();
        let plan = CompressionPlan::identity(base.len());
        let early = Candidate::compose(&base, Partition::AfterLayer(0), &plan).unwrap();
        let edge_only = Candidate::base_all_edge(&base);
        let bw = Mbps(1.0);
        assert!(
            env.latency_ms(&early, bw) > env.latency_ms(&edge_only, bw),
            "shipping 256 KB of features over 1 Mbps must be worse than local compute"
        );
    }

    #[test]
    fn compression_reduces_latency_and_accuracy() {
        let env = EvalEnv::phone();
        let base = zoo::vgg11_cifar();
        let mut plan = CompressionPlan::identity(base.len());
        for i in 0..base.len() {
            if Technique::C1MobileNet.applicable(&base, i) {
                plan.set(i, Some(Technique::C1MobileNet));
            }
        }
        let compressed = Candidate::compose(&base, Partition::AllEdge, &plan).unwrap();
        let plain = Candidate::base_all_edge(&base);
        let bw = Mbps(10.0);
        let e_comp = env.evaluate(&base, &compressed, bw);
        let e_plain = env.evaluate(&base, &plain, bw);
        assert!(e_comp.latency_ms < e_plain.latency_ms);
        assert!(e_comp.accuracy < e_plain.accuracy);
        assert!(e_plain.accuracy == 0.9201);
    }

    #[test]
    fn reward_tradeoff_is_nontrivial() {
        // The reward's 300/100 weighting means moderate compression should
        // often *raise* reward despite the accuracy loss — otherwise the
        // search problem would be degenerate.
        let env = EvalEnv::phone();
        let base = zoo::vgg11_cifar();
        let mut plan = CompressionPlan::identity(base.len());
        // Compress the two widest convs.
        let mut by_cost: Vec<usize> = (0..base.len())
            .filter(|&i| Technique::C1MobileNet.applicable(&base, i))
            .collect();
        by_cost.sort_by_key(|&i| std::cmp::Reverse(base.layer_maccs(i)));
        for &i in by_cost.iter().take(2) {
            plan.set(i, Some(Technique::C1MobileNet));
        }
        let compressed = Candidate::compose(&base, Partition::AllEdge, &plan).unwrap();
        let plain = Candidate::base_all_edge(&base);
        let bw = Mbps(3.0);
        let r_comp = env.evaluate(&base, &compressed, bw).reward;
        let r_plain = env.evaluate(&base, &plain, bw).reward;
        assert!(
            r_comp > r_plain,
            "moderate compression should pay off: {r_comp:.2} vs {r_plain:.2}"
        );
    }
}

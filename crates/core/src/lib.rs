//! # cadmc-core
//!
//! The primary contribution of *Context-Aware Deep Model Compression for
//! Edge Cloud Computing* (ICDCS 2020), reproduced in Rust: a
//! reinforcement-learning decision engine that jointly searches DNN
//! **partition** (edge/cloud placement) and **compression** strategies,
//! materializes them as a **context-aware model tree**, and composes the
//! deployed model on the fly as bandwidth fluctuates.
//!
//! Map from paper to modules:
//!
//! | Paper | Module |
//! |---|---|
//! | MDP formulation (§V-A) | [`mdp`] |
//! | Reward function Eq. 7 (§V-B) | [`RewardSpec`] |
//! | LSTM controllers (§VI-C, Fig. 6) | [`controller`] |
//! | Alg. 1 optimal branch search | [`branch`] |
//! | Model tree + Alg. 2 composition (§VI-A) | [`tree`] |
//! | Alg. 3 tree search (§VI-B) | [`tree_search`] |
//! | Dynamic DNN surgery baseline | [`surgery`] (min-cut in [`mincut`]) |
//! | Random / ε-greedy baselines (Fig. 7) | [`baselines`] |
//! | Memo pool (§VII-A) | [`memo`] |
//! | Emulation & field harnesses (§VII-B) | [`executor`], [`experiments`] |
//! | Offline/online façade (Fig. 2) | [`engine`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod branch;
mod candidate;
mod context;
pub mod controller;
pub mod delta;
pub mod engine;
mod env;
pub mod executor;
pub mod experiments;
pub mod mdp;
pub mod memo;
pub mod mincut;
pub mod parallel;
pub mod persist;
mod proptests;
mod reward;
pub mod search;
pub mod surgery;
pub mod tree;
pub mod tree_cache;
pub mod tree_search;
pub mod validate;

pub use candidate::{Candidate, Partition};
pub use context::NetworkContext;
pub use env::EvalEnv;
pub use reward::{Evaluation, RewardSpec};

//! Shared search infrastructure: configuration, the controller bundle, and
//! the mapping from controller actions to deployment partitions.

use cadmc_autodiff::ParamSet;
use cadmc_nn::ModelSpec;

use crate::candidate::Partition;
use crate::controller::{
    CompressionController, FeatureController, PartitionAction, PartitionController, Reinforce,
};

/// Hyper-parameters shared by the branch and tree searches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Training episodes.
    pub episodes: usize,
    /// LSTM hidden width per direction.
    pub hidden: usize,
    /// Policy-gradient learning rate.
    pub lr: f32,
    /// RNG / initialization seed.
    pub seed: u64,
    /// Initial forced-no-partition exploration factor α (§VII-A
    /// "exploration with fair chances"); decays to zero over the first
    /// `alpha_decay_episodes`.
    pub alpha: f64,
    /// Episodes over which α decays linearly to zero.
    pub alpha_decay_episodes: usize,
    /// Backward-estimation rule for the tree search (the paper averages;
    /// `Max` is the ablation variant).
    pub backward_rule: crate::tree::BackwardRule,
    /// Probability of replacing the partition policy's sample with a
    /// uniform random partition (off-policy exploration, no gradient).
    /// Keeps rarely-sampled corners like "offload everything" visible
    /// even after the policy starts to concentrate.
    pub explore_epsilon: f64,
    /// Entropy-bonus coefficient β for the policy-gradient loss
    /// (`0` disables). Off by default: with the short episode budgets the
    /// engine uses, even a small bonus keeps the policies too diffuse to
    /// exploit (see the `ablation_quality` binary); it is exposed for the
    /// ablation and for long-budget users.
    pub entropy_beta: f32,
    /// Episodes rolled out per policy snapshot: within a batch all
    /// episodes sample from the same frozen controller parameters (each
    /// on its own `seed ^ episode` RNG stream), then their REINFORCE
    /// updates are applied sequentially in episode order. This is what
    /// makes rollouts parallelizable without losing determinism — the
    /// batch size (not the worker count) defines the learning dynamics.
    pub rollout_batch: usize,
    /// Rollout worker pool. Purely a scheduling knob: any value produces
    /// bit-identical results (see [`crate::parallel`]).
    pub parallelism: crate::parallel::Parallelism,
    /// Enables the third action family: feature compression (bottleneck ×
    /// quantization) of the cut tensor, searched jointly with partition
    /// and layer compression. Off by default — when disabled, no feature
    /// parameters register, no extra RNG draws happen, and every search
    /// output is bit-identical to the pre-feature engine.
    pub feature_actions: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            episodes: 120,
            hidden: 16,
            lr: 8e-3,
            seed: 0,
            alpha: 0.5,
            alpha_decay_episodes: 30,
            backward_rule: crate::tree::BackwardRule::Mean,
            explore_epsilon: 0.1,
            entropy_beta: 0.0,
            rollout_batch: 8,
            parallelism: crate::parallel::Parallelism::serial(),
            feature_actions: false,
        }
    }
}

impl SearchConfig {
    /// A fast configuration for tests.
    pub fn quick(seed: u64) -> Self {
        Self {
            episodes: 30,
            hidden: 8,
            seed,
            ..Self::default()
        }
    }

    /// The forced-no-partition probability at `episode` for a block at
    /// tree level `level` (1-based) of `n_levels`: `α · (N − n)/N`,
    /// with α decaying linearly to zero.
    pub fn force_no_partition(&self, episode: usize, level: usize, n_levels: usize) -> f64 {
        if episode >= self.alpha_decay_episodes || n_levels == 0 {
            return 0.0;
        }
        let alpha = self.alpha * (1.0 - episode as f64 / self.alpha_decay_episodes as f64);
        alpha * (n_levels.saturating_sub(level)) as f64 / n_levels as f64
    }
}

/// The decision engine's trainable state: both controllers over one shared
/// parameter set, plus the policy-gradient trainer.
#[derive(Debug)]
pub struct Controllers {
    /// Shared trainable parameters of both controllers.
    pub params: ParamSet,
    /// The partition policy π_p.
    pub partition: PartitionController,
    /// The compression policy π_c.
    pub compression: CompressionController,
    /// The feature-compression policy π_f over the cut tensor. `None`
    /// unless [`SearchConfig::feature_actions`] is set — registered last
    /// so enabling it never renumbers the other controllers' parameters.
    pub feature: Option<FeatureController>,
    /// Monte-Carlo policy-gradient trainer.
    pub trainer: Reinforce,
}

impl Controllers {
    /// Fresh randomly-initialized controllers.
    pub fn new(cfg: &SearchConfig) -> Self {
        let mut params = ParamSet::new();
        let partition = PartitionController::new(&mut params, "partition", cfg.hidden, cfg.seed);
        let compression =
            CompressionController::new(&mut params, "compression", cfg.hidden, cfg.seed ^ 0x77);
        let feature = cfg
            .feature_actions
            .then(|| FeatureController::new(&mut params, "feature", cfg.seed ^ 0xfea7));
        let trainer = Reinforce::new(cfg.lr, 400.0).with_entropy(cfg.entropy_beta);
        Self {
            params,
            partition,
            compression,
            feature,
            trainer,
        }
    }
}

/// Maps a whole-model partition action to a deployment [`Partition`].
pub fn to_partition(action: PartitionAction, model: &ModelSpec) -> Partition {
    match action {
        PartitionAction::NoPartition => Partition::AllEdge,
        PartitionAction::CutBefore(0) => Partition::AllCloud,
        PartitionAction::CutBefore(j) => {
            if j >= model.len() {
                Partition::AllEdge
            } else {
                Partition::AfterLayer(j - 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;

    #[test]
    fn alpha_decays_to_zero() {
        let cfg = SearchConfig::default();
        let early = cfg.force_no_partition(0, 1, 3);
        let mid = cfg.force_no_partition(15, 1, 3);
        let late = cfg.force_no_partition(100, 1, 3);
        assert!(early > mid);
        assert!(mid > 0.0);
        assert_eq!(late, 0.0);
    }

    #[test]
    fn deeper_levels_are_forced_less() {
        // α·(N−n)/N: the last level is never forced — it is the least
        // visited, so the bias correction targets shallow levels.
        let cfg = SearchConfig::default();
        assert!(cfg.force_no_partition(0, 1, 3) > cfg.force_no_partition(0, 2, 3));
        assert_eq!(cfg.force_no_partition(0, 3, 3), 0.0);
    }

    #[test]
    fn partition_mapping() {
        let base = zoo::tiny_cnn();
        assert_eq!(
            to_partition(PartitionAction::NoPartition, &base),
            Partition::AllEdge
        );
        assert_eq!(
            to_partition(PartitionAction::CutBefore(0), &base),
            Partition::AllCloud
        );
        assert_eq!(
            to_partition(PartitionAction::CutBefore(3), &base),
            Partition::AfterLayer(2)
        );
    }

    #[test]
    fn controllers_share_one_param_set() {
        let c = Controllers::new(&SearchConfig::quick(1));
        assert!(c.params.len() > 8, "both controllers registered params");
    }

    #[test]
    fn feature_controller_is_gated_and_additive() {
        let plain = Controllers::new(&SearchConfig::quick(1));
        assert!(plain.feature.is_none());
        let cfg = SearchConfig {
            feature_actions: true,
            ..SearchConfig::quick(1)
        };
        let with_feature = Controllers::new(&cfg);
        assert!(with_feature.feature.is_some());
        // Registered after the other controllers: strictly more params,
        // none renamed/renumbered.
        assert_eq!(with_feature.params.len(), plain.params.len() + 2);
    }
}

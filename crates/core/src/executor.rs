//! Online execution over a bandwidth trace: the paper's **emulation**
//! (§VII-B2) and **field test** (§VII-B3) harnesses.
//!
//! A stream of inference requests runs back-to-back against a replayed
//! bandwidth trace. Static policies (dynamic DNN surgery, optimal branch)
//! deploy one fixed candidate; the model-tree policy re-decides at every
//! block boundary from the currently *measured* bandwidth (Alg. 2), which
//! is exactly where its advantage under fluctuation comes from.
//!
//! The emulation mode uses the estimated latency model and perfect
//! bandwidth knowledge, like the paper's emulation. The field mode
//! injects the two error sources the paper blames for its emulation→field
//! gap: (i) latency-model inaccuracy — a systematic multiplicative bias
//! plus per-request jitter on compute times — and (ii) "a coarse
//! estimation of network conditions" — decisions see a smoothed, stale
//! bandwidth estimate while transfers pay the true instantaneous one.
//!
//! ## Fault injection and graceful degradation
//!
//! With a non-empty [`cadmc_netsim::FaultSchedule`] in [`ExecConfig`]
//! the network can also *fail*, not just vary: outages, collapses, RTT
//! spikes and estimator freezes. The executor then runs a degradation
//! policy per request: each transfer gets a deadline derived from the
//! branch's expected transfer latency, a timed-out transfer is retried
//! with deterministic exponential backoff, and when retries are
//! exhausted the request falls back to an edge-heavier composition
//! (validated by [`crate::validate`]) instead of hanging. The per-request
//! resolution is recorded as a [`RequestOutcome`]. With the default empty
//! schedule and no explicit deadline, the degradation machinery is fully
//! bypassed and the executor is bit-identical to the fault-free one.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use cadmc_latency::Mbps;
use cadmc_netsim::{BandwidthEstimator, BandwidthTrace, FaultSchedule};
use cadmc_nn::ModelSpec;
use cadmc_telemetry as telemetry;

use crate::candidate::Candidate;
use crate::env::EvalEnv;
use crate::reward::{Evaluation, RewardSpec};
use crate::tree::ModelTree;
use crate::validate;

/// What drives deployment decisions during execution.
#[derive(Debug, Clone)]
pub enum Policy<'a> {
    /// A fixed candidate chosen offline (surgery or optimal branch).
    Static(&'a Candidate),
    /// A context-aware model tree walked per Alg. 2.
    Tree(&'a ModelTree),
}

/// Fidelity mode of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Estimated latencies, perfect bandwidth knowledge (Table 4).
    Emulation,
    /// Noisy latencies, stale/coarse bandwidth estimation (Table 5).
    Field,
}

/// Execution parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecConfig {
    /// Number of inference requests to stream.
    pub requests: usize,
    /// Emulation or field fidelity.
    pub mode: Mode,
    /// Noise / estimator seed.
    pub seed: u64,
    /// Idle gap between consecutive requests (ms of trace time). Choose
    /// it so the run spans the whole trace: back-to-back requests would
    /// otherwise sample only the first seconds of the context.
    pub think_time_ms: f64,
    /// Scheduled network faults. Empty (the default) means the network
    /// only varies, never fails, and the degradation policy is bypassed.
    pub faults: FaultSchedule,
    /// Explicit per-attempt transfer deadline (ms). `None` derives it
    /// from the branch's expected transfer latency
    /// (`DEADLINE_FACTOR × expected`, floored at `MIN_DEADLINE_MS`).
    pub deadline_ms: Option<f64>,
    /// Retries after the first timed-out transfer attempt.
    pub max_retries: u32,
    /// Base backoff quantum (ms); attempt `n` backs off `2ⁿ ×` this.
    pub backoff_ms: f64,
}

impl ExecConfig {
    /// A run with the given fidelity and default pacing/degradation knobs
    /// (400 ms think time, no faults, derived deadlines, 2 retries).
    pub fn new(requests: usize, mode: Mode, seed: u64) -> Self {
        Self {
            requests,
            mode,
            seed,
            think_time_ms: 400.0,
            faults: FaultSchedule::none(),
            deadline_ms: None,
            max_retries: 2,
            backoff_ms: 80.0,
        }
    }

    /// A standard emulation run (requests spread over a 60 s trace).
    pub fn emulation(requests: usize, seed: u64) -> Self {
        Self::new(requests, Mode::Emulation, seed)
    }

    /// A standard field run (requests spread over a 60 s trace).
    pub fn field(requests: usize, seed: u64) -> Self {
        Self::new(requests, Mode::Field, seed)
    }

    /// The same run under a fault schedule.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }
}

/// How a single request resolved under the degradation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Completed on the first attempt (or needed no transfer at all).
    Ok,
    /// Completed after this many timed-out transfer attempts.
    Retried(u32),
    /// Transfer retries exhausted; completed via an edge-heavier
    /// fallback composition at degraded latency/accuracy.
    Degraded,
    /// No fallback could complete the request.
    Failed,
}

impl RequestOutcome {
    /// Stable label for CSV export and telemetry.
    pub fn label(self) -> String {
        match self {
            RequestOutcome::Ok => "ok".to_string(),
            RequestOutcome::Retried(n) => format!("retried:{n}"),
            RequestOutcome::Degraded => "degraded".to_string(),
            RequestOutcome::Failed => "failed".to_string(),
        }
    }
}

/// Per-run measurement report.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// End-to-end latency of each request (ms).
    pub latencies_ms: Vec<f64>,
    /// Oracle accuracy of the model each request actually ran.
    pub accuracies: Vec<f64>,
    /// How each request resolved (all `Ok` on the fault-free path).
    pub outcomes: Vec<RequestOutcome>,
}

impl ExecReport {
    /// Mean request latency (ms).
    pub fn mean_latency_ms(&self) -> f64 {
        self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len().max(1) as f64
    }

    /// Mean accuracy.
    pub fn mean_accuracy(&self) -> f64 {
        self.accuracies.iter().sum::<f64>() / self.accuracies.len().max(1) as f64
    }

    /// 95th-percentile latency (ms).
    pub fn p95_latency_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        sorted[((sorted.len() - 1) as f64 * 0.95).round() as usize]
    }

    /// The Eq. 7 evaluation of the run's mean accuracy and latency — how
    /// the paper's Tables 4–5 score each method.
    pub fn evaluation(&self, spec: &RewardSpec) -> Evaluation {
        Evaluation::new(self.mean_accuracy(), self.mean_latency_ms(), spec)
    }

    /// Writes the per-request timeline as `request,latency_ms,accuracy`
    /// CSV — handy for plotting how a policy adapts over a trace.
    ///
    /// # Errors
    ///
    /// Returns any write failure.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "request,latency_ms,accuracy")?;
        for (i, (l, a)) in self
            .latencies_ms
            .iter()
            .zip(&self.accuracies)
            .enumerate()
        {
            writeln!(w, "{i},{l},{a}")?;
        }
        Ok(())
    }

    /// Like [`ExecReport::write_csv`] with a fourth `outcome` column
    /// (`ok`, `retried:n`, `degraded`, `failed`) — the format the
    /// fault-matrix conformance suite compares byte-for-byte.
    ///
    /// # Errors
    ///
    /// Returns any write failure.
    pub fn write_csv_with_outcomes<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "request,latency_ms,accuracy,outcome")?;
        for (i, ((l, a), o)) in self
            .latencies_ms
            .iter()
            .zip(&self.accuracies)
            .zip(&self.outcomes)
            .enumerate()
        {
            writeln!(w, "{i},{l},{a},{}", o.label())?;
        }
        Ok(())
    }

    fn count_exact(&self, outcome: RequestOutcome) -> usize {
        self.outcomes.iter().filter(|&&o| o == outcome).count()
    }

    /// Requests that completed after at least one retry.
    pub fn retried_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, RequestOutcome::Retried(_)))
            .count()
    }

    /// Requests that completed via the degradation fallback.
    pub fn degraded_count(&self) -> usize {
        self.count_exact(RequestOutcome::Degraded)
    }

    /// Requests no fallback could complete.
    pub fn failed_count(&self) -> usize {
        self.count_exact(RequestOutcome::Failed)
    }
}

struct NoiseModel {
    rng: StdRng,
    compute_bias: f64,
    active: bool,
}

impl NoiseModel {
    fn new(mode: Mode, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6669_656c_6421);
        let active = mode == Mode::Field;
        // Systematic latency-model error: real devices run hotter/slower
        // than the calibrated linear model (paper §VII-B3).
        let compute_bias = if active {
            1.45 + 0.15 * gauss(&mut rng).abs()
        } else {
            1.0
        };
        Self {
            rng,
            compute_bias,
            active,
        }
    }

    fn compute(&mut self, estimated_ms: f64) -> f64 {
        if !self.active {
            return estimated_ms;
        }
        let jitter = (1.0 + 0.08 * gauss(&mut self.rng)).max(0.5);
        estimated_ms * self.compute_bias * jitter
    }

    fn transfer(&mut self, estimated_ms: f64) -> f64 {
        if !self.active {
            return estimated_ms;
        }
        let jitter = (1.0 + 0.6 * gauss(&mut self.rng).abs()).max(0.5);
        estimated_ms * jitter
    }
}

fn gauss(rng: &mut StdRng) -> f64 {
    let s: f64 = (0..6).map(|_| rng.random_range(-0.5..0.5)).sum();
    s * (12.0f64 / 6.0).sqrt()
}

/// Histogram buckets for per-request end-to-end latency (ms).
const LATENCY_BOUNDS: &[f64] = &[5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0];

/// Derived transfer deadline = this factor × the expected transfer
/// latency. Chosen above the worst-case field-mode transfer jitter
/// (≈3.55×, bounded by the Irwin–Hall `gauss`), so a healthy link never
/// trips the deadline.
const DEADLINE_FACTOR: f64 = 4.0;

/// Floor on the derived deadline (ms), so tiny transfers on fast links
/// still get a meaningful wait before being declared failed.
const MIN_DEADLINE_MS: f64 = 10.0;

/// Streams `cfg.requests` inferences of `policy` against `trace` and
/// reports per-request latency and accuracy.
///
/// # Panics
///
/// Panics if `cfg.requests == 0`.
pub fn execute(
    env: &EvalEnv,
    base: &ModelSpec,
    policy: &Policy<'_>,
    trace: &BandwidthTrace,
    cfg: &ExecConfig,
) -> ExecReport {
    assert!(cfg.requests > 0, "need at least one request");
    let _run_span = telemetry::span!(
        "exec.run",
        requests = cfg.requests,
        mode = match cfg.mode {
            Mode::Emulation => "emulation",
            Mode::Field => "field",
        },
    );
    let mut noise = NoiseModel::new(cfg.mode, cfg.seed);
    let mut estimator = match cfg.mode {
        Mode::Emulation => BandwidthEstimator::ideal(),
        Mode::Field => BandwidthEstimator::field(),
    };
    let duration = trace.duration_ms();
    let bw_at = |t: f64| trace.at_ms(t % duration);

    let mut now = 0.0f64;
    let mut latencies_ms = Vec::with_capacity(cfg.requests);
    let mut accuracies = Vec::with_capacity(cfg.requests);
    let mut outcomes = Vec::with_capacity(cfg.requests);

    // The degradation policy only arms when something can actually fail
    // (or the caller pinned a deadline). The disarmed branch is the
    // original fault-free code path, byte-for-byte: same arithmetic, same
    // RNG draw sequence.
    let degrade = !cfg.faults.is_empty() || cfg.deadline_ms.is_some();

    for _ in 0..cfg.requests {
        let (latency, accuracy, outcome) = if degrade {
            match policy {
                Policy::Static(candidate) => run_static_degraded(
                    env, base, candidate, &mut now, &bw_at, &mut noise, cfg,
                ),
                Policy::Tree(tree) => run_tree_degraded(
                    env,
                    base,
                    tree,
                    &mut now,
                    &bw_at,
                    &mut noise,
                    &mut estimator,
                    cfg,
                ),
            }
        } else {
            let (l, a) = match policy {
                Policy::Static(candidate) => {
                    run_static(env, base, candidate, &mut now, &bw_at, &mut noise)
                }
                Policy::Tree(tree) => run_tree(
                    env,
                    base,
                    tree,
                    &mut now,
                    &bw_at,
                    &mut noise,
                    &mut estimator,
                ),
            };
            (l, a, RequestOutcome::Ok)
        };
        telemetry::hist!("exec.latency_ms", LATENCY_BOUNDS, latency);
        latencies_ms.push(latency);
        accuracies.push(accuracy);
        outcomes.push(outcome);
        now += cfg.think_time_ms;
    }
    ExecReport {
        latencies_ms,
        accuracies,
        outcomes,
    }
}

/// Resolution of the retry loop around one tensor transfer.
enum TransferPhase {
    /// The transfer went through; `elapsed_ms` is the total wall time of
    /// the phase including earlier timed-out attempts and backoffs.
    Done { elapsed_ms: f64, retries: u32 },
    /// Every attempt timed out; `elapsed_ms` covers all waits/backoffs.
    Exhausted { elapsed_ms: f64 },
}

/// Per-attempt transfer deadline for a candidate, derived from the
/// expected transfer latency at the bandwidth the policy *believes* it
/// has (`cfg.deadline_ms` overrides).
fn transfer_deadline_ms(
    env: &EvalEnv,
    candidate: &Candidate,
    expected_bw: f64,
    cfg: &ExecConfig,
) -> f64 {
    if let Some(d) = cfg.deadline_ms {
        return d;
    }
    let expected =
        env.transfer
            .latency_ms(candidate.transfer_bytes(), Mbps(expected_bw.max(1e-6)));
    (DEADLINE_FACTOR * expected).max(MIN_DEADLINE_MS)
}

/// Attempts `candidate`'s tensor transfer up to `1 + retries` times
/// under the fault schedule. A timed-out attempt costs the full deadline
/// plus a deterministic exponential backoff (`backoff_ms × 2ⁿ`), so no
/// attempt ever overruns its deadline by more than one backoff quantum.
/// Advances `now` by the elapsed wall time.
#[allow(clippy::too_many_arguments)]
fn transfer_with_retries(
    env: &EvalEnv,
    candidate: &Candidate,
    deadline_ms: f64,
    retries: u32,
    now: &mut f64,
    bw_at: &impl Fn(f64) -> f64,
    noise: &mut NoiseModel,
    cfg: &ExecConfig,
) -> TransferPhase {
    let mut elapsed = 0.0;
    for attempt in 0..=retries {
        let t = *now;
        let link_down = cfg.faults.link_down(t);
        if !link_down {
            let eff = cfg.faults.effective_bandwidth(t, bw_at(t));
            let actual = noise
                .transfer(env.transfer.latency_ms(candidate.transfer_bytes(), Mbps(eff)))
                + cfg.faults.extra_rtt_ms(t);
            if actual <= deadline_ms {
                *now += actual;
                elapsed += actual;
                return TransferPhase::Done {
                    elapsed_ms: elapsed,
                    retries: attempt,
                };
            }
        }
        // Timed out: either the uplink is down (nothing moves until the
        // deadline fires) or the transfer overran its budget and is
        // abandoned at the deadline.
        let backoff = if attempt < retries {
            cfg.backoff_ms * f64::from(1u32 << attempt.min(16))
        } else {
            0.0
        };
        telemetry::event!(
            "exec.fault",
            attempt = attempt,
            reason = if link_down { "outage" } else { "deadline" },
            waited_ms = deadline_ms,
            deadline_ms = deadline_ms,
            backoff_ms = backoff,
        );
        telemetry::counter!("exec.transfer_timeouts", 1);
        if attempt < retries {
            telemetry::counter!("exec.retries", 1);
        }
        *now += deadline_ms + backoff;
        elapsed += deadline_ms + backoff;
    }
    TransferPhase::Exhausted {
        elapsed_ms: elapsed,
    }
}

/// Static policy under the degradation policy: on transfer exhaustion
/// the remaining layers run locally — same model, same accuracy, edge-
/// speed tail latency.
fn run_static_degraded(
    env: &EvalEnv,
    base: &ModelSpec,
    candidate: &Candidate,
    now: &mut f64,
    bw_at: &impl Fn(f64) -> f64,
    noise: &mut NoiseModel,
    cfg: &ExecConfig,
) -> (f64, f64, RequestOutcome) {
    let m = &candidate.model;
    let cut = candidate.edge_layers;
    let mut total = 0.0;
    let te = noise.compute(env.edge.range_latency_ms(m, 0, cut));
    total += te;
    *now += te;
    let accuracy = env.oracle.evaluate(base, &candidate.actions);
    if cut >= m.len() {
        return (total, accuracy, RequestOutcome::Ok);
    }
    // The deadline reflects what the static deployment plan believed: the
    // healthy trace bandwidth at transfer time.
    let deadline = transfer_deadline_ms(env, candidate, bw_at(*now), cfg);
    match transfer_with_retries(
        env, candidate, deadline, cfg.max_retries, now, bw_at, noise, cfg,
    ) {
        TransferPhase::Done {
            elapsed_ms,
            retries,
        } => {
            total += elapsed_ms;
            let tc = noise.compute(env.cloud.range_latency_ms(m, cut, m.len()));
            total += tc;
            *now += tc;
            let outcome = if retries == 0 {
                RequestOutcome::Ok
            } else {
                RequestOutcome::Retried(retries)
            };
            (total, accuracy, outcome)
        }
        TransferPhase::Exhausted { elapsed_ms } => {
            total += elapsed_ms;
            let tail = noise.compute(env.edge.range_latency_ms(m, cut, m.len()));
            total += tail;
            *now += tail;
            telemetry::event!(
                "exec.fallback",
                policy = "static",
                edge_only = true,
                edge_layers = m.len(),
            );
            telemetry::counter!("exec.fallbacks", 1);
            (total, accuracy, RequestOutcome::Degraded)
        }
    }
}

/// Tree policy (Alg. 2) under the degradation policy.
///
/// The walk itself differs from the fault-free one in a single way: when
/// the uplink is down or the estimator is frozen, probe refreshes are
/// *held* — the fork decision trusts the last (now stale) estimate, which
/// is exactly how a chosen branch's uplink can disappear between the fork
/// decision and the tensor transfer. On transfer exhaustion the walk
/// re-forks to the lowest-bandwidth child ([`ModelTree::fallback_paths`]),
/// preferring an edge-only composition, and every fallback is checked by
/// [`validate::candidate`] before it may run.
#[allow(clippy::too_many_arguments)]
fn run_tree_degraded(
    env: &EvalEnv,
    base: &ModelSpec,
    tree: &ModelTree,
    now: &mut f64,
    bw_at: &impl Fn(f64) -> f64,
    noise: &mut NoiseModel,
    estimator: &mut BandwidthEstimator,
    cfg: &ExecConfig,
) -> (f64, f64, RequestOutcome) {
    let mut total = 0.0;
    let mut id = tree.root().expect("cannot execute an empty tree");
    let mut path = vec![id];
    loop {
        if let Some(spec) = tree.node_edge_spec(id) {
            let te = noise.compute(env.edge.model_latency_ms(&spec));
            total += te;
            *now += te;
        }
        let node = &tree.nodes()[id];
        if node.partition_abs.is_some() || node.children.is_empty() {
            break;
        }
        // Alg. 2 line 5: measure current bandwidth, match to a fork. A
        // probe sees the *faulted* network — except that during an outage
        // or freeze window no probe completes, so the estimate is held.
        let t = *now;
        let eff = cfg.faults.effective_bandwidth(t, bw_at(t));
        let held = cfg.faults.link_down(t) || cfg.faults.estimator_frozen(t);
        let est = if held {
            estimator.observe_held(t, eff)
        } else {
            estimator.observe(t, eff)
        };
        let k = tree.match_level(est);
        telemetry::event!(
            "compose.fork",
            level = node.level,
            bandwidth = est,
            child = k,
        );
        id = node.children[k];
        path.push(id);
    }
    let candidate = tree.compose_path(&path);
    let cut = candidate.edge_layers;
    let m = &candidate.model;
    if cut >= m.len() {
        let accuracy = env.oracle.evaluate(base, &candidate.actions);
        return (total, accuracy, RequestOutcome::Ok);
    }
    // Deadline from the bandwidth the walk believed it had (the possibly
    // stale estimate that chose this branch). A fork-free walk never
    // probed, so it believes the healthy trace bandwidth — not the
    // faulted one, which would be 0 in an outage and blow up the budget.
    let believed_bw = estimator.current().unwrap_or_else(|| bw_at(*now));
    let deadline = transfer_deadline_ms(env, &candidate, believed_bw, cfg);
    match transfer_with_retries(
        env, &candidate, deadline, cfg.max_retries, now, bw_at, noise, cfg,
    ) {
        TransferPhase::Done {
            elapsed_ms,
            retries,
        } => {
            total += elapsed_ms;
            let tc = noise.compute(env.cloud.range_latency_ms(m, cut, m.len()));
            total += tc;
            *now += tc;
            let accuracy = env.oracle.evaluate(base, &candidate.actions);
            let outcome = if retries == 0 {
                RequestOutcome::Ok
            } else {
                RequestOutcome::Retried(retries)
            };
            (total, accuracy, outcome)
        }
        TransferPhase::Exhausted { elapsed_ms } => {
            total += elapsed_ms;
            fallback_tree_request(env, base, tree, &path, total, now, bw_at, noise, cfg)
        }
    }
}

/// The fallback walk after transfer exhaustion: re-fork to the
/// lowest-bandwidth child, deepest fork first, preferring an edge-only
/// composition and otherwise the edge-heaviest one. Illegal compositions
/// (per [`validate::candidate`]) are skipped. A fallback that still
/// partitions gets one last transfer attempt; if that fails too, the
/// request is `Failed`.
#[allow(clippy::too_many_arguments)]
fn fallback_tree_request(
    env: &EvalEnv,
    base: &ModelSpec,
    tree: &ModelTree,
    path: &[usize],
    mut total: f64,
    now: &mut f64,
    bw_at: &impl Fn(f64) -> f64,
    noise: &mut NoiseModel,
    cfg: &ExecConfig,
) -> (f64, f64, RequestOutcome) {
    let mut chosen: Option<(Vec<usize>, Candidate)> = None;
    for p in tree.fallback_paths(path) {
        let c = tree.compose_path(&p);
        // A fallback must never assemble an illegal model.
        if validate::candidate(base, &c).is_err() {
            continue;
        }
        let edge_only = c.edge_layers == c.model.len();
        if edge_only {
            chosen = Some((p, c));
            break;
        }
        let better = match &chosen {
            Some((_, best)) => c.edge_layers > best.edge_layers,
            None => true,
        };
        if better {
            chosen = Some((p, c));
        }
    }
    let Some((fb_path, fb)) = chosen else {
        telemetry::counter!("exec.failed", 1);
        telemetry::event!("exec.fallback", policy = "tree", resolved = false);
        return (total, 0.0, RequestOutcome::Failed);
    };
    // Blocks up to the re-fork point were already computed; pay only the
    // new suffix of the fallback branch.
    let shared = path
        .iter()
        .zip(&fb_path)
        .take_while(|(a, b)| a == b)
        .count();
    for &nid in &fb_path[shared..] {
        if let Some(spec) = tree.node_edge_spec(nid) {
            let te = noise.compute(env.edge.model_latency_ms(&spec));
            total += te;
            *now += te;
        }
    }
    let edge_only = fb.edge_layers == fb.model.len();
    telemetry::event!(
        "exec.fallback",
        policy = "tree",
        resolved = true,
        edge_only = edge_only,
        edge_layers = fb.edge_layers,
        refork_depth = shared,
    );
    telemetry::counter!("exec.fallbacks", 1);
    let accuracy = env.oracle.evaluate(base, &fb.actions);
    if edge_only {
        return (total, accuracy, RequestOutcome::Degraded);
    }
    // Last-ditch single transfer attempt for a fallback that still
    // partitions (the tree may have no edge-only branch at all).
    let believed_bw = cfg.faults.effective_bandwidth(*now, bw_at(*now));
    let deadline = transfer_deadline_ms(env, &fb, believed_bw, cfg);
    match transfer_with_retries(env, &fb, deadline, 0, now, bw_at, noise, cfg) {
        TransferPhase::Done { elapsed_ms, .. } => {
            total += elapsed_ms;
            let m = &fb.model;
            let tc = noise.compute(env.cloud.range_latency_ms(m, fb.edge_layers, m.len()));
            total += tc;
            *now += tc;
            (total, accuracy, RequestOutcome::Degraded)
        }
        TransferPhase::Exhausted { elapsed_ms } => {
            total += elapsed_ms;
            telemetry::counter!("exec.failed", 1);
            (total, 0.0, RequestOutcome::Failed)
        }
    }
}

fn run_static(
    env: &EvalEnv,
    base: &ModelSpec,
    candidate: &Candidate,
    now: &mut f64,
    bw_at: &impl Fn(f64) -> f64,
    noise: &mut NoiseModel,
) -> (f64, f64) {
    let m = &candidate.model;
    let cut = candidate.edge_layers;
    let mut total = 0.0;
    let te = noise.compute(env.edge.range_latency_ms(m, 0, cut));
    total += te;
    *now += te;
    if cut < m.len() {
        let bw = Mbps(bw_at(*now));
        let tt = noise.transfer(env.transfer.latency_ms(candidate.transfer_bytes(), bw));
        total += tt;
        *now += tt;
        let tc = noise.compute(env.cloud.range_latency_ms(m, cut, m.len()));
        total += tc;
        *now += tc;
    }
    let accuracy = env.oracle.evaluate(base, &candidate.actions);
    (total, accuracy)
}

/// Walks the tree per Alg. 2, timing each visited block.
///
/// Per-node edge latencies are estimated on each block in isolation
/// (inputs taken from the base model's shapes). When an earlier block's
/// rewrite changes its output channel count (W1 pruning at a block
/// boundary), the next block's true cost in the composed model is very
/// slightly lower than this estimate — a conservative, consistent
/// approximation shared by all compared policies.
fn run_tree(
    env: &EvalEnv,
    base: &ModelSpec,
    tree: &ModelTree,
    now: &mut f64,
    bw_at: &impl Fn(f64) -> f64,
    noise: &mut NoiseModel,
    estimator: &mut BandwidthEstimator,
) -> (f64, f64) {
    let mut total = 0.0;
    let mut id = tree.root().expect("cannot execute an empty tree");
    let mut path = vec![id];
    loop {
        if let Some(spec) = tree.node_edge_spec(id) {
            let te = noise.compute(env.edge.model_latency_ms(&spec));
            total += te;
            *now += te;
        }
        let node = &tree.nodes()[id];
        if node.partition_abs.is_some() || node.children.is_empty() {
            break;
        }
        // Alg. 2 line 5: measure current bandwidth, match to a fork.
        let est = estimator.observe(*now, bw_at(*now));
        let k = tree.match_level(est);
        telemetry::event!(
            "compose.fork",
            level = node.level,
            bandwidth = est,
            child = k,
        );
        id = node.children[k];
        path.push(id);
    }
    let candidate = tree.compose_path(&path);
    let cut = candidate.edge_layers;
    let m = &candidate.model;
    if cut < m.len() {
        let bw = Mbps(bw_at(*now));
        let tt = noise.transfer(env.transfer.latency_ms(candidate.transfer_bytes(), bw));
        total += tt;
        *now += tt;
        let tc = noise.compute(env.cloud.range_latency_ms(m, cut, m.len()));
        total += tc;
        *now += tc;
    }
    let accuracy = env.oracle.evaluate(base, &candidate.actions);
    (total, accuracy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_netsim::Scenario;
    use cadmc_nn::zoo;

    fn flat_trace(mbps: f64) -> BandwidthTrace {
        BandwidthTrace::new(100.0, vec![mbps; 600])
    }

    #[test]
    fn static_emulation_matches_env_evaluate_on_flat_trace() {
        let env = EvalEnv::phone();
        let base = zoo::vgg11_cifar();
        let c = crate::surgery::plan(&base, &env, Mbps(10.0)).candidate;
        let trace = flat_trace(10.0);
        let report = execute(
            &env,
            &base,
            &Policy::Static(&c),
            &trace,
            &ExecConfig::emulation(5, 1),
        );
        let expected = env.latency_ms(&c, Mbps(10.0));
        for &l in &report.latencies_ms {
            assert!((l - expected).abs() < 1e-9, "{l} vs {expected}");
        }
    }

    #[test]
    fn field_mode_is_slower_than_emulation() {
        let env = EvalEnv::phone();
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let trace = Scenario::FourGWeakIndoor.trace(1);
        let emu = execute(
            &env,
            &base,
            &Policy::Static(&c),
            &trace,
            &ExecConfig::emulation(20, 2),
        );
        let field = execute(
            &env,
            &base,
            &Policy::Static(&c),
            &trace,
            &ExecConfig::field(20, 2),
        );
        assert!(
            field.mean_latency_ms() > 1.2 * emu.mean_latency_ms(),
            "field {:.1} vs emulation {:.1}",
            field.mean_latency_ms(),
            emu.mean_latency_ms()
        );
    }

    /// A hand-built 2-level tree: poor fork (child 0) = stay on edge;
    /// good fork (child 1) = partition to the cloud. The shape both the
    /// fluctuation test and the degradation tests rely on — its child 0
    /// is an **edge-only branch**, so a fallback can always complete.
    fn two_fork_tree(base: &ModelSpec) -> ModelTree {
        use crate::tree::TreeNode;
        let mut tree = ModelTree::new(base.clone(), 2, vec![1.0, 30.0]);
        let root = tree.push_node(
            None,
            TreeNode {
                level: 0,
                partition_abs: None,
                actions: vec![],
                feature: cadmc_compress::FeatureAction::IDENTITY,
                children: vec![],
                reward: 0.0,
            },
        );
        let r1 = tree.block_range(1);
        // Poor fork: finish on the edge.
        tree.push_node(
            Some(root),
            TreeNode {
                level: 1,
                partition_abs: None,
                actions: vec![],
                feature: cadmc_compress::FeatureAction::IDENTITY,
                children: vec![],
                reward: 0.0,
            },
        );
        // Good fork: offload the tail.
        tree.push_node(
            Some(root),
            TreeNode {
                level: 1,
                partition_abs: Some(r1.start),
                actions: vec![],
                feature: cadmc_compress::FeatureAction::IDENTITY,
                children: vec![],
                reward: 0.0,
            },
        );
        tree
    }

    #[test]
    fn tree_execution_adapts_to_fluctuation() {
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let tree = two_fork_tree(&base);
        // Alternate 0.5 / 60 Mbps every 300 ms so consecutive requests
        // (each a few tens of ms) see both regimes.
        let samples: Vec<f64> = (0..600)
            .map(|i| if (i / 3) % 2 == 0 { 0.5 } else { 60.0 })
            .collect();
        let trace = BandwidthTrace::new(100.0, samples);
        let report = execute(
            &env,
            &base,
            &Policy::Tree(&tree),
            &trace,
            &ExecConfig::emulation(40, 3),
        );
        // Latency distribution must be bimodal: some all-edge runs, some
        // offloaded runs.
        let min = report
            .latencies_ms
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = report
            .latencies_ms
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max > min + 2.0,
            "tree never changed its decision: min {min:.1} max {max:.1}"
        );
    }

    fn report_of(latencies_ms: Vec<f64>, accuracies: Vec<f64>) -> ExecReport {
        let outcomes = vec![RequestOutcome::Ok; latencies_ms.len()];
        ExecReport {
            latencies_ms,
            accuracies,
            outcomes,
        }
    }

    #[test]
    fn report_statistics() {
        let report = report_of(vec![10.0, 20.0, 30.0], vec![0.9, 0.9, 0.9]);
        assert!((report.mean_latency_ms() - 20.0).abs() < 1e-9);
        assert!((report.mean_accuracy() - 0.9).abs() < 1e-9);
        assert_eq!(report.p95_latency_ms(), 30.0);
        let eval = report.evaluation(&RewardSpec::default());
        assert!(eval.reward > 0.0);
    }

    #[test]
    fn p95_index_math_at_the_quantile_boundary() {
        // Convention: index = round((len - 1) × 0.95), matching
        // `BandwidthTrace::quantile`. Pin the boundary cases.
        assert_eq!(report_of(vec![], vec![]).p95_latency_ms(), 0.0);
        assert_eq!(report_of(vec![42.0], vec![0.9]).p95_latency_ms(), 42.0);
        // 19 elements 1..=19: round(18 × 0.95) = round(17.1) = 17 → 18.
        let v19: Vec<f64> = (1..=19).map(f64::from).collect();
        let a19 = vec![0.9; 19];
        assert_eq!(report_of(v19, a19).p95_latency_ms(), 18.0);
        // 20 elements 1..=20: round(19 × 0.95) = round(18.05) = 18 → 19.
        let v20: Vec<f64> = (1..=20).map(f64::from).collect();
        let a20 = vec![0.9; 20];
        assert_eq!(report_of(v20, a20).p95_latency_ms(), 19.0);
        // Order-independence: the index is into the *sorted* latencies.
        let mut v20r: Vec<f64> = (1..=20).map(f64::from).collect();
        v20r.reverse();
        assert_eq!(report_of(v20r, vec![0.9; 20]).p95_latency_ms(), 19.0);
    }

    #[test]
    fn csv_export_has_one_row_per_request() {
        let report = report_of(vec![10.0, 20.0], vec![0.9, 0.8]);
        let mut buf = Vec::new();
        report.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "request,latency_ms,accuracy");
        assert!(lines[1].starts_with("0,10"));
    }

    #[test]
    fn csv_with_outcomes_labels_every_row() {
        let report = ExecReport {
            latencies_ms: vec![10.0, 20.0, 30.0, 40.0],
            accuracies: vec![0.9, 0.8, 0.7, 0.0],
            outcomes: vec![
                RequestOutcome::Ok,
                RequestOutcome::Retried(2),
                RequestOutcome::Degraded,
                RequestOutcome::Failed,
            ],
        };
        let mut buf = Vec::new();
        report.write_csv_with_outcomes(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "request,latency_ms,accuracy,outcome");
        assert!(lines[1].ends_with(",ok"));
        assert!(lines[2].ends_with(",retried:2"));
        assert!(lines[3].ends_with(",degraded"));
        assert!(lines[4].ends_with(",failed"));
        assert_eq!(report.retried_count(), 1);
        assert_eq!(report.degraded_count(), 1);
        assert_eq!(report.failed_count(), 1);
    }

    #[test]
    fn zero_fault_schedule_is_bit_identical_to_fault_free_path() {
        // An armed degradation policy whose windows never fire must
        // reproduce the fault-free run exactly — same arithmetic, same
        // RNG draws — in both fidelity modes and for both policies.
        use cadmc_netsim::{FaultKind, FaultWindow};
        let env = EvalEnv::phone();
        let base = zoo::vgg11_cifar();
        let c = crate::surgery::plan(&base, &env, Mbps(10.0)).candidate;
        let tree = two_fork_tree(&base);
        let trace = Scenario::FourGWeakIndoor.trace(2);
        // Active schedule, but far beyond any request's timeline.
        let dormant = FaultSchedule::new(vec![FaultWindow {
            kind: FaultKind::Outage,
            start_ms: 1.0e12,
            duration_ms: 1_000.0,
            magnitude: 0.0,
        }]);
        for mode in [Mode::Emulation, Mode::Field] {
            for policy in [Policy::Static(&c), Policy::Tree(&tree)] {
                let plain = ExecConfig::new(40, mode, 5);
                let armed = ExecConfig::new(40, mode, 5).with_faults(dormant.clone());
                let a = execute(&env, &base, &policy, &trace, &plain);
                let b = execute(&env, &base, &policy, &trace, &armed);
                assert_eq!(a.latencies_ms, b.latencies_ms);
                assert_eq!(a.accuracies, b.accuracies);
                assert!(b.outcomes.iter().all(|&o| o == RequestOutcome::Ok));
            }
        }
    }

    #[test]
    fn canned_outage_degrades_but_never_fails_with_edge_only_branch() {
        // Steady 60 Mbps, so Alg. 2 always wants the partitioned fork;
        // during outage windows probes are lost, the held estimate keeps
        // choosing it, the transfer times out and the fallback walk must
        // re-fork onto the edge-only child — Degraded, never Failed.
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let tree = two_fork_tree(&base);
        let trace = flat_trace(60.0);
        let cfg = ExecConfig::emulation(150, 3).with_faults(FaultSchedule::canned_outage());
        let report = execute(&env, &base, &Policy::Tree(&tree), &trace, &cfg);
        assert_eq!(report.failed_count(), 0, "edge-only branch exists");
        assert!(
            report.degraded_count() > 0,
            "outage windows must force fallbacks"
        );
        assert_eq!(report.outcomes.len(), 150);
        // The degraded requests paid for the waits: slower than the
        // fault-free fast path.
        let clean = execute(
            &env,
            &base,
            &Policy::Tree(&tree),
            &trace,
            &ExecConfig::emulation(150, 3),
        );
        assert!(report.mean_latency_ms() > clean.mean_latency_ms());
    }

    #[test]
    fn static_policy_degrades_to_local_tail_under_collapse() {
        use cadmc_netsim::FaultKind;
        let env = EvalEnv::phone();
        let base = zoo::vgg11_cifar();
        let c = crate::surgery::plan(&base, &env, Mbps(10.0)).candidate;
        assert!(c.edge_layers < c.model.len(), "needs a partitioned plan");
        let trace = flat_trace(10.0);
        let cfg = ExecConfig::emulation(150, 3)
            .with_faults(FaultSchedule::canned(FaultKind::Collapse));
        let report = execute(&env, &base, &Policy::Static(&c), &trace, &cfg);
        assert_eq!(report.failed_count(), 0, "static always finishes locally");
        assert!(report.degraded_count() > 0, "collapse must blow the deadline");
        // Same model runs either way: accuracy is untouched.
        let clean = execute(
            &env,
            &base,
            &Policy::Static(&c),
            &trace,
            &ExecConfig::emulation(150, 3),
        );
        assert_eq!(report.accuracies, clean.accuracies);
        assert!(report.mean_latency_ms() > clean.mean_latency_ms());
    }

    #[test]
    fn faulted_runs_are_deterministic_per_seed_and_schedule() {
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let tree = two_fork_tree(&base);
        let trace = Scenario::WifiWeakIndoor.trace(4);
        let run = |seed| {
            let cfg = ExecConfig::field(30, seed).with_faults(FaultSchedule::canned_outage());
            execute(&env, &base, &Policy::Tree(&tree), &trace, &cfg)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn deterministic_per_seed() {
        let env = EvalEnv::phone();
        let base = zoo::alexnet_cifar();
        let c = Candidate::base_all_edge(&base);
        let trace = Scenario::WifiWeakIndoor.trace(4);
        let run = |seed| {
            execute(
                &env,
                &base,
                &Policy::Static(&c),
                &trace,
                &ExecConfig::field(10, seed),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}

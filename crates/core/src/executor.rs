//! Online execution over a bandwidth trace: the paper's **emulation**
//! (§VII-B2) and **field test** (§VII-B3) harnesses.
//!
//! A stream of inference requests runs back-to-back against a replayed
//! bandwidth trace. Static policies (dynamic DNN surgery, optimal branch)
//! deploy one fixed candidate; the model-tree policy re-decides at every
//! block boundary from the currently *measured* bandwidth (Alg. 2), which
//! is exactly where its advantage under fluctuation comes from.
//!
//! The emulation mode uses the estimated latency model and perfect
//! bandwidth knowledge, like the paper's emulation. The field mode
//! injects the two error sources the paper blames for its emulation→field
//! gap: (i) latency-model inaccuracy — a systematic multiplicative bias
//! plus per-request jitter on compute times — and (ii) "a coarse
//! estimation of network conditions" — decisions see a smoothed, stale
//! bandwidth estimate while transfers pay the true instantaneous one.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use cadmc_latency::Mbps;
use cadmc_netsim::{BandwidthEstimator, BandwidthTrace};
use cadmc_nn::ModelSpec;
use cadmc_telemetry as telemetry;

use crate::candidate::Candidate;
use crate::env::EvalEnv;
use crate::reward::{Evaluation, RewardSpec};
use crate::tree::ModelTree;

/// What drives deployment decisions during execution.
#[derive(Debug, Clone)]
pub enum Policy<'a> {
    /// A fixed candidate chosen offline (surgery or optimal branch).
    Static(&'a Candidate),
    /// A context-aware model tree walked per Alg. 2.
    Tree(&'a ModelTree),
}

/// Fidelity mode of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Estimated latencies, perfect bandwidth knowledge (Table 4).
    Emulation,
    /// Noisy latencies, stale/coarse bandwidth estimation (Table 5).
    Field,
}

/// Execution parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecConfig {
    /// Number of inference requests to stream.
    pub requests: usize,
    /// Emulation or field fidelity.
    pub mode: Mode,
    /// Noise / estimator seed.
    pub seed: u64,
    /// Idle gap between consecutive requests (ms of trace time). Choose
    /// it so the run spans the whole trace: back-to-back requests would
    /// otherwise sample only the first seconds of the context.
    pub think_time_ms: f64,
}

impl ExecConfig {
    /// A standard emulation run (requests spread over a 60 s trace).
    pub fn emulation(requests: usize, seed: u64) -> Self {
        Self {
            requests,
            mode: Mode::Emulation,
            seed,
            think_time_ms: 400.0,
        }
    }

    /// A standard field run (requests spread over a 60 s trace).
    pub fn field(requests: usize, seed: u64) -> Self {
        Self {
            requests,
            mode: Mode::Field,
            seed,
            think_time_ms: 400.0,
        }
    }
}

/// Per-run measurement report.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// End-to-end latency of each request (ms).
    pub latencies_ms: Vec<f64>,
    /// Oracle accuracy of the model each request actually ran.
    pub accuracies: Vec<f64>,
}

impl ExecReport {
    /// Mean request latency (ms).
    pub fn mean_latency_ms(&self) -> f64 {
        self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len().max(1) as f64
    }

    /// Mean accuracy.
    pub fn mean_accuracy(&self) -> f64 {
        self.accuracies.iter().sum::<f64>() / self.accuracies.len().max(1) as f64
    }

    /// 95th-percentile latency (ms).
    pub fn p95_latency_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        sorted[((sorted.len() - 1) as f64 * 0.95).round() as usize]
    }

    /// The Eq. 7 evaluation of the run's mean accuracy and latency — how
    /// the paper's Tables 4–5 score each method.
    pub fn evaluation(&self, spec: &RewardSpec) -> Evaluation {
        Evaluation::new(self.mean_accuracy(), self.mean_latency_ms(), spec)
    }

    /// Writes the per-request timeline as `request,latency_ms,accuracy`
    /// CSV — handy for plotting how a policy adapts over a trace.
    ///
    /// # Errors
    ///
    /// Returns any write failure.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "request,latency_ms,accuracy")?;
        for (i, (l, a)) in self
            .latencies_ms
            .iter()
            .zip(&self.accuracies)
            .enumerate()
        {
            writeln!(w, "{i},{l},{a}")?;
        }
        Ok(())
    }
}

struct NoiseModel {
    rng: StdRng,
    compute_bias: f64,
    active: bool,
}

impl NoiseModel {
    fn new(mode: Mode, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6669_656c_6421);
        let active = mode == Mode::Field;
        // Systematic latency-model error: real devices run hotter/slower
        // than the calibrated linear model (paper §VII-B3).
        let compute_bias = if active {
            1.45 + 0.15 * gauss(&mut rng).abs()
        } else {
            1.0
        };
        Self {
            rng,
            compute_bias,
            active,
        }
    }

    fn compute(&mut self, estimated_ms: f64) -> f64 {
        if !self.active {
            return estimated_ms;
        }
        let jitter = (1.0 + 0.08 * gauss(&mut self.rng)).max(0.5);
        estimated_ms * self.compute_bias * jitter
    }

    fn transfer(&mut self, estimated_ms: f64) -> f64 {
        if !self.active {
            return estimated_ms;
        }
        let jitter = (1.0 + 0.6 * gauss(&mut self.rng).abs()).max(0.5);
        estimated_ms * jitter
    }
}

fn gauss(rng: &mut StdRng) -> f64 {
    let s: f64 = (0..6).map(|_| rng.random_range(-0.5..0.5)).sum();
    s * (12.0f64 / 6.0).sqrt()
}

/// Histogram buckets for per-request end-to-end latency (ms).
const LATENCY_BOUNDS: &[f64] = &[5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0];

/// Streams `cfg.requests` inferences of `policy` against `trace` and
/// reports per-request latency and accuracy.
///
/// # Panics
///
/// Panics if `cfg.requests == 0`.
pub fn execute(
    env: &EvalEnv,
    base: &ModelSpec,
    policy: &Policy<'_>,
    trace: &BandwidthTrace,
    cfg: &ExecConfig,
) -> ExecReport {
    assert!(cfg.requests > 0, "need at least one request");
    let _run_span = telemetry::span!(
        "exec.run",
        requests = cfg.requests,
        mode = match cfg.mode {
            Mode::Emulation => "emulation",
            Mode::Field => "field",
        },
    );
    let mut noise = NoiseModel::new(cfg.mode, cfg.seed);
    let mut estimator = match cfg.mode {
        Mode::Emulation => BandwidthEstimator::ideal(),
        Mode::Field => BandwidthEstimator::field(),
    };
    let duration = trace.duration_ms();
    let bw_at = |t: f64| trace.at_ms(t % duration);

    let mut now = 0.0f64;
    let mut latencies_ms = Vec::with_capacity(cfg.requests);
    let mut accuracies = Vec::with_capacity(cfg.requests);

    for _ in 0..cfg.requests {
        let (latency, accuracy) = match policy {
            Policy::Static(candidate) => run_static(
                env, base, candidate, &mut now, &bw_at, &mut noise,
            ),
            Policy::Tree(tree) => run_tree(
                env,
                base,
                tree,
                &mut now,
                &bw_at,
                &mut noise,
                &mut estimator,
            ),
        };
        telemetry::hist!("exec.latency_ms", LATENCY_BOUNDS, latency);
        latencies_ms.push(latency);
        accuracies.push(accuracy);
        now += cfg.think_time_ms;
    }
    ExecReport {
        latencies_ms,
        accuracies,
    }
}

fn run_static(
    env: &EvalEnv,
    base: &ModelSpec,
    candidate: &Candidate,
    now: &mut f64,
    bw_at: &impl Fn(f64) -> f64,
    noise: &mut NoiseModel,
) -> (f64, f64) {
    let m = &candidate.model;
    let cut = candidate.edge_layers;
    let mut total = 0.0;
    let te = noise.compute(env.edge.range_latency_ms(m, 0, cut));
    total += te;
    *now += te;
    if cut < m.len() {
        let bw = Mbps(bw_at(*now));
        let tt = noise.transfer(env.transfer.latency_ms(candidate.transfer_bytes(), bw));
        total += tt;
        *now += tt;
        let tc = noise.compute(env.cloud.range_latency_ms(m, cut, m.len()));
        total += tc;
        *now += tc;
    }
    let accuracy = env.oracle.evaluate(base, &candidate.actions);
    (total, accuracy)
}

/// Walks the tree per Alg. 2, timing each visited block.
///
/// Per-node edge latencies are estimated on each block in isolation
/// (inputs taken from the base model's shapes). When an earlier block's
/// rewrite changes its output channel count (W1 pruning at a block
/// boundary), the next block's true cost in the composed model is very
/// slightly lower than this estimate — a conservative, consistent
/// approximation shared by all compared policies.
fn run_tree(
    env: &EvalEnv,
    base: &ModelSpec,
    tree: &ModelTree,
    now: &mut f64,
    bw_at: &impl Fn(f64) -> f64,
    noise: &mut NoiseModel,
    estimator: &mut BandwidthEstimator,
) -> (f64, f64) {
    let mut total = 0.0;
    let mut id = tree.root().expect("cannot execute an empty tree");
    let mut path = vec![id];
    loop {
        if let Some(spec) = tree.node_edge_spec(id) {
            let te = noise.compute(env.edge.model_latency_ms(&spec));
            total += te;
            *now += te;
        }
        let node = &tree.nodes()[id];
        if node.partition_abs.is_some() || node.children.is_empty() {
            break;
        }
        // Alg. 2 line 5: measure current bandwidth, match to a fork.
        let est = estimator.observe(*now, bw_at(*now));
        let k = tree.match_level(est);
        telemetry::event!(
            "compose.fork",
            level = node.level,
            bandwidth = est,
            child = k,
        );
        id = node.children[k];
        path.push(id);
    }
    let candidate = tree.compose_path(&path);
    let cut = candidate.edge_layers;
    let m = &candidate.model;
    if cut < m.len() {
        let bw = Mbps(bw_at(*now));
        let tt = noise.transfer(env.transfer.latency_ms(candidate.transfer_bytes(), bw));
        total += tt;
        *now += tt;
        let tc = noise.compute(env.cloud.range_latency_ms(m, cut, m.len()));
        total += tc;
        *now += tc;
    }
    let accuracy = env.oracle.evaluate(base, &candidate.actions);
    (total, accuracy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_netsim::Scenario;
    use cadmc_nn::zoo;

    fn flat_trace(mbps: f64) -> BandwidthTrace {
        BandwidthTrace::new(100.0, vec![mbps; 600])
    }

    #[test]
    fn static_emulation_matches_env_evaluate_on_flat_trace() {
        let env = EvalEnv::phone();
        let base = zoo::vgg11_cifar();
        let c = crate::surgery::plan(&base, &env, Mbps(10.0)).candidate;
        let trace = flat_trace(10.0);
        let report = execute(
            &env,
            &base,
            &Policy::Static(&c),
            &trace,
            &ExecConfig::emulation(5, 1),
        );
        let expected = env.latency_ms(&c, Mbps(10.0));
        for &l in &report.latencies_ms {
            assert!((l - expected).abs() < 1e-9, "{l} vs {expected}");
        }
    }

    #[test]
    fn field_mode_is_slower_than_emulation() {
        let env = EvalEnv::phone();
        let base = zoo::vgg11_cifar();
        let c = Candidate::base_all_edge(&base);
        let trace = Scenario::FourGWeakIndoor.trace(1);
        let emu = execute(
            &env,
            &base,
            &Policy::Static(&c),
            &trace,
            &ExecConfig::emulation(20, 2),
        );
        let field = execute(
            &env,
            &base,
            &Policy::Static(&c),
            &trace,
            &ExecConfig::field(20, 2),
        );
        assert!(
            field.mean_latency_ms() > 1.2 * emu.mean_latency_ms(),
            "field {:.1} vs emulation {:.1}",
            field.mean_latency_ms(),
            emu.mean_latency_ms()
        );
    }

    #[test]
    fn tree_execution_adapts_to_fluctuation() {
        // A hand-built 2-level tree: poor fork = stay on edge; good fork =
        // partition to the cloud. Under an alternating trace it must mix.
        use crate::tree::{ModelTree, TreeNode};
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let mut tree = ModelTree::new(base.clone(), 2, vec![1.0, 30.0]);
        let root = tree.push_node(
            None,
            TreeNode {
                level: 0,
                partition_abs: None,
                actions: vec![],
                children: vec![],
                reward: 0.0,
            },
        );
        let r1 = tree.block_range(1);
        // Poor fork: finish on the edge.
        tree.push_node(
            Some(root),
            TreeNode {
                level: 1,
                partition_abs: None,
                actions: vec![],
                children: vec![],
                reward: 0.0,
            },
        );
        // Good fork: offload the tail.
        tree.push_node(
            Some(root),
            TreeNode {
                level: 1,
                partition_abs: Some(r1.start),
                actions: vec![],
                children: vec![],
                reward: 0.0,
            },
        );
        // Alternate 0.5 / 60 Mbps every 300 ms so consecutive requests
        // (each a few tens of ms) see both regimes.
        let samples: Vec<f64> = (0..600)
            .map(|i| if (i / 3) % 2 == 0 { 0.5 } else { 60.0 })
            .collect();
        let trace = BandwidthTrace::new(100.0, samples);
        let report = execute(
            &env,
            &base,
            &Policy::Tree(&tree),
            &trace,
            &ExecConfig::emulation(40, 3),
        );
        // Latency distribution must be bimodal: some all-edge runs, some
        // offloaded runs.
        let min = report
            .latencies_ms
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = report
            .latencies_ms
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max > min + 2.0,
            "tree never changed its decision: min {min:.1} max {max:.1}"
        );
    }

    #[test]
    fn report_statistics() {
        let report = ExecReport {
            latencies_ms: vec![10.0, 20.0, 30.0],
            accuracies: vec![0.9, 0.9, 0.9],
        };
        assert!((report.mean_latency_ms() - 20.0).abs() < 1e-9);
        assert!((report.mean_accuracy() - 0.9).abs() < 1e-9);
        assert_eq!(report.p95_latency_ms(), 30.0);
        let eval = report.evaluation(&RewardSpec::default());
        assert!(eval.reward > 0.0);
    }

    #[test]
    fn csv_export_has_one_row_per_request() {
        let report = ExecReport {
            latencies_ms: vec![10.0, 20.0],
            accuracies: vec![0.9, 0.8],
        };
        let mut buf = Vec::new();
        report.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "request,latency_ms,accuracy");
        assert!(lines[1].starts_with("0,10"));
    }

    #[test]
    fn deterministic_per_seed() {
        let env = EvalEnv::phone();
        let base = zoo::alexnet_cifar();
        let c = Candidate::base_all_edge(&base);
        let trace = Scenario::WifiWeakIndoor.trace(4);
        let run = |seed| {
            execute(
                &env,
                &base,
                &Policy::Static(&c),
                &trace,
                &ExecConfig::field(10, seed),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}

//! Network contexts: a scenario, its reference trace, and the discretized
//! bandwidth levels the model tree forks on.

use cadmc_netsim::{BandwidthTrace, Scenario};

use serde::{Deserialize, Serialize};

/// A characterized network context.
///
/// The paper discretizes each real-life scene into `K` bandwidth types; for
/// `K = 2` it uses the trace's lower and upper quartiles as the "poor" and
/// "good" levels (§VII Setup). Levels are stored ascending.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkContext {
    scenario: Scenario,
    trace: BandwidthTrace,
    levels: Vec<f64>,
}

impl NetworkContext {
    /// Characterizes `scenario` with `k` bandwidth levels from a trace
    /// synthesized with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn from_scenario(scenario: Scenario, k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one bandwidth level");
        // Characterize over a 3-minute window: short traces can miss the
        // outage tail entirely and make fragile all-cloud plans look safe.
        let salt = scenario.index() as u64;
        let trace = cadmc_netsim::BandwidthTrace::synthesize(
            scenario.process_config(),
            180_000.0,
            100.0,
            seed ^ salt.wrapping_mul(0x9e37_79b9),
        );
        // k quantiles spread between the quartiles: for k = 2 exactly the
        // paper's lower/upper quartile pair.
        let levels = (0..k)
            .map(|i| {
                let q = if k == 1 {
                    0.5
                } else {
                    0.25 + 0.5 * i as f64 / (k - 1) as f64
                };
                trace.quantile(q)
            })
            .collect();
        Self {
            scenario,
            trace,
            levels,
        }
    }

    /// The scenario this context characterizes.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// The reference trace.
    pub fn trace(&self) -> &BandwidthTrace {
        &self.trace
    }

    /// The `K` discretized bandwidth levels, ascending (Mbps).
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Number of bandwidth types `K`.
    pub fn k(&self) -> usize {
        self.levels.len()
    }

    /// The representative (median) bandwidth — what a static method like
    /// dynamic DNN surgery conditions on.
    pub fn median_bandwidth(&self) -> f64 {
        self.trace.quantile(0.5)
    }

    /// Splits the context into a characterization half and a held-out
    /// execution trace: levels/median come from the first half of the
    /// reference trace, while the second half replays unseen conditions —
    /// the honest evaluation protocol (no selection leakage).
    pub fn train_test_split(&self) -> (NetworkContext, BandwidthTrace) {
        let (train, test) = self.trace.split_at_ms(self.trace.duration_ms() / 2.0);
        let k = self.levels.len();
        let levels = (0..k)
            .map(|i| {
                let q = if k == 1 {
                    0.5
                } else {
                    0.25 + 0.5 * i as f64 / (k - 1) as f64
                };
                train.quantile(q)
            })
            .collect();
        (
            NetworkContext {
                scenario: self.scenario,
                trace: train,
                levels,
            },
            test,
        )
    }

    /// Index of the level closest to a measured bandwidth — Alg. 2's
    /// "match it to the k-th branch".
    pub fn match_level(&self, bandwidth: f64) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, &l) in self.levels.iter().enumerate() {
            let d = (bandwidth - l).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k2_levels_are_quartiles() {
        let ctx = NetworkContext::from_scenario(Scenario::WifiWeakIndoor, 2, 1);
        let (p, g) = ctx.trace().quartile_levels();
        assert_eq!(ctx.levels(), &[p, g]);
    }

    #[test]
    fn match_level_picks_nearest() {
        let ctx = NetworkContext::from_scenario(Scenario::FourGOutdoorQuick, 2, 1);
        let levels = ctx.levels().to_vec();
        assert_eq!(ctx.match_level(levels[0] - 1.0), 0);
        assert_eq!(ctx.match_level(levels[1] + 1.0), 1);
        let mid = 0.5 * (levels[0] + levels[1]);
        let m = ctx.match_level(mid + 0.01);
        assert!(m == 0 || m == 1);
    }

    #[test]
    fn levels_ascend_for_k3() {
        let ctx = NetworkContext::from_scenario(Scenario::WifiOutdoorSlow, 3, 2);
        assert_eq!(ctx.k(), 3);
        for pair in ctx.levels().windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    }

    #[test]
    fn train_test_split_is_disjoint_and_consistent() {
        let ctx = NetworkContext::from_scenario(Scenario::WifiWeakIndoor, 2, 4);
        let (train_ctx, test_trace) = ctx.train_test_split();
        assert_eq!(
            train_ctx.trace().len() + test_trace.len(),
            ctx.trace().len()
        );
        // Levels derive from the training half only.
        let (p, g) = train_ctx.trace().quartile_levels();
        assert_eq!(train_ctx.levels(), &[p, g]);
        assert!(test_trace.duration_ms() > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = NetworkContext::from_scenario(Scenario::FourGWeakIndoor, 2, 9);
        let b = NetworkContext::from_scenario(Scenario::FourGWeakIndoor, 2, 9);
        assert_eq!(a, b);
    }
}

//! The **context-aware model tree** (§VI-A, Fig. 3) and online composition
//! (**Algorithm 2**).
//!
//! A model tree for an `N`-block base DNN under `K` bandwidth types is a
//! depth-`N` tree: each node holds a transformed version of its level's
//! block (compressed, possibly partitioned to the cloud mid-block), and a
//! non-partitioned interior node has `K` children — one per bandwidth
//! type. At inference time the engine walks the tree, measuring bandwidth
//! before each block and descending into the matching fork; the visited
//! path composes a complete DNN (each root→leaf branch is a valid model).

use std::ops::Range;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use cadmc_accuracy::AppliedAction;
use cadmc_compress::{CompressionPlan, FeatureAction};
use cadmc_nn::ModelSpec;
use cadmc_telemetry as telemetry;

use crate::candidate::{Candidate, Partition};

/// How a parent's reward is estimated from its children during the
/// backward pass: the paper averages (`Mean`); `Max` is an ablation that
/// credits a shared block with its best descendant instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackwardRule {
    /// Parent reward += child reward / K (the paper's rule).
    Mean,
    /// Parent reward = max(children rewards).
    Max,
}

/// One node of a model tree: the transformation chosen for one block under
/// one bandwidth-type history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeNode {
    /// Tree level = block index (0-based).
    pub level: usize,
    /// Absolute base-layer index this node's block partition cuts before,
    /// if the block's action included a partition. Everything from this
    /// layer on runs on the cloud, uncompressed.
    pub partition_abs: Option<usize>,
    /// Compression actions taken in this block (absolute base indices).
    pub actions: Vec<AppliedAction>,
    /// Feature compression applied to the cut tensor when this node
    /// partitions. Identity (and only legally identity) on
    /// non-partitioned nodes — validated by [`crate::validate::model_tree`].
    pub feature: FeatureAction,
    /// Children node ids, one per bandwidth type (empty for leaves and
    /// partitioned nodes).
    pub children: Vec<usize>,
    /// Backward-estimated reward (Alg. 3's `R_i`).
    pub reward: f64,
}

/// A context-aware model tree over a base DNN. The base spec is held
/// behind an [`Arc`]: tree construction per search episode then costs one
/// reference-count bump instead of a deep model clone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelTree {
    base: Arc<ModelSpec>,
    block_ranges: Vec<Range<usize>>,
    levels: Vec<f64>,
    nodes: Vec<TreeNode>,
}

impl ModelTree {
    /// Creates an empty tree skeleton for `base` split into
    /// `bandwidth_levels.len()`-forked blocks. Accepts an owned spec or a
    /// pre-shared `Arc<ModelSpec>` (the episode hot path passes the
    /// latter).
    ///
    /// # Panics
    ///
    /// Panics if `n_blocks` is zero or exceeds the layer count, or if no
    /// bandwidth levels are given.
    pub fn new(
        base: impl Into<Arc<ModelSpec>>,
        n_blocks: usize,
        bandwidth_levels: Vec<f64>,
    ) -> Self {
        assert!(!bandwidth_levels.is_empty(), "need at least one bandwidth level");
        let base = base.into();
        let block_ranges = base.block_ranges(n_blocks);
        Self {
            base,
            block_ranges,
            levels: bandwidth_levels,
            nodes: Vec::new(),
        }
    }

    /// The base model.
    pub fn base(&self) -> &ModelSpec {
        &self.base
    }

    /// Number of blocks `N`.
    pub fn n_blocks(&self) -> usize {
        self.block_ranges.len()
    }

    /// Number of bandwidth types `K`.
    pub fn k(&self) -> usize {
        self.levels.len()
    }

    /// The bandwidth levels (ascending Mbps).
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Base-layer range of block `level`.
    pub fn block_range(&self, level: usize) -> Range<usize> {
        self.block_ranges[level].clone()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Mutable node access (used by the backward-estimation pass).
    pub fn node_mut(&mut self, id: usize) -> &mut TreeNode {
        &mut self.nodes[id]
    }

    /// The root node id, if the tree has been populated.
    pub fn root(&self) -> Option<usize> {
        if self.nodes.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    /// Appends a node and links it under `parent` (which must have been
    /// created with a `children` slot order matching fork indices —
    /// children are pushed in fork order).
    ///
    /// # Panics
    ///
    /// Panics if a non-root node is inserted before its parent, or the
    /// parent already has `K` children.
    pub fn push_node(&mut self, parent: Option<usize>, node: TreeNode) -> usize {
        let id = self.nodes.len();
        if let Some(p) = parent {
            assert!(p < id, "parent must exist before its children");
            assert!(
                self.nodes[p].children.len() < self.k(),
                "parent already has K children"
            );
            self.nodes[p].children.push(id);
        } else {
            assert!(self.nodes.is_empty(), "tree already has a root");
        }
        self.nodes.push(node);
        id
    }

    /// Matches a measured bandwidth to the nearest level index (Alg. 2
    /// line 5).
    pub fn match_level(&self, bandwidth: f64) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, &l) in self.levels.iter().enumerate() {
            let d = (bandwidth - l).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// **Algorithm 2**: composes a DNN by walking the tree, calling
    /// `measure` for the current bandwidth before descending each fork.
    /// Returns the visited node ids and the composed deployment.
    ///
    /// # Panics
    ///
    /// Panics if the tree is empty or structurally incomplete (an interior
    /// node with a non-empty but non-`K` child list).
    pub fn compose(&self, mut measure: impl FnMut(usize) -> f64) -> (Vec<usize>, Candidate) {
        let mut id = self.root().expect("cannot compose from an empty tree");
        let mut path = vec![id];
        while self.nodes[id].partition_abs.is_none() && !self.nodes[id].children.is_empty() {
            assert_eq!(
                self.nodes[id].children.len(),
                self.k(),
                "interior node must have K children"
            );
            let bw = measure(self.nodes[id].level);
            let k = self.match_level(bw);
            telemetry::event!(
                "compose.fork",
                level = self.nodes[id].level,
                bandwidth = bw,
                child = k,
            );
            id = self.nodes[id].children[k];
            path.push(id);
        }
        let candidate = self.compose_path(&path);
        (path, candidate)
    }

    /// Composes the deployment candidate described by a root→node path.
    ///
    /// # Panics
    ///
    /// Panics if the path's recorded actions are inapplicable (cannot
    /// happen for paths built by the tree search).
    pub fn compose_path(&self, path: &[usize]) -> Candidate {
        let mut partition = Partition::AllEdge;
        let mut plan = CompressionPlan::identity(self.base.len());
        let mut cut: Option<usize> = None;
        let mut feature = FeatureAction::IDENTITY;
        for &id in path {
            let node = &self.nodes[id];
            for a in &node.actions {
                plan.set(a.layer_index, Some(a.technique));
            }
            if let Some(abs) = node.partition_abs {
                cut = Some(abs);
                // The cut node owns the handoff, so it owns the feature
                // compression of the tensor crossing it.
                feature = node.feature;
                break;
            }
        }
        if let Some(abs) = cut {
            partition = if abs == 0 {
                Partition::AllCloud
            } else {
                Partition::AfterLayer(abs - 1)
            };
            // Compression never applies at or beyond the cut.
            for i in abs..self.base.len() {
                plan.set(i, None);
            }
        }
        // Search-built paths are conflict-free already; sanitizing keeps
        // composition total for hand-built or mutated trees (e.g. the
        // ε-greedy baseline) as well.
        let plan = plan.sanitized(&self.base);
        Candidate::compose(&self.base, partition, &plan)
            .expect("sanitized plans always compose")
            .with_feature(feature)
    }

    /// Degradation fallbacks for a failed Alg. 2 walk: alternative
    /// root→leaf paths obtained by re-forking `path` at each of its fork
    /// nodes to the **lowest-bandwidth child** (index 0, the
    /// edge-heaviest subtree) and descending child 0 from there on.
    /// Ordered deepest re-fork first, so the first entries preserve the
    /// most already-computed prefix work. Forks where `path` already took
    /// child 0 are skipped (re-forking would reproduce the failed path).
    ///
    /// # Panics
    ///
    /// Panics if `path` contains an out-of-range node id.
    pub fn fallback_paths(&self, path: &[usize]) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for (i, &id) in path.iter().enumerate().rev() {
            let node = &self.nodes[id];
            if node.partition_abs.is_some() || node.children.is_empty() {
                continue;
            }
            let low = node.children[0];
            if path.get(i + 1) == Some(&low) {
                continue;
            }
            let mut p = path[..=i].to_vec();
            let mut cur = low;
            p.push(cur);
            while self.nodes[cur].partition_abs.is_none()
                && !self.nodes[cur].children.is_empty()
            {
                cur = self.nodes[cur].children[0];
                p.push(cur);
            }
            out.push(p);
        }
        out
    }

    /// Materializes the edge-resident part of a node's block: the base
    /// layers from the block start up to the node's partition point (or
    /// the block end), with the node's compression actions applied.
    /// Returns `None` when nothing of the block runs on the edge (the
    /// node partitions at its first layer).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or the node's recorded actions are
    /// inapplicable (cannot happen for search-built trees).
    pub fn node_edge_spec(&self, id: usize) -> Option<ModelSpec> {
        let node = &self.nodes[id];
        let range = self.block_range(node.level);
        let end = node.partition_abs.unwrap_or(range.end);
        if end <= range.start {
            return None;
        }
        let block = self
            .base
            .slice(range.start, end)
            .expect("valid block slice");
        let mut plan = CompressionPlan::identity(block.len());
        for a in &node.actions {
            debug_assert!((range.start..end).contains(&a.layer_index));
            plan.set(a.layer_index - range.start, Some(a.technique));
        }
        // Sanitize for consistency with `compose_path`: search-built trees
        // are conflict-free, hand-built or mutated ones stay total.
        let plan = plan.sanitized(&block);
        Some(plan.apply(&block).expect("sanitized plans always apply"))
    }

    /// Edge-side storage footprint of the whole tree (bytes): every
    /// node's transformed edge block must be kept on the device so Alg. 2
    /// can compose any branch at runtime. This is the storage price of
    /// context-awareness that the paper's multi-capacity-model comparison
    /// (NestDNN) alludes to; block sharing keeps it far below
    /// `branches × model size`.
    pub fn edge_storage_bytes(&self) -> u64 {
        (0..self.nodes.len())
            .filter_map(|id| self.node_edge_spec(id))
            .map(|spec| spec.param_bytes())
            .sum()
    }

    /// All root→leaf paths (branches) of the tree.
    pub fn branches(&self) -> Vec<Vec<usize>> {
        let Some(root) = self.root() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut stack = vec![vec![root]];
        while let Some(path) = stack.pop() {
            let id = *path.last().expect("paths are non-empty");
            let node = &self.nodes[id];
            if node.children.is_empty() || node.partition_abs.is_some() {
                out.push(path);
            } else {
                for &c in node.children.iter().rev() {
                    let mut next = path.clone();
                    next.push(c);
                    stack.push(next);
                }
            }
        }
        out
    }

    /// The branch with the highest leaf reward, with its candidate.
    pub fn best_branch(&self) -> Option<(Vec<usize>, Candidate)> {
        self.branches()
            .into_iter()
            .max_by(|a, b| {
                let ra = self.nodes[*a.last().expect("non-empty")].reward;
                let rb = self.nodes[*b.last().expect("non-empty")].reward;
                ra.total_cmp(&rb)
            })
            .map(|path| {
                let c = self.compose_path(&path);
                (path, c)
            })
    }

    /// Mean reward over all branch leaves — the tree's expected quality
    /// under uniform bandwidth-type visits.
    pub fn mean_branch_reward(&self) -> f64 {
        let branches = self.branches();
        if branches.is_empty() {
            return 0.0;
        }
        let sum: f64 = branches
            .iter()
            .map(|p| self.nodes[*p.last().expect("non-empty")].reward)
            .sum();
        sum / branches.len() as f64
    }

    /// Backward estimation (Alg. 3 lines 27–31): each parent's reward
    /// accumulates `1/K` of every child's reward, processed in reverse
    /// BFS (= reverse insertion) order. This is the paper's averaging
    /// rule; see [`backward_estimate_with`] for the max-rule ablation.
    ///
    /// [`backward_estimate_with`]: ModelTree::backward_estimate_with
    pub fn backward_estimate(&mut self) {
        self.backward_estimate_with(BackwardRule::Mean);
    }

    /// Backward estimation with a selectable credit-assignment rule.
    pub fn backward_estimate_with(&mut self, rule: BackwardRule) {
        let k = self.k() as f64;
        for id in (0..self.nodes.len()).rev() {
            let r = self.nodes[id].reward;
            // Find the parent (children lists are small; a linear scan is
            // fine at N=3, K=2 scale).
            if let Some(parent) = self
                .nodes
                .iter()
                .position(|n| n.children.contains(&id))
            {
                match rule {
                    BackwardRule::Mean => self.nodes[parent].reward += r / k,
                    BackwardRule::Max => {
                        let p = &mut self.nodes[parent].reward;
                        *p = p.max(r);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_compress::Technique;
    use cadmc_nn::zoo;

    /// Hand-builds the Fig. 8-style tree: root A1, children (B1, B2);
    /// B1's children (C1, C2); B2 partitions to the cloud.
    fn example_tree() -> ModelTree {
        let base = zoo::vgg11_cifar();
        let mut tree = ModelTree::new(base.clone(), 3, vec![2.0, 10.0]);
        let r0 = tree.block_range(0);
        let root = tree.push_node(
            None,
            TreeNode {
                level: 0,
                partition_abs: None,
                actions: vec![AppliedAction {
                    layer_index: r0.start,
                    technique: Technique::W1FilterPrune,
                }],
                feature: FeatureAction::IDENTITY,
                children: Vec::new(),
                reward: 0.0,
            },
        );
        let b1 = tree.push_node(
            Some(root),
            TreeNode {
                level: 1,
                partition_abs: None,
                actions: vec![],
                feature: FeatureAction::IDENTITY,
                children: Vec::new(),
                reward: 0.0,
            },
        );
        let r1 = tree.block_range(1);
        let _b2 = tree.push_node(
            Some(root),
            TreeNode {
                level: 1,
                partition_abs: Some(r1.start),
                actions: vec![],
                feature: FeatureAction::IDENTITY,
                children: Vec::new(),
                reward: 340.0,
            },
        );
        let r2 = tree.block_range(2);
        let _c1 = tree.push_node(
            Some(b1),
            TreeNode {
                level: 2,
                partition_abs: Some(r2.start + 1),
                actions: vec![],
                // The cut node carries the feature compression of its
                // handoff tensor — exercised by compose/serde tests.
                feature: FeatureAction {
                    bottleneck: cadmc_compress::BottleneckKnob::Half,
                    quant: cadmc_compress::QuantKnob::Int8,
                },
                children: Vec::new(),
                reward: 350.0,
            },
        );
        let _c2 = tree.push_node(
            Some(b1),
            TreeNode {
                level: 2,
                partition_abs: None,
                actions: vec![AppliedAction {
                    layer_index: r2.start,
                    technique: Technique::C1MobileNet,
                }],
                feature: FeatureAction::IDENTITY,
                children: Vec::new(),
                reward: 345.0,
            },
        );
        tree
    }

    #[test]
    fn branches_enumerate_all_paths() {
        let tree = example_tree();
        let branches = tree.branches();
        assert_eq!(branches.len(), 3);
    }

    #[test]
    fn compose_follows_bandwidth() {
        let tree = example_tree();
        // Always-poor bandwidth: root -> B1 (fork 0) -> C1 (fork 0).
        let (path, cand) = tree.compose(|_| 1.0);
        assert_eq!(path.len(), 3);
        assert!(matches!(cand.partition, Partition::AfterLayer(_)));
        // Always-good: root -> B2 which partitions immediately.
        let (path2, cand2) = tree.compose(|_| 50.0);
        assert_eq!(path2.len(), 2);
        assert!(matches!(cand2.partition, Partition::AfterLayer(_)));
    }

    #[test]
    fn compose_path_carries_actions_up_to_cut() {
        let tree = example_tree();
        let (_, cand) = tree.compose(|_| 1.0);
        // Root's W1 action is before the cut, so it must be present.
        assert!(cand
            .actions
            .iter()
            .any(|a| a.technique == Technique::W1FilterPrune));
        // The poor-bandwidth walk lands on C1, whose cut carries a
        // half-bottleneck int8 feature action: the composed candidate
        // must ship 8× fewer bytes than the raw cut tensor (2× from the
        // bottleneck × 4× from int8, aligned shapes).
        assert_eq!(cand.feature.code(), "B2Q8");
        assert_eq!(cand.transfer_bytes() * 8, cand.raw_transfer_bytes());
        // The good-bandwidth walk lands on B2 (identity feature).
        let (_, cand2) = tree.compose(|_| 50.0);
        assert!(cand2.feature.is_identity());
        assert_eq!(cand2.transfer_bytes(), cand2.raw_transfer_bytes());
    }

    #[test]
    fn backward_estimation_averages_children() {
        let mut tree = example_tree();
        tree.backward_estimate();
        let nodes = tree.nodes();
        // b1 gets (350 + 345)/2 = 347.5; root gets (347.5 + 340)/2.
        assert!((nodes[1].reward - 347.5).abs() < 1e-9);
        assert!((nodes[0].reward - (347.5 + 340.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn best_branch_picks_highest_leaf() {
        let tree = example_tree();
        let (path, _) = tree.best_branch().expect("tree has branches");
        assert_eq!(tree.nodes()[*path.last().unwrap()].reward, 350.0);
    }

    #[test]
    fn match_level_boundaries() {
        let tree = example_tree();
        assert_eq!(tree.match_level(0.5), 0);
        assert_eq!(tree.match_level(100.0), 1);
    }

    #[test]
    fn storage_is_less_than_branches_times_model() {
        let tree = example_tree();
        let storage = tree.edge_storage_bytes();
        assert!(storage > 0);
        let naive = tree.branches().len() as u64 * tree.base().param_bytes();
        assert!(
            storage < naive,
            "block sharing should beat per-branch copies: {storage} vs {naive}"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let tree = example_tree();
        let json = serde_json::to_string(&tree).unwrap();
        let back: ModelTree = serde_json::from_str(&json).unwrap();
        assert_eq!(tree, back);
    }
}

//! **Algorithm 1 — Model Compression and Partition** (optimal *branch*
//! search): the joint RL search for a partition point and per-layer
//! compression plan under one constant bandwidth.
//!
//! Each episode: the partition controller reads `(B, W)` and cuts the base
//! model into an edge and a cloud half; the compression controller reads
//! the edge half and assigns a technique per layer; the composed candidate
//! is scored by Eq. 7 and both controllers are updated by Monte-Carlo
//! policy gradient. The best candidate over all episodes is returned.

use cadmc_latency::Mbps;
use cadmc_nn::ModelSpec;
use cadmc_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::candidate::Candidate;
use crate::controller::EpisodeTape;
use crate::delta::{DeltaState, EdgePrefixes};
use crate::env::EvalEnv;
use crate::memo::MemoPool;
use crate::parallel::par_map_indexed;
use crate::reward::Evaluation;
use crate::search::{to_partition, Controllers, SearchConfig};
use crate::validate::{self, ValidateError};

/// Outcome of a search run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best candidate found.
    pub best: Candidate,
    /// Its evaluation at the search bandwidth.
    pub best_eval: Evaluation,
    /// Reward of each episode's sampled candidate, in order.
    pub episode_rewards: Vec<f64>,
    /// Every candidate that set a new best during the search (ending with
    /// `best`). Callers re-ranking by replayed execution rather than
    /// point reward pick among these.
    pub improvers: Vec<(Candidate, Evaluation)>,
}

impl SearchOutcome {
    /// Best-so-far reward curve (running maximum of episode rewards).
    pub fn best_so_far(&self) -> Vec<f64> {
        let mut best = f64::NEG_INFINITY;
        self.episode_rewards
            .iter()
            .map(|&r| {
                best = best.max(r);
                best
            })
            .collect()
    }
}

/// Samples one (partition, compression) episode as a [`DeltaState`] —
/// decisions only, no candidate composition.
///
/// Returns the tape (for the policy update) alongside the delta. With
/// probability `explore_epsilon` the partition is drawn uniformly
/// (off-policy, no log-probability recorded) instead of from the policy.
/// `prefixes` supplies the edge prefix specs the compression controller
/// conditions on (built once per search).
pub fn sample_delta<'a>(
    controllers: &Controllers,
    base: &'a ModelSpec,
    prefixes: &EdgePrefixes,
    bandwidth: f64,
    rng: &mut StdRng,
    force_no_partition: f64,
    explore_epsilon: f64,
) -> (EpisodeTape, DeltaState<'a>) {
    use rand::RngExt;
    let mut tape = EpisodeTape::new();
    let partition = if explore_epsilon > 0.0 && rng.random_range(0.0..1.0) < explore_epsilon {
        crate::baselines::random_partition(base, rng)
    } else {
        let action = controllers.partition.sample(
            &mut tape,
            &controllers.params,
            base,
            bandwidth,
            rng,
            force_no_partition,
        );
        to_partition(action, base)
    };
    let mut delta = DeltaState::new(base, partition);
    let edge_len = partition.edge_len(base.len());
    if edge_len > 0 {
        let edge_plan = controllers.compression.sample(
            &mut tape,
            &controllers.params,
            prefixes.get(edge_len),
            bandwidth,
            rng,
        );
        for (i, a) in edge_plan.actions().iter().enumerate() {
            if let Some(t) = *a {
                delta.push_action(i, t);
            }
        }
    }
    // Third action family (gated): feature compression of the cut tensor.
    // The disabled path samples nothing — zero extra RNG draws or tape
    // entries — preserving bit-exact pre-feature behavior.
    if let Some(fc) = &controllers.feature {
        if edge_len < base.len() {
            let raw_bytes = if edge_len == 0 {
                base.input_bytes()
            } else {
                base.cut_bytes_after(edge_len - 1)
            };
            let feature = fc.sample(
                &mut tape,
                &controllers.params,
                bandwidth,
                edge_len,
                base.len(),
                raw_bytes,
                rng,
            );
            delta.set_feature(feature);
            if !feature.is_identity() {
                telemetry::event!(
                    "compress.feature",
                    action = feature.code(),
                    raw_bytes = raw_bytes,
                );
                telemetry::counter!("compress.feature.picks", 1);
            }
        }
    }
    (tape, delta)
}

/// Samples one (partition, compression) episode and composes the
/// candidate — [`sample_delta`] plus materialization, for callers that
/// want the composed model unconditionally.
pub fn sample_candidate(
    controllers: &Controllers,
    base: &ModelSpec,
    bandwidth: f64,
    rng: &mut StdRng,
    force_no_partition: f64,
    explore_epsilon: f64,
) -> (EpisodeTape, Candidate) {
    let prefixes = EdgePrefixes::new(base);
    let (tape, delta) = sample_delta(
        controllers,
        base,
        &prefixes,
        bandwidth,
        rng,
        force_no_partition,
        explore_epsilon,
    );
    let candidate = delta
        .materialize()
        .expect("sampled plans are applicable by construction");
    (tape, candidate)
}

/// RNG stream salt for the branch search (`"branch"`).
const BRANCH_SALT: u64 = 0x6272_616e_6368;

/// Histogram buckets for Eq. 7 episode rewards (they land in 0..400).
pub(crate) const REWARD_BOUNDS: &[f64] =
    &[0.0, 25.0, 50.0, 75.0, 100.0, 150.0, 200.0, 300.0];

/// Runs Algorithm 1: searches compression + partition for `base` under the
/// constant bandwidth `bandwidth`, updating `controllers` in place.
///
/// Episodes are rolled out in batches of `cfg.rollout_batch` from frozen
/// controller parameters — in parallel across `cfg.parallelism.workers`
/// threads, each episode on its own `seed ^ episode` RNG stream — and the
/// policy updates are then applied sequentially in episode order, so the
/// result is bit-identical for any worker count.
///
/// # Errors
///
/// Returns [`ValidateError`] when the model, bandwidth or configuration
/// fails [`validate::branch_inputs`]; no episode runs in that case.
pub fn optimal_branch(
    controllers: &mut Controllers,
    base: &ModelSpec,
    env: &EvalEnv,
    bandwidth: Mbps,
    cfg: &SearchConfig,
    memo: &MemoPool,
) -> Result<SearchOutcome, ValidateError> {
    validate::branch_inputs(base, bandwidth.0, cfg)?;
    let search_span = telemetry::span!(
        "branch.search",
        episodes = cfg.episodes,
        bandwidth = bandwidth.0,
        workers = cfg.parallelism.workers,
    );
    let mut episode_rewards = Vec::with_capacity(cfg.episodes);
    let mut best: Option<(Candidate, Evaluation)> = None;
    let mut improvers: Vec<(Candidate, Evaluation)> = Vec::new();

    // Built once, shared read-only by every rollout worker: the edge
    // prefixes the compression controller conditions on.
    let prefixes = EdgePrefixes::new(base);
    let batch_size = cfg.rollout_batch.max(1);
    let mut batch_start = 0;
    while batch_start < cfg.episodes {
        let batch_end = (batch_start + batch_size).min(cfg.episodes);
        let rollouts = {
            let shared: &Controllers = controllers;
            let prefixes = &prefixes;
            par_map_indexed(
                batch_end - batch_start,
                cfg.parallelism.workers,
                |offset| {
                    let episode = batch_start + offset;
                    let episode_span = telemetry::span!("branch.episode", episode = episode);
                    let mut rng =
                        StdRng::seed_from_u64(cfg.seed ^ BRANCH_SALT ^ episode as u64);
                    let (tape, delta) = sample_delta(
                        shared,
                        base,
                        prefixes,
                        bandwidth.0,
                        &mut rng,
                        0.0,
                        cfg.explore_epsilon,
                    );
                    // Probe by the delta's key; compose only on a miss.
                    let key = delta.eval_key(bandwidth.0);
                    let eval = memo.get_key(key).unwrap_or_else(|| {
                        let _eval_span = telemetry::span!("eval.candidate");
                        let candidate = delta
                            .materialize()
                            .expect("sampled plans are applicable by construction");
                        let e = env.evaluate(base, &candidate, bandwidth);
                        memo.insert_key(key, e);
                        e
                    });
                    episode_span.record("reward", eval.reward);
                    (tape, delta, eval)
                },
            )
        };
        for (tape, delta, eval) in rollouts {
            episode_rewards.push(eval.reward);
            telemetry::hist!("branch.reward", REWARD_BOUNDS, eval.reward);
            let replace = match &best {
                Some((_, be)) => eval.reward > be.reward,
                None => true,
            };
            if replace {
                // Materialization is deterministic, so re-composing the
                // (rare) improvers here gives byte-identical results to
                // the old compose-every-episode loop.
                let candidate = delta
                    .materialize()
                    .expect("sampled plans are applicable by construction");
                improvers.push((candidate.clone(), eval));
                best = Some((candidate, eval));
            }
            controllers
                .trainer
                .update_batch(&mut controllers.params, vec![(tape, eval.reward)]);
        }
        batch_start = batch_end;
    }

    let (best, best_eval) = best.expect("episodes >= 1 was validated");
    search_span.record("best_reward", best_eval.reward);
    Ok(SearchOutcome {
        best,
        best_eval,
        episode_rewards,
        improvers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;

    #[test]
    fn branch_search_beats_or_matches_surgery() {
        // The branch search space strictly contains surgery's (identity
        // compression + any cut), so with enough episodes its best reward
        // must be at least surgery's.
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let bw = Mbps(8.0);
        let cfg = SearchConfig {
            episodes: 80,
            ..SearchConfig::quick(3)
        };
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        let outcome =
            optimal_branch(&mut controllers, &base, &env, bw, &cfg, &memo).expect("valid inputs");
        let surgery = crate::surgery::plan(&base, &env, bw);
        assert!(
            outcome.best_eval.reward >= surgery.evaluation.reward - 2.0,
            "branch {:.2} vs surgery {:.2}",
            outcome.best_eval.reward,
            surgery.evaluation.reward
        );
    }

    #[test]
    fn rewards_are_sane() {
        let base = zoo::alexnet_cifar();
        let env = EvalEnv::phone();
        let cfg = SearchConfig::quick(1);
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        let outcome = optimal_branch(&mut controllers, &base, &env, Mbps(10.0), &cfg, &memo)
            .expect("valid inputs");
        assert_eq!(outcome.episode_rewards.len(), cfg.episodes);
        for &r in &outcome.episode_rewards {
            assert!((0.0..=400.0).contains(&r));
        }
        let curve = outcome.best_so_far();
        for pair in curve.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
    }

    #[test]
    fn memo_pool_gets_hits_during_search() {
        let base = zoo::tiny_cnn();
        let env = EvalEnv::phone();
        let cfg = SearchConfig {
            episodes: 60,
            ..SearchConfig::quick(2)
        };
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        let _ = optimal_branch(&mut controllers, &base, &env, Mbps(10.0), &cfg, &memo)
            .expect("valid inputs");
        assert!(
            memo.hits() > 0,
            "60 episodes on a 7-layer model must revisit candidates"
        );
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let base = zoo::tiny_cnn();
        let env = EvalEnv::phone();
        let cfg = SearchConfig::quick(9);
        let run = || {
            let mut controllers = Controllers::new(&cfg);
            let memo = MemoPool::new();
            optimal_branch(&mut controllers, &base, &env, Mbps(10.0), &cfg, &memo)
                .expect("valid inputs")
                .episode_rewards
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn feature_actions_search_is_deterministic_and_explores() {
        let base = zoo::tiny_cnn();
        let env = EvalEnv::phone();
        let cfg = SearchConfig {
            episodes: 40,
            feature_actions: true,
            ..SearchConfig::quick(5)
        };
        let run = || {
            let mut controllers = Controllers::new(&cfg);
            let memo = MemoPool::new();
            optimal_branch(&mut controllers, &base, &env, Mbps(0.5), &cfg, &memo)
                .expect("valid inputs")
        };
        let a = run();
        let b = run();
        assert_eq!(a.episode_rewards, b.episode_rewards);
        assert_eq!(a.best.summary(), b.best.summary());
        crate::validate::candidate(&base, &a.best).expect("best candidate validates");
        // The untrained feature policy explores: sampling deltas directly
        // must surface non-identity feature actions on partitioned cuts.
        let controllers = Controllers::new(&cfg);
        let prefixes = EdgePrefixes::new(&base);
        let mut rng = StdRng::seed_from_u64(11);
        let mut saw_feature = false;
        for _ in 0..60 {
            let (_, delta) = sample_delta(&controllers, &base, &prefixes, 0.5, &mut rng, 0.0, 0.5);
            if !delta.feature().is_identity() {
                assert_ne!(
                    delta.partition().edge_len(base.len()),
                    base.len(),
                    "features only attach to transfer-bearing partitions"
                );
                saw_feature = true;
            }
        }
        assert!(saw_feature, "feature policy never sampled a non-identity action");
    }
}

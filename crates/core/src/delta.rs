//! Delta-based episode states: the compact record of one sampled
//! deployment decision, used by the search hot paths instead of eagerly
//! composed [`Candidate`]s.
//!
//! An episode's outcome is fully determined by `(base model, partition,
//! per-layer actions, bandwidth)`. Composing the candidate model — layer
//! splicing, shape inference, structural re-hash — is by far the most
//! expensive part of an episode, and it is wasted work whenever the memo
//! pool has already scored the same decision. [`DeltaState`] therefore
//! stores only the decisions, folds them into an incrementally-built
//! fingerprint (no re-hash of the full spec: the base's cached
//! [`ModelSpec::structural_hash`] seeds the chain and each pushed action
//! mixes in O(1)), and defers [`DeltaState::materialize`] until an
//! evaluation is actually needed — a memo miss, or a new best candidate.
//!
//! [`EdgePrefixes`] complements this with the other per-episode
//! allocation the sampler used to pay: the `base.slice(0, edge_len)`
//! prefix the compression controller conditions on. All prefixes are
//! built once per search and shared read-only across rollout workers.

use cadmc_compress::{CompressError, CompressionPlan, FeatureAction, Technique};
use cadmc_nn::ModelSpec;

use crate::candidate::{Candidate, Partition};

/// SplitMix64 finalizer — the mixing step of the fingerprint chain.
/// Deterministic across platforms and runs; good avalanche behavior so
/// the memo's shard selection (top bits) stays balanced.
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    let mut z = h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fingerprint contribution of a partition decision.
fn partition_tag(partition: Partition) -> u64 {
    match partition {
        Partition::AllEdge => 1,
        Partition::AllCloud => 2,
        Partition::AfterLayer(i) => 3 + i as u64,
    }
}

/// A sampled deployment decision over a borrowed base model: partition
/// plus edge-region compression actions, with an incrementally-maintained
/// structural fingerprint. Never clones the base.
#[derive(Debug, Clone)]
pub struct DeltaState<'a> {
    base: &'a ModelSpec,
    partition: Partition,
    /// `(base layer index, technique)`, strictly ascending indices, all
    /// within the edge region.
    actions: Vec<(usize, Technique)>,
    /// Feature compression of the cut tensor. Kept out of the eager
    /// fingerprint chain: folded lazily by [`DeltaState::fingerprint`]
    /// only when non-identity, so feature-free deltas keep pre-feature
    /// fingerprints bit-for-bit and fold order never matters.
    feature: FeatureAction,
    fingerprint: u64,
}

impl<'a> DeltaState<'a> {
    /// A delta with no compression actions yet.
    pub fn new(base: &'a ModelSpec, partition: Partition) -> Self {
        let fingerprint = mix(base.structural_hash(), partition_tag(partition));
        Self {
            base,
            partition,
            actions: Vec::new(),
            feature: FeatureAction::IDENTITY,
            fingerprint,
        }
    }

    /// Records a compression action, folding it into the fingerprint in
    /// O(1).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is at/beyond the partition cut or does not come
    /// strictly after the previously pushed action.
    pub fn push_action(&mut self, layer: usize, technique: Technique) {
        assert!(
            layer < self.partition.edge_len(self.base.len()),
            "action at layer {layer} lies beyond the cut"
        );
        if let Some(&(last, _)) = self.actions.last() {
            assert!(last < layer, "actions must be pushed in ascending order");
        }
        self.fingerprint = mix(self.fingerprint, ((layer as u64) << 8) | technique as u64);
        self.actions.push((layer, technique));
    }

    /// Builds a delta from a full-length compression plan (actions at or
    /// beyond the cut are ignored, mirroring [`Candidate::compose`]).
    ///
    /// # Panics
    ///
    /// Panics if the plan length does not match `base.len()`.
    pub fn from_plan(base: &'a ModelSpec, partition: Partition, plan: &CompressionPlan) -> Self {
        assert_eq!(plan.len(), base.len(), "plan must cover the base model");
        let mut delta = Self::new(base, partition);
        let edge_len = partition.edge_len(base.len());
        for (i, a) in plan.actions()[..edge_len].iter().enumerate() {
            if let Some(t) = *a {
                delta.push_action(i, t);
            }
        }
        delta
    }

    /// The partition decision.
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// The recorded `(layer, technique)` actions, ascending.
    pub fn actions(&self) -> &[(usize, Technique)] {
        &self.actions
    }

    /// Records feature compression of the cut tensor. Normalized exactly
    /// like [`Candidate::with_feature`]: a no-transfer partition
    /// (all-edge) always stores the identity.
    pub fn set_feature(&mut self, feature: FeatureAction) {
        self.feature = if self.partition.edge_len(self.base.len()) == self.base.len() {
            FeatureAction::IDENTITY
        } else {
            feature
        };
    }

    /// The feature-compression decision on the cut tensor.
    pub fn feature(&self) -> FeatureAction {
        self.feature
    }

    /// The structural fingerprint over (base hash, partition, actions,
    /// feature). The feature tag is folded on read and only when
    /// non-identity, so feature-free fingerprints equal pre-feature ones.
    pub fn fingerprint(&self) -> u64 {
        if self.feature.is_identity() {
            self.fingerprint
        } else {
            mix(self.fingerprint, self.feature.tag())
        }
    }

    /// Memo key for this decision at a bandwidth, quantized to 0.01 Mbps
    /// exactly like [`crate::memo::MemoPool::key`] so replayed levels hit
    /// the same entry.
    pub fn eval_key(&self, bandwidth_mbps: f64) -> u64 {
        mix(self.fingerprint(), (bandwidth_mbps * 100.0).round() as i64 as u64)
    }

    /// Composes the decision into a full [`Candidate`] (the expensive
    /// step this type exists to defer). Deterministic: materializing the
    /// same delta twice yields identical candidates.
    ///
    /// # Errors
    ///
    /// Propagates [`CompressError`] from [`Candidate::compose`].
    pub fn materialize(&self) -> Result<Candidate, CompressError> {
        let mut plan = CompressionPlan::identity(self.base.len());
        for &(layer, technique) in &self.actions {
            plan.set(layer, Some(technique));
        }
        Ok(Candidate::compose(self.base, self.partition, &plan)?.with_feature(self.feature))
    }
}

/// Every proper prefix slice `base[0..e]` of a model, built once per
/// search so episode sampling stops paying a slice (allocation + shape
/// inference + name formatting) per rollout. Shared read-only across
/// workers.
#[derive(Debug)]
pub struct EdgePrefixes {
    /// `slices[e - 1]` is `base.slice(0, e)`; `e` ranges over `1..=len`.
    slices: Vec<ModelSpec>,
}

impl EdgePrefixes {
    /// Builds all prefixes of `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is empty (validated before any search runs).
    pub fn new(base: &ModelSpec) -> Self {
        let slices = (1..=base.len())
            .map(|e| base.slice(0, e).expect("valid prefix slice"))
            .collect();
        Self { slices }
    }

    /// The prefix spec with `edge_len` layers.
    ///
    /// # Panics
    ///
    /// Panics if `edge_len` is zero or exceeds the base length.
    pub fn get(&self, edge_len: usize) -> &ModelSpec {
        &self.slices[edge_len - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;

    #[test]
    fn materialize_matches_direct_compose() {
        let base = zoo::vgg11_cifar();
        let mut plan = CompressionPlan::identity(base.len());
        plan.set(0, Some(Technique::W1FilterPrune));
        plan.set(2, Some(Technique::C1MobileNet));
        let partition = Partition::AfterLayer(4);
        let delta = DeltaState::from_plan(&base, partition, &plan);
        let direct = Candidate::compose(&base, partition, &plan).unwrap();
        let materialized = delta.materialize().unwrap();
        assert_eq!(direct, materialized);
        assert_eq!(direct.model.name(), materialized.model.name());
    }

    #[test]
    fn fingerprint_distinguishes_decisions() {
        let base = zoo::vgg11_cifar();
        let id = CompressionPlan::identity(base.len());
        let a = DeltaState::from_plan(&base, Partition::AllEdge, &id);
        let b = DeltaState::from_plan(&base, Partition::AllCloud, &id);
        let c = DeltaState::from_plan(&base, Partition::AfterLayer(3), &id);
        let mut pruned = CompressionPlan::identity(base.len());
        pruned.set(0, Some(Technique::W1FilterPrune));
        let d = DeltaState::from_plan(&base, Partition::AllEdge, &pruned);
        let fps = [a.fingerprint(), b.fingerprint(), c.fingerprint(), d.fingerprint()];
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "fingerprints {i} and {j} collide");
            }
        }
    }

    #[test]
    fn eval_key_quantizes_bandwidth_like_memo() {
        let base = zoo::tiny_cnn();
        let id = CompressionPlan::identity(base.len());
        let d = DeltaState::from_plan(&base, Partition::AllEdge, &id);
        assert_eq!(d.eval_key(1.0), d.eval_key(1.001));
        assert_ne!(d.eval_key(1.0), d.eval_key(2.0));
    }

    #[test]
    fn actions_beyond_cut_are_ignored() {
        let base = zoo::vgg11_cifar();
        let mut plan = CompressionPlan::identity(base.len());
        plan.set(0, Some(Technique::W1FilterPrune));
        plan.set(4, Some(Technique::C1MobileNet)); // beyond the cut
        let delta = DeltaState::from_plan(&base, Partition::AfterLayer(2), &plan);
        assert_eq!(delta.actions().len(), 1);
        let c = delta.materialize().unwrap();
        assert_eq!(c.actions.len(), 1);
    }

    #[test]
    fn feature_folds_lazily_into_fingerprint() {
        use cadmc_compress::{BottleneckKnob, QuantKnob};
        let base = zoo::vgg11_cifar();
        let id = CompressionPlan::identity(base.len());
        let mut d = DeltaState::from_plan(&base, Partition::AfterLayer(2), &id);
        let plain = d.fingerprint();
        // Identity feature: fingerprint and memo keys unchanged.
        d.set_feature(FeatureAction::IDENTITY);
        assert_eq!(d.fingerprint(), plain);
        // Non-identity feature: distinct fingerprint, distinct memo key.
        let f = FeatureAction {
            bottleneck: BottleneckKnob::Half,
            quant: QuantKnob::Int8,
        };
        d.set_feature(f);
        assert_ne!(d.fingerprint(), plain);
        assert_eq!(d.feature(), f);
        let c = d.materialize().unwrap();
        assert_eq!(c.feature, f);
        // All-edge partitions normalize to identity (no transfer to
        // compress), keeping the feature-free fingerprint.
        let mut e = DeltaState::from_plan(&base, Partition::AllEdge, &id);
        let plain_edge = e.fingerprint();
        e.set_feature(f);
        assert!(e.feature().is_identity());
        assert_eq!(e.fingerprint(), plain_edge);
    }

    #[test]
    fn prefixes_match_direct_slices() {
        let base = zoo::vgg11_cifar();
        let prefixes = EdgePrefixes::new(&base);
        for e in 1..=base.len() {
            let direct = base.slice(0, e).unwrap();
            assert_eq!(prefixes.get(e).layers(), direct.layers());
            assert_eq!(prefixes.get(e).name(), direct.name());
        }
    }
}

//! Tables 4 and 5 — emulation and field-test execution of the three
//! methods against replayed bandwidth traces.

use crate::executor::{execute, ExecConfig, Mode, Policy};

use super::TrainedScene;

/// One Table 4/5 row: reward, latency and accuracy of each method.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutedRow {
    /// Workload label.
    pub label: String,
    /// Base model name.
    pub model: String,
    /// Device name.
    pub device: String,
    /// Scenario name.
    pub scenario: String,
    /// (reward, latency ms, accuracy) of dynamic DNN surgery.
    pub surgery: (f64, f64, f64),
    /// (reward, latency ms, accuracy) of the optimal branch.
    pub branch: (f64, f64, f64),
    /// (reward, latency ms, accuracy) of the model tree.
    pub tree: (f64, f64, f64),
}

impl ExecutedRow {
    /// Latency reduction of the tree versus surgery, in percent.
    pub fn tree_latency_reduction_pct(&self) -> f64 {
        100.0 * (self.surgery.1 - self.tree.1) / self.surgery.1
    }

    /// Accuracy loss of the tree versus surgery, in percentage points.
    pub fn tree_accuracy_loss_pp(&self) -> f64 {
        100.0 * (self.surgery.2 - self.tree.2)
    }
}

/// Executes every scene's three deployments in `mode` and produces the
/// table rows. `requests` inference requests are streamed per run.
pub fn emulation_table(scenes: &[TrainedScene], mode: Mode, requests: usize, seed: u64) -> Vec<ExecutedRow> {
    scenes
        .iter()
        .map(|s| {
            let cfg = ExecConfig::new(requests, mode, seed);
            let base = &s.workload.model;
            // Execute on the held-out trace, never the training one.
            let trace = &s.test_trace;
            let run = |policy: Policy<'_>| {
                let report = execute(&s.env, base, &policy, trace, &cfg);
                let e = report.evaluation(&s.env.reward);
                (e.reward, e.latency_ms, e.accuracy)
            };
            let surgery = run(Policy::Static(&s.surgery.candidate));
            let branch = run(Policy::Static(&s.branch));
            let tree = run(Policy::Tree(&s.tree.tree));
            ExecutedRow {
                label: s.workload.label(),
                model: s.workload.model.name().to_string(),
                device: s.workload.device.name().to_string(),
                scenario: s.workload.scenario.name().to_string(),
                surgery,
                branch,
                tree,
            }
        })
        .collect()
}

/// Column means over a set of rows: `(surgery, branch, tree)` triples of
/// `(reward, latency, accuracy)`.
pub fn averages(rows: &[ExecutedRow]) -> [(f64, f64, f64); 3] {
    let n = rows.len().max(1) as f64;
    let mut out = [(0.0, 0.0, 0.0); 3];
    for r in rows {
        for (acc, v) in out.iter_mut().zip([r.surgery, r.branch, r.tree]) {
            acc.0 += v.0 / n;
            acc.1 += v.1 / n;
            acc.2 += v.2 / n;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{train_scene, Workload};
    use crate::search::SearchConfig;
    use cadmc_latency::Platform;
    use cadmc_netsim::Scenario;
    use cadmc_nn::zoo;

    fn scene(scenario: Scenario, seed: u64) -> TrainedScene {
        let w = Workload {
            model: zoo::vgg11_cifar(),
            device: Platform::Phone,
            scenario,
        };
        let cfg = SearchConfig {
            episodes: 40,
            ..SearchConfig::quick(seed)
        };
        train_scene(&w, &cfg, seed).expect("valid inputs")
    }

    #[test]
    fn emulation_tree_wins_volatile_contexts_on_average() {
        // Executed tables replay *held-out* traces, so any single draw can
        // favor the static baseline; the claim is about the average.
        let scenes: Vec<TrainedScene> = [2u64, 3, 4]
            .into_iter()
            .map(|seed| scene(Scenario::FourGOutdoorQuick, seed))
            .collect();
        let rows = emulation_table(&scenes, Mode::Emulation, 60, 1);
        let mean = |f: fn(&ExecutedRow) -> f64| {
            rows.iter().map(f).sum::<f64>() / rows.len() as f64
        };
        let tree = mean(|r| r.tree.0);
        let surgery = mean(|r| r.surgery.0);
        assert!(
            tree >= surgery - 1.0,
            "tree mean reward {tree:.2} below surgery {surgery:.2}"
        );
        for r in &rows {
            // Accuracy stays within the paper's loss band in every draw.
            assert!(r.tree_accuracy_loss_pp() < 4.0);
        }
    }

    #[test]
    fn field_is_slower_than_emulation_for_all_methods() {
        let s = scene(Scenario::WifiWeakIndoor, 3);
        let emu = emulation_table(std::slice::from_ref(&s), Mode::Emulation, 40, 1);
        let field = emulation_table(std::slice::from_ref(&s), Mode::Field, 40, 1);
        for (e, f) in emu.iter().zip(&field) {
            assert!(f.surgery.1 > e.surgery.1);
            assert!(f.branch.1 > e.branch.1);
            assert!(f.tree.1 > e.tree.1);
        }
    }

    #[test]
    fn averages_are_columnwise_means() {
        let row = ExecutedRow {
            label: "x".into(),
            model: "m".into(),
            device: "d".into(),
            scenario: "s".into(),
            surgery: (300.0, 80.0, 0.92),
            branch: (310.0, 60.0, 0.91),
            tree: (320.0, 50.0, 0.91),
        };
        let rows = vec![row.clone(), row];
        let avg = averages(&rows);
        assert!((avg[0].1 - 80.0).abs() < 1e-9);
        assert!((avg[2].0 - 320.0).abs() < 1e-9);
    }
}

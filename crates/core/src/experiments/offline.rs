//! Table 3 — offline training reward: the best reward each method's
//! offline search attains per scene (Surgery < Branch < Tree in the
//! paper, in every row).

use super::TrainedScene;

/// One Table 3 row.
#[derive(Debug, Clone, PartialEq)]
pub struct OfflineRow {
    /// Workload label.
    pub label: String,
    /// Base model name (for grouping, as the paper splits VGG11/AlexNet).
    pub model: String,
    /// Device name.
    pub device: String,
    /// Scenario name.
    pub scenario: String,
    /// Dynamic DNN surgery reward.
    pub surgery: f64,
    /// Optimal branch search reward.
    pub branch: f64,
    /// Model tree search reward (best branch of the returned tree).
    pub tree: f64,
}

/// Builds Table 3 from trained scenes.
pub fn offline_table(scenes: &[TrainedScene]) -> Vec<OfflineRow> {
    scenes
        .iter()
        .map(|s| {
            let tree = s
                .tree
                .best_branch_reward
                .max(s.branch_reward); // boosting guarantees tree ≥ branch
            OfflineRow {
                label: s.workload.label(),
                model: s.workload.model.name().to_string(),
                device: s.workload.device.name().to_string(),
                scenario: s.workload.scenario.name().to_string(),
                surgery: s.surgery.evaluation.reward,
                branch: s.branch_reward,
                tree,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{train_scene, Workload};
    use crate::search::SearchConfig;
    use cadmc_latency::Platform;
    use cadmc_netsim::Scenario;
    use cadmc_nn::zoo;

    #[test]
    fn offline_ordering_holds_per_row() {
        let w = Workload {
            model: zoo::vgg11_cifar(),
            device: Platform::Phone,
            scenario: Scenario::WifiWeakIndoor,
        };
        let cfg = SearchConfig {
            episodes: 40,
            ..SearchConfig::quick(1)
        };
        let scene = train_scene(&w, &cfg, 1).expect("valid inputs");
        let rows = offline_table(&[scene]);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(
            r.branch >= r.surgery,
            "branch {:.2} < surgery {:.2}",
            r.branch,
            r.surgery
        );
        assert!(r.tree >= r.branch, "tree {:.2} < branch {:.2}", r.tree, r.branch);
        assert!(r.surgery > 200.0, "surgery reward implausibly low");
    }
}

//! Fig. 7 — comparison of search methods on the model-tree search space:
//! the RL decision engine versus random search and ε-greedy search under
//! the same episode budget (the paper uses the "4G indoor static"
//! context; exhaustive search is ruled out by the exponential space).

use cadmc_latency::{Mbps, Platform};
use cadmc_netsim::Scenario;
use cadmc_nn::ModelSpec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::baselines::random_plan;
use crate::context::NetworkContext;
use crate::env::EvalEnv;
use crate::memo::MemoPool;
use crate::parallel::{par_map_indexed, Parallelism};
use crate::search::{Controllers, SearchConfig};
use crate::tree::{ModelTree, TreeNode};
use crate::tree_search::tree_search;
use crate::validate::ValidateError;

use super::{K_LEVELS, N_BLOCKS};

/// Best-so-far reward curves of the three search methods.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchComparison {
    /// RL decision engine (Alg. 3) curve.
    pub rl: Vec<f64>,
    /// Random tree search curve.
    pub random: Vec<f64>,
    /// ε-greedy tree search curve.
    pub epsilon_greedy: Vec<f64>,
}

impl SearchComparison {
    /// Final best rewards `(rl, random, ε-greedy)`.
    pub fn finals(&self) -> (f64, f64, f64) {
        let last = |v: &Vec<f64>| v.last().copied().unwrap_or(0.0);
        (last(&self.rl), last(&self.random), last(&self.epsilon_greedy))
    }
}

fn best_so_far(scores: &[f64]) -> Vec<f64> {
    let mut best = f64::NEG_INFINITY;
    scores
        .iter()
        .map(|&s| {
            best = best.max(s);
            best
        })
        .collect()
}

/// Generates a uniformly random model tree (the random-search proposal).
fn random_tree(base: &ModelSpec, levels: &[f64], rng: &mut StdRng) -> ModelTree {
    let mut tree = ModelTree::new(base.clone(), N_BLOCKS, levels.to_vec());
    let mut frontier: Vec<Option<usize>> = vec![None];
    while let Some(parent) = frontier.pop() {
        let level = parent.map_or(0, |p| tree.nodes()[p].level + 1);
        let range = tree.block_range(level);
        let block_len = range.len();
        // Uniform over: cut before each local layer, or no partition.
        let pick = rng.random_range(0..=block_len);
        let (partition_abs, compress_len) = if pick == block_len {
            (None, block_len)
        } else {
            (Some(range.start + pick), pick)
        };
        let mut actions = Vec::new();
        if compress_len > 0 {
            let block = base
                .slice(range.start, range.start + compress_len)
                .expect("valid block slice");
            let plan = random_plan(&block, compress_len, rng);
            for (local, a) in plan.actions().iter().enumerate() {
                if let Some(t) = a {
                    actions.push(cadmc_accuracy::AppliedAction {
                        layer_index: range.start + local,
                        technique: *t,
                    });
                }
            }
        }
        let id = tree.push_node(
            parent,
            TreeNode {
                level,
                partition_abs,
                actions,
                feature: cadmc_compress::FeatureAction::IDENTITY,
                children: Vec::new(),
                reward: 0.0,
            },
        );
        if partition_abs.is_none() && level + 1 < N_BLOCKS {
            for _ in 0..levels.len() {
                frontier.push(Some(id));
            }
        }
    }
    tree
}

/// Scores a tree by its mean branch reward (leaves evaluated at the level
/// of the fork that reaches them).
fn score_tree(tree: &mut ModelTree, base: &ModelSpec, env: &EvalEnv, memo: &MemoPool) -> f64 {
    let branches = tree.branches();
    for path in &branches {
        let leaf = *path.last().expect("non-empty branch");
        let candidate = tree.compose_path(path);
        let reward = if path.len() >= 2 {
            let parent = path[path.len() - 2];
            let fork = tree.nodes()[parent]
                .children
                .iter()
                .position(|&c| c == leaf)
                .expect("leaf is its parent's child");
            let bw = tree.levels()[fork];
            memo.get_or_insert_with(&candidate, bw, || env.evaluate(base, &candidate, Mbps(bw)))
                .reward
        } else {
            // Root-only trees are judged across all levels.
            let levels = tree.levels().to_vec();
            levels
                .iter()
                .map(|&bw| {
                    memo.get_or_insert_with(&candidate, bw, || {
                        env.evaluate(base, &candidate, Mbps(bw))
                    })
                    .reward
                })
                .sum::<f64>()
                / levels.len() as f64
        };
        tree.node_mut(leaf).reward = reward;
    }
    tree.mean_branch_reward()
}

/// Mutates one random node of a tree: re-randomizes its partition and
/// compression actions (the ε-greedy "exploit" move).
fn mutate_tree(tree: &ModelTree, base: &ModelSpec, rng: &mut StdRng) -> ModelTree {
    let mut out = tree.clone();
    if out.nodes().is_empty() {
        return out;
    }
    let id = rng.random_range(0..out.nodes().len());
    let level = out.nodes()[id].level;
    let range = out.block_range(level);
    // Only mutate non-partitioning content to keep the tree shape intact:
    // re-randomize compression, and toggle partition only for leaves.
    let is_leafish = out.nodes()[id].children.is_empty();
    let block_len = range.len();
    let (partition_abs, compress_len) = if is_leafish && level + 1 == N_BLOCKS {
        let pick = rng.random_range(0..=block_len);
        if pick == block_len {
            (None, block_len)
        } else {
            (Some(range.start + pick), pick)
        }
    } else {
        (out.nodes()[id].partition_abs, {
            let cut = out.nodes()[id].partition_abs;
            cut.map_or(block_len, |c| c - range.start)
        })
    };
    let mut actions = Vec::new();
    if compress_len > 0 {
        let block = base
            .slice(range.start, range.start + compress_len)
            .expect("valid block slice");
        let plan = random_plan(&block, compress_len, rng);
        for (local, a) in plan.actions().iter().enumerate() {
            if let Some(t) = a {
                actions.push(cadmc_accuracy::AppliedAction {
                    layer_index: range.start + local,
                    technique: *t,
                });
            }
        }
    }
    {
        let node = out.node_mut(id);
        node.partition_abs = partition_abs;
        node.actions = actions;
    }
    out
}

/// Runs the three searches with equal episode budgets and returns their
/// best-so-far curves.
///
/// # Errors
///
/// Returns [`ValidateError`] when the model or derived configuration
/// fails pre-search validation.
pub fn search_comparison(
    base: &ModelSpec,
    device: Platform,
    scenario: Scenario,
    episodes: usize,
    seed: u64,
    par: Parallelism,
) -> Result<SearchComparison, ValidateError> {
    let env = EvalEnv::for_edge(device);
    let ctx = NetworkContext::from_scenario(scenario, K_LEVELS, seed);
    let levels = ctx.levels().to_vec();

    // RL (Alg. 3, no boosting so the comparison measures the search
    // method itself, like the paper's Fig. 7 training curves).
    let cfg = SearchConfig {
        episodes,
        seed,
        parallelism: par,
        ..SearchConfig::default()
    };
    let mut controllers = Controllers::new(&cfg);
    let memo = MemoPool::new();
    let rl_result = tree_search(
        &mut controllers,
        base,
        &env,
        &levels,
        N_BLOCKS,
        &cfg,
        &memo,
        false,
        None,
    )?;
    let rl = best_so_far(&rl_result.episode_scores);

    // Random search: every episode is independent, so the whole budget
    // fans out at once — each episode on its own `seed ^ episode` stream.
    let memo_r = MemoPool::new();
    let random_scores = par_map_indexed(episodes, par.workers, |episode| {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x72616e64 ^ episode as u64);
        let mut t = random_tree(base, &levels, &mut rng);
        score_tree(&mut t, base, &env, &memo_r)
    });
    let random = best_so_far(&random_scores);

    // ε-greedy search (ε = 0.3), batched like the baselines: proposals in
    // a batch mutate the best tree at batch start, then best-tracking is
    // applied sequentially in episode order (bit-identical for any worker
    // count).
    let memo_e = MemoPool::new();
    let mut best_tree: Option<(ModelTree, f64)> = None;
    let mut eg_scores = Vec::with_capacity(episodes);
    let mut batch_start = 0;
    while batch_start < episodes {
        let batch_end = (batch_start + cfg.rollout_batch.max(1)).min(episodes);
        let anchor = best_tree.as_ref().map(|(t, _)| t.clone());
        let rollouts = par_map_indexed(batch_end - batch_start, par.workers, |offset| {
            let episode = batch_start + offset;
            let mut rng = StdRng::seed_from_u64(seed ^ 0x65677265 ^ episode as u64);
            let mut proposal = match &anchor {
                Some(t) if rng.random_range(0.0..1.0) >= 0.3 => mutate_tree(t, base, &mut rng),
                _ => random_tree(base, &levels, &mut rng),
            };
            let score = score_tree(&mut proposal, base, &env, &memo_e);
            (proposal, score)
        });
        for (proposal, score) in rollouts {
            eg_scores.push(score);
            let replace = best_tree.as_ref().is_none_or(|(_, s)| score > *s);
            if replace {
                best_tree = Some((proposal, score));
            }
        }
        batch_start = batch_end;
    }
    let epsilon_greedy = best_so_far(&eg_scores);

    Ok(SearchComparison {
        rl,
        random,
        epsilon_greedy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;

    #[test]
    fn curves_have_equal_budgets_and_are_monotone() {
        let cmp = search_comparison(
            &zoo::vgg11_cifar(),
            Platform::Phone,
            Scenario::FourGIndoorStatic,
            20,
            1,
            Parallelism::serial(),
        )
        .expect("valid inputs");
        for curve in [&cmp.rl, &cmp.random, &cmp.epsilon_greedy] {
            assert_eq!(curve.len(), 20);
            for pair in curve.windows(2) {
                assert!(pair[1] >= pair[0]);
            }
        }
    }

    #[test]
    fn all_methods_find_reasonable_trees() {
        let cmp = search_comparison(
            &zoo::alexnet_cifar(),
            Platform::Phone,
            Scenario::FourGIndoorStatic,
            15,
            2,
            Parallelism::new(4),
        )
        .expect("valid inputs");
        let (rl, random, eg) = cmp.finals();
        for (name, v) in [("rl", rl), ("random", random), ("eg", eg)] {
            assert!(v > 250.0, "{name} final reward {v:.1} too low");
        }
    }
}

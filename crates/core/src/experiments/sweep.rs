//! N/K design-space sweep — an extension ablation.
//!
//! The paper fixes the tree shape at `N = 3` blocks and `K = 2` bandwidth
//! types without exploring alternatives. This sweep trains trees across a
//! grid of `(N, K)` and reports executed reward plus the edge-storage
//! price, exposing the trade-off: deeper/wider trees adapt at finer
//! granularity but store more block variants (and are slower to search).

use cadmc_latency::Platform;
use cadmc_netsim::Scenario;
use cadmc_nn::ModelSpec;

use crate::context::NetworkContext;
use crate::env::EvalEnv;
use crate::executor::{execute, ExecConfig, Policy};
use crate::memo::MemoPool;
use crate::search::{Controllers, SearchConfig};
use crate::tree_search::tree_search;
use crate::validate::ValidateError;

/// One grid cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Number of blocks.
    pub n: usize,
    /// Number of bandwidth types.
    pub k: usize,
    /// Executed (emulation) reward of the trained tree.
    pub reward: f64,
    /// Executed mean latency (ms).
    pub latency_ms: f64,
    /// Edge storage of the tree's blocks (bytes).
    pub storage_bytes: u64,
    /// Number of tree nodes.
    pub nodes: usize,
}

/// Trains and executes a tree per `(n, k)` grid cell.
///
/// # Errors
///
/// Returns [`ValidateError`] when the model, a grid cell's block count
/// or the configuration fails pre-search validation.
#[allow(clippy::too_many_arguments)]
pub fn nk_sweep(
    base: &ModelSpec,
    device: Platform,
    scenario: Scenario,
    ns: &[usize],
    ks: &[usize],
    cfg: &SearchConfig,
    seed: u64,
) -> Result<Vec<SweepPoint>, ValidateError> {
    let env = EvalEnv::for_edge(device);
    let mut out = Vec::new();
    for &n in ns {
        for &k in ks {
            let ctx = NetworkContext::from_scenario(scenario, k, seed);
            let memo = MemoPool::new();
            let mut controllers = Controllers::new(cfg);
            let result = tree_search(
                &mut controllers,
                base,
                &env,
                ctx.levels(),
                n,
                cfg,
                &memo,
                true,
                Some(ctx.trace()),
            )?;
            let report = execute(
                &env,
                base,
                &Policy::Tree(&result.tree),
                ctx.trace(),
                &ExecConfig::emulation(80, seed),
            );
            let eval = report.evaluation(&env.reward);
            out.push(SweepPoint {
                n,
                k,
                reward: eval.reward,
                latency_ms: eval.latency_ms,
                storage_bytes: result.tree.edge_storage_bytes(),
                nodes: result.tree.nodes().len(),
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;

    #[test]
    fn sweep_covers_grid_and_storage_grows_with_k() {
        let cfg = SearchConfig {
            episodes: 15,
            ..SearchConfig::quick(1)
        };
        let points = nk_sweep(
            &zoo::alexnet_cifar(),
            Platform::Phone,
            Scenario::WifiWeakIndoor,
            &[2, 3],
            &[2, 3],
            &cfg,
            1,
        )
        .expect("valid inputs");
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!((0.0..=400.0).contains(&p.reward), "{p:?}");
            assert!(p.nodes >= 1);
        }
        // More forks cannot shrink the node count for the same depth
        // (unless search collapses to a rigid tree; allow equality).
        let n3k2 = points.iter().find(|p| p.n == 3 && p.k == 2).unwrap();
        let n2k2 = points.iter().find(|p| p.n == 2 && p.k == 2).unwrap();
        assert!(n3k2.nodes >= n2k2.nodes || n3k2.nodes == 1 || n2k2.nodes == 1);
    }
}

//! Fig. 8 — a concrete illustration of the three strategies' search
//! results under one context ("4G indoor static" in the paper): the
//! surgery partition, the optimal-branch transformation, and every branch
//! of the model tree, each with its reward.

use cadmc_latency::{Mbps, Platform};
use cadmc_netsim::Scenario;
use cadmc_nn::ModelSpec;

use crate::executor::{execute, ExecConfig, Policy};
use crate::search::SearchConfig;
use crate::validate::ValidateError;

use super::{train_scene, Workload};

/// The Fig. 8 panel data. Each strategy carries two rewards: the
/// *planned* reward at the context's median bandwidth (the static view the
/// paper's figure annotates) and the *executed* reward over the held-out
/// trace — the pair exposes exactly why a statically-worse deployment can
/// be the right choice under fluctuation.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyIllustration {
    /// Scenario name.
    pub scenario: String,
    /// Surgery deployment: summary, planned reward, executed reward.
    pub surgery: (String, f64, f64),
    /// Optimal-branch deployment: summary, planned reward, executed reward.
    pub branch: (String, f64, f64),
    /// Every tree branch: summary and planned reward (the tree executes as
    /// a whole, so only one executed number applies).
    pub tree_branches: Vec<(String, f64)>,
    /// Executed reward of the whole tree (Alg. 2 over the held-out trace).
    pub tree_executed: f64,
    /// The K bandwidth levels of the context.
    pub levels: Vec<f64>,
}

impl StrategyIllustration {
    /// The best tree-branch planned reward.
    pub fn best_tree_reward(&self) -> f64 {
        self.tree_branches
            .iter()
            .map(|(_, r)| *r)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Builds the illustration for one (model, device, scenario) cell.
///
/// # Errors
///
/// Returns [`ValidateError`] when the model or configuration fails
/// pre-search validation.
pub fn strategy_illustration(
    base: &ModelSpec,
    device: Platform,
    scenario: Scenario,
    cfg: &SearchConfig,
    seed: u64,
) -> Result<StrategyIllustration, ValidateError> {
    let w = Workload {
        model: base.clone(),
        device,
        scenario,
    };
    let scene = train_scene(&w, cfg, seed)?;
    let tree = &scene.tree.tree;
    // Every displayed deployment is scored at the context median, so the
    // panel's rewards are directly comparable (like the paper's Fig. 8,
    // which annotates one context).
    let median = Mbps(scene.ctx.median_bandwidth());
    let score = |c: &crate::candidate::Candidate| scene.env.evaluate(base, c, median).reward;
    let exec_cfg = ExecConfig::emulation(120, seed);
    let executed = |policy: Policy<'_>| {
        execute(&scene.env, base, &policy, &scene.test_trace, &exec_cfg)
            .evaluation(&scene.env.reward)
            .reward
    };
    let tree_branches: Vec<(String, f64)> = tree
        .branches()
        .into_iter()
        .map(|path| {
            let cand = tree.compose_path(&path);
            let reward = score(&cand);
            (cand.summary(), reward)
        })
        .collect();
    Ok(StrategyIllustration {
        scenario: scenario.name().to_string(),
        surgery: (
            scene.surgery.candidate.summary(),
            scene.surgery.evaluation.reward,
            executed(Policy::Static(&scene.surgery.candidate)),
        ),
        branch: (
            scene.branch.summary(),
            score(&scene.branch),
            executed(Policy::Static(&scene.branch)),
        ),
        tree_executed: executed(Policy::Tree(tree)),
        tree_branches,
        levels: scene.ctx.levels().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;

    #[test]
    fn illustration_reproduces_fig8_ordering() {
        let cfg = SearchConfig {
            episodes: 40,
            ..SearchConfig::quick(1)
        };
        let ill = strategy_illustration(
            &zoo::vgg11_cifar(),
            Platform::Phone,
            Scenario::FourGIndoorStatic,
            &cfg,
            1,
        )
        .expect("valid inputs");
        // Fig. 8's qualitative content: under execution, the tree is at
        // least competitive with both static strategies, and the panel
        // carries planned + executed numbers for each.
        assert!(ill.tree_executed >= ill.branch.2 - 3.0);
        assert!(ill.tree_executed >= ill.surgery.2 - 3.0);
        assert!(!ill.tree_branches.is_empty());
        assert_eq!(ill.levels.len(), 2);
        assert!(ill.best_tree_reward().is_finite());
    }
}

//! Context-mismatch robustness — an extension experiment.
//!
//! The paper trains and evaluates within the same scenario. A natural
//! deployment question it leaves open: what happens when the context
//! characterization is *wrong* — the device trained for scene A but finds
//! itself in scene B? This experiment trains a tree per source scenario
//! and executes it against every target scenario, producing a reward
//! matrix whose diagonal is the matched case.

use cadmc_latency::Platform;
use cadmc_netsim::Scenario;
use cadmc_nn::ModelSpec;

use crate::executor::{execute, ExecConfig, Mode, Policy};
use crate::search::SearchConfig;
use crate::validate::ValidateError;

use super::{train_scene, TrainedScene, Workload};

/// The reward matrix of a mismatch study.
#[derive(Debug, Clone, PartialEq)]
pub struct MismatchMatrix {
    /// Scenario labels, in order (rows = trained-on, columns = executed-on).
    pub scenarios: Vec<&'static str>,
    /// `rewards[i][j]` = executed reward of the tree trained on scenario
    /// `i` when run in scenario `j`.
    pub rewards: Vec<Vec<f64>>,
}

impl MismatchMatrix {
    /// Mean advantage of the matched (diagonal) deployment over mismatched
    /// deployments executed in the same target column.
    pub fn mean_diagonal_advantage(&self) -> f64 {
        let n = self.scenarios.len();
        let mut total = 0.0;
        let mut count = 0;
        for j in 0..n {
            for i in 0..n {
                if i != j {
                    total += self.rewards[j][j] - self.rewards[i][j];
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// Trains a tree per scenario in `scenarios` and cross-executes, streaming
/// `requests` per cell on each target's held-out trace.
///
/// # Errors
///
/// Returns [`ValidateError`] when the model or configuration fails
/// pre-search validation.
pub fn mismatch_matrix(
    base: &ModelSpec,
    device: Platform,
    scenarios: &[Scenario],
    cfg: &SearchConfig,
    requests: usize,
    seed: u64,
) -> Result<MismatchMatrix, ValidateError> {
    let scenes: Vec<TrainedScene> = scenarios
        .iter()
        .map(|&scenario| {
            train_scene(
                &Workload {
                    model: base.clone(),
                    device,
                    scenario,
                },
                cfg,
                seed,
            )
        })
        .collect::<Result<_, _>>()?;
    let exec = ExecConfig::new(requests, Mode::Emulation, seed);
    let rewards = scenes
        .iter()
        .map(|trained| {
            scenes
                .iter()
                .map(|target| {
                    let report = execute(
                        &trained.env,
                        base,
                        &Policy::Tree(&trained.tree.tree),
                        &target.test_trace,
                        &exec,
                    );
                    report.evaluation(&trained.env.reward).reward
                })
                .collect()
        })
        .collect();
    Ok(MismatchMatrix {
        scenarios: scenarios.iter().map(|s| s.name()).collect(),
        rewards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;

    #[test]
    fn matrix_is_square_and_bounded() {
        let cfg = SearchConfig {
            episodes: 20,
            ..SearchConfig::quick(1)
        };
        let m = mismatch_matrix(
            &zoo::alexnet_cifar(),
            Platform::Phone,
            &[Scenario::FourGIndoorStatic, Scenario::WifiWeakIndoor],
            &cfg,
            40,
            1,
        )
        .expect("valid inputs");
        assert_eq!(m.scenarios.len(), 2);
        assert_eq!(m.rewards.len(), 2);
        for row in &m.rewards {
            assert_eq!(row.len(), 2);
            for &r in row {
                assert!((0.0..=400.0).contains(&r));
            }
        }
        // The diagonal advantage is finite (sign depends on scenes).
        assert!(m.mean_diagonal_advantage().is_finite());
    }
}

//! Experiment harnesses reproducing the paper's evaluation (§VII):
//! Table 3 (offline training reward), Table 4 (emulation), Table 5 (field
//! test), Fig. 7 (search-method comparison) and Fig. 8 (strategy
//! illustration). The `cadmc-bench` binaries print these results in the
//! paper's table layouts.

mod emulation;
mod fig7;
mod fig8;
mod mismatch;
mod offline;
mod report;
mod sweep;

pub use emulation::{averages, emulation_table, ExecutedRow};
pub use fig7::{search_comparison, SearchComparison};
pub use fig8::{strategy_illustration, StrategyIllustration};
pub use mismatch::{mismatch_matrix, MismatchMatrix};
pub use offline::{offline_table, OfflineRow};
pub use report::{executed_markdown, mismatch_markdown, offline_markdown, sweep_markdown};
pub use sweep::{nk_sweep, SweepPoint};

use cadmc_latency::{Mbps, Platform};
use cadmc_netsim::Scenario;
use cadmc_nn::{zoo, ModelSpec};
use cadmc_telemetry as telemetry;

use crate::branch::{optimal_branch, SearchOutcome};
use crate::candidate::Candidate;
use crate::context::NetworkContext;
use crate::env::EvalEnv;
use crate::executor::Mode;
use crate::memo::MemoPool;
use crate::search::{Controllers, SearchConfig};
use crate::surgery;
use crate::tree_search::{tree_search, TreeSearchResult};
use crate::validate::ValidateError;

/// The paper's number of blocks `N`.
pub const N_BLOCKS: usize = 3;

/// The paper's number of bandwidth types `K`.
pub const K_LEVELS: usize = 2;

/// One evaluation row: a base model on a device in a network scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The base DNN.
    pub model: ModelSpec,
    /// The edge device.
    pub device: Platform,
    /// The network context.
    pub scenario: Scenario,
}

impl Workload {
    /// Display label like `"VGG11 / Phone / 4G (weak) indoor"`.
    pub fn label(&self) -> String {
        format!(
            "{} / {} / {}",
            self.model.name(),
            self.device.name(),
            self.scenario.name()
        )
    }
}

/// The 14 workload rows of the paper's Tables 3–5: VGG11 on the phone in
/// 7 scenes, VGG11 on the TX2 in 3 scenes, AlexNet on the phone in 4
/// scenes.
pub fn paper_workloads() -> Vec<Workload> {
    let mut rows = Vec::new();
    for s in Scenario::ALL {
        rows.push(Workload {
            model: zoo::vgg11_cifar(),
            device: Platform::Phone,
            scenario: s,
        });
    }
    for s in [
        Scenario::FourGWeakIndoor,
        Scenario::FourGIndoorStatic,
        Scenario::WifiWeakIndoor,
    ] {
        rows.push(Workload {
            model: zoo::vgg11_cifar(),
            device: Platform::Tx2,
            scenario: s,
        });
    }
    for s in [
        Scenario::FourGIndoorStatic,
        Scenario::WifiWeakIndoor,
        Scenario::WifiWeakOutdoor,
        Scenario::WifiOutdoorSlow,
    ] {
        rows.push(Workload {
            model: zoo::alexnet_cifar(),
            device: Platform::Phone,
            scenario: s,
        });
    }
    rows
}

/// A fully trained scene: everything the offline phase produces for one
/// workload, ready for emulation / field execution.
#[derive(Debug)]
pub struct TrainedScene {
    /// The workload this scene was trained for.
    pub workload: Workload,
    /// The characterized network context (trace + K levels).
    pub ctx: NetworkContext,
    /// The evaluation environment.
    pub env: EvalEnv,
    /// The dynamic-DNN-surgery deployment (min-cut at the median
    /// bandwidth, no compression).
    pub surgery: surgery::SurgeryResult,
    /// The Alg. 1 optimal-branch deployment (searched at the median
    /// bandwidth; never worse than surgery since surgery's configuration
    /// lies inside the branch search space and seeds the tracker).
    pub branch: Candidate,
    /// Reward of the branch deployment at the median bandwidth.
    pub branch_reward: f64,
    /// The Alg. 1 search trace.
    pub branch_outcome: SearchOutcome,
    /// The Alg. 3 context-aware model tree (boosted).
    pub tree: TreeSearchResult,
    /// A held-out trace of the same scenario (fresh realization, distinct
    /// seed) used by the emulation/field tables — the offline phase never
    /// sees it, so executed results measure generalization to unseen
    /// conditions rather than selection fit.
    pub test_trace: cadmc_netsim::BandwidthTrace,
}

/// Runs the full offline phase for one workload: characterize the context,
/// plan surgery, run Alg. 1 at the median bandwidth, then Alg. 3 with
/// boosting across the K levels.
///
/// # Errors
///
/// Returns [`ValidateError`] when the workload model or configuration
/// fails pre-search validation.
pub fn train_scene(
    workload: &Workload,
    cfg: &SearchConfig,
    seed: u64,
) -> Result<TrainedScene, ValidateError> {
    let _scene_span = telemetry::span!(
        "scene.train",
        workload = workload.label(),
        episodes = cfg.episodes,
        seed = seed,
    );
    let env = EvalEnv::for_edge(workload.device);
    let ctx = NetworkContext::from_scenario(workload.scenario, K_LEVELS, seed);
    let memo = MemoPool::new();
    let median = Mbps(ctx.median_bandwidth());

    let surgery = {
        let _surgery_span = telemetry::span!("scene.surgery", bandwidth = median.0);
        surgery::plan(&workload.model, &env, median)
    };

    let mut controllers = Controllers::new(cfg);
    let branch_span = telemetry::span!("scene.branch", bandwidth = median.0);
    let branch_outcome = optimal_branch(
        &mut controllers,
        &workload.model,
        &env,
        median,
        cfg,
        &memo,
    )?;
    drop(branch_span);
    // The branch method is static but trained offline with the scene trace
    // available; pick between the RL result and the surgery point (which
    // lies inside the branch space) by *executed* reward on that trace —
    // point rewards at the median systematically overvalue plans whose
    // transfers collapse during fluctuation.
    let exec_cfg = crate::executor::ExecConfig::emulation(300, cfg.seed);
    let executed = |c: &Candidate| {
        crate::executor::execute(
            &env,
            &workload.model,
            &crate::executor::Policy::Static(c),
            ctx.trace(),
            &exec_cfg,
        )
        .evaluation(&env.reward)
        .reward
    };
    let rerank_span = telemetry::span!("scene.rerank");
    let all_edge = Candidate::base_all_edge(&workload.model);
    let mut pool: Vec<&Candidate> = vec![&surgery.candidate, &all_edge];
    // Consider the last few improvers (the strongest by point reward).
    let tail = branch_outcome.improvers.len().saturating_sub(5);
    pool.extend(branch_outcome.improvers[tail..].iter().map(|(c, _)| c));
    rerank_span.record("pool", pool.len());
    let branch = pool
        .into_iter()
        .max_by(|a, b| {
executed(a).total_cmp(&executed(b))
        })
        .expect("pool contains surgery")
        .clone();
    drop(rerank_span);
    // Table 3 reports the best *planned* reward the offline search
    // attained (the surgery point is inside the branch space).
    let branch_reward = branch_outcome
        .best_eval
        .reward
        .max(surgery.evaluation.reward);

    let tree_span = telemetry::span!("scene.tree", levels = ctx.levels().len());
    let mut tree = tree_search(
        &mut controllers,
        &workload.model,
        &env,
        ctx.levels(),
        N_BLOCKS,
        cfg,
        &memo,
        true,
        Some(ctx.trace()),
    )?;

    // A rigid tree deploying the median-bandwidth branch is always a
    // valid model tree; keep it if it executes better than the searched
    // one (the searched tree should normally win through adaptation).
    let rigid = crate::tree_search::rigid_tree(
        &std::sync::Arc::new(workload.model.clone()),
        &env,
        ctx.levels(),
        N_BLOCKS,
        &branch,
        &memo,
    );
    let exec_cfg = crate::executor::ExecConfig::emulation(300, cfg.seed);
    let run = |t: &crate::tree::ModelTree| {
        crate::executor::execute(
            &env,
            &workload.model,
            &crate::executor::Policy::Tree(t),
            ctx.trace(),
            &exec_cfg,
        )
        .evaluation(&env.reward)
        .reward
    };
    if run(&rigid) > run(&tree.tree) {
        tree.tree = rigid;
    }
    drop(tree_span);
    memo.publish_telemetry();

    let test_trace = workload.scenario.trace(seed ^ 0x5eed_cafe);
    Ok(TrainedScene {
        workload: workload.clone(),
        ctx,
        env,
        surgery,
        branch,
        branch_reward,
        branch_outcome,
        tree,
        test_trace,
    })
}

/// Trains every paper workload with a shared configuration.
///
/// # Errors
///
/// Returns [`ValidateError`] when the configuration fails pre-search
/// validation (the paper workloads themselves are always well formed).
pub fn train_all(cfg: &SearchConfig, seed: u64) -> Result<Vec<TrainedScene>, ValidateError> {
    train_all_parallel(cfg, seed)
}

/// Trains the paper workloads concurrently (scenes are independent; each
/// gets its own controllers and memo pool). The scene fan-out is bounded
/// by `cfg.parallelism.workers`; to avoid oversubscription, the inner
/// rollout pools of each scene's searches run serial whenever scenes
/// themselves run in parallel (harmless: the worker count never affects
/// results). Results come back in workload order and are bit-identical to
/// sequential training.
///
/// # Errors
///
/// Returns [`ValidateError`] when the configuration fails pre-search
/// validation (the paper workloads themselves are always well formed).
pub fn train_all_parallel(
    cfg: &SearchConfig,
    seed: u64,
) -> Result<Vec<TrainedScene>, ValidateError> {
    let workloads = paper_workloads();
    let scene_cfg = if cfg.parallelism.is_serial() {
        *cfg
    } else {
        SearchConfig {
            parallelism: crate::parallel::Parallelism::serial(),
            ..*cfg
        }
    };
    crate::parallel::par_map(&workloads, cfg.parallelism.workers, |w| {
        train_scene(w, &scene_cfg, seed)
    })
    .into_iter()
    .collect()
}

/// Execution fidelity for [`emulation_table`].
pub fn table4_mode() -> Mode {
    Mode::Emulation
}

/// Execution fidelity for the field-test table.
pub fn table5_mode() -> Mode {
    Mode::Field
}

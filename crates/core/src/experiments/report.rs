//! Markdown rendering of experiment results.
//!
//! The bench binaries print fixed-width console tables; this module
//! renders the same row structs as GitHub-flavored markdown so a full
//! reproduction report (like the repository's EXPERIMENTS.md data
//! sections) can be regenerated mechanically.

use std::fmt::Write as _;

use super::{ExecutedRow, MismatchMatrix, OfflineRow, SweepPoint};

/// Renders Table 3 (offline rewards) as markdown.
pub fn offline_markdown(rows: &[OfflineRow]) -> String {
    let mut out = String::new();
    out.push_str("| Model | Device | Environment | Surgery | Branch | Tree |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.2} | {:.2} | {:.2} |",
            r.model, r.device, r.scenario, r.surgery, r.branch, r.tree
        );
    }
    for (model, group) in group_by_model(rows, |r| &r.model) {
        let n = group.len() as f64;
        let s: f64 = group.iter().map(|r| r.surgery).sum::<f64>() / n;
        let b: f64 = group.iter().map(|r| r.branch).sum::<f64>() / n;
        let t: f64 = group.iter().map(|r| r.tree).sum::<f64>() / n;
        let _ = writeln!(
            out,
            "| {model} | — | **Average** | **{s:.2}** | **{b:.2}** | **{t:.2}** |"
        );
    }
    out
}

/// Renders a Table 4/5 (executed results) as markdown; `title` names the
/// mode (e.g. `"emulation"`).
pub fn executed_markdown(rows: &[ExecutedRow], title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| Model | Device | Environment | Surgery R/ms/% | Branch R/ms/% | Tree R/ms/% |"
    );
    out.push_str("|---|---|---|---|---|---|\n");
    let cell = |v: (f64, f64, f64)| format!("{:.2} / {:.1} / {:.2}", v.0, v.1, v.2 * 100.0);
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} |",
            r.model,
            r.device,
            r.scenario,
            cell(r.surgery),
            cell(r.branch),
            cell(r.tree)
        );
    }
    for (model, group) in group_by_model(rows, |r| &r.model) {
        let n = group.len() as f64;
        let avg = |f: &dyn Fn(&ExecutedRow) -> (f64, f64, f64)| {
            let mut acc = (0.0, 0.0, 0.0);
            for r in &group {
                let v = f(r);
                acc.0 += v.0 / n;
                acc.1 += v.1 / n;
                acc.2 += v.2 / n;
            }
            acc
        };
        let s = avg(&|r| r.surgery);
        let t = avg(&|r| r.tree);
        let reduction = 100.0 * (s.1 - t.1) / s.1;
        let loss_pp = 100.0 * (s.2 - t.2);
        let _ = writeln!(
            out,
            "| {model} | — | **Average ({title})** | {} | {} | {} |",
            cell(s),
            cell(avg(&|r| r.branch)),
            cell(t)
        );
        let _ = writeln!(
            out,
            "\n*{model} tree vs surgery ({title}): {reduction:.1} % latency reduction at {loss_pp:.2} pp accuracy loss.*\n"
        );
    }
    out
}

/// Renders the N/K sweep as markdown.
pub fn sweep_markdown(points: &[SweepPoint]) -> String {
    let mut out = String::new();
    out.push_str("| N | K | reward | latency (ms) | storage (MB) | nodes |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for p in points {
        let _ = writeln!(
            out,
            "| {} | {} | {:.2} | {:.2} | {:.2} | {} |",
            p.n,
            p.k,
            p.reward,
            p.latency_ms,
            p.storage_bytes as f64 / 1e6,
            p.nodes
        );
    }
    out
}

/// Renders the mismatch matrix as markdown.
pub fn mismatch_markdown(m: &MismatchMatrix) -> String {
    let mut out = String::new();
    let _ = write!(out, "| trained \\\\ executed |");
    for s in &m.scenarios {
        let _ = write!(out, " {s} |");
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &m.scenarios {
        out.push_str("---|");
    }
    out.push('\n');
    for (i, row) in m.rewards.iter().enumerate() {
        let _ = write!(out, "| {} |", m.scenarios[i]);
        for (j, r) in row.iter().enumerate() {
            if i == j {
                let _ = write!(out, " **{r:.2}** |");
            } else {
                let _ = write!(out, " {r:.2} |");
            }
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "\n*Mean matched-context advantage: {:.2} reward.*",
        m.mean_diagonal_advantage()
    );
    out
}

fn group_by_model<T>(rows: &[T], key: impl Fn(&T) -> &str) -> Vec<(String, Vec<&T>)> {
    let mut out: Vec<(String, Vec<&T>)> = Vec::new();
    for r in rows {
        let k = key(r);
        match out.iter_mut().find(|(name, _)| name == k) {
            Some((_, group)) => group.push(r),
            None => out.push((k.to_string(), vec![r])),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offline_rows() -> Vec<OfflineRow> {
        vec![
            OfflineRow {
                label: "a".into(),
                model: "VGG11".into(),
                device: "Phone".into(),
                scenario: "s1".into(),
                surgery: 350.0,
                branch: 355.0,
                tree: 360.0,
            },
            OfflineRow {
                label: "b".into(),
                model: "VGG11".into(),
                device: "Phone".into(),
                scenario: "s2".into(),
                surgery: 352.0,
                branch: 353.0,
                tree: 354.0,
            },
        ]
    }

    #[test]
    fn offline_markdown_has_rows_and_average() {
        let md = offline_markdown(&offline_rows());
        assert!(md.contains("| VGG11 | Phone | s1 | 350.00 | 355.00 | 360.00 |"));
        assert!(md.contains("**Average**"));
        assert!(md.contains("**351.00**")); // mean surgery
        // Valid markdown table: every line has the same pipe count.
        let pipes: Vec<usize> = md.lines().map(|l| l.matches('|').count()).collect();
        assert!(pipes.iter().all(|&c| c == pipes[0]));
    }

    #[test]
    fn executed_markdown_reports_reduction() {
        let rows = vec![ExecutedRow {
            label: "x".into(),
            model: "VGG11".into(),
            device: "Phone".into(),
            scenario: "s".into(),
            surgery: (340.0, 80.0, 0.92),
            branch: (350.0, 60.0, 0.91),
            tree: (355.0, 40.0, 0.91),
        }];
        let md = executed_markdown(&rows, "emulation");
        assert!(md.contains("50.0 % latency reduction"));
        assert!(md.contains("1.00 pp accuracy loss"));
    }

    #[test]
    fn sweep_and_mismatch_render() {
        let sweep = vec![SweepPoint {
            n: 3,
            k: 2,
            reward: 357.0,
            latency_ms: 36.0,
            storage_bytes: 20_000_000,
            nodes: 7,
        }];
        let md = sweep_markdown(&sweep);
        assert!(md.contains("| 3 | 2 | 357.00 | 36.00 | 20.00 | 7 |"));

        let m = MismatchMatrix {
            scenarios: vec!["a", "b"],
            rewards: vec![vec![360.0, 330.0], vec![350.0, 350.0]],
        };
        let md = mismatch_markdown(&m);
        assert!(md.contains("**360.00**"));
        assert!(md.contains("matched-context advantage"));
    }
}

//! The paper's reward function (Eq. 7):
//! `R = N1(A) + N2(T)` with min-max normalization of accuracy and latency.
//!
//! §VII Setup fixes the normalization bounds and weights: accuracy spans
//! [50 %, 100 %], latency spans [0 ms, 500 ms], and "the total reward is
//! designed to be 400, where latency and accuracy respectively take up
//! 300 and 100". The formula below reproduces the paper's own table
//! entries exactly: e.g. Table 4 row 1 (A = 92.01 %, T = 81.83 ms) gives
//! `100·(0.9201−0.5)/0.5 + 300·(500−81.83)/500 = 334.92` ✓.

use serde::{Deserialize, Serialize};

/// Reward normalization bounds and weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardSpec {
    /// Minimum accuracy for normalization (fraction).
    pub acc_min: f64,
    /// Maximum accuracy for normalization (fraction).
    pub acc_max: f64,
    /// Minimum latency (ms).
    pub lat_min_ms: f64,
    /// Maximum latency (ms).
    pub lat_max_ms: f64,
    /// Weight of the accuracy term.
    pub acc_weight: f64,
    /// Weight of the latency term.
    pub lat_weight: f64,
}

impl Default for RewardSpec {
    /// The paper's setup: accuracy ∈ [50 %, 100 %] worth 100; latency ∈
    /// [0, 500] ms worth 300.
    fn default() -> Self {
        Self {
            acc_min: 0.5,
            acc_max: 1.0,
            lat_min_ms: 0.0,
            lat_max_ms: 500.0,
            acc_weight: 100.0,
            lat_weight: 300.0,
        }
    }
}

impl RewardSpec {
    /// Maximum attainable reward (`acc_weight + lat_weight`; 400 in the
    /// paper).
    pub fn max_reward(&self) -> f64 {
        self.acc_weight + self.lat_weight
    }

    /// Eq. 7 reward for an (accuracy, latency) pair. Inputs are clamped to
    /// the normalization ranges.
    pub fn reward(&self, accuracy: f64, latency_ms: f64) -> f64 {
        let a = accuracy.clamp(self.acc_min, self.acc_max);
        let t = latency_ms.clamp(self.lat_min_ms, self.lat_max_ms);
        let n1 = (a - self.acc_min) / (self.acc_max - self.acc_min);
        let n2 = (self.lat_max_ms - t) / (self.lat_max_ms - self.lat_min_ms);
        self.acc_weight * n1 + self.lat_weight * n2
    }
}

/// A scored candidate: its measured/estimated accuracy and latency, and
/// the resulting reward.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Top-1 accuracy (fraction).
    pub accuracy: f64,
    /// End-to-end latency `T = Te + Tt + Tc` (ms).
    pub latency_ms: f64,
    /// Eq. 7 reward.
    pub reward: f64,
}

impl Evaluation {
    /// Scores an (accuracy, latency) pair under `spec`.
    pub fn new(accuracy: f64, latency_ms: f64, spec: &RewardSpec) -> Self {
        Self {
            accuracy,
            latency_ms,
            reward: spec.reward(accuracy, latency_ms),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table4_row1() {
        let spec = RewardSpec::default();
        let r = spec.reward(0.9201, 81.83);
        assert!((r - 334.92).abs() < 0.05, "got {r}");
    }

    #[test]
    fn reproduces_table4_vgg11_tree_static() {
        // Table 4: VGG11 Phone "4G indoor static", Tree: 50.21 ms @ 91.2 %
        // => 352.27.
        let spec = RewardSpec::default();
        let r = spec.reward(0.912, 50.21);
        assert!((r - 352.27).abs() < 0.05, "got {r}");
    }

    #[test]
    fn reproduces_table5_field_row() {
        // Table 5: VGG11 TX2 "WiFi (weak) indoor", Surgery: 223.47 ms @
        // 92.01 % => 249.94.
        let spec = RewardSpec::default();
        let r = spec.reward(0.9201, 223.47);
        assert!((r - 249.94).abs() < 0.05, "got {r}");
    }

    #[test]
    fn max_reward_is_400() {
        let spec = RewardSpec::default();
        assert_eq!(spec.max_reward(), 400.0);
        assert_eq!(spec.reward(1.0, 0.0), 400.0);
    }

    #[test]
    fn clamps_out_of_range_inputs() {
        let spec = RewardSpec::default();
        assert_eq!(spec.reward(0.2, 1e9), spec.reward(0.5, 500.0));
        assert_eq!(spec.reward(1.5, -10.0), 400.0);
    }

    #[test]
    fn reward_monotone_in_both_arguments() {
        let spec = RewardSpec::default();
        assert!(spec.reward(0.9, 100.0) > spec.reward(0.8, 100.0));
        assert!(spec.reward(0.9, 100.0) > spec.reward(0.9, 200.0));
    }
}

//! The **dynamic DNN surgery** baseline (Hu et al., INFOCOM'19) — the
//! paper's primary comparison method.
//!
//! Surgery finds the latency-optimal partition of the *fixed* DNN for a
//! *given constant* bandwidth by solving a minimum s-t cut on a placement
//! graph. It neither compresses the model nor revisits its decision while
//! the network fluctuates — the two restrictions the paper's decision
//! engine removes.

use cadmc_latency::Mbps;
use cadmc_nn::graph::ModelDag;
use cadmc_nn::ModelSpec;

use crate::candidate::{Candidate, Partition};
use crate::env::EvalEnv;
use crate::mincut::FlowNetwork;
use crate::reward::Evaluation;

/// Result of planning a surgery deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct SurgeryResult {
    /// The chosen (uncompressed) deployment.
    pub candidate: Candidate,
    /// Its evaluation at the planning bandwidth.
    pub evaluation: Evaluation,
}

/// Enumerates all partition options of a chain model: all-cloud, every
/// interior cut, and all-edge.
pub fn partition_options(base: &ModelSpec) -> Vec<Partition> {
    let mut opts = vec![Partition::AllCloud];
    opts.extend((0..base.len() - 1).map(Partition::AfterLayer));
    opts.push(Partition::AllEdge);
    opts
}

/// Optimal partition by exhaustive scan over chain cuts (ground truth for
/// chain models). Each cut is costed in O(1) straight from the base's
/// prefix-sum tables — no candidate is composed — so the whole scan is
/// O(L) and bit-identical to evaluating composed identity candidates.
pub fn optimal_partition_scan(base: &ModelSpec, env: &EvalEnv, bandwidth: Mbps) -> Partition {
    let len = base.len();
    let latency_at = |edge_len: usize| -> f64 {
        let bytes = if edge_len == len {
            0
        } else if edge_len == 0 {
            base.input_bytes()
        } else {
            base.cut_bytes_after(edge_len - 1)
        };
        env.edge.range_latency_ms(base, 0, edge_len)
            + env.transfer.latency_ms(bytes, bandwidth)
            + env.cloud.range_latency_ms(base, edge_len, len)
    };
    partition_options(base)
        .into_iter()
        .min_by(|&a, &b| {
            latency_at(a.edge_len(len)).total_cmp(&latency_at(b.edge_len(len)))
        })
        .expect("at least one partition option")
}

/// Optimal partition via the min-cut formulation on the placement graph
/// (the published algorithm; equivalent to the scan for chains).
///
/// Graph construction: node per layer plus source `s` (edge device) and
/// sink `t` (cloud). Assigning layer `i` to the edge cuts `vᵢ → t`
/// (capacity = edge compute cost); assigning it to the cloud cuts
/// `s → vᵢ` (capacity = cloud compute cost). Crossing the boundary on the
/// data edge `i → i+1` cuts `vᵢ → vᵢ₊₁` (capacity = feature transfer
/// latency); a backward data edge with the same cost discourages
/// cloud→edge returns. Shipping the raw input to the cloud cuts `s → v₀`'s
/// extra input-transfer capacity.
pub fn optimal_partition_mincut(base: &ModelSpec, env: &EvalEnv, bandwidth: Mbps) -> Partition {
    let l = base.len();
    let s = l;
    let t = l + 1;
    let mut g = FlowNetwork::new(l + 2);
    for i in 0..l {
        let layer = &base.layers()[i];
        let input = base.layer_input(i);
        let edge_cost = env.edge.layer_latency_ms(layer, input);
        let cloud_cost = env.cloud.layer_latency_ms(layer, input);
        g.add_edge(i, t, edge_cost);
        let mut to_cloud_cap = cloud_cost;
        if i == 0 {
            // Raw-input transfer if even the first layer is on the cloud.
            to_cloud_cap += env.transfer.latency_ms(base.input_bytes(), bandwidth);
        }
        g.add_edge(s, i, to_cloud_cap);
        if i + 1 < l {
            let tt = env
                .transfer
                .latency_ms(base.cut_bytes_after(i), bandwidth);
            g.add_edge(i, i + 1, tt);
            g.add_edge(i + 1, i, tt);
        }
    }
    let _ = g.max_flow(s, t);
    let side = g.source_side(s);
    // side[i] == true  => layer i on the edge (source side).
    let first_cloud = (0..l).find(|&i| !side[i]);
    match first_cloud {
        None => Partition::AllEdge,
        Some(0) => Partition::AllCloud,
        Some(i) => Partition::AfterLayer(i - 1),
    }
}

/// A per-node edge/cloud assignment over a model's dataflow DAG, with its
/// estimated end-to-end cost — the full generality of the published
/// dynamic-DNN-surgery formulation (which handles skip connections and
/// multi-path modules, not just chains).
#[derive(Debug, Clone, PartialEq)]
pub struct DagAssignment {
    /// `true` = the node runs on the edge device.
    pub on_edge: Vec<bool>,
    /// The min-cut objective value (ms): compute cost of every node on its
    /// side plus transfer cost of every crossing dataflow edge.
    pub cost_ms: f64,
}

impl DagAssignment {
    /// Number of nodes assigned to the edge.
    pub fn edge_count(&self) -> usize {
        self.on_edge.iter().filter(|&&e| e).count()
    }
}

/// Solves the general DAG placement: which primitive dataflow nodes run on
/// the edge and which on the cloud, minimizing compute + transfer cost at
/// `bandwidth`. Works for arbitrary DAGs (ResNets, Fire modules), where
/// the chain scan does not apply.
pub fn optimal_assignment_dag(dag: &ModelDag, env: &EvalEnv, bandwidth: Mbps) -> DagAssignment {
    let n = dag.len();
    let s = n;
    let t = n + 1;
    let mut g = FlowNetwork::new(n + 2);
    // Node costs: assigning node i to the edge cuts i -> t (edge compute);
    // assigning it to the cloud cuts s -> i (cloud compute).
    for (i, node) in dag.nodes().iter().enumerate() {
        // Reconstruct the node's input shape from its first predecessor
        // (or the network input); joins carry zero MACCs so the exact
        // shape only matters for layer nodes.
        let input = node
            .preds
            .first()
            .map(|&p| dag.nodes()[p].output)
            .unwrap_or_else(|| dag.input());
        let (edge_cost, cloud_cost) = match &node.op {
            cadmc_nn::graph::DagOp::Layer(l) => (
                env.edge.layer_latency_ms(l, input),
                env.cloud.layer_latency_ms(l, input),
            ),
            _ => (0.0, 0.0),
        };
        g.add_edge(i, t, edge_cost);
        g.add_edge(s, i, cloud_cost);
    }
    // Dataflow edges: crossing edge->cloud pays the producer's feature
    // transfer; a cloud->edge return pays the same (discouraging
    // ping-ponging); the input lives on the edge (s side).
    for (from, to, bytes) in dag.edges() {
        let tt = env.transfer.latency_ms(bytes, bandwidth);
        match from {
            Some(f) => {
                g.add_edge(f, to, tt);
                g.add_edge(to, f, tt);
            }
            None => {
                // Consuming the raw input on the cloud pays its upload.
                // Modeled by capacity on s -> node (cut when node is on
                // the cloud side). Parallel edges accumulate.
                g.add_edge(s, to, tt);
            }
        }
    }
    let cost_ms = g.max_flow(s, t);
    let side = g.source_side(s);
    DagAssignment {
        on_edge: side[..n].to_vec(),
        cost_ms,
    }
}

/// Plans a surgery deployment at `bandwidth` (min-cut partition, no
/// compression) and evaluates it.
pub fn plan(base: &ModelSpec, env: &EvalEnv, bandwidth: Mbps) -> SurgeryResult {
    let partition = optimal_partition_mincut(base, env, bandwidth);
    let plan = cadmc_compress::CompressionPlan::identity(base.len());
    let candidate = Candidate::compose(base, partition, &plan).expect("identity plan composes");
    let evaluation = env.evaluate(base, &candidate, bandwidth);
    SurgeryResult {
        candidate,
        evaluation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;

    #[test]
    fn mincut_matches_exhaustive_scan_across_bandwidths() {
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let plan_id = cadmc_compress::CompressionPlan::identity(base.len());
        for bw in [0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 200.0] {
            let scan = optimal_partition_scan(&base, &env, Mbps(bw));
            let cut = optimal_partition_mincut(&base, &env, Mbps(bw));
            let l_scan = env.latency_ms(
                &Candidate::compose(&base, scan, &plan_id).unwrap(),
                Mbps(bw),
            );
            let l_cut = env.latency_ms(
                &Candidate::compose(&base, cut, &plan_id).unwrap(),
                Mbps(bw),
            );
            assert!(
                (l_scan - l_cut).abs() < 1e-6,
                "bw {bw}: scan {scan} ({l_scan:.3} ms) vs mincut {cut} ({l_cut:.3} ms)"
            );
        }
    }

    #[test]
    fn poor_bandwidth_keeps_model_on_edge() {
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let p = optimal_partition_mincut(&base, &env, Mbps(0.2));
        assert_eq!(p, Partition::AllEdge);
    }

    #[test]
    fn extreme_bandwidth_offloads_everything() {
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let p = optimal_partition_mincut(&base, &env, Mbps(5000.0));
        assert_eq!(p, Partition::AllCloud);
    }

    #[test]
    fn cut_moves_cloudward_as_bandwidth_rises() {
        // On CIFAR-scale models the raw input is smaller than most
        // intermediate features, so the optimal static cut flips from
        // all-edge (poor bandwidth) to all-cloud (good bandwidth); the
        // transition must be monotone in the amount of edge compute.
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let edge_layers = |p: Partition| -> usize {
            match p {
                Partition::AllCloud => 0,
                Partition::AfterLayer(i) => i + 1,
                Partition::AllEdge => base.len(),
            }
        };
        let mut prev = usize::MAX;
        for bw in [0.5, 2.0, 5.0, 10.0, 25.0, 100.0] {
            let cur = edge_layers(optimal_partition_mincut(&base, &env, Mbps(bw)));
            assert!(cur <= prev, "edge share grew with bandwidth at {bw} Mbps");
            prev = cur;
        }
        assert_eq!(prev, 0, "at 100 Mbps everything should offload");
    }

    #[test]
    fn dag_assignment_matches_chain_scan_on_chains() {
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        for bw in [0.5, 5.0, 20.0, 200.0] {
            let dag = ModelDag::from_spec(&base);
            let assign = optimal_assignment_dag(&dag, &env, Mbps(bw));
            // Chain-scan optimal latency (excluding the constant parts the
            // DAG objective shares) must match the min-cut objective.
            let scan = optimal_partition_scan(&base, &env, Mbps(bw));
            let plan_id = cadmc_compress::CompressionPlan::identity(base.len());
            let scan_cost = env.latency_ms(
                &Candidate::compose(&base, scan, &plan_id).unwrap(),
                Mbps(bw),
            );
            assert!(
                (assign.cost_ms - scan_cost).abs() < 1e-6,
                "bw {bw}: dag cost {:.3} vs chain scan {:.3}",
                assign.cost_ms,
                scan_cost
            );
        }
    }

    #[test]
    fn dag_assignment_handles_skip_connections() {
        // A ResNet-style model is a genuine DAG; the assignment must be
        // valid (finite cost, all nodes placed) and respect the extremes.
        let base = zoo::resnet_imagenet(zoo::ResNetDepth::D50);
        let env = EvalEnv::phone();
        let dag = ModelDag::from_spec(&base);
        let poor = optimal_assignment_dag(&dag, &env, Mbps(0.05));
        assert_eq!(poor.edge_count(), dag.len(), "poor bandwidth: all edge");
        let rich = optimal_assignment_dag(&dag, &env, Mbps(100_000.0));
        assert_eq!(rich.edge_count(), 0, "infinite bandwidth: all cloud");
        let mid = optimal_assignment_dag(&dag, &env, Mbps(10.0));
        assert!(mid.cost_ms.is_finite() && mid.cost_ms > 0.0);
        // Cost is monotone in bandwidth: poor >= mid >= rich.
        assert!(mid.cost_ms <= poor.cost_ms + 1e-6);
        assert!(mid.cost_ms >= rich.cost_ms - 1e-6);
    }

    #[test]
    fn surgery_never_compresses() {
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let r = plan(&base, &env, Mbps(10.0));
        assert!(!r.candidate.is_compressed());
        assert_eq!(r.evaluation.accuracy, 0.9201);
    }

    #[test]
    fn surgery_latency_beats_all_edge_at_good_bandwidth() {
        let base = zoo::vgg11_cifar();
        let env = EvalEnv::phone();
        let r = plan(&base, &env, Mbps(50.0));
        let edge_only = env.latency_ms(&Candidate::base_all_edge(&base), Mbps(50.0));
        assert!(r.evaluation.latency_ms <= edge_only + 1e-9);
    }
}

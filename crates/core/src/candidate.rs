//! Deployment candidates: a base DNN transformed by a partition choice and
//! a compression plan, composed into a single deployable model.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use cadmc_accuracy::AppliedAction;
use cadmc_compress::{CompressError, CompressionPlan, FeatureAction, Technique};
use cadmc_nn::{LayerSpec, ModelSpec};

/// Where the edge→cloud handoff happens, in *base-model* layer indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Partition {
    /// Run the entire model on the edge device (no transfer).
    AllEdge,
    /// Offload everything: transfer the raw input to the cloud.
    AllCloud,
    /// Run base layers `[0..=i]` on the edge, the rest on the cloud,
    /// transferring layer `i`'s output features.
    AfterLayer(usize),
}

impl Partition {
    /// Number of leading *base* layers that run on the edge under this
    /// partition, for a model with `n_layers` layers.
    ///
    /// # Panics
    ///
    /// Panics if an `AfterLayer` cut index is out of range.
    pub fn edge_len(self, n_layers: usize) -> usize {
        match self {
            Partition::AllEdge => n_layers,
            Partition::AllCloud => 0,
            Partition::AfterLayer(i) => {
                assert!(i < n_layers, "cut index out of range");
                i + 1
            }
        }
    }
}

impl std::fmt::Display for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Partition::AllEdge => write!(f, "all-edge"),
            Partition::AllCloud => write!(f, "all-cloud"),
            Partition::AfterLayer(i) => write!(f, "cut@{i}"),
        }
    }
}

/// Lazily-computed derived quantities of a [`Candidate`]. Like
/// [`ModelSpec`]'s internal cache: a pure function of the candidate,
/// invisible to equality and serialization, rebuilt on demand. Candidates
/// are treated as immutable once composed — every construction site goes
/// through [`Candidate::compose`] or builds the cache fresh.
#[derive(Debug, Default)]
#[doc(hidden)]
pub struct CandidateCache {
    transfer_bytes: OnceLock<u64>,
}

impl Clone for CandidateCache {
    fn clone(&self) -> Self {
        let out = Self::default();
        if let Some(&b) = self.transfer_bytes.get() {
            let _ = out.transfer_bytes.set(b);
        }
        out
    }
}

// The cache carries no information beyond what the candidate determines.
impl PartialEq for CandidateCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Serialize for CandidateCache {
    fn serialize(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl Deserialize for CandidateCache {
    fn deserialize(_: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self::default())
    }
}

/// A fully-specified deployment: composed model, handoff point (in
/// *composed* coordinates) and the compression actions taken (in *base*
/// coordinates, for the accuracy oracle).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The composed model: compressed edge part followed by the untouched
    /// cloud part.
    pub model: ModelSpec,
    /// Number of leading layers of `model` that run on the edge
    /// (0 = all-cloud; `model.len()` = all-edge).
    pub edge_layers: usize,
    /// The partition choice in base coordinates.
    pub partition: Partition,
    /// The compression actions, in base coordinates.
    pub actions: Vec<AppliedAction>,
    /// Feature compression applied to the cut tensor at the handoff
    /// (identity when the deployment has no transfer).
    pub feature: FeatureAction,
    /// Memoized derived quantities (serialized as null, rebuilt on
    /// demand). Construct with `Default::default()`.
    #[doc(hidden)]
    pub cache: CandidateCache,
}

impl Candidate {
    /// Composes a candidate from `base`, a partition and a compression
    /// plan (covering all of `base`'s layers; actions beyond the cut are
    /// ignored — the paper never compresses the cloud part).
    ///
    /// # Errors
    ///
    /// Propagates [`CompressError`] if an action within the edge region is
    /// not applicable.
    ///
    /// # Panics
    ///
    /// Panics if the plan length does not match `base.len()` or the cut
    /// index is out of range.
    pub fn compose(
        base: &ModelSpec,
        partition: Partition,
        plan: &CompressionPlan,
    ) -> Result<Candidate, CompressError> {
        assert_eq!(plan.len(), base.len(), "plan must cover the base model");
        let edge_len = partition.edge_len(base.len());
        if edge_len == 0 {
            // Everything on the cloud: no compression happens at all.
            return Ok(Candidate {
                model: base.clone(),
                edge_layers: 0,
                partition,
                actions: Vec::new(),
                feature: FeatureAction::IDENTITY,
                cache: CandidateCache::default(),
            });
        }
        let edge_actions = &plan.actions()[..edge_len];
        if edge_actions
            .iter()
            .any(|a| matches!(a, Some(Technique::F3Gap)))
        {
            // F3 rewrites the FC head *below* its own index, so lower
            // actions must see the rewritten model — only the sequential
            // walk gets that right.
            return Self::compose_sequential(base, partition, plan);
        }
        // Fused fast path: every remaining rewrite is local, so
        // applicability and replacement layers checked against `base`
        // match what the slice/sanitize/apply/concat pipeline would
        // compute (layers and shapes before the cut are identical in the
        // edge slice), and the whole composed model is built with a
        // single shape-inference pass. Byte-identical output — including
        // the `base[0..e]+CODE@i` name chain — is pinned by differential
        // tests against `compose_sequential`.
        let mut name = format!("{}[0..{edge_len}]", base.name());
        let mut slots: Vec<Option<Vec<LayerSpec>>> = vec![None; edge_len];
        let mut edge_layers = edge_len;
        for idx in (0..edge_len).rev() {
            if let Some(t) = edge_actions[idx] {
                if t.applicable(base, idx) {
                    name.push_str(&format!("+{}@{}", t.code(), idx));
                    let repl = t.replacement_layers(base, idx);
                    edge_layers += repl.len() - 1;
                    slots[idx] = Some(repl);
                }
            }
        }
        let mut actions = Vec::new();
        let mut layers = Vec::with_capacity(base.len() + 4);
        for (i, slot) in slots.iter_mut().enumerate() {
            // A filled slot always corresponds to a kept action.
            if let (Some(repl), Some(technique)) = (slot.take(), edge_actions[i]) {
                layers.extend(repl);
                actions.push(AppliedAction {
                    layer_index: i,
                    technique,
                });
            } else {
                layers.push(base.layers()[i].clone());
            }
        }
        layers.extend(base.layers()[edge_len..].iter().cloned());
        let model =
            ModelSpec::new(name, base.input_shape(), layers).map_err(CompressError::Shape)?;
        Ok(Candidate {
            model,
            edge_layers,
            partition,
            actions,
            feature: FeatureAction::IDENTITY,
            cache: CandidateCache::default(),
        })
    }

    /// Sequential reference implementation of [`Candidate::compose`]:
    /// slice the edge prefix, sanitize and apply the truncated plan one
    /// rewrite at a time, then concatenate the untouched cloud tail. The
    /// differential-testing oracle for the fused fast path, and the real
    /// path whenever the edge plan contains F3.
    ///
    /// # Errors
    ///
    /// Propagates [`CompressError`] if an action within the edge region is
    /// not applicable.
    ///
    /// # Panics
    ///
    /// Panics if the plan length does not match `base.len()` or the cut
    /// index is out of range.
    pub fn compose_sequential(
        base: &ModelSpec,
        partition: Partition,
        plan: &CompressionPlan,
    ) -> Result<Candidate, CompressError> {
        assert_eq!(plan.len(), base.len(), "plan must cover the base model");
        let edge_len = partition.edge_len(base.len());
        if edge_len == 0 {
            return Ok(Candidate {
                model: base.clone(),
                edge_layers: 0,
                partition,
                actions: Vec::new(),
                feature: FeatureAction::IDENTITY,
                cache: CandidateCache::default(),
            });
        }
        let edge_spec = base.slice(0, edge_len).map_err(CompressError::Shape)?;
        // Truncating at the cut can orphan actions that were only valid in
        // the context of (now-dropped) tail actions — e.g. a prune aimed at
        // the 1×1 conv an F3 rewrite would have introduced. Sanitize the
        // truncated plan so composition is total over truncations.
        let edge_plan = CompressionPlan::from_actions(plan.actions()[..edge_len].to_vec())
            .sanitized_sequential(&edge_spec);
        let compressed_edge = edge_plan.apply_sequential(&edge_spec)?;
        let actions: Vec<AppliedAction> = edge_plan.actions()
            .iter()
            .enumerate()
            .filter_map(|(layer_index, t)| {
                t.map(|technique| AppliedAction {
                    layer_index,
                    technique,
                })
            })
            .collect();
        let model = if edge_len == base.len() {
            compressed_edge.clone()
        } else {
            let cloud = base.slice(edge_len, base.len()).map_err(CompressError::Shape)?;
            compressed_edge.concat(&cloud).map_err(CompressError::Shape)?
        };
        Ok(Candidate {
            model,
            edge_layers: compressed_edge.len(),
            partition,
            actions,
            feature: FeatureAction::IDENTITY,
            cache: CandidateCache::default(),
        })
    }

    /// The unmodified base model deployed fully on the edge — the paper's
    /// reference configuration.
    pub fn base_all_edge(base: &ModelSpec) -> Candidate {
        Candidate {
            model: base.clone(),
            edge_layers: base.len(),
            partition: Partition::AllEdge,
            actions: Vec::new(),
            feature: FeatureAction::IDENTITY,
            cache: CandidateCache::default(),
        }
    }

    /// Returns this candidate with a feature-compression action attached
    /// to its cut tensor. Normalizes: a deployment with no transfer
    /// (all-edge) always carries the identity action, so feature-free
    /// comparisons stay exact. Resets the byte memo when the action
    /// changes.
    #[must_use]
    pub fn with_feature(mut self, feature: FeatureAction) -> Candidate {
        let feature = if self.edge_layers == self.model.len() {
            FeatureAction::IDENTITY
        } else {
            feature
        };
        if feature != self.feature {
            self.feature = feature;
            self.cache = CandidateCache::default();
        }
        self
    }

    /// Bytes of the raw (un-feature-compressed) cut tensor: 0 when
    /// everything runs on the edge; the raw input size when everything
    /// runs on the cloud.
    pub fn raw_transfer_bytes(&self) -> u64 {
        if self.edge_layers == self.model.len() {
            0
        } else if self.edge_layers == 0 {
            self.model.input_bytes()
        } else {
            self.model.cut_bytes_after(self.edge_layers - 1)
        }
    }

    /// Bytes transferred at the handoff, after feature compression of the
    /// cut tensor (0 when everything runs on the edge). Memoized alongside
    /// the model's MACC/hash caches: the executor's deadline math asks for
    /// this on every simulated request. The feature overlay is O(1) pure
    /// integer math on the raw byte count — no per-layer walk.
    pub fn transfer_bytes(&self) -> u64 {
        *self
            .cache
            .transfer_bytes
            .get_or_init(|| self.feature.compressed_bytes(self.raw_transfer_bytes()))
    }

    /// Differential oracle for [`Candidate::transfer_bytes`]: derives the
    /// byte count from first principles — counts the cut tensor's elements
    /// from the composed model's shape chain, then materializes the
    /// bottleneck (kept elements) and quantization (packed bits)
    /// explicitly — instead of overlaying the memoized raw byte count.
    /// Proptests pin both paths to exact integer equality.
    pub fn transfer_bytes_scalar(&self) -> u64 {
        if self.edge_layers == self.model.len() {
            return 0;
        }
        let elems = if self.edge_layers == 0 {
            self.model.input_shape().len() as u64
        } else {
            self.model.layer_output(self.edge_layers - 1).len() as u64
        };
        let raw = elems * 4; // f32 elements, as Shape::transfer_bytes defines
        if self.feature.is_identity() {
            return raw;
        }
        let kept = elems.div_ceil(self.feature.bottleneck.divisor());
        let packed = (kept as u128 * self.feature.quant.bits() as u128).div_ceil(8);
        packed.min(raw as u128) as u64
    }

    /// Whether any compression action was taken.
    pub fn is_compressed(&self) -> bool {
        !self.actions.is_empty()
    }

    /// Short description like `"cut@4 | C1@2,W1@0"` (with a trailing
    /// `"| feat:B2Q8"` segment when the cut tensor is feature-compressed).
    pub fn summary(&self) -> String {
        let acts = if self.actions.is_empty() {
            "id".to_string()
        } else {
            self.actions
                .iter()
                .map(|a| format!("{}@{}", a.technique.code(), a.layer_index))
                .collect::<Vec<_>>()
                .join(",")
        };
        if self.feature.is_identity() {
            format!("{} | {acts}", self.partition)
        } else {
            format!("{} | {acts} | feat:{}", self.partition, self.feature)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_compress::Technique;
    use cadmc_nn::zoo;

    #[test]
    fn all_edge_identity_candidate() {
        let base = zoo::vgg11_cifar();
        let plan = CompressionPlan::identity(base.len());
        let c = Candidate::compose(&base, Partition::AllEdge, &plan).unwrap();
        assert_eq!(c.model.layers(), base.layers());
        assert_eq!(c.edge_layers, base.len());
        assert_eq!(c.transfer_bytes(), 0);
        assert!(!c.is_compressed());
    }

    #[test]
    fn all_cloud_transfers_input() {
        let base = zoo::vgg11_cifar();
        let plan = CompressionPlan::identity(base.len());
        let c = Candidate::compose(&base, Partition::AllCloud, &plan).unwrap();
        assert_eq!(c.edge_layers, 0);
        assert_eq!(c.transfer_bytes(), base.input_bytes());
    }

    #[test]
    fn cut_after_layer_transfers_features() {
        let base = zoo::vgg11_cifar();
        let plan = CompressionPlan::identity(base.len());
        let c = Candidate::compose(&base, Partition::AfterLayer(1), &plan).unwrap();
        assert_eq!(c.edge_layers, 2);
        // After the first pool: 64 x 16 x 16 f32 features.
        assert_eq!(c.transfer_bytes(), 64 * 16 * 16 * 4);
    }

    #[test]
    fn compression_applies_only_to_edge_part() {
        let base = zoo::vgg11_cifar();
        let mut plan = CompressionPlan::identity(base.len());
        plan.set(0, Some(Technique::W1FilterPrune));
        plan.set(4, Some(Technique::C1MobileNet)); // beyond the cut
        let c = Candidate::compose(&base, Partition::AfterLayer(2), &plan).unwrap();
        // Only the W1 action (layer 0 < cut) is recorded.
        assert_eq!(c.actions.len(), 1);
        assert_eq!(c.actions[0].technique, Technique::W1FilterPrune);
        // Cloud tail is untouched: output shape preserved.
        assert_eq!(c.model.output_shape(), base.output_shape());
    }

    #[test]
    fn compressed_edge_shifts_cut_index() {
        let base = zoo::vgg11_cifar();
        let mut plan = CompressionPlan::identity(base.len());
        plan.set(2, Some(Technique::C1MobileNet)); // 1 layer -> 2 layers
        let c = Candidate::compose(&base, Partition::AfterLayer(3), &plan).unwrap();
        assert_eq!(c.edge_layers, 5, "edge grew by one layer");
        assert_eq!(c.model.len(), base.len() + 1);
    }

    #[test]
    fn all_cloud_ignores_compression() {
        let base = zoo::vgg11_cifar();
        let mut plan = CompressionPlan::identity(base.len());
        plan.set(0, Some(Technique::W1FilterPrune));
        let c = Candidate::compose(&base, Partition::AllCloud, &plan).unwrap();
        assert!(c.actions.is_empty());
        assert_eq!(c.model.layers(), base.layers());
    }

    #[test]
    fn summary_mentions_cut_and_actions() {
        let base = zoo::vgg11_cifar();
        let mut plan = CompressionPlan::identity(base.len());
        plan.set(0, Some(Technique::W1FilterPrune));
        let c = Candidate::compose(&base, Partition::AfterLayer(4), &plan).unwrap();
        assert_eq!(c.summary(), "cut@4 | W1@0");
    }

    #[test]
    fn feature_overlay_shrinks_transfer() {
        use cadmc_compress::{BottleneckKnob, QuantKnob};
        let base = zoo::vgg11_cifar();
        let plan = CompressionPlan::identity(base.len());
        let c = Candidate::compose(&base, Partition::AfterLayer(1), &plan).unwrap();
        let raw = c.transfer_bytes();
        assert_eq!(raw, 64 * 16 * 16 * 4);
        let f = FeatureAction {
            bottleneck: BottleneckKnob::Quarter,
            quant: QuantKnob::Int8,
        };
        let fc = c.with_feature(f);
        assert_eq!(fc.raw_transfer_bytes(), raw);
        assert_eq!(fc.transfer_bytes(), raw / 16);
        assert_eq!(fc.transfer_bytes(), fc.transfer_bytes_scalar());
        assert_eq!(fc.summary(), "cut@1 | id | feat:B4Q8");
    }

    #[test]
    fn all_edge_normalizes_feature_to_identity() {
        use cadmc_compress::{BottleneckKnob, QuantKnob};
        let base = zoo::vgg11_cifar();
        let plan = CompressionPlan::identity(base.len());
        let c = Candidate::compose(&base, Partition::AllEdge, &plan)
            .unwrap()
            .with_feature(FeatureAction {
                bottleneck: BottleneckKnob::Half,
                quant: QuantKnob::Int4,
            });
        assert!(c.feature.is_identity());
        assert_eq!(c.transfer_bytes(), 0);
        assert_eq!(c.summary(), "all-edge | id");
    }

    #[test]
    fn scalar_walk_matches_overlay_everywhere() {
        let base = zoo::vgg11_cifar();
        let plan = CompressionPlan::identity(base.len());
        for cut in 0..base.len() {
            let c = Candidate::compose(&base, Partition::AfterLayer(cut), &plan).unwrap();
            for f in FeatureAction::ALL {
                let fc = c.clone().with_feature(f);
                assert_eq!(fc.transfer_bytes(), fc.transfer_bytes_scalar(), "{}", fc.summary());
            }
        }
    }
}

//! Max-flow / min-cut (Dinic's algorithm) over small graphs.
//!
//! The dynamic-DNN-surgery baseline (Hu et al., INFOCOM'19 — the paper's
//! primary comparison) finds the optimal partition of a DNN DAG by turning
//! placement into a minimum s-t cut problem. This module provides the
//! max-flow machinery; [`crate::surgery`] builds the placement graph.

/// A directed flow network with `f64` capacities.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    n: usize,
    // Edge list: forward edges at even indices, residuals at odd.
    to: Vec<usize>,
    cap: Vec<f64>,
    adj: Vec<Vec<usize>>,
}

impl FlowNetwork {
    /// A network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            to: Vec::new(),
            cap: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds a directed edge `u → v` with capacity `cap` (and a zero-capacity
    /// residual).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range nodes or negative capacity.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64) {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        assert!(cap >= 0.0, "capacity must be non-negative");
        self.adj[u].push(self.to.len());
        self.to.push(v);
        self.cap.push(cap);
        self.adj[v].push(self.to.len());
        self.to.push(u);
        self.cap.push(0.0);
    }

    fn bfs_levels(&self, s: usize, t: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1i32; self.n];
        let mut queue = std::collections::VecDeque::new();
        level[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &e in &self.adj[u] {
                let v = self.to[e];
                if self.cap[e] > 1e-12 && level[v] < 0 {
                    level[v] = level[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        if level[t] >= 0 {
            Some(level)
        } else {
            None
        }
    }

    fn dfs_push(
        &mut self,
        u: usize,
        t: usize,
        pushed: f64,
        level: &[i32],
        iter: &mut [usize],
    ) -> f64 {
        if u == t {
            return pushed;
        }
        while iter[u] < self.adj[u].len() {
            let e = self.adj[u][iter[u]];
            let v = self.to[e];
            if self.cap[e] > 1e-12 && level[v] == level[u] + 1 {
                let d = self.dfs_push(v, t, pushed.min(self.cap[e]), level, iter);
                if d > 1e-12 {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            iter[u] += 1;
        }
        0.0
    }

    /// Computes the maximum flow from `s` to `t` (equal to the minimum cut
    /// value by max-flow/min-cut duality). Consumes capacities in place.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either node is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        assert!(s < self.n && t < self.n && s != t, "bad source/sink");
        let mut flow = 0.0;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut iter = vec![0usize; self.n];
            loop {
                let pushed = self.dfs_push(s, t, f64::INFINITY, &level, &mut iter);
                if pushed <= 1e-12 {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }

    /// After [`max_flow`], returns which nodes lie on the source side of
    /// the minimum cut (reachable in the residual network).
    ///
    /// [`max_flow`]: FlowNetwork::max_flow
    pub fn source_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        seen[s] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &e in &self.adj[u] {
                let v = self.to[e];
                if self.cap[e] > 1e-12 && !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge_flow() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 5.0);
        assert_eq!(g.max_flow(0, 1), 5.0);
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3; two paths of capacities min(3,2)=2 and min(2,3)=2.
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 3.0);
        g.add_edge(1, 3, 2.0);
        g.add_edge(0, 2, 2.0);
        g.add_edge(2, 3, 3.0);
        assert_eq!(g.max_flow(0, 3), 4.0);
    }

    #[test]
    fn bottleneck_respected() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 10.0);
        g.add_edge(1, 2, 1.5);
        g.add_edge(2, 3, 10.0);
        assert!((g.max_flow(0, 3) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn min_cut_side_is_consistent() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 10.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 10.0);
        let _ = g.max_flow(0, 3);
        let side = g.source_side(0);
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    fn disconnected_sink_has_zero_flow() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 4.0);
        assert_eq!(g.max_flow(0, 2), 0.0);
        let side = g.source_side(0);
        assert!(side[0] && side[1] && !side[2]);
    }

    #[test]
    fn flow_with_crossing_paths() {
        // The classic example needing a residual push-back.
        let mut g = FlowNetwork::new(6);
        g.add_edge(0, 1, 10.0);
        g.add_edge(0, 2, 10.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(1, 3, 4.0);
        g.add_edge(2, 4, 9.0);
        g.add_edge(3, 5, 10.0);
        g.add_edge(4, 3, 6.0);
        g.add_edge(4, 5, 10.0);
        // Flow into the sink is f(1→3) + f(2→4) ≤ 4 + 9.
        assert_eq!(g.max_flow(0, 5), 13.0);
    }
}

//! The high-level decision engine façade (Fig. 2): offline training of a
//! context-aware model tree for a deployment target, and online
//! composition of the model to run per request.
//!
//! This wraps the lower-level pieces ([`crate::branch`],
//! [`crate::tree_search`], [`crate::tree`]) into the two-phase API the
//! paper describes: `train` offline, then `decide` / `compose` online.

use cadmc_latency::Mbps;
use cadmc_nn::ModelSpec;
use cadmc_telemetry as telemetry;

use crate::branch::optimal_branch;
use crate::candidate::Candidate;
use crate::context::NetworkContext;
use crate::env::EvalEnv;
use crate::memo::MemoPool;
use crate::reward::Evaluation;
use crate::search::{Controllers, SearchConfig};
use crate::surgery;
use crate::tree::ModelTree;
use crate::tree_search::tree_search;
use crate::validate::ValidateError;

/// A trained decision engine for one (base model, device, context) cell.
///
/// # Examples
///
/// ```
/// use cadmc_core::engine::DecisionEngine;
/// use cadmc_core::search::SearchConfig;
/// use cadmc_core::EvalEnv;
/// use cadmc_netsim::Scenario;
/// use cadmc_nn::zoo;
///
/// let cfg = SearchConfig { episodes: 15, ..SearchConfig::quick(1) };
/// let engine = DecisionEngine::train(
///     zoo::tiny_cnn(),
///     EvalEnv::phone(),
///     Scenario::WifiWeakIndoor,
///     &cfg,
///     1,
/// )
/// .expect("valid inputs");
/// // Online: compose the model for the currently measured bandwidth.
/// let (candidate, _path) = engine.decide(|_| 5.0);
/// assert_eq!(candidate.model.output_shape(), zoo::tiny_cnn().output_shape());
/// ```
#[derive(Debug)]
pub struct DecisionEngine {
    base: ModelSpec,
    env: EvalEnv,
    ctx: NetworkContext,
    tree: ModelTree,
    controllers: Controllers,
}

impl DecisionEngine {
    /// Runs the full offline phase (Fig. 2's upper half): characterizes
    /// the scenario, boosts with Alg. 1 branches, and searches the model
    /// tree with Alg. 3.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when the model or configuration fails
    /// pre-search validation; nothing is trained in that case.
    pub fn train(
        base: ModelSpec,
        env: EvalEnv,
        scenario: cadmc_netsim::Scenario,
        cfg: &SearchConfig,
        seed: u64,
    ) -> Result<Self, ValidateError> {
        let _train_span = telemetry::span!(
            "engine.train",
            episodes = cfg.episodes,
            seed = seed,
        );
        let ctx = NetworkContext::from_scenario(scenario, 2, seed);
        let memo = MemoPool::new();
        let mut controllers = Controllers::new(cfg);
        let result = tree_search(
            &mut controllers,
            &base,
            &env,
            ctx.levels(),
            3,
            cfg,
            &memo,
            true,
            Some(ctx.trace()),
        )?;
        memo.publish_telemetry();
        Ok(Self {
            base,
            env,
            ctx,
            tree: result.tree,
            controllers,
        })
    }

    /// The base model this engine deploys.
    pub fn base(&self) -> &ModelSpec {
        &self.base
    }

    /// The trained model tree.
    pub fn tree(&self) -> &ModelTree {
        &self.tree
    }

    /// The characterized network context.
    pub fn context(&self) -> &NetworkContext {
        &self.ctx
    }

    /// Online phase (Alg. 2): composes the model for the current network
    /// conditions; `measure` is called before each fork with the tree
    /// level and must return the current bandwidth estimate (Mbps).
    pub fn decide(&self, measure: impl FnMut(usize) -> f64) -> (Candidate, Vec<usize>) {
        let (path, candidate) = self.tree.compose(measure);
        (candidate, path)
    }

    /// Scores a candidate in this engine's environment at a bandwidth.
    pub fn evaluate(&self, candidate: &Candidate, bandwidth: Mbps) -> Evaluation {
        self.env.evaluate(&self.base, candidate, bandwidth)
    }

    /// Convenience: runs Alg. 1 for a single constant bandwidth with this
    /// engine's (already warmed) controllers and returns the best
    /// deployment, floored by the surgery baseline.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when the bandwidth or configuration
    /// fails pre-search validation.
    pub fn plan_for_bandwidth(
        &mut self,
        bandwidth: Mbps,
        cfg: &SearchConfig,
    ) -> Result<Candidate, ValidateError> {
        let memo = MemoPool::new();
        let outcome = optimal_branch(
            &mut self.controllers,
            &self.base,
            &self.env,
            bandwidth,
            cfg,
            &memo,
        )?;
        let surgery = surgery::plan(&self.base, &self.env, bandwidth);
        Ok(if surgery.evaluation.reward > outcome.best_eval.reward {
            surgery.candidate
        } else {
            outcome.best
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_netsim::Scenario;
    use cadmc_nn::zoo;

    fn quick_engine(seed: u64) -> DecisionEngine {
        let cfg = SearchConfig {
            episodes: 15,
            ..SearchConfig::quick(seed)
        };
        DecisionEngine::train(
            zoo::alexnet_cifar(),
            EvalEnv::phone(),
            Scenario::WifiWeakIndoor,
            &cfg,
            seed,
        )
        .expect("valid inputs")
    }

    #[test]
    fn trained_engine_composes_valid_models() {
        let engine = quick_engine(1);
        for bw in [0.5, 5.0, 50.0] {
            let (candidate, path) = engine.decide(|_| bw);
            assert!(!path.is_empty());
            assert_eq!(
                candidate.model.output_shape(),
                engine.base().output_shape()
            );
        }
    }

    #[test]
    fn plan_for_bandwidth_never_below_surgery() {
        let mut engine = quick_engine(2);
        let cfg = SearchConfig {
            episodes: 10,
            ..SearchConfig::quick(2)
        };
        let bw = Mbps(10.0);
        let plan = engine.plan_for_bandwidth(bw, &cfg).expect("valid inputs");
        let planned = engine.evaluate(&plan, bw);
        let surgery = surgery::plan(engine.base(), &EvalEnv::phone(), bw);
        assert!(planned.reward >= surgery.evaluation.reward - 1e-9);
    }

    #[test]
    fn engine_context_has_two_levels() {
        let engine = quick_engine(3);
        assert_eq!(engine.context().levels().len(), 2);
        assert_eq!(engine.tree().k(), 2);
    }
}

//! Parallel episode rollouts.
//!
//! The REINFORCE searches (branch, tree, and the Fig. 7 baselines) spend
//! almost all their time *rolling out* episodes — sampling a candidate and
//! evaluating it — and almost none applying gradient updates. This module
//! provides the worker-pool primitive those searches use to fan a batch of
//! episodes across threads.
//!
//! # Determinism
//!
//! Results are **bit-identical for any worker count**, by construction:
//!
//! * every episode draws from its own RNG stream, seeded as
//!   `cfg.seed ^ salt ^ episode_index` (SplitMix64 seeding decorrelates
//!   the nearby seeds), so no episode observes another's draws;
//! * the batch size is fixed by [`SearchConfig::rollout_batch`], not by
//!   the worker count — workers only affect *scheduling*;
//! * batch results are returned in episode order and all sequential state
//!   (policy updates, best-so-far tracking, EMA baseline) is applied in
//!   that order after the batch completes.
//!
//! [`SearchConfig::rollout_batch`]: crate::search::SearchConfig::rollout_batch

use cadmc_telemetry as telemetry;

/// Worker-pool sizing for episode rollouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Number of rollout worker threads (minimum 1 = serial).
    pub workers: usize,
}

impl Parallelism {
    /// Single-threaded rollouts.
    pub fn serial() -> Self {
        Self { workers: 1 }
    }

    /// A pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// One worker per available hardware thread.
    pub fn available() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Whether this runs everything on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.workers <= 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::serial()
    }
}

/// Maps `f` over `0..n`, fanning contiguous index chunks across up to
/// `workers` scoped threads. The output is always in index order, and `f`
/// must not depend on cross-index execution order (give each index its
/// own RNG stream). With `workers <= 1` (or `n <= 1`) this is a plain
/// serial map with no thread overhead.
///
/// When telemetry is enabled each fan-out opens a *region* (numbered on
/// the calling thread, so numbering follows program order regardless of
/// worker count) and every index runs in stream `i + 1` of that region —
/// on the serial and threaded paths alike — so traces merge identically
/// for any `workers` value.
pub fn par_map_indexed<U, F>(n: usize, workers: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = workers.max(1).min(n.max(1));
    let region = telemetry::open_region();
    let run = move |i: usize| telemetry::in_stream(region, i as u64 + 1, || f(i));
    if workers == 1 {
        return (0..n).map(run).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let run = &run;
                let start = (w * chunk).min(n);
                let end = ((w + 1) * chunk).min(n);
                s.spawn(move || (start..end).map(run).collect::<Vec<U>>())
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("rollout worker panicked"));
        }
    });
    out
}

/// Maps `f` over a slice with up to `workers` threads, preserving order.
pub fn par_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), workers, |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn output_order_is_index_order_for_any_worker_count() {
        let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
        for workers in [1, 2, 3, 8, 64] {
            assert_eq!(par_map_indexed(37, workers, |i| i * i), expected);
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = par_map_indexed(100, 4, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(par_map_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 8, |i| i), vec![0]);
        assert_eq!(par_map_indexed(3, 100, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn slice_variant_preserves_order() {
        let items = vec!["a", "bb", "ccc"];
        assert_eq!(par_map(&items, 2, |s| s.len()), vec![1, 2, 3]);
    }

    #[test]
    fn parallelism_constructors_clamp() {
        assert_eq!(Parallelism::new(0).workers, 1);
        assert!(Parallelism::serial().is_serial());
        assert!(Parallelism::available().workers >= 1);
        assert_eq!(Parallelism::default(), Parallelism::serial());
    }
}

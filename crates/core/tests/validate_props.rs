//! Property tests for `core::validate` (satellite of the static-analysis
//! PR): randomly generated *valid* inputs must pass every gate and then
//! execute without panicking, while systematic single-fault mutations of
//! valid inputs must be rejected with the *specific* diagnostic naming
//! the broken invariant — not a generic error, and never a panic.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use cadmc_core::baselines::random_plan;
use cadmc_core::branch::optimal_branch;
use cadmc_core::memo::MemoPool;
use cadmc_core::search::{Controllers, SearchConfig};
use cadmc_core::tree::{ModelTree, TreeNode};
use cadmc_core::validate::{self, ValidateError};
use cadmc_core::{Candidate, EvalEnv, Partition};
use cadmc_accuracy::AppliedAction;
use cadmc_latency::Mbps;
use cadmc_nn::zoo;

/// Builds a random, structurally valid model tree over the tiny zoo model
/// (same construction discipline as the search: partitioned nodes are
/// leaves, forks carry exactly `k` children, actions stay in-block).
fn random_tree(seed: u64, n_blocks: usize, k: usize) -> ModelTree {
    let base = zoo::vgg11_cifar();
    let mut rng = StdRng::seed_from_u64(seed);
    let levels = (0..k).map(|i| 2.0 + 4.0 * i as f64).collect();
    let mut tree = ModelTree::new(base.clone(), n_blocks, levels);
    let mut frontier: Vec<Option<usize>> = vec![None];
    while let Some(parent) = frontier.pop() {
        let level = parent.map_or(0, |p| tree.nodes()[p].level + 1);
        let range = tree.block_range(level);
        let pick = rng.random_range(0..=range.len());
        let (partition_abs, compress_len) = if pick == range.len() {
            (None, range.len())
        } else {
            (Some(range.start + pick), pick)
        };
        let mut actions = Vec::new();
        if compress_len > 0 {
            let block = base
                .slice(range.start, range.start + compress_len)
                .expect("valid block");
            let plan = random_plan(&block, compress_len, &mut rng);
            for (local, a) in plan.actions().iter().enumerate() {
                if let Some(t) = a {
                    actions.push(AppliedAction {
                        layer_index: range.start + local,
                        technique: *t,
                    });
                }
            }
        }
        let id = tree.push_node(
            parent,
            TreeNode {
                level,
                partition_abs,
                actions,
                feature: cadmc_compress::FeatureAction::IDENTITY,
                children: Vec::new(),
                reward: 0.0,
            },
        );
        if partition_abs.is_none() && level + 1 < n_blocks {
            for _ in 0..k {
                frontier.push(Some(id));
            }
        }
    }
    tree
}

fn valid_levels(k: usize) -> Vec<f64> {
    (0..k).map(|i| 1.5 + 2.5 * i as f64).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomly generated structurally-valid trees pass the full audit.
    #[test]
    fn valid_trees_pass_full_audit(seed in 0u64..500, n in 2usize..4, k in 2usize..4) {
        let tree = random_tree(seed, n, k);
        prop_assert_eq!(validate::model_tree(&tree), Ok(()));
    }

    /// Valid bandwidth-level ladders pass; any single level forced
    /// non-positive is rejected naming the exact index.
    #[test]
    fn nonpositive_level_rejected_at_its_index(k in 1usize..6, bad in 0usize..6) {
        let mut levels = valid_levels(k);
        prop_assert_eq!(validate::bandwidth_levels(&levels), Ok(()));
        let bad = bad % k;
        levels[bad] = -levels[bad];
        match validate::bandwidth_levels(&levels) {
            Err(ValidateError::BadBandwidthLevel { index, .. }) => {
                prop_assert_eq!(index, bad);
            }
            other => prop_assert!(false, "expected BadBandwidthLevel, got {other:?}"),
        }
    }

    /// Swapping any adjacent pair of a sorted ladder breaks the strict
    /// ascent and is rejected as unsorted.
    #[test]
    fn descending_levels_rejected(k in 2usize..6, at in 0usize..5) {
        let mut levels = valid_levels(k);
        let at = at % (k - 1);
        levels.swap(at, at + 1);
        prop_assert!(matches!(
            validate::bandwidth_levels(&levels),
            Err(ValidateError::UnsortedBandwidthLevels { .. })
        ));
    }

    /// Block counts outside `1..=layers` are rejected with both numbers
    /// in the diagnostic.
    #[test]
    fn bad_block_count_rejected(extra in 1usize..10) {
        let base = zoo::tiny_cnn();
        prop_assert_eq!(validate::block_count(&base, 1), Ok(()));
        for n_blocks in [0, base.len() + extra] {
            match validate::block_count(&base, n_blocks) {
                Err(ValidateError::BadBlockCount { n_blocks: n, layers }) => {
                    prop_assert_eq!(n, n_blocks);
                    prop_assert_eq!(layers, base.len());
                }
                other => prop_assert!(false, "expected BadBlockCount, got {other:?}"),
            }
        }
    }

    /// Each single-field corruption of a valid config is rejected with
    /// `BadConfig` naming exactly the corrupted field.
    #[test]
    fn bad_config_names_the_field(pick in 0usize..7) {
        let mut cfg = SearchConfig {
            episodes: 4,
            hidden: 4,
            ..SearchConfig::default()
        };
        prop_assert_eq!(validate::search_config(&cfg), Ok(()));
        let expected = match pick {
            0 => { cfg.episodes = 0; "episodes" }
            1 => { cfg.hidden = 0; "hidden" }
            2 => { cfg.lr = -0.1; "lr" }
            3 => { cfg.alpha = 1.5; "alpha" }
            4 => { cfg.explore_epsilon = f64::NAN; "explore_epsilon" }
            5 => { cfg.entropy_beta = -1.0; "entropy_beta" }
            _ => { cfg.rollout_batch = 0; "rollout_batch" }
        };
        match validate::search_config(&cfg) {
            Err(ValidateError::BadConfig { field, .. }) => prop_assert_eq!(field, expected),
            other => prop_assert!(false, "expected BadConfig({expected}), got {other:?}"),
        }
    }

    /// Cuts past the last layer are rejected with the range.
    #[test]
    fn cut_out_of_range_rejected(extra in 0usize..8) {
        let base = zoo::tiny_cnn();
        let cand = Candidate {
            model: base.clone(),
            partition: Partition::AfterLayer(base.len() + extra),
            edge_layers: base.len(),
            actions: Vec::new(),
            feature: cadmc_compress::FeatureAction::IDENTITY,
            cache: Default::default(),
        };
        match validate::candidate(&base, &cand) {
            Err(ValidateError::CutOutOfRange { cut, layers }) => {
                prop_assert_eq!(cut, base.len() + extra);
                prop_assert_eq!(layers, base.len());
            }
            other => prop_assert!(false, "expected CutOutOfRange, got {other:?}"),
        }
    }

    /// Non-finite or non-positive single bandwidths are rejected.
    #[test]
    fn bad_bandwidth_rejected(seed in 0u64..100) {
        let bad = match seed % 4 {
            0 => 0.0,
            1 => -1.5,
            2 => f64::NAN,
            _ => f64::INFINITY,
        };
        prop_assert!(matches!(
            validate::bandwidth(bad),
            Err(ValidateError::BadBandwidth { .. })
        ));
        prop_assert_eq!(validate::bandwidth(0.001 + seed as f64), Ok(()));
    }

    /// Structural single-fault mutations of a valid tree are each caught
    /// by the audit with the diagnostic class matching the fault.
    #[test]
    fn mutated_trees_rejected_with_specific_diagnostics(seed in 0u64..200, fault in 0usize..4) {
        let mut tree = random_tree(seed, 3, 2);
        prop_assert_eq!(validate::model_tree(&tree), Ok(()));
        let last = tree.nodes().len() - 1;
        match fault {
            0 => {
                // Break level progression on a non-root node (the root's
                // level feeds every descendant, so mutate a leaf).
                tree.node_mut(last).level += 7;
                prop_assert!(matches!(
                    validate::model_tree(&tree),
                    Err(ValidateError::BadNodeLevel { .. })
                ));
            }
            1 => {
                tree.node_mut(last).reward = f64::NAN;
                prop_assert!(matches!(
                    validate::model_tree(&tree),
                    Err(ValidateError::NonFiniteReward { node, .. }) if node == last
                ));
            }
            2 => {
                // Move a partition outside its node's block.
                let base_len = tree.base().len();
                tree.node_mut(last).partition_abs = Some(base_len + 3);
                tree.node_mut(last).children.clear();
                prop_assert!(matches!(
                    validate::model_tree(&tree),
                    Err(ValidateError::PartitionOutsideBlock { .. })
                ));
            }
            _ => {
                // An action on a layer the node's block does not own.
                let base_len = tree.base().len();
                tree.node_mut(last).actions.push(AppliedAction {
                    layer_index: base_len + 1,
                    technique: cadmc_compress::Technique::W1FilterPrune,
                });
                prop_assert!(matches!(
                    validate::model_tree(&tree),
                    Err(ValidateError::ActionOutsideBlock { .. })
                ));
            }
        }
    }

    /// Acceptance is not vacuous: inputs the gates accept must execute
    /// end-to-end without panicking, and the search honors its own
    /// validation (garbage in → typed error out, never a panic).
    #[test]
    fn accepted_branch_inputs_execute(seed in 0u64..6) {
        let base = zoo::tiny_cnn();
        let cfg = SearchConfig {
            episodes: 2,
            hidden: 2,
            seed,
            ..SearchConfig::default()
        };
        let mbps = 4.0 + seed as f64;
        prop_assert_eq!(validate::branch_inputs(&base, mbps, &cfg), Ok(()));
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        let out = optimal_branch(&mut controllers, &base, &EvalEnv::phone(), Mbps(mbps), &cfg, &memo);
        prop_assert!(out.is_ok());

        let bad_cfg = SearchConfig { episodes: 0, ..cfg };
        let mut controllers = Controllers::new(&SearchConfig { episodes: 1, ..bad_cfg });
        let err = optimal_branch(&mut controllers, &base, &EvalEnv::phone(), Mbps(mbps), &bad_cfg, &memo);
        prop_assert!(matches!(err, Err(ValidateError::BadConfig { field: "episodes", .. })));
    }
}

#[test]
fn empty_level_ladder_is_rejected() {
    assert!(matches!(
        validate::bandwidth_levels(&[]),
        Err(ValidateError::NoBandwidthLevels)
    ));
}

#[test]
fn plan_length_mismatch_is_rejected() {
    use cadmc_compress::CompressionPlan;
    let base = zoo::tiny_cnn();
    let short = CompressionPlan::identity(base.len() - 1);
    match validate::compression_plan(&base, &short) {
        Err(ValidateError::PlanLengthMismatch { plan, layers }) => {
            assert_eq!(plan, base.len() - 1);
            assert_eq!(layers, base.len());
        }
        other => panic!("expected PlanLengthMismatch, got {other:?}"),
    }
}

#[test]
fn diagnostics_are_actionable_text() {
    // Every rejection message must name the offending location/value so a
    // user can fix the artifact without reading validator source.
    let base = zoo::tiny_cnn();
    let msg = validate::block_count(&base, 99).expect_err("invalid").to_string();
    assert!(msg.contains("99"), "{msg}");
    let msg = validate::bandwidth(-2.0).expect_err("invalid").to_string();
    assert!(msg.contains("-2"), "{msg}");
    let msg = validate::bandwidth_levels(&[3.0, 1.0])
        .expect_err("invalid")
        .to_string();
    assert!(msg.contains('3') && msg.contains('1'), "{msg}");
}

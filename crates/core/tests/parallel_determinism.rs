//! Regression tests for the parallel rollout engine's core contract: the
//! worker count is purely a scheduling knob. The same seed must produce
//! bit-identical search results at `workers = 1` and `workers = 8` —
//! per-episode RNG streams (`seed ^ episode`) plus sequential policy
//! updates in episode order make this hold by construction, and these
//! tests keep it true.

use cadmc_core::branch::optimal_branch;
use cadmc_core::memo::MemoPool;
use cadmc_core::parallel::Parallelism;
use cadmc_core::search::{Controllers, SearchConfig};
use cadmc_core::tree_search::tree_search;
use cadmc_core::{EvalEnv, NetworkContext};
use cadmc_latency::Mbps;
use cadmc_netsim::Scenario;
use cadmc_nn::zoo;

fn cfg_with(workers: usize, seed: u64) -> SearchConfig {
    SearchConfig {
        episodes: 30,
        hidden: 8,
        seed,
        parallelism: Parallelism::new(workers),
        ..SearchConfig::default()
    }
}

#[test]
fn tree_search_is_identical_across_worker_counts() {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let ctx = NetworkContext::from_scenario(Scenario::WifiWeakIndoor, 2, 5);
    let run = |workers: usize| {
        let cfg = cfg_with(workers, 5);
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        tree_search(
            &mut controllers,
            &base,
            &env,
            ctx.levels(),
            3,
            &cfg,
            &memo,
            true,
            Some(ctx.trace()),
        )
        .expect("valid inputs")
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.episode_scores, parallel.episode_scores);
    assert_eq!(serial.best_branch_reward, parallel.best_branch_reward);
    assert_eq!(serial.tree, parallel.tree);
}

#[test]
fn serialized_trees_are_byte_identical_across_worker_counts() {
    // Structural equality can hide representational drift (e.g. f64
    // payloads that compare equal but print differently, node orderings
    // masked by a custom PartialEq). Comparing the full serialized
    // artifact across several worker counts pins the exact bytes a
    // deployment would ship.
    let base = zoo::alexnet_cifar();
    let env = EvalEnv::phone();
    let ctx = NetworkContext::from_scenario(Scenario::FourGOutdoorQuick, 2, 9);
    let serialized = |workers: usize| {
        let cfg = cfg_with(workers, 9);
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        let result = tree_search(
            &mut controllers,
            &base,
            &env,
            ctx.levels(),
            3,
            &cfg,
            &memo,
            true,
            Some(ctx.trace()),
        )
        .expect("valid inputs");
        serde_json::to_string_pretty(&result.tree).expect("tree serializes")
    };
    let reference = serialized(1);
    for workers in [2usize, 3, 8] {
        let other = serialized(workers);
        assert_eq!(
            reference, other,
            "serialized tree differs between workers=1 and workers={workers}"
        );
    }
}

#[test]
fn branch_search_is_identical_across_worker_counts() {
    let base = zoo::alexnet_cifar();
    let env = EvalEnv::phone();
    let run = |workers: usize| {
        let cfg = cfg_with(workers, 11);
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        let out = optimal_branch(&mut controllers, &base, &env, Mbps(8.0), &cfg, &memo)
            .expect("valid inputs");
        (out.episode_rewards, out.best, out.best_eval)
    };
    let (rewards_1, best_1, eval_1) = run(1);
    let (rewards_8, best_8, eval_8) = run(8);
    assert_eq!(rewards_1, rewards_8);
    assert_eq!(best_1, best_8);
    assert_eq!(eval_1, eval_8);
}

#[test]
fn serialized_best_candidates_are_byte_identical_across_worker_counts() {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let serialized = |workers: usize| {
        let cfg = cfg_with(workers, 13);
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        let out = optimal_branch(&mut controllers, &base, &env, Mbps(6.0), &cfg, &memo)
            .expect("valid inputs");
        serde_json::to_string_pretty(&out.best).expect("candidate serializes")
    };
    let reference = serialized(1);
    for workers in [2usize, 3, 8] {
        assert_eq!(
            reference,
            serialized(workers),
            "serialized candidate differs at workers={workers}"
        );
    }
}

#[test]
fn worker_count_beyond_batch_size_is_harmless() {
    // More workers than episodes per batch (and than episodes total)
    // must neither panic nor change results.
    let base = zoo::tiny_cnn();
    let env = EvalEnv::phone();
    let run = |workers: usize| {
        let cfg = SearchConfig {
            episodes: 5,
            ..cfg_with(workers, 3)
        };
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        optimal_branch(&mut controllers, &base, &env, Mbps(10.0), &cfg, &memo)
            .expect("valid inputs")
            .episode_rewards
    };
    assert_eq!(run(1), run(64));
}

//! Golden-trace test for the feature-compression search telemetry.
//!
//! A serial feature-enabled `optimal_branch` search over starved
//! bandwidth must keep producing the checked-in schema-v1 JSONL trace
//! (wall-clock fields masked) — any drift in the `compress.feature`
//! instrumentation, event ordering or field sets shows up as a byte
//! diff here, and the golden itself must stay valid under the strict
//! schema-v1 parser. A second test pins the span/event stream to be
//! byte-identical under 1, 2 and 8 rollout workers with feature
//! actions enabled.
//!
//! Regenerate intentionally with:
//! `UPDATE_FEATURE_GOLDEN=1 cargo test -p cadmc-core --test feature_golden`

use cadmc_core::branch::optimal_branch;
use cadmc_core::memo::MemoPool;
use cadmc_core::parallel::Parallelism;
use cadmc_core::search::{Controllers, SearchConfig};
use cadmc_core::EvalEnv;
use cadmc_latency::Mbps;
use cadmc_nn::zoo;
use cadmc_telemetry::report::{parse_jsonl, to_jsonl};
use cadmc_telemetry::{self as telemetry, RunReport};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/feature_search_trace.jsonl"
);

/// Masks the two wall-clock fields (`"t_ns":N`, `"dur_ns":N`) so traces
/// can be compared byte-for-byte across runs.
fn mask_times(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    let mut rest = jsonl;
    while let Some(pos) = rest.find("_ns\":") {
        let cut = pos + "_ns\":".len();
        out.push_str(&rest[..cut]);
        out.push('0');
        rest = rest[cut..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

/// Keeps only the schedule-independent span/event records (same filter
/// as `telemetry_trace.rs`): metric totals and `eval.candidate` spans
/// vary with worker scheduling, everything else must not.
fn event_lines(jsonl: &str) -> String {
    jsonl
        .lines()
        .filter(|l| l.contains("\"type\":\"span\"") || l.contains("\"type\":\"event\""))
        .filter(|l| !l.contains("\"name\":\"eval.candidate\""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The canonical run: a small feature-enabled search at 0.5 Mbps, where
/// shipping a compressed cut tensor is the only way to beat edge-only,
/// so the trace records `compress.feature` picks.
fn feature_search_trace(workers: usize) -> RunReport {
    let ((), report) = telemetry::testing::with_collector(|| {
        let base = zoo::tiny_cnn();
        let env = EvalEnv::phone();
        let cfg = SearchConfig {
            episodes: 8,
            hidden: 6,
            seed: 11,
            feature_actions: true,
            parallelism: Parallelism::new(workers),
            ..SearchConfig::default()
        };
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        let outcome = optimal_branch(&mut controllers, &base, &env, Mbps(0.5), &cfg, &memo)
            .expect("valid inputs");
        std::hint::black_box(outcome);
    });
    report
}

#[test]
fn feature_search_trace_matches_checked_in_golden() {
    let produced = mask_times(&to_jsonl(&feature_search_trace(1)));
    if std::env::var("UPDATE_FEATURE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &produced).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden trace must be checked in (UPDATE_FEATURE_GOLDEN=1 to create)");
    assert_eq!(
        produced, golden,
        "feature-search telemetry trace drifted from the checked-in golden; \
         if the change is intentional regenerate with UPDATE_FEATURE_GOLDEN=1"
    );
}

#[test]
fn golden_is_schema_valid_and_contains_feature_events() {
    let golden = std::fs::read_to_string(GOLDEN).expect("golden trace must be checked in");
    let report = parse_jsonl(&golden).expect("golden must satisfy schema v1");
    let names: Vec<&str> = report.events.iter().map(|e| e.name.as_str()).collect();
    assert!(names.contains(&"branch.search"));
    assert!(names.contains(&"branch.episode"));
    assert!(
        names.contains(&"compress.feature"),
        "no compress.feature event in golden"
    );
    // Every compress.feature event carries the full field set.
    for e in report.events.iter().filter(|e| e.name == "compress.feature") {
        for key in ["action", "raw_bytes"] {
            assert!(e.field(key).is_some(), "compress.feature missing field {key}");
        }
    }
    // The pick counter made it into the metrics section.
    let counters: Vec<&str> = report
        .metrics
        .counters
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    assert!(counters.contains(&"compress.feature.picks"));
}

#[test]
fn feature_search_event_stream_identical_across_worker_counts() {
    let base = event_lines(&mask_times(&to_jsonl(&feature_search_trace(1))));
    assert!(base.contains("compress.feature"));
    for workers in [2, 8] {
        let got = event_lines(&mask_times(&to_jsonl(&feature_search_trace(workers))));
        let base = base.replace("\"workers\":1", "\"workers\":0");
        let got = got.replace(&format!("\"workers\":{workers}"), "\"workers\":0");
        assert_eq!(
            base, got,
            "feature-search span/event stream differs between 1 and {workers} workers"
        );
    }
}

//! Golden-trace test for the fault/degradation telemetry format.
//!
//! A canned outage run over a fixed two-fork tree must keep producing the
//! checked-in JSONL trace (wall-clock fields masked) — any drift in event
//! names, field sets or ordering of the `exec.fault` / `exec.fallback`
//! instrumentation shows up as a byte diff here, and the golden itself
//! must stay valid under the strict schema-v1 parser.
//!
//! Regenerate intentionally with:
//! `UPDATE_FAULT_GOLDEN=1 cargo test -p cadmc-core --test fault_golden`

use cadmc_core::executor::{execute, ExecConfig, Policy};
use cadmc_core::tree::{ModelTree, TreeNode};
use cadmc_core::EvalEnv;
use cadmc_netsim::{BandwidthTrace, FaultSchedule};
use cadmc_nn::{zoo, ModelSpec};
use cadmc_telemetry::report::{parse_jsonl, to_jsonl};
use cadmc_telemetry::{self as telemetry};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/fault_outage_trace.jsonl"
);

/// Masks the two wall-clock fields (`"t_ns":N`, `"dur_ns":N`) so traces
/// can be compared byte-for-byte across runs.
fn mask_times(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    let mut rest = jsonl;
    while let Some(pos) = rest.find("_ns\":") {
        let cut = pos + "_ns\":".len();
        out.push_str(&rest[..cut]);
        out.push('0');
        rest = rest[cut..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

fn two_fork_tree(base: &ModelSpec) -> ModelTree {
    let mut tree = ModelTree::new(base.clone(), 2, vec![1.0, 30.0]);
    let root = tree.push_node(
        None,
        TreeNode {
            level: 0,
            partition_abs: None,
            actions: vec![],
            feature: cadmc_compress::FeatureAction::IDENTITY,
            children: vec![],
            reward: 0.0,
        },
    );
    let r1 = tree.block_range(1);
    tree.push_node(
        Some(root),
        TreeNode {
            level: 1,
            partition_abs: None,
            actions: vec![],
            feature: cadmc_compress::FeatureAction::IDENTITY,
            children: vec![],
            reward: 0.0,
        },
    );
    tree.push_node(
        Some(root),
        TreeNode {
            level: 1,
            partition_abs: Some(r1.start),
            actions: vec![],
            feature: cadmc_compress::FeatureAction::IDENTITY,
            children: vec![],
            reward: 0.0,
        },
    );
    tree
}

/// The canonical run: 25 emulated requests over steady 60 Mbps spanning
/// the first canned outage window (5–8 s), so the trace contains healthy
/// forks, timed-out transfers with backoff, and edge-only fallbacks.
fn outage_trace_jsonl() -> String {
    let base = zoo::vgg11_cifar();
    let env = EvalEnv::phone();
    let tree = two_fork_tree(&base);
    let trace = BandwidthTrace::new(100.0, vec![60.0; 600]);
    let cfg = ExecConfig::emulation(25, 13).with_faults(FaultSchedule::canned_outage());
    let ((), report) = telemetry::testing::with_collector(|| {
        let r = execute(&env, &base, &Policy::Tree(&tree), &trace, &cfg);
        assert!(r.degraded_count() > 0, "run must exercise the fallback");
        assert_eq!(r.failed_count(), 0);
    });
    mask_times(&to_jsonl(&report))
}

#[test]
fn canned_outage_trace_matches_checked_in_golden() {
    let produced = outage_trace_jsonl();
    if std::env::var("UPDATE_FAULT_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &produced).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden trace must be checked in (UPDATE_FAULT_GOLDEN=1 to create)");
    assert_eq!(
        produced, golden,
        "fault telemetry trace drifted from the checked-in golden; if the \
         change is intentional regenerate with UPDATE_FAULT_GOLDEN=1"
    );
}

#[test]
fn golden_is_schema_valid_and_contains_fault_events() {
    let golden = std::fs::read_to_string(GOLDEN).expect("golden trace must be checked in");
    let report = parse_jsonl(&golden).expect("golden must satisfy schema v1");
    let names: Vec<&str> = report.events.iter().map(|e| e.name.as_str()).collect();
    assert!(names.contains(&"exec.run"));
    assert!(names.contains(&"compose.fork"));
    assert!(names.contains(&"exec.fault"), "no exec.fault in golden");
    assert!(names.contains(&"exec.fallback"), "no exec.fallback in golden");
    // The degradation counters made it into the metrics section.
    let counters: Vec<&str> = report
        .metrics
        .counters
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    assert!(counters.contains(&"exec.transfer_timeouts"));
    assert!(counters.contains(&"exec.fallbacks"));
    // Every exec.fault event carries the full field set the property
    // tests and dashboards rely on.
    for e in report.events.iter().filter(|e| e.name == "exec.fault") {
        for key in ["attempt", "reason", "waited_ms", "deadline_ms", "backoff_ms"] {
            assert!(e.field(key).is_some(), "exec.fault missing field {key}");
        }
    }
}

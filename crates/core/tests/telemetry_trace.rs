//! Trace determinism across worker counts.
//!
//! The telemetry layer promises that the merged event stream — addressed
//! by `(region, stream, seq)` — is identical no matter how many rollout
//! workers `core::parallel` fans episodes across. These tests pin that
//! contract: the full JSONL (with the wall-clock `t_ns`/`dur_ns` fields
//! masked) must be **byte-identical** under 1, 2, and 8 workers, for
//! both a synthetic fan-out and a real `optimal_branch` search.
//!
//! All traced tests share the `telemetry::testing` gate, so they can run
//! under the default parallel test harness.

use cadmc_core::branch::optimal_branch;
use cadmc_core::memo::MemoPool;
use cadmc_core::parallel::{par_map_indexed, Parallelism};
use cadmc_core::search::{Controllers, SearchConfig};
use cadmc_core::EvalEnv;
use cadmc_latency::Mbps;
use cadmc_nn::zoo;
use cadmc_telemetry::report::to_jsonl;
use cadmc_telemetry::{self as telemetry, RunReport};

/// Masks the two wall-clock fields (`"t_ns":N`, `"dur_ns":N`) so traces
/// can be compared byte-for-byte across runs.
fn mask_times(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    let mut rest = jsonl;
    while let Some(pos) = rest.find("_ns\":") {
        let cut = pos + "_ns\":".len();
        out.push_str(&rest[..cut]);
        out.push('0');
        rest = rest[cut..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

/// Keeps only the schedule-independent span/event records. Dropped:
/// metric lines (memo-pool counters are updated under real contention,
/// so their totals vary with scheduling) and `eval.candidate` spans
/// (opened inside the memo-miss closure, so two workers racing on the
/// same key can both evaluate where a serial run hits the memo).
fn event_lines(jsonl: &str) -> String {
    jsonl
        .lines()
        .filter(|l| l.contains("\"type\":\"span\"") || l.contains("\"type\":\"event\""))
        .filter(|l| !l.contains("\"name\":\"eval.candidate\""))
        .collect::<Vec<_>>()
        .join("\n")
}

fn synthetic_trace(workers: usize) -> RunReport {
    let ((), report) = telemetry::testing::with_collector(|| {
        let outer = telemetry::span!("test.outer", workers = workers);
        let out = par_map_indexed(16, workers, |i| {
            let item = telemetry::span!("test.item", index = i);
            telemetry::event!("test.tick", index = i, doubled = 2 * i);
            item.record("result", 3 * i);
            3 * i
        });
        outer.record("total", out.iter().sum::<usize>());
    });
    report
}

#[test]
fn synthetic_fanout_is_byte_identical_across_worker_counts() {
    let base = mask_times(&to_jsonl(&synthetic_trace(1)));
    assert!(base.contains("test.outer"));
    assert!(base.contains("test.item"));
    assert!(base.contains("test.tick"));
    for workers in [2, 8] {
        let got = mask_times(&to_jsonl(&synthetic_trace(workers)));
        // Worker count is recorded as a field, so align it before the
        // byte comparison.
        let base = base.replace("\"workers\":1", "\"workers\":0");
        let got = got.replace(&format!("\"workers\":{workers}"), "\"workers\":0");
        assert_eq!(base, got, "trace differs between 1 and {workers} workers");
    }
}

#[test]
fn synthetic_fanout_nests_and_orders_spans() {
    let report = synthetic_trace(4);
    // Merged stream is sorted by (region, stream, seq).
    let keys: Vec<_> = report
        .events
        .iter()
        .map(|e| (e.region, e.stream, e.seq))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "events must arrive merge-sorted");

    // Each fan-out index i runs in stream i+1 and nests tick under item.
    for i in 0..16u64 {
        let in_stream: Vec<_> = report
            .events
            .iter()
            .filter(|e| e.region == 1 && e.stream == i + 1)
            .collect();
        assert_eq!(in_stream.len(), 2, "stream {} should hold item+tick", i + 1);
        let item = in_stream.iter().find(|e| e.name == "test.item").expect("item span");
        let tick = in_stream.iter().find(|e| e.name == "test.tick").expect("tick event");
        assert!(item.is_span());
        assert!(!tick.is_span());
        assert_eq!(tick.parent, Some(item.seq), "tick must nest under item");
    }
}

fn search_trace(workers: usize) -> RunReport {
    let ((), report) = telemetry::testing::with_collector(|| {
        let base = zoo::tiny_cnn();
        let env = EvalEnv::phone();
        let cfg = SearchConfig {
            episodes: 8,
            hidden: 6,
            seed: 11,
            parallelism: Parallelism::new(workers),
            ..SearchConfig::default()
        };
        let mut controllers = Controllers::new(&cfg);
        let memo = MemoPool::new();
        let outcome = optimal_branch(&mut controllers, &base, &env, Mbps(8.0), &cfg, &memo)
            .expect("valid inputs");
        std::hint::black_box(outcome);
    });
    report
}

#[test]
fn branch_search_trace_is_identical_across_worker_counts() {
    let base = event_lines(&mask_times(&to_jsonl(&search_trace(1))));
    assert!(base.contains("branch.search"));
    assert!(base.contains("branch.episode"));
    assert!(base.contains("controller.epoch"));
    for workers in [2, 8] {
        let got = event_lines(&mask_times(&to_jsonl(&search_trace(workers))));
        let base = base.replace("\"workers\":1", "\"workers\":0");
        let got = got.replace(&format!("\"workers\":{workers}"), "\"workers\":0");
        assert_eq!(
            base, got,
            "span/event stream differs between 1 and {workers} workers"
        );
    }
}

//! Fault-matrix conformance suite.
//!
//! Crosses {outage, collapse, RTT-spike, stale-estimate, none} ×
//! {emulation, field} × {1, 2, 8 workers} and pins two contracts of the
//! degradation policy:
//!
//! 1. **Byte-identity across worker counts** — the offline phase's
//!    `parallelism` knob must not leak into execution: for every
//!    (scenario, seed) cell the outcome-annotated `ExecReport` CSV is
//!    byte-for-byte identical whether the scene was trained with 1, 2 or
//!    8 workers.
//! 2. **Every request resolves** — under every fault scenario each
//!    request ends in some outcome, and when the tree has an edge-only
//!    branch the canned outage can only ever degrade a request, never
//!    fail it.

use cadmc_core::executor::{execute, ExecConfig, Mode, Policy};
use cadmc_core::experiments::{train_scene, Workload};
use cadmc_core::parallel::Parallelism;
use cadmc_core::search::SearchConfig;
use cadmc_core::tree::{ModelTree, TreeNode};
use cadmc_latency::Platform;
use cadmc_netsim::{BandwidthTrace, FaultKind, FaultSchedule, Scenario};
use cadmc_nn::{zoo, ModelSpec};

const SEED: u64 = 11;
const REQUESTS: usize = 40;

/// The five fault scenarios of the matrix, by stable cell name.
fn fault_cells() -> Vec<(&'static str, FaultSchedule)> {
    let mut cells = vec![("none", FaultSchedule::none())];
    cells.extend(
        FaultKind::ALL
            .into_iter()
            .map(|k| (k.name(), FaultSchedule::canned(k))),
    );
    cells
}

/// Trains the scene with the given offline worker count and executes the
/// full fault × mode matrix, returning `(cell label, outcome CSV)` rows.
fn matrix_csvs(workers: usize) -> Vec<(String, String)> {
    let w = Workload {
        model: zoo::tiny_cnn(),
        device: Platform::Phone,
        scenario: Scenario::WifiWeakIndoor,
    };
    let cfg = SearchConfig {
        parallelism: Parallelism::new(workers),
        ..SearchConfig::quick(SEED)
    };
    let scene = train_scene(&w, &cfg, SEED).expect("valid workload");
    let mut rows = Vec::new();
    for (name, faults) in fault_cells() {
        for mode in [Mode::Emulation, Mode::Field] {
            let ecfg = ExecConfig::new(REQUESTS, mode, SEED).with_faults(faults.clone());
            let report = execute(
                &scene.env,
                &scene.workload.model,
                &Policy::Tree(&scene.tree.tree),
                &scene.test_trace,
                &ecfg,
            );
            assert_eq!(report.outcomes.len(), REQUESTS, "{name}/{mode:?}");
            assert_eq!(report.latencies_ms.len(), REQUESTS, "{name}/{mode:?}");
            let mut buf = Vec::new();
            report
                .write_csv_with_outcomes(&mut buf)
                .expect("in-memory CSV write cannot fail");
            rows.push((
                format!("{name}/{mode:?}"),
                String::from_utf8(buf).expect("CSV is ASCII"),
            ));
        }
    }
    rows
}

#[test]
fn exec_report_csvs_are_byte_identical_across_worker_counts() {
    let base = matrix_csvs(1);
    for workers in [2, 8] {
        let got = matrix_csvs(workers);
        assert_eq!(base.len(), got.len());
        for ((cell_a, csv_a), (cell_b, csv_b)) in base.iter().zip(&got) {
            assert_eq!(cell_a, cell_b);
            assert_eq!(
                csv_a, csv_b,
                "cell {cell_a}: CSV differs between 1 and {workers} workers"
            );
        }
    }
}

/// The hand-built shape every degradation guarantee is stated against:
/// child 0 is an edge-only branch, child 1 partitions to the cloud.
fn two_fork_tree(base: &ModelSpec) -> ModelTree {
    let mut tree = ModelTree::new(base.clone(), 2, vec![1.0, 30.0]);
    let root = tree.push_node(
        None,
        TreeNode {
            level: 0,
            partition_abs: None,
            actions: vec![],
            feature: cadmc_compress::FeatureAction::IDENTITY,
            children: vec![],
            reward: 0.0,
        },
    );
    let r1 = tree.block_range(1);
    tree.push_node(
        Some(root),
        TreeNode {
            level: 1,
            partition_abs: None,
            actions: vec![],
            feature: cadmc_compress::FeatureAction::IDENTITY,
            children: vec![],
            reward: 0.0,
        },
    );
    tree.push_node(
        Some(root),
        TreeNode {
            level: 1,
            partition_abs: Some(r1.start),
            actions: vec![],
            feature: cadmc_compress::FeatureAction::IDENTITY,
            children: vec![],
            reward: 0.0,
        },
    );
    tree
}

#[test]
fn every_request_resolves_and_edge_only_branch_prevents_failure() {
    let base = zoo::vgg11_cifar();
    let env = cadmc_core::EvalEnv::phone();
    let tree = two_fork_tree(&base);
    // Steady high bandwidth makes Alg. 2 prefer the partitioned fork, so
    // fault windows genuinely hit in-flight transfers.
    let trace = BandwidthTrace::new(100.0, vec![60.0; 600]);
    for (name, faults) in fault_cells() {
        for mode in [Mode::Emulation, Mode::Field] {
            let ecfg = ExecConfig::new(150, mode, SEED).with_faults(faults.clone());
            let report = execute(&env, &base, &Policy::Tree(&tree), &trace, &ecfg);
            assert_eq!(report.outcomes.len(), 150, "{name}/{mode:?}");
            assert_eq!(
                report.failed_count(),
                0,
                "{name}/{mode:?}: an edge-only branch exists, nothing may fail"
            );
        }
    }
    // And the outage cell actually exercises the fallback machinery.
    let outage = ExecConfig::emulation(150, SEED).with_faults(FaultSchedule::canned_outage());
    let report = execute(&env, &base, &Policy::Tree(&tree), &trace, &outage);
    assert!(
        report.degraded_count() > 0,
        "canned outage must force degraded fallbacks"
    );
}

#[test]
fn fault_cells_differ_from_the_clean_run() {
    // Sanity on the matrix itself: each canned fault scenario produces a
    // report distinguishable from the fault-free one (otherwise the suite
    // would be vacuously green). The trace alternates 0.5 / 60 Mbps every
    // 300 ms so estimator-freeze faults change fork decisions too.
    let base = zoo::vgg11_cifar();
    let env = cadmc_core::EvalEnv::phone();
    let tree = two_fork_tree(&base);
    let samples: Vec<f64> = (0..600)
        .map(|i| if (i / 3) % 2 == 0 { 0.5 } else { 60.0 })
        .collect();
    let trace = BandwidthTrace::new(100.0, samples);
    let run = |faults: FaultSchedule| {
        let ecfg = ExecConfig::emulation(150, SEED).with_faults(faults);
        execute(&env, &base, &Policy::Tree(&tree), &trace, &ecfg)
    };
    let clean = run(FaultSchedule::none());
    for kind in FaultKind::ALL {
        let faulted = run(FaultSchedule::canned(kind));
        assert_ne!(
            clean, faulted,
            "{} left no trace in the report",
            kind.name()
        );
    }
}

//! Schedule-permutation stress tests for the lock-striped [`MemoPool`].
//!
//! Plain concurrency tests exercise whatever interleaving the OS happens
//! to pick. This harness instead *drives* many distinct schedules: each
//! run derives every worker's operation sequence and yield points from a
//! seeded RNG, so a sweep over master seeds replays the pool under many
//! different thread interleavings — deterministically reproducible by
//! seed when one fails.
//!
//! Invariants checked after every run:
//! - `hits + misses == total lookups` (no counter update is lost),
//! - `len == number of distinct keys touched`,
//! - `misses >= distinct keys` (each entry was computed at least once;
//!   benign duplicate compute under a race may push it higher),
//! - `shard_lens().sum() == len` (stripes partition the key space),
//! - every lookup of a key observed the same `Evaluation` (first write
//!   wins semantics never expose torn or mixed values).
//!
//! The same binary runs under Miri and ThreadSanitizer in CI with reduced
//! sizes (`cfg(miri)` / `MEMO_STRESS_LIGHT=1`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use cadmc_core::memo::MemoPool;
use cadmc_core::{Candidate, Evaluation, RewardSpec};
use cadmc_nn::zoo;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One observed (bandwidth-key, reward) pair from a worker.
type Observation = (u64, f64);

fn light_mode() -> bool {
    cfg!(miri) || std::env::var_os("MEMO_STRESS_LIGHT").is_some()
}

/// Drives `workers` threads over a shared pool. Every thread's key
/// sequence and yield schedule derive from `seed`, and all threads start
/// together behind a barrier so the contention window is as wide as the
/// scheduler allows. Returns all observations plus the key universe size.
fn run_schedule(
    seed: u64,
    workers: usize,
    ops_per_worker: usize,
    key_universe: usize,
    shards: usize,
) -> (Arc<MemoPool>, Vec<Observation>, usize) {
    let pool = Arc::new(MemoPool::with_shards(shards));
    let base = zoo::tiny_cnn();
    let candidate = Candidate::base_all_edge(&base);
    let computes = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(workers));

    let mut handles = Vec::new();
    for w in 0..workers {
        let pool = Arc::clone(&pool);
        let candidate = candidate.clone();
        let computes = Arc::clone(&computes);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            // Per-worker stream: disjoint from other workers, stable for
            // a given (seed, worker) pair.
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15 ^ (w as u64));
            barrier.wait();
            let mut seen = Vec::with_capacity(ops_per_worker);
            for _ in 0..ops_per_worker {
                let k = rng.random_range(0..key_universe);
                // Distinct bandwidths are distinct cache keys (quantized
                // at 0.01 Mbps, so steps of 1.0 never collide).
                let bw = 1.0 + k as f64;
                // The evaluation payload is a pure function of the key,
                // so every thread computing it produces the same value —
                // any divergence observed later is a pool bug.
                let e = pool.get_or_insert_with(&candidate, bw, || {
                    computes.fetch_add(1, Ordering::Relaxed);
                    Evaluation::new(
                        0.5 + (k as f64) * 1e-3,
                        10.0 + k as f64,
                        &RewardSpec::default(),
                    )
                });
                seen.push((k as u64, e.reward));
                // Seeded perturbation: sometimes yield mid-sequence so
                // different seeds explore different interleavings.
                if rng.random_range(0..4usize) == 0 {
                    std::thread::yield_now();
                }
            }
            seen
        }));
    }

    let mut observations = Vec::new();
    for h in handles {
        observations.extend(h.join().expect("stress worker panicked"));
    }
    (pool, observations, workers * ops_per_worker)
}

/// Checks every pool invariant for one completed schedule.
fn check_invariants(seed: u64, pool: &MemoPool, observations: &[Observation], total_ops: usize) {
    let mut first_value: BTreeMap<u64, f64> = BTreeMap::new();
    for &(k, reward) in observations {
        let entry = first_value.entry(k).or_insert(reward);
        assert!(
            entry.to_bits() == reward.to_bits(),
            "seed {seed}: key {k} observed two different evaluations: {entry} vs {reward}"
        );
    }
    let distinct = first_value.len();

    assert_eq!(
        pool.hits() + pool.misses(),
        total_ops,
        "seed {seed}: counter updates lost (hits {} + misses {} != ops {total_ops})",
        pool.hits(),
        pool.misses()
    );
    assert_eq!(
        pool.len(),
        distinct,
        "seed {seed}: pool holds {} entries but workers touched {distinct} keys",
        pool.len()
    );
    assert!(
        pool.misses() >= distinct,
        "seed {seed}: {} misses cannot cover {distinct} distinct keys",
        pool.misses()
    );
    let lens = pool.shard_lens();
    assert_eq!(
        lens.iter().sum::<usize>(),
        pool.len(),
        "seed {seed}: shard lens {lens:?} do not partition len {}",
        pool.len()
    );
}

#[test]
fn seeded_schedules_preserve_invariants() {
    let (seeds, workers, ops, keys) = if light_mode() {
        (2u64, 4, 40, 12)
    } else {
        (12u64, 8, 400, 64)
    };
    for seed in 0..seeds {
        let (pool, observations, total) = run_schedule(seed, workers, ops, keys, 16);
        check_invariants(seed, &pool, &observations, total);
    }
}

#[test]
fn single_shard_maximizes_contention() {
    // One stripe forces every operation through a single mutex — the
    // worst-case schedule for lost updates and torn reads.
    let (seeds, workers, ops, keys) = if light_mode() {
        (2u64, 4, 30, 6)
    } else {
        (6u64, 8, 300, 16)
    };
    for seed in 100..100 + seeds {
        let (pool, observations, total) = run_schedule(seed, workers, ops, keys, 1);
        check_invariants(seed, &pool, &observations, total);
        assert_eq!(pool.shards(), 1);
    }
}

#[test]
fn hot_key_hammering_is_consistent() {
    // All workers hammer a tiny key set so nearly every op races on the
    // same shard entries; hit rate must dominate and values never change.
    let (seeds, workers, ops) = if light_mode() {
        (2u64, 4, 50)
    } else {
        (4u64, 8, 500)
    };
    for seed in 200..200 + seeds {
        let (pool, observations, total) = run_schedule(seed, workers, ops, 2, 16);
        check_invariants(seed, &pool, &observations, total);
        assert_eq!(pool.len(), observations.iter().map(|o| o.0).max().map_or(0, |m| m as usize + 1).min(2));
        // With only 2 keys and hundreds of ops, almost everything hits.
        assert!(
            pool.hits() > total / 2,
            "seed {seed}: hot keys should mostly hit ({} of {total})",
            pool.hits()
        );
    }
}

#[test]
fn schedules_differ_but_results_do_not() {
    // Different seeds produce different interleavings (different
    // hit/miss splits are fine) but the final cache contents must be the
    // same whenever the key universe is fully covered.
    let (workers, ops, keys) = if light_mode() { (4, 60, 8) } else { (8, 400, 16) };
    let mut final_lens = Vec::new();
    for seed in [7u64, 77, 777] {
        let (pool, observations, total) = run_schedule(seed, workers, ops, keys, 8);
        check_invariants(seed, &pool, &observations, total);
        assert_eq!(pool.len(), keys, "ops must cover the whole key universe");
        final_lens.push(pool.shard_lens());
    }
    // Shard striping is a pure function of the key, so the final layout
    // is schedule-independent.
    assert_eq!(final_lens[0], final_lens[1]);
    assert_eq!(final_lens[1], final_lens[2]);
}

//! Schedule-permutation stress tests for the lock-striped [`MemoPool`].
//!
//! Plain concurrency tests exercise whatever interleaving the OS happens
//! to pick. This harness instead *drives* many distinct schedules: each
//! run derives every worker's operation sequence and yield points from a
//! seeded RNG, so a sweep over master seeds replays the pool under many
//! different thread interleavings — deterministically reproducible by
//! seed when one fails.
//!
//! Invariants checked after every run:
//! - `hits + misses == total lookups` (no counter update is lost),
//! - `len == number of distinct keys touched`,
//! - `misses >= distinct keys` (each entry was computed at least once;
//!   benign duplicate compute under a race may push it higher),
//! - `shard_lens().sum() == len` (stripes partition the key space),
//! - every lookup of a key observed the same `Evaluation` (first write
//!   wins semantics never expose torn or mixed values).
//!
//! The same binary runs under Miri and ThreadSanitizer in CI with reduced
//! sizes (`cfg(miri)` / `MEMO_STRESS_LIGHT=1`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use cadmc_core::memo::MemoPool;
use cadmc_core::{Candidate, Evaluation, RewardSpec};
use cadmc_nn::zoo;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One observed (bandwidth-key, reward) pair from a worker.
type Observation = (u64, f64);

fn light_mode() -> bool {
    cfg!(miri) || std::env::var_os("MEMO_STRESS_LIGHT").is_some()
}

/// Drives `workers` threads over a shared pool. Every thread's key
/// sequence and yield schedule derive from `seed`, and all threads start
/// together behind a barrier so the contention window is as wide as the
/// scheduler allows. Returns all observations plus the key universe size.
fn run_schedule(
    seed: u64,
    workers: usize,
    ops_per_worker: usize,
    key_universe: usize,
    shards: usize,
) -> (Arc<MemoPool>, Vec<Observation>, usize) {
    let pool = Arc::new(MemoPool::with_shards(shards));
    let base = zoo::tiny_cnn();
    let candidate = Candidate::base_all_edge(&base);
    let computes = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(workers));

    let mut handles = Vec::new();
    for w in 0..workers {
        let pool = Arc::clone(&pool);
        let candidate = candidate.clone();
        let computes = Arc::clone(&computes);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            // Per-worker stream: disjoint from other workers, stable for
            // a given (seed, worker) pair.
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15 ^ (w as u64));
            barrier.wait();
            let mut seen = Vec::with_capacity(ops_per_worker);
            for _ in 0..ops_per_worker {
                let k = rng.random_range(0..key_universe);
                // Distinct bandwidths are distinct cache keys (quantized
                // at 0.01 Mbps, so steps of 1.0 never collide).
                let bw = 1.0 + k as f64;
                // The evaluation payload is a pure function of the key,
                // so every thread computing it produces the same value —
                // any divergence observed later is a pool bug.
                let e = pool.get_or_insert_with(&candidate, bw, || {
                    computes.fetch_add(1, Ordering::Relaxed);
                    Evaluation::new(
                        0.5 + (k as f64) * 1e-3,
                        10.0 + k as f64,
                        &RewardSpec::default(),
                    )
                });
                seen.push((k as u64, e.reward));
                // Seeded perturbation: sometimes yield mid-sequence so
                // different seeds explore different interleavings.
                if rng.random_range(0..4usize) == 0 {
                    std::thread::yield_now();
                }
            }
            seen
        }));
    }

    let mut observations = Vec::new();
    for h in handles {
        observations.extend(h.join().expect("stress worker panicked"));
    }
    (pool, observations, workers * ops_per_worker)
}

/// Checks every pool invariant for one completed schedule.
fn check_invariants(seed: u64, pool: &MemoPool, observations: &[Observation], total_ops: usize) {
    let mut first_value: BTreeMap<u64, f64> = BTreeMap::new();
    for &(k, reward) in observations {
        let entry = first_value.entry(k).or_insert(reward);
        assert!(
            entry.to_bits() == reward.to_bits(),
            "seed {seed}: key {k} observed two different evaluations: {entry} vs {reward}"
        );
    }
    let distinct = first_value.len();

    assert_eq!(
        pool.hits() + pool.misses(),
        total_ops,
        "seed {seed}: counter updates lost (hits {} + misses {} != ops {total_ops})",
        pool.hits(),
        pool.misses()
    );
    assert_eq!(
        pool.len(),
        distinct,
        "seed {seed}: pool holds {} entries but workers touched {distinct} keys",
        pool.len()
    );
    assert!(
        pool.misses() >= distinct,
        "seed {seed}: {} misses cannot cover {distinct} distinct keys",
        pool.misses()
    );
    let lens = pool.shard_lens();
    assert_eq!(
        lens.iter().sum::<usize>(),
        pool.len(),
        "seed {seed}: shard lens {lens:?} do not partition len {}",
        pool.len()
    );
}

#[test]
fn seeded_schedules_preserve_invariants() {
    let (seeds, workers, ops, keys) = if light_mode() {
        (2u64, 4, 40, 12)
    } else {
        (12u64, 8, 400, 64)
    };
    for seed in 0..seeds {
        let (pool, observations, total) = run_schedule(seed, workers, ops, keys, 16);
        check_invariants(seed, &pool, &observations, total);
    }
}

#[test]
fn single_shard_maximizes_contention() {
    // One stripe forces every operation through a single mutex — the
    // worst-case schedule for lost updates and torn reads.
    let (seeds, workers, ops, keys) = if light_mode() {
        (2u64, 4, 30, 6)
    } else {
        (6u64, 8, 300, 16)
    };
    for seed in 100..100 + seeds {
        let (pool, observations, total) = run_schedule(seed, workers, ops, keys, 1);
        check_invariants(seed, &pool, &observations, total);
        assert_eq!(pool.shards(), 1);
    }
}

#[test]
fn hot_key_hammering_is_consistent() {
    // All workers hammer a tiny key set so nearly every op races on the
    // same shard entries; hit rate must dominate and values never change.
    let (seeds, workers, ops) = if light_mode() {
        (2u64, 4, 50)
    } else {
        (4u64, 8, 500)
    };
    for seed in 200..200 + seeds {
        let (pool, observations, total) = run_schedule(seed, workers, ops, 2, 16);
        check_invariants(seed, &pool, &observations, total);
        assert_eq!(pool.len(), observations.iter().map(|o| o.0).max().map_or(0, |m| m as usize + 1).min(2));
        // With only 2 keys and hundreds of ops, almost everything hits.
        assert!(
            pool.hits() > total / 2,
            "seed {seed}: hot keys should mostly hit ({} of {total})",
            pool.hits()
        );
    }
}

#[test]
fn concurrent_batched_probes_match_single_probes() {
    // Readers hammer `probe_many` with seeded, duplicate-containing
    // batches while writers race `insert_key` on the same universe. A
    // batched probe must be indistinguishable from per-key `get_key`:
    // every `Some` carries the key's one true evaluation, result order
    // matches key order, and no per-shard counter update is lost.
    let (seeds, readers, writers, batches, keys) = if light_mode() {
        (2u64, 3, 2, 20, 12)
    } else {
        (6u64, 6, 3, 200, 48)
    };
    let eval_of = |k: usize| {
        Evaluation::new(
            0.5 + (k as f64) * 1e-3,
            10.0 + k as f64,
            &RewardSpec::default(),
        )
    };
    for seed in 300..300 + seeds {
        let pool = Arc::new(MemoPool::with_shards(8));
        let probes = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(readers + writers));
        let mut handles = Vec::new();
        for w in 0..writers {
            let pool = Arc::clone(&pool);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x77a1_u64.wrapping_add(w as u64));
                barrier.wait();
                // Interleave inserts with yields so probes race both
                // empty and populated shards.
                let mut order: Vec<usize> = (0..keys).collect();
                for i in (1..order.len()).rev() {
                    order.swap(i, rng.random_range(0..=i));
                }
                for k in order {
                    pool.insert_key(k as u64, eval_of(k));
                    if rng.random_range(0..3usize) == 0 {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for r in 0..readers {
            let pool = Arc::clone(&pool);
            let probes = Arc::clone(&probes);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xbead ^ (r as u64) << 8);
                barrier.wait();
                for _ in 0..batches {
                    let n = rng.random_range(0..=keys + 4);
                    let batch: Vec<u64> = (0..n)
                        .map(|_| rng.random_range(0..keys) as u64)
                        .collect();
                    let out = pool.probe_many(&batch);
                    assert_eq!(out.len(), batch.len(), "seed {seed}: result order lost");
                    probes.fetch_add(batch.len(), Ordering::Relaxed);
                    for (k, slot) in batch.iter().zip(&out) {
                        if let Some(e) = slot {
                            let want = eval_of(*k as usize);
                            assert!(
                                e.reward.to_bits() == want.reward.to_bits(),
                                "seed {seed}: key {k} probed a torn or foreign value"
                            );
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("probe stress worker panicked");
        }
        assert_eq!(
            pool.hits() + pool.misses(),
            probes.load(Ordering::Relaxed),
            "seed {seed}: batched counter updates lost"
        );
        assert_eq!(pool.len(), keys, "seed {seed}: writers must fill the universe");
        // Quiesced equivalence: one batched probe over the whole universe
        // agrees with per-key single probes, entry for entry.
        let universe: Vec<u64> = (0..keys as u64).collect();
        let batched = pool.probe_many(&universe);
        for (k, slot) in universe.iter().zip(&batched) {
            let single = pool.get_key(*k);
            assert_eq!(
                slot.map(|e| e.reward.to_bits()),
                single.map(|e| e.reward.to_bits()),
                "seed {seed}: batched and single probe disagree on key {k}"
            );
            assert!(slot.is_some(), "seed {seed}: key {k} missing after all writers joined");
        }
    }
}

#[test]
fn schedules_differ_but_results_do_not() {
    // Different seeds produce different interleavings (different
    // hit/miss splits are fine) but the final cache contents must be the
    // same whenever the key universe is fully covered.
    let (workers, ops, keys) = if light_mode() { (4, 60, 8) } else { (8, 400, 16) };
    let mut final_lens = Vec::new();
    for seed in [7u64, 77, 777] {
        let (pool, observations, total) = run_schedule(seed, workers, ops, keys, 8);
        check_invariants(seed, &pool, &observations, total);
        assert_eq!(pool.len(), keys, "ops must cover the whole key universe");
        final_lens.push(pool.shard_lens());
    }
    // Shard striping is a pure function of the key, so the final layout
    // is schedule-independent.
    assert_eq!(final_lens[0], final_lens[1]);
    assert_eq!(final_lens[1], final_lens[2]);
}

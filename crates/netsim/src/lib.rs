//! # cadmc-netsim
//!
//! Network-context simulation for the `cadmc` reproduction of
//! *Context-Aware Deep Model Compression for Edge Cloud Computing*
//! (ICDCS 2020).
//!
//! The paper's whole premise is that real bandwidth "changes drastically
//! even within a small time window like 1 s" (Fig. 1). This crate
//! synthesizes such traces ([`BandwidthTrace`], [`BandwidthProcess`]),
//! names the evaluation contexts of Tables 3–5 ([`Scenario`]), and models
//! the coarse online bandwidth estimation that separates field tests from
//! emulation ([`BandwidthEstimator`]).
//!
//! ## Example
//!
//! ```
//! use cadmc_netsim::Scenario;
//!
//! let trace = Scenario::FourGOutdoorQuick.trace(42);
//! let (poor, good) = trace.quartile_levels(); // the paper's K = 2 levels
//! assert!(poor < good);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod estimator;
mod fault;
pub mod gilbert;
pub mod io;
mod process;
mod proptests;
mod scenario;
pub mod stats;
mod trace;

pub use estimator::BandwidthEstimator;
pub use fault::{FaultKind, FaultProcessConfig, FaultSchedule, FaultWindow};
pub use process::{BandwidthProcess, ProcessConfig};
pub use scenario::Scenario;
pub use trace::{BandwidthTrace, TraceCursor};

//! Online bandwidth estimation.
//!
//! In the paper's emulation the decision engine reads the replayed trace
//! directly; in the field test it only has "a coarse estimation of network
//! conditions" — which the paper names as one of the two sources of the
//! emulation→field gap (§VII-B3). [`BandwidthEstimator`] models that
//! coarseness: an exponentially-smoothed, periodically-refreshed view of
//! the true bandwidth.

use cadmc_telemetry as telemetry;
use serde::{Deserialize, Serialize};

/// Histogram buckets for observed true bandwidth (Mbps).
const BANDWIDTH_BOUNDS: &[f64] = &[0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0];

/// A smoothed, stale view of true bandwidth, as a probing-based estimator
/// on a real device would provide.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthEstimator {
    /// EMA smoothing factor in `(0, 1]`; 1.0 means no smoothing.
    alpha: f64,
    /// Minimum interval between probe refreshes (ms).
    probe_interval_ms: f64,
    estimate: Option<f64>,
    last_probe_ms: f64,
}

impl BandwidthEstimator {
    /// An estimator with EMA factor `alpha` probing at most every
    /// `probe_interval_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or the interval is negative.
    pub fn new(alpha: f64, probe_interval_ms: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        assert!(probe_interval_ms >= 0.0, "probe interval must be non-negative");
        Self {
            alpha,
            probe_interval_ms,
            estimate: None,
            last_probe_ms: f64::NEG_INFINITY,
        }
    }

    /// An ideal estimator that always returns the true bandwidth
    /// (emulation mode).
    pub fn ideal() -> Self {
        Self::new(1.0, 0.0)
    }

    /// The paper-motivated field-mode estimator: heavy smoothing, 500 ms
    /// probe cadence.
    pub fn field() -> Self {
        Self::new(0.35, 500.0)
    }

    /// Observes the true bandwidth at time `now_ms` and returns the
    /// current estimate. Between probe refreshes the previous estimate is
    /// returned unchanged (staleness).
    pub fn observe(&mut self, now_ms: f64, true_bandwidth: f64) -> f64 {
        telemetry::hist!("net.bandwidth_mbps", BANDWIDTH_BOUNDS, true_bandwidth);
        let est = self.observe_inner(now_ms, true_bandwidth);
        telemetry::gauge!("net.bandwidth_estimate", est);
        est
    }

    fn observe_inner(&mut self, now_ms: f64, true_bandwidth: f64) -> f64 {
        match self.estimate {
            None => {
                self.estimate = Some(true_bandwidth);
                self.last_probe_ms = now_ms;
                true_bandwidth
            }
            Some(prev) => {
                if now_ms - self.last_probe_ms >= self.probe_interval_ms {
                    let next = self.alpha * true_bandwidth + (1.0 - self.alpha) * prev;
                    self.estimate = Some(next);
                    self.last_probe_ms = now_ms;
                    next
                } else {
                    prev
                }
            }
        }
    }

    /// Observes like [`BandwidthEstimator::observe`], but with probe
    /// refreshes *held* (e.g. probe packets lost during an
    /// estimator-freeze fault): the previous estimate is returned and the
    /// probe clock does not advance, so the estimate keeps aging. The
    /// very first observation still initializes the estimate — a frozen
    /// estimator with no history has nothing stale to return.
    pub fn observe_held(&mut self, now_ms: f64, true_bandwidth: f64) -> f64 {
        telemetry::hist!("net.bandwidth_mbps", BANDWIDTH_BOUNDS, true_bandwidth);
        let est = match self.estimate {
            None => self.observe_inner(now_ms, true_bandwidth),
            Some(prev) => prev,
        };
        telemetry::gauge!("net.bandwidth_estimate", est);
        est
    }

    /// Age of the current estimate at `now_ms`: time since the last probe
    /// refresh. Infinite before the first observation.
    pub fn age_ms(&self, now_ms: f64) -> f64 {
        now_ms - self.last_probe_ms
    }

    /// Whether the estimate is stale at `now_ms`: older than
    /// `freeze_window_ms` (or never refreshed at all). A stale estimate
    /// must not be trusted for a fork decision — Alg. 2 re-measures
    /// instead.
    pub fn is_stale(&self, now_ms: f64, freeze_window_ms: f64) -> bool {
        self.estimate.is_none() || self.age_ms(now_ms) > freeze_window_ms
    }

    /// The current estimate, if any observation happened yet.
    pub fn current(&self) -> Option<f64> {
        self.estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_estimator_tracks_exactly() {
        let mut e = BandwidthEstimator::ideal();
        assert_eq!(e.observe(0.0, 5.0), 5.0);
        assert_eq!(e.observe(1.0, 9.0), 9.0);
        assert_eq!(e.observe(2.0, 1.0), 1.0);
    }

    #[test]
    fn field_estimator_lags_a_step_change() {
        let mut e = BandwidthEstimator::field();
        e.observe(0.0, 10.0);
        // True bandwidth collapses to 1; the estimate should lag above it.
        let est = e.observe(600.0, 1.0);
        assert!(est > 1.0, "estimate {est} should lag the collapse");
        assert!(est < 10.0);
    }

    #[test]
    fn staleness_between_probes() {
        let mut e = BandwidthEstimator::new(1.0, 500.0);
        assert_eq!(e.observe(0.0, 4.0), 4.0);
        // 100 ms later the probe hasn't refreshed: still 4.
        assert_eq!(e.observe(100.0, 40.0), 4.0);
        // After the interval it updates.
        assert_eq!(e.observe(600.0, 40.0), 40.0);
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = BandwidthEstimator::field();
        let mut est = 0.0;
        for i in 0..50 {
            est = e.observe(i as f64 * 600.0, 7.0);
        }
        assert!((est - 7.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = BandwidthEstimator::new(0.0, 100.0);
    }

    #[test]
    fn fresh_estimator_is_stale_until_first_observation() {
        let mut e = BandwidthEstimator::field();
        assert!(e.is_stale(0.0, 1_000.0), "no history means nothing trustworthy");
        assert_eq!(e.age_ms(0.0), f64::INFINITY);
        e.observe(0.0, 8.0);
        assert!(!e.is_stale(0.0, 1_000.0));
        assert_eq!(e.age_ms(250.0), 250.0);
    }

    #[test]
    fn age_exceeding_freeze_window_is_flagged_stale() {
        let mut e = BandwidthEstimator::field();
        e.observe(0.0, 8.0);
        assert!(!e.is_stale(1_000.0, 1_000.0), "age == window is still fresh");
        assert!(e.is_stale(1_000.1, 1_000.0), "age beyond window is stale");
    }

    #[test]
    fn held_observation_returns_stale_estimate_and_keeps_aging() {
        let mut e = BandwidthEstimator::new(1.0, 0.0);
        assert_eq!(e.observe(0.0, 4.0), 4.0);
        // Frozen probes: the true bandwidth collapsed but the estimator
        // cannot see it, and its age keeps growing.
        assert_eq!(e.observe_held(500.0, 0.1), 4.0);
        assert_eq!(e.observe_held(2_500.0, 0.1), 4.0);
        assert_eq!(e.age_ms(2_500.0), 2_500.0);
        assert!(e.is_stale(2_500.0, 1_000.0));
    }

    #[test]
    fn stale_estimate_forces_a_remeasure_on_thaw() {
        // Alg. 2's contract: once the estimate is stale, do not trust it —
        // the next *unheld* observation must re-measure immediately, even
        // for a slow-probing estimator whose interval hasn't elapsed since
        // the last successful refresh... which is exactly what happens
        // here because the probe clock did not advance while held.
        let mut e = BandwidthEstimator::new(1.0, 500.0);
        e.observe(0.0, 9.0);
        assert_eq!(e.observe_held(400.0, 0.2), 9.0);
        assert!(e.is_stale(600.0, 500.0));
        // Thawed: age (600 ms) exceeds the probe interval, so the refresh
        // fires and the decision sees the true (collapsed) bandwidth.
        assert_eq!(e.observe(600.0, 0.2), 0.2);
        assert!(!e.is_stale(600.0, 500.0));
    }

    #[test]
    fn first_held_observation_initializes() {
        let mut e = BandwidthEstimator::field();
        assert_eq!(e.observe_held(0.0, 6.0), 6.0);
        assert_eq!(e.current(), Some(6.0));
    }
}

//! Online bandwidth estimation.
//!
//! In the paper's emulation the decision engine reads the replayed trace
//! directly; in the field test it only has "a coarse estimation of network
//! conditions" — which the paper names as one of the two sources of the
//! emulation→field gap (§VII-B3). [`BandwidthEstimator`] models that
//! coarseness: an exponentially-smoothed, periodically-refreshed view of
//! the true bandwidth.

use cadmc_telemetry as telemetry;
use serde::{Deserialize, Serialize};

/// Histogram buckets for observed true bandwidth (Mbps).
const BANDWIDTH_BOUNDS: &[f64] = &[0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0];

/// A smoothed, stale view of true bandwidth, as a probing-based estimator
/// on a real device would provide.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthEstimator {
    /// EMA smoothing factor in `(0, 1]`; 1.0 means no smoothing.
    alpha: f64,
    /// Minimum interval between probe refreshes (ms).
    probe_interval_ms: f64,
    estimate: Option<f64>,
    last_probe_ms: f64,
}

impl BandwidthEstimator {
    /// An estimator with EMA factor `alpha` probing at most every
    /// `probe_interval_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or the interval is negative.
    pub fn new(alpha: f64, probe_interval_ms: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        assert!(probe_interval_ms >= 0.0, "probe interval must be non-negative");
        Self {
            alpha,
            probe_interval_ms,
            estimate: None,
            last_probe_ms: f64::NEG_INFINITY,
        }
    }

    /// An ideal estimator that always returns the true bandwidth
    /// (emulation mode).
    pub fn ideal() -> Self {
        Self::new(1.0, 0.0)
    }

    /// The paper-motivated field-mode estimator: heavy smoothing, 500 ms
    /// probe cadence.
    pub fn field() -> Self {
        Self::new(0.35, 500.0)
    }

    /// Observes the true bandwidth at time `now_ms` and returns the
    /// current estimate. Between probe refreshes the previous estimate is
    /// returned unchanged (staleness).
    pub fn observe(&mut self, now_ms: f64, true_bandwidth: f64) -> f64 {
        telemetry::hist!("net.bandwidth_mbps", BANDWIDTH_BOUNDS, true_bandwidth);
        let est = self.observe_inner(now_ms, true_bandwidth);
        telemetry::gauge!("net.bandwidth_estimate", est);
        est
    }

    fn observe_inner(&mut self, now_ms: f64, true_bandwidth: f64) -> f64 {
        match self.estimate {
            None => {
                self.estimate = Some(true_bandwidth);
                self.last_probe_ms = now_ms;
                true_bandwidth
            }
            Some(prev) => {
                if now_ms - self.last_probe_ms >= self.probe_interval_ms {
                    let next = self.alpha * true_bandwidth + (1.0 - self.alpha) * prev;
                    self.estimate = Some(next);
                    self.last_probe_ms = now_ms;
                    next
                } else {
                    prev
                }
            }
        }
    }

    /// The current estimate, if any observation happened yet.
    pub fn current(&self) -> Option<f64> {
        self.estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_estimator_tracks_exactly() {
        let mut e = BandwidthEstimator::ideal();
        assert_eq!(e.observe(0.0, 5.0), 5.0);
        assert_eq!(e.observe(1.0, 9.0), 9.0);
        assert_eq!(e.observe(2.0, 1.0), 1.0);
    }

    #[test]
    fn field_estimator_lags_a_step_change() {
        let mut e = BandwidthEstimator::field();
        e.observe(0.0, 10.0);
        // True bandwidth collapses to 1; the estimate should lag above it.
        let est = e.observe(600.0, 1.0);
        assert!(est > 1.0, "estimate {est} should lag the collapse");
        assert!(est < 10.0);
    }

    #[test]
    fn staleness_between_probes() {
        let mut e = BandwidthEstimator::new(1.0, 500.0);
        assert_eq!(e.observe(0.0, 4.0), 4.0);
        // 100 ms later the probe hasn't refreshed: still 4.
        assert_eq!(e.observe(100.0, 40.0), 4.0);
        // After the interval it updates.
        assert_eq!(e.observe(600.0, 40.0), 40.0);
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = BandwidthEstimator::field();
        let mut est = 0.0;
        for i in 0..50 {
            est = e.observe(i as f64 * 600.0, 7.0);
        }
        assert!((est - 7.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = BandwidthEstimator::new(0.0, 100.0);
    }
}

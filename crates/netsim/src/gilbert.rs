//! Gilbert–Elliott channel model — an alternative trace family.
//!
//! The primary synthesizer ([`crate::BandwidthProcess`]) is a mean-
//! reverting diffusion with regime switching. The classic alternative in
//! the networking literature is the two-state Gilbert–Elliott chain: the
//! channel alternates between a *good* and a *bad* state with geometric
//! sojourn times, each state emitting bandwidth around its own level.
//! Having a second family with different statistics lets robustness
//! experiments check that nothing in the engine is overfit to one
//! generator's shape.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::trace::BandwidthTrace;

/// Parameters of a Gilbert–Elliott bandwidth channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// Mean bandwidth in the good state (Mbps).
    pub good_mbps: f64,
    /// Mean bandwidth in the bad state (Mbps).
    pub bad_mbps: f64,
    /// Probability per step of leaving the good state.
    pub p_good_to_bad: f64,
    /// Probability per step of leaving the bad state.
    pub p_bad_to_good: f64,
    /// Multiplicative jitter amplitude within a state, in `[0, 1)`.
    pub jitter: f64,
}

impl GilbertElliott {
    /// A typical lossy-WiFi-like preset.
    pub fn lossy_wifi() -> Self {
        Self {
            good_mbps: 12.0,
            bad_mbps: 1.0,
            p_good_to_bad: 0.02,
            p_bad_to_good: 0.10,
            jitter: 0.25,
        }
    }

    /// Long-run fraction of time spent in the good state.
    pub fn steady_state_good_fraction(&self) -> f64 {
        self.p_bad_to_good / (self.p_good_to_bad + self.p_bad_to_good)
    }

    /// Synthesizes a trace of `n` samples at `dt_ms`, deterministically
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if parameters are out of range or `n == 0`.
    pub fn trace(&self, n: usize, dt_ms: f64, seed: u64) -> BandwidthTrace {
        assert!(n > 0, "need at least one sample");
        assert!(self.good_mbps > 0.0 && self.bad_mbps > 0.0, "levels must be positive");
        assert!(
            (0.0..=1.0).contains(&self.p_good_to_bad)
                && (0.0..=1.0).contains(&self.p_bad_to_good),
            "transition probabilities must be in [0,1]"
        );
        assert!((0.0..1.0).contains(&self.jitter), "jitter must be in [0,1)");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut good = rng.random_range(0.0..1.0) < self.steady_state_good_fraction();
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let flip: f64 = rng.random_range(0.0..1.0);
            if good && flip < self.p_good_to_bad {
                good = false;
            } else if !good && flip < self.p_bad_to_good {
                good = true;
            }
            let level = if good { self.good_mbps } else { self.bad_mbps };
            let j: f64 = rng.random_range(-self.jitter..=self.jitter);
            samples.push((level * (1.0 + j)).max(0.01));
        }
        BandwidthTrace::new(dt_ms, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_fraction_matches_empirical() {
        let ge = GilbertElliott::lossy_wifi();
        let trace = ge.trace(50_000, 100.0, 1);
        // Count samples near the good level.
        let cutoff = (ge.good_mbps + ge.bad_mbps) / 2.0;
        let good_frac = trace.samples().iter().filter(|&&v| v > cutoff).count() as f64
            / trace.len() as f64;
        let expected = ge.steady_state_good_fraction();
        assert!(
            (good_frac - expected).abs() < 0.05,
            "empirical {good_frac:.3} vs analytic {expected:.3}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let ge = GilbertElliott::lossy_wifi();
        assert_eq!(ge.trace(100, 100.0, 3), ge.trace(100, 100.0, 3));
        assert_ne!(ge.trace(100, 100.0, 3), ge.trace(100, 100.0, 4));
    }

    #[test]
    fn bimodal_levels() {
        // A balanced chain (50/50 steady state) puts the quartiles on the
        // two state levels.
        let ge = GilbertElliott {
            p_good_to_bad: 0.05,
            p_bad_to_good: 0.05,
            ..GilbertElliott::lossy_wifi()
        };
        let trace = ge.trace(20_000, 100.0, 2);
        let (poor, good) = trace.quartile_levels();
        assert!(poor < 2.0, "poor quartile {poor}");
        assert!(good > 8.0, "good quartile {good}");
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn rejects_bad_jitter() {
        let ge = GilbertElliott {
            jitter: 1.0,
            ..GilbertElliott::lossy_wifi()
        };
        let _ = ge.trace(10, 100.0, 1);
    }

    #[test]
    fn sojourn_times_are_geometric_ish() {
        // Mean good sojourn should be ~1/p_good_to_bad steps.
        let ge = GilbertElliott::lossy_wifi();
        let trace = ge.trace(100_000, 100.0, 5);
        let cutoff = (ge.good_mbps + ge.bad_mbps) / 2.0;
        let mut runs = Vec::new();
        let mut current = 0usize;
        for &v in trace.samples() {
            if v > cutoff {
                current += 1;
            } else if current > 0 {
                runs.push(current);
                current = 0;
            }
        }
        let mean_run = runs.iter().sum::<usize>() as f64 / runs.len() as f64;
        let expected = 1.0 / ge.p_good_to_bad;
        assert!(
            (mean_run - expected).abs() < expected * 0.25,
            "mean good sojourn {mean_run:.1} vs expected {expected:.1}"
        );
    }
}

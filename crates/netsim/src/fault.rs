//! Seeded, schedulable network fault processes.
//!
//! The primary synthesizer ([`crate::BandwidthProcess`]) makes bandwidth
//! *vary*; this module makes it *fail*. A [`FaultSchedule`] is a set of
//! time windows, each injecting one failure mode the executor's
//! degradation policy must survive:
//!
//! * [`FaultKind::Outage`] — the cloud uplink is down; transfers cannot
//!   start and time out.
//! * [`FaultKind::Collapse`] — bandwidth collapses to a hard floor
//!   (severe congestion); transfers crawl until the deadline fires.
//! * [`FaultKind::RttSpike`] — a burst of added round-trip latency on
//!   every transfer in the window.
//! * [`FaultKind::EstimatorFreeze`] — the bandwidth estimator stops
//!   refreshing (probe loss); Alg. 2 decisions see a stale estimate.
//!
//! Schedules are plain data: serializable, composable with any trace
//! family (the mean-reverting process, the Gilbert–Elliott chain, or a
//! recorded CSV) via [`FaultSchedule::faulted_trace`], and either built
//! deterministically ([`FaultSchedule::canned`]) or generated from a
//! seeded stochastic process ([`FaultSchedule::generate`]). Everything is
//! a pure function of `(schedule, time)`, so fault-injected runs replay
//! bit-identically for a given seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::trace::BandwidthTrace;

/// The failure mode a [`FaultWindow`] injects while active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Cloud uplink fully down: effective bandwidth is zero.
    Outage,
    /// Bandwidth collapses to the window's `magnitude` (Mbps floor).
    Collapse,
    /// Every transfer pays `magnitude` extra milliseconds of RTT.
    RttSpike,
    /// The bandwidth estimator cannot refresh (stale estimate).
    EstimatorFreeze,
}

impl FaultKind {
    /// All kinds, in a stable order (used by the conformance matrix).
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Outage,
        FaultKind::Collapse,
        FaultKind::RttSpike,
        FaultKind::EstimatorFreeze,
    ];

    /// Stable kebab-case name (CLI preset / telemetry field value).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Outage => "outage",
            FaultKind::Collapse => "collapse",
            FaultKind::RttSpike => "rtt-spike",
            FaultKind::EstimatorFreeze => "stale-estimate",
        }
    }
}

/// One scheduled fault: a kind active over `[start_ms, start_ms +
/// duration_ms)` with a kind-specific magnitude (collapse floor in Mbps,
/// RTT spike in ms; ignored for outage and freeze).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// The injected failure mode.
    pub kind: FaultKind,
    /// Window start (trace time, ms).
    pub start_ms: f64,
    /// Window length (ms).
    pub duration_ms: f64,
    /// Kind-specific magnitude (see [`FaultWindow`] docs).
    pub magnitude: f64,
}

impl FaultWindow {
    /// Whether the window covers time `t_ms`.
    pub fn active(&self, t_ms: f64) -> bool {
        t_ms >= self.start_ms && t_ms < self.start_ms + self.duration_ms
    }

    /// Exclusive end of the window (ms).
    pub fn end_ms(&self) -> f64 {
        self.start_ms + self.duration_ms
    }
}

/// Parameters for [`FaultSchedule::generate`]: independent Poisson-like
/// window arrivals per fault kind, with mean durations and magnitudes.
/// A rate of 0 disables that kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultProcessConfig {
    /// Outage windows per second.
    pub outage_rate: f64,
    /// Mean outage duration (s).
    pub outage_secs: f64,
    /// Collapse windows per second.
    pub collapse_rate: f64,
    /// Mean collapse duration (s).
    pub collapse_secs: f64,
    /// Collapse floor (Mbps).
    pub collapse_floor_mbps: f64,
    /// RTT-spike bursts per second.
    pub rtt_rate: f64,
    /// Mean burst duration (s).
    pub rtt_secs: f64,
    /// Added round-trip latency during a burst (ms).
    pub rtt_spike_ms: f64,
    /// Estimator-freeze windows per second.
    pub freeze_rate: f64,
    /// Mean freeze duration (s).
    pub freeze_secs: f64,
}

impl FaultProcessConfig {
    /// A harsh-but-survivable mix: occasional outages and collapses, RTT
    /// bursts and estimator freezes — the "degraded link" regime where
    /// the offload decision inverts.
    pub fn harsh() -> Self {
        Self {
            outage_rate: 0.04,
            outage_secs: 2.0,
            collapse_rate: 0.04,
            collapse_secs: 2.5,
            collapse_floor_mbps: 0.05,
            rtt_rate: 0.06,
            rtt_secs: 1.5,
            rtt_spike_ms: 120.0,
            freeze_rate: 0.04,
            freeze_secs: 2.0,
        }
    }
}

/// A deterministic schedule of fault windows over trace time.
///
/// The empty schedule (`FaultSchedule::none()`, also `Default`) injects
/// nothing: every query returns the no-fault answer and the executor's
/// zero-fault path is bit-identical to a run without fault support.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    windows: Vec<FaultWindow>,
}

impl FaultSchedule {
    /// The empty schedule: no faults, ever.
    pub fn none() -> Self {
        Self::default()
    }

    /// Wraps explicit windows, sorted by start time.
    ///
    /// # Panics
    ///
    /// Panics if any window has a non-finite or negative start, a
    /// non-positive duration, or a non-finite magnitude.
    pub fn new(mut windows: Vec<FaultWindow>) -> Self {
        for w in &windows {
            assert!(
                w.start_ms.is_finite() && w.start_ms >= 0.0,
                "fault window start must be finite and non-negative"
            );
            assert!(
                w.duration_ms.is_finite() && w.duration_ms > 0.0,
                "fault window duration must be finite and positive"
            );
            assert!(w.magnitude.is_finite(), "fault magnitude must be finite");
        }
        windows.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
        Self { windows }
    }

    /// The scheduled windows, sorted by start time.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Whether the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The canned single-kind schedule used by the conformance matrix,
    /// golden-trace test and CI smoke: three fixed windows of `kind`
    /// spread over a standard 60 s trace.
    pub fn canned(kind: FaultKind) -> Self {
        let magnitude = match kind {
            FaultKind::Outage | FaultKind::EstimatorFreeze => 0.0,
            FaultKind::Collapse => 0.05,
            FaultKind::RttSpike => 150.0,
        };
        Self::new(
            [(5_000.0, 3_000.0), (22_000.0, 4_000.0), (43_000.0, 3_500.0)]
                .into_iter()
                .map(|(start_ms, duration_ms)| FaultWindow {
                    kind,
                    start_ms,
                    duration_ms,
                    magnitude,
                })
                .collect(),
        )
    }

    /// The canned cloud-link outage scenario (see [`FaultSchedule::canned`]).
    pub fn canned_outage() -> Self {
        Self::canned(FaultKind::Outage)
    }

    /// Resolves a CLI preset name: `none`, `outage`, `collapse`,
    /// `rtt-spike`, `stale-estimate` (each the canned schedule of that
    /// kind), `canned-outage` (alias of `outage`) or `harsh` (the seeded
    /// mixed process with seed 7 over 60 s).
    pub fn from_preset(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "none" => Some(Self::none()),
            "outage" | "canned-outage" => Some(Self::canned(FaultKind::Outage)),
            "collapse" => Some(Self::canned(FaultKind::Collapse)),
            "rtt-spike" => Some(Self::canned(FaultKind::RttSpike)),
            "stale-estimate" => Some(Self::canned(FaultKind::EstimatorFreeze)),
            "harsh" => Some(Self::generate(&FaultProcessConfig::harsh(), 60_000.0, 7)),
            _ => None,
        }
    }

    /// Generates a schedule over `[0, duration_ms)` from independent
    /// seeded arrival processes (100 ms resolution), deterministic per
    /// `(cfg, duration, seed)`.
    pub fn generate(cfg: &FaultProcessConfig, duration_ms: f64, seed: u64) -> Self {
        assert!(
            duration_ms.is_finite() && duration_ms > 0.0,
            "schedule duration must be finite and positive"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa01_7eed);
        let dt_s = 0.1;
        let steps = (duration_ms / 100.0).ceil() as usize;
        let mut windows = Vec::new();
        // Per-kind "busy until" horizon so windows of one kind never
        // overlap each other (overlaps across kinds are fine).
        let mut busy_until = [0.0f64; 4];
        for step in 0..steps {
            let t_ms = step as f64 * 100.0;
            for (slot, kind) in FaultKind::ALL.into_iter().enumerate() {
                let (rate, mean_secs, magnitude) = match kind {
                    FaultKind::Outage => (cfg.outage_rate, cfg.outage_secs, 0.0),
                    FaultKind::Collapse => {
                        (cfg.collapse_rate, cfg.collapse_secs, cfg.collapse_floor_mbps)
                    }
                    FaultKind::RttSpike => (cfg.rtt_rate, cfg.rtt_secs, cfg.rtt_spike_ms),
                    FaultKind::EstimatorFreeze => (cfg.freeze_rate, cfg.freeze_secs, 0.0),
                };
                // One draw per (step, kind) keeps the stream layout fixed
                // regardless of which kinds are enabled.
                let u: f64 = rng.random_range(0.0..1.0);
                let stretch: f64 = rng.random_range(0.5..1.5);
                if rate <= 0.0 || t_ms < busy_until[slot] || u >= rate * dt_s {
                    continue;
                }
                let duration_ms_w = (mean_secs * stretch * 1000.0).max(100.0);
                busy_until[slot] = t_ms + duration_ms_w;
                windows.push(FaultWindow {
                    kind,
                    start_ms: t_ms,
                    duration_ms: duration_ms_w,
                    magnitude,
                });
            }
        }
        Self::new(windows)
    }

    /// Derives this schedule's per-session variant: each window's start
    /// is phase-shifted by a deterministic, session-specific jitter of at
    /// most ±20 % of its duration (clamped at zero so the
    /// [`FaultSchedule::new`] invariants hold). Durations, kinds and
    /// magnitudes are untouched, so a session sees the *same* fault
    /// process as its neighbors but not in lockstep — the serving layer
    /// uses this so concurrent sessions don't all time out on the same
    /// millisecond. `for_session` is a pure function of
    /// `(self, session)`: the same id always yields the same schedule,
    /// and session ids live on each session's own timeline, independent
    /// of when the server admitted it.
    pub fn for_session(&self, session: u64) -> Self {
        if self.windows.is_empty() {
            return Self::none();
        }
        // SplitMix64: a well-mixed pure function of (session, index).
        fn mix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let windows = self
            .windows
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let r = mix(session ^ mix(i as u64 ^ 0x5e55_10f0));
                // Uniform in [-1, 1) from the top 53 bits.
                let unit = (r >> 11) as f64 / (1u64 << 52) as f64 - 1.0;
                let start_ms = (w.start_ms + unit * 0.2 * w.duration_ms).max(0.0);
                FaultWindow { start_ms, ..*w }
            })
            .collect();
        Self::new(windows)
    }

    /// Whether the cloud uplink is down at `t_ms` (an outage is active).
    pub fn link_down(&self, t_ms: f64) -> bool {
        self.windows
            .iter()
            .any(|w| w.kind == FaultKind::Outage && w.active(t_ms))
    }

    /// The tightest active collapse floor at `t_ms`, if any.
    pub fn bandwidth_cap(&self, t_ms: f64) -> Option<f64> {
        self.windows
            .iter()
            .filter(|w| w.kind == FaultKind::Collapse && w.active(t_ms))
            .map(|w| w.magnitude)
            .min_by(f64::total_cmp)
    }

    /// Effective bandwidth at `t_ms` given the true (trace) bandwidth:
    /// zero during an outage, capped during a collapse, unchanged
    /// otherwise.
    pub fn effective_bandwidth(&self, t_ms: f64, true_bandwidth: f64) -> f64 {
        if self.link_down(t_ms) {
            return 0.0;
        }
        match self.bandwidth_cap(t_ms) {
            Some(cap) => true_bandwidth.min(cap),
            None => true_bandwidth,
        }
    }

    /// Added round-trip latency on a transfer starting at `t_ms` (ms):
    /// the largest active RTT spike.
    pub fn extra_rtt_ms(&self, t_ms: f64) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.kind == FaultKind::RttSpike && w.active(t_ms))
            .map(|w| w.magnitude)
            .max_by(f64::total_cmp)
            .unwrap_or(0.0)
    }

    /// Whether the bandwidth estimator is frozen (cannot refresh) at
    /// `t_ms`.
    pub fn estimator_frozen(&self, t_ms: f64) -> bool {
        self.windows
            .iter()
            .any(|w| w.kind == FaultKind::EstimatorFreeze && w.active(t_ms))
    }

    /// Composes the schedule's *bandwidth-shaping* faults (outage,
    /// collapse) into a trace, sample by sample — the bridge to the other
    /// trace families: any [`BandwidthTrace`] (synthesized, Gilbert–
    /// Elliott, or recorded CSV) can be degraded into a faulted one.
    /// Outage samples drop to 0.001 Mbps (a trace must stay positive for
    /// downstream quantile logic); RTT and freeze faults do not shape
    /// bandwidth and are ignored here.
    pub fn faulted_trace(&self, trace: &BandwidthTrace) -> BandwidthTrace {
        let samples = trace
            .samples()
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let t = i as f64 * trace.dt_ms();
                let eff = self.effective_bandwidth(t, v);
                if eff <= 0.0 {
                    0.001
                } else {
                    eff
                }
            })
            .collect();
        BandwidthTrace::new(trace.dt_ms(), samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gilbert::GilbertElliott;
    use crate::scenario::Scenario;

    #[test]
    fn empty_schedule_is_transparent() {
        let s = FaultSchedule::none();
        assert!(s.is_empty());
        assert!(!s.link_down(0.0));
        assert_eq!(s.bandwidth_cap(1000.0), None);
        assert_eq!(s.effective_bandwidth(5.0, 9.0), 9.0);
        assert_eq!(s.extra_rtt_ms(5.0), 0.0);
        assert!(!s.estimator_frozen(5.0));
        let trace = Scenario::WifiWeakIndoor.trace(1);
        assert_eq!(s.faulted_trace(&trace), trace);
    }

    #[test]
    fn canned_outage_downs_the_link_in_windows_only() {
        let s = FaultSchedule::canned_outage();
        assert!(s.link_down(5_000.0));
        assert!(s.link_down(7_999.0));
        assert!(!s.link_down(8_000.0));
        assert!(!s.link_down(0.0));
        assert_eq!(s.effective_bandwidth(6_000.0, 10.0), 0.0);
        assert_eq!(s.effective_bandwidth(10_000.0, 10.0), 10.0);
    }

    #[test]
    fn collapse_caps_and_rtt_adds() {
        let c = FaultSchedule::canned(FaultKind::Collapse);
        assert_eq!(c.effective_bandwidth(5_500.0, 10.0), 0.05);
        assert_eq!(c.effective_bandwidth(5_500.0, 0.01), 0.01);
        let r = FaultSchedule::canned(FaultKind::RttSpike);
        assert_eq!(r.extra_rtt_ms(23_000.0), 150.0);
        assert_eq!(r.extra_rtt_ms(60_000.0 - 1.0), 0.0);
        let f = FaultSchedule::canned(FaultKind::EstimatorFreeze);
        assert!(f.estimator_frozen(44_000.0));
        assert!(!f.estimator_frozen(42_000.0));
    }

    #[test]
    fn presets_resolve_and_unknown_is_none() {
        for name in ["none", "outage", "canned-outage", "collapse", "rtt-spike", "stale-estimate", "harsh"] {
            assert!(FaultSchedule::from_preset(name).is_some(), "{name}");
        }
        assert!(FaultSchedule::from_preset("solar-flare").is_none());
        assert_eq!(
            FaultSchedule::from_preset("outage"),
            FaultSchedule::from_preset("CANNED-OUTAGE")
        );
    }

    #[test]
    fn generate_is_deterministic_and_non_overlapping_per_kind() {
        let cfg = FaultProcessConfig::harsh();
        let a = FaultSchedule::generate(&cfg, 120_000.0, 9);
        let b = FaultSchedule::generate(&cfg, 120_000.0, 9);
        assert_eq!(a, b);
        assert_ne!(a, FaultSchedule::generate(&cfg, 120_000.0, 10));
        assert!(!a.is_empty(), "harsh config over 120 s should fault");
        for kind in FaultKind::ALL {
            let mut of_kind: Vec<&FaultWindow> =
                a.windows().iter().filter(|w| w.kind == kind).collect();
            of_kind.sort_by(|x, y| x.start_ms.total_cmp(&y.start_ms));
            for pair in of_kind.windows(2) {
                assert!(
                    pair[1].start_ms >= pair[0].end_ms(),
                    "{} windows overlap",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn faulted_trace_composes_with_gilbert_family() {
        let trace = GilbertElliott::lossy_wifi().trace(600, 100.0, 3);
        let faulted = FaultSchedule::canned_outage().faulted_trace(&trace);
        assert_eq!(faulted.len(), trace.len());
        // Outage windows force the floor sample.
        assert_eq!(faulted.at_ms(6_000.0), 0.001);
        // Outside windows the trace is untouched.
        assert_eq!(faulted.at_ms(15_000.0), trace.at_ms(15_000.0));
        assert!(faulted.samples().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn serde_roundtrip() {
        let s = FaultSchedule::canned(FaultKind::Collapse);
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn for_session_is_deterministic_and_bounded() {
        let base = FaultSchedule::canned_outage();
        let a = base.for_session(3);
        let b = base.for_session(3);
        assert_eq!(a, b);
        // Same process, different phase for a different session.
        assert_ne!(a, base.for_session(4));
        // Kinds, durations and magnitudes are untouched; starts move by
        // at most 20 % of the window duration and never go negative.
        assert_eq!(a.windows().len(), base.windows().len());
        for (w, o) in a.windows().iter().zip(base.windows()) {
            assert_eq!(w.kind, o.kind);
            assert_eq!(w.duration_ms, o.duration_ms);
            assert_eq!(w.magnitude, o.magnitude);
            assert!((w.start_ms - o.start_ms).abs() <= 0.2 * o.duration_ms + 1e-9);
            assert!(w.start_ms >= 0.0);
        }
    }

    #[test]
    fn for_session_of_empty_schedule_is_empty() {
        assert!(FaultSchedule::none().for_session(9).is_empty());
    }

    #[test]
    fn for_session_keeps_new_invariants_near_zero() {
        // A window starting at 0 must clamp, not panic.
        let s = FaultSchedule::new(vec![FaultWindow {
            kind: FaultKind::Outage,
            start_ms: 0.0,
            duration_ms: 1_000.0,
            magnitude: 0.0,
        }]);
        for session in 0..64 {
            let shifted = s.for_session(session);
            assert!(shifted.windows()[0].start_ms >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn rejects_nonpositive_duration() {
        let _ = FaultSchedule::new(vec![FaultWindow {
            kind: FaultKind::Outage,
            start_ms: 0.0,
            duration_ms: 0.0,
            magnitude: 0.0,
        }]);
    }
}

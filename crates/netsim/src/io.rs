//! Trace import/export.
//!
//! Real deployments characterize contexts from *measured* traces (the
//! paper's Fig. 1 traces were recorded on a Xiaomi MI 6X). This module
//! reads and writes the simple two-column CSV format such measurement
//! apps produce — `time_ms,mbps` — so users can drive the whole engine
//! with their own recordings instead of the synthesizer.

use std::io::{BufRead, Write};

use crate::trace::BandwidthTrace;

/// Errors from trace I/O.
#[derive(Debug)]
pub enum TraceIoError {
    /// Filesystem / stream failure.
    Io(std::io::Error),
    /// A malformed CSV line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The file contained no samples.
    Empty,
    /// Timestamps are not uniformly spaced (within 1 % tolerance).
    IrregularSampling {
        /// 1-based line number where the irregularity was detected.
        line: usize,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::Parse { line, content } => {
                write!(f, "line {line}: cannot parse {content:?} as `time_ms,mbps`")
            }
            TraceIoError::Empty => write!(f, "trace file contains no samples"),
            TraceIoError::IrregularSampling { line } => {
                write!(f, "line {line}: sampling period is not uniform")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace as `time_ms,mbps` CSV (with a header line).
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on write failure.
pub fn write_csv<W: Write>(trace: &BandwidthTrace, mut w: W) -> Result<(), TraceIoError> {
    writeln!(w, "time_ms,mbps")?;
    for (i, v) in trace.samples().iter().enumerate() {
        writeln!(w, "{:.1},{v}", i as f64 * trace.dt_ms())?;
    }
    Ok(())
}

/// Reads a trace from `time_ms,mbps` CSV. A `time_ms,mbps` header line is
/// optional; blank lines are skipped. Timestamps must be uniformly spaced
/// (the replay machinery assumes a fixed sampling period).
///
/// # Errors
///
/// Returns [`TraceIoError`] for malformed lines, irregular sampling or an
/// empty file.
pub fn read_csv<R: BufRead>(r: R) -> Result<BandwidthTrace, TraceIoError> {
    let mut times: Vec<f64> = Vec::new();
    let mut samples: Vec<f64> = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || (idx == 0 && trimmed.eq_ignore_ascii_case("time_ms,mbps")) {
            continue;
        }
        let mut parts = trimmed.split(',');
        let parse = |s: Option<&str>| -> Option<f64> { s?.trim().parse().ok() };
        let (t, v) = match (parse(parts.next()), parse(parts.next())) {
            (Some(t), Some(v)) if parts.next().is_none() => (t, v),
            _ => {
                return Err(TraceIoError::Parse {
                    line: idx + 1,
                    content: trimmed.to_string(),
                })
            }
        };
        times.push(t);
        samples.push(v);
    }
    if samples.is_empty() {
        return Err(TraceIoError::Empty);
    }
    let dt = if times.len() >= 2 {
        times[1] - times[0]
    } else {
        100.0
    };
    if dt <= 0.0 {
        return Err(TraceIoError::IrregularSampling { line: 2 });
    }
    for (i, w) in times.windows(2).enumerate() {
        let step = w[1] - w[0];
        if (step - dt).abs() > dt * 0.01 {
            return Err(TraceIoError::IrregularSampling { line: i + 2 });
        }
    }
    Ok(BandwidthTrace::new(dt, samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn roundtrip_preserves_trace() {
        let trace = Scenario::WifiWeakIndoor.trace(3);
        let mut buf = Vec::new();
        write_csv(&trace, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), trace.len());
        assert_eq!(back.dt_ms(), trace.dt_ms());
        for (a, b) in back.samples().iter().zip(trace.samples()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn header_is_optional() {
        let csv = "0.0,5.0\n100.0,6.0\n200.0,7.0\n";
        let t = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(t.samples(), &[5.0, 6.0, 7.0]);
        assert_eq!(t.dt_ms(), 100.0);
    }

    #[test]
    fn malformed_line_reports_position() {
        let csv = "time_ms,mbps\n0.0,5.0\nnot-a-line\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn irregular_sampling_rejected() {
        let csv = "0.0,5.0\n100.0,6.0\n350.0,7.0\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::IrregularSampling { .. }));
    }

    #[test]
    fn empty_file_rejected() {
        let err = read_csv("time_ms,mbps\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Empty));
    }

    #[test]
    fn extra_columns_rejected() {
        let csv = "0.0,5.0,9.9\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 1, .. }));
    }
}

//! Stochastic bandwidth processes.
//!
//! The paper's Fig. 1 shows measured 4G/WiFi bandwidth fluctuating
//! drastically within sub-second windows. We synthesize comparable traces
//! with a mean-reverting (Ornstein–Uhlenbeck-style) process whose long-run
//! mean itself switches between a low and a high regime, plus occasional
//! multi-step dropouts — the three behaviours visible in the paper's
//! samples (jitter, level shifts, outages).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic bandwidth process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessConfig {
    /// Long-run mean bandwidth in the *low* regime (Mbps).
    pub mean_low: f64,
    /// Long-run mean bandwidth in the *high* regime (Mbps).
    pub mean_high: f64,
    /// Mean-reversion rate (1/s): larger snaps back faster.
    pub reversion: f64,
    /// Instantaneous volatility (Mbps/√s).
    pub sigma: f64,
    /// Probability per second of switching regime.
    pub switch_rate: f64,
    /// Probability per second of entering a dropout (outage).
    pub dropout_rate: f64,
    /// Mean dropout duration (s).
    pub dropout_secs: f64,
    /// Hard floor (Mbps) — radios rarely report exactly zero.
    pub floor: f64,
}

impl ProcessConfig {
    /// Midpoint of the two regime means.
    pub fn center(&self) -> f64 {
        0.5 * (self.mean_low + self.mean_high)
    }
}

/// A running instance of the bandwidth process.
#[derive(Debug)]
pub struct BandwidthProcess {
    cfg: ProcessConfig,
    rng: StdRng,
    value: f64,
    high_regime: bool,
    dropout_left: f64,
}

impl BandwidthProcess {
    /// Creates a process seeded deterministically.
    pub fn new(cfg: ProcessConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let high_regime = rng.random_range(0.0..1.0) < 0.5;
        let value = if high_regime { cfg.mean_high } else { cfg.mean_low };
        Self {
            cfg,
            rng,
            value,
            high_regime,
            dropout_left: 0.0,
        }
    }

    /// Current bandwidth (Mbps).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Advances the process by `dt` seconds and returns the new bandwidth.
    pub fn step(&mut self, dt: f64) -> f64 {
        assert!(dt > 0.0, "dt must be positive");
        // Regime switching.
        if self.rng.random_range(0.0..1.0) < self.cfg.switch_rate * dt {
            self.high_regime = !self.high_regime;
        }
        // Dropout entry/decay.
        if self.dropout_left > 0.0 {
            self.dropout_left -= dt;
        } else if self.rng.random_range(0.0..1.0) < self.cfg.dropout_rate * dt {
            self.dropout_left = self.cfg.dropout_secs * self.rng.random_range(0.5..1.5);
        }
        let mu = if self.high_regime {
            self.cfg.mean_high
        } else {
            self.cfg.mean_low
        };
        let noise: f64 = {
            let s: f64 = (0..6).map(|_| self.rng.random_range(-0.5..0.5)).sum();
            s * (12.0f64 / 6.0).sqrt()
        };
        self.value += self.cfg.reversion * (mu - self.value) * dt
            + self.cfg.sigma * dt.sqrt() * noise;
        if self.dropout_left > 0.0 {
            self.value = self.value.min(0.15 * mu);
        }
        self.value = self.value.max(self.cfg.floor);
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ProcessConfig {
        ProcessConfig {
            mean_low: 3.0,
            mean_high: 12.0,
            reversion: 1.0,
            sigma: 2.0,
            switch_rate: 0.1,
            dropout_rate: 0.02,
            dropout_secs: 1.0,
            floor: 0.05,
        }
    }

    #[test]
    fn process_is_deterministic_per_seed() {
        let mut a = BandwidthProcess::new(cfg(), 1);
        let mut b = BandwidthProcess::new(cfg(), 1);
        for _ in 0..100 {
            assert_eq!(a.step(0.1), b.step(0.1));
        }
    }

    #[test]
    fn stays_above_floor() {
        let mut p = BandwidthProcess::new(cfg(), 2);
        for _ in 0..2000 {
            assert!(p.step(0.1) >= 0.05);
        }
    }

    #[test]
    fn long_run_mean_is_between_regimes() {
        let mut p = BandwidthProcess::new(cfg(), 3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += p.step(0.1);
        }
        let mean = sum / n as f64;
        assert!(
            (2.0..13.0).contains(&mean),
            "long-run mean {mean} outside regime band"
        );
    }

    #[test]
    fn fluctuates_within_one_second() {
        // Fig. 1's headline observation: drastic change within ~1 s.
        let mut p = BandwidthProcess::new(cfg(), 4);
        let mut max_jump: f64 = 0.0;
        let mut prev = p.value();
        for _ in 0..600 {
            // 60 s at 10 Hz: look at 1-second (10-step) windows.
            let mut v = prev;
            for _ in 0..10 {
                v = p.step(0.1);
            }
            max_jump = max_jump.max((v - prev).abs());
            prev = v;
        }
        assert!(max_jump > 1.0, "trace too smooth: max 1s jump {max_jump}");
    }
}

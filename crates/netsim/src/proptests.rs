//! Property-based tests for traces, processes and estimation.

#![cfg(test)]

use proptest::prelude::*;

use crate::estimator::BandwidthEstimator;
use crate::process::ProcessConfig;
use crate::trace::BandwidthTrace;

fn arb_cfg() -> impl Strategy<Value = ProcessConfig> {
    (0.5f64..5.0, 1.0f64..4.0, 0.2f64..3.0, 0.01f64..0.3).prop_map(
        |(mean_low, spread, sigma, switch_rate)| ProcessConfig {
            mean_low,
            mean_high: mean_low * (1.0 + spread),
            reversion: 1.0,
            sigma,
            switch_rate,
            dropout_rate: 0.02,
            dropout_secs: 1.0,
            floor: 0.05,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Synthesized traces respect the floor, determinism and quantile
    /// monotonicity for any process parameters.
    #[test]
    fn trace_invariants(cfg in arb_cfg(), seed in 0u64..1000) {
        let t = BandwidthTrace::synthesize(cfg, 20_000.0, 100.0, seed);
        prop_assert_eq!(t.len(), 200);
        prop_assert!(t.samples().iter().all(|&v| v >= cfg.floor));
        let again = BandwidthTrace::synthesize(cfg, 20_000.0, 100.0, seed);
        prop_assert_eq!(t.clone(), again);
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = t.quantile(q);
            prop_assert!(v >= prev);
            prev = v;
        }
        // Quantile extremes bound every sample.
        let (min, max) = (t.quantile(0.0), t.quantile(1.0));
        prop_assert!(t.samples().iter().all(|&v| (min..=max).contains(&v)));
    }

    /// at_ms never panics and always returns an in-range sample.
    #[test]
    fn at_ms_total(cfg in arb_cfg(), seed in 0u64..1000, t_ms in -1e4f64..1e7) {
        let t = BandwidthTrace::synthesize(cfg, 10_000.0, 100.0, seed);
        let v = t.at_ms(t_ms);
        prop_assert!(t.samples().contains(&v));
    }

    /// The EMA estimator's output always lies within the range of values
    /// it has observed.
    #[test]
    fn estimator_stays_in_observed_range(
        values in proptest::collection::vec(0.1f64..100.0, 1..40),
    ) {
        let mut est = BandwidthEstimator::field();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (i, &v) in values.iter().enumerate() {
            lo = lo.min(v);
            hi = hi.max(v);
            let e = est.observe(i as f64 * 600.0, v);
            prop_assert!(e >= lo - 1e-9 && e <= hi + 1e-9, "estimate {e} outside [{lo}, {hi}]");
        }
    }

    /// Splitting at any valid point conserves samples and order.
    #[test]
    fn split_conserves(cfg in arb_cfg(), seed in 0u64..200, frac in 0.05f64..0.95) {
        let t = BandwidthTrace::synthesize(cfg, 20_000.0, 100.0, seed);
        let at = (t.duration_ms() * frac).max(t.dt_ms());
        let (a, b) = t.split_at_ms(at);
        prop_assert_eq!(a.len() + b.len(), t.len());
        let mut joined = a.samples().to_vec();
        joined.extend_from_slice(b.samples());
        prop_assert_eq!(joined.as_slice(), t.samples());
    }
}

//! Trace statistics: the fluctuation metrics behind the paper's Fig. 1
//! argument ("the bandwidth changes drastically even within a small time
//! window like 1 s") and behind scenario characterization.

use crate::trace::BandwidthTrace;

/// Summary statistics of a bandwidth trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Mean bandwidth (Mbps).
    pub mean: f64,
    /// Standard deviation (Mbps).
    pub std_dev: f64,
    /// Coefficient of variation (`std_dev / mean`).
    pub cv: f64,
    /// Largest min→max swing inside any window of `window_ms` (Mbps).
    pub max_window_swing: f64,
    /// Lag-1 autocorrelation of the sample series.
    pub autocorrelation: f64,
    /// Fraction of samples below 25 % of the mean (outage-ish time).
    pub outage_fraction: f64,
}

/// Computes [`TraceStats`] with swings measured over `window_ms` windows.
///
/// # Panics
///
/// Panics if `window_ms` is smaller than the trace's sampling period.
pub fn trace_stats(trace: &BandwidthTrace, window_ms: f64) -> TraceStats {
    assert!(
        window_ms >= trace.dt_ms(),
        "window must cover at least one sample"
    );
    let s = trace.samples();
    let n = s.len() as f64;
    let mean = trace.mean();
    let std_dev = trace.std_dev();
    let cv = if mean > 0.0 { std_dev / mean } else { 0.0 };

    let w = (window_ms / trace.dt_ms()).round().max(1.0) as usize;
    let mut max_window_swing: f64 = 0.0;
    if s.len() >= w {
        for win in s.windows(w) {
            let lo = win.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = win.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            max_window_swing = max_window_swing.max(hi - lo);
        }
    }

    let autocorrelation = if s.len() >= 2 && std_dev > 0.0 {
        let cov: f64 = s
            .windows(2)
            .map(|p| (p[0] - mean) * (p[1] - mean))
            .sum::<f64>()
            / (n - 1.0);
        (cov / (std_dev * std_dev)).clamp(-1.0, 1.0)
    } else {
        0.0
    };

    let outage_fraction = s.iter().filter(|&&v| v < 0.25 * mean).count() as f64 / n;

    TraceStats {
        mean,
        std_dev,
        cv,
        max_window_swing,
        autocorrelation,
        outage_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn flat_trace_has_zero_variation() {
        let t = BandwidthTrace::new(100.0, vec![5.0; 100]);
        let st = trace_stats(&t, 1000.0);
        assert_eq!(st.mean, 5.0);
        assert_eq!(st.std_dev, 0.0);
        assert_eq!(st.cv, 0.0);
        assert_eq!(st.max_window_swing, 0.0);
        assert_eq!(st.outage_fraction, 0.0);
    }

    #[test]
    fn alternating_trace_swings_fully_within_window() {
        let samples: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { 9.0 }).collect();
        let t = BandwidthTrace::new(100.0, samples);
        let st = trace_stats(&t, 1000.0);
        assert_eq!(st.max_window_swing, 8.0);
        // Perfectly alternating series has strongly negative lag-1
        // autocorrelation.
        assert!(st.autocorrelation < -0.9);
    }

    #[test]
    fn smooth_series_has_positive_autocorrelation() {
        let samples: Vec<f64> = (0..200).map(|i| 5.0 + (i as f64 * 0.05).sin()).collect();
        let t = BandwidthTrace::new(100.0, samples);
        let st = trace_stats(&t, 1000.0);
        assert!(st.autocorrelation > 0.8, "got {}", st.autocorrelation);
    }

    #[test]
    fn volatile_scenarios_have_higher_cv() {
        let quick = trace_stats(&Scenario::FourGOutdoorQuick.trace(1), 1000.0);
        let still = trace_stats(&Scenario::FourGIndoorStatic.trace(1), 1000.0);
        assert!(quick.cv > 2.0 * still.cv, "{} vs {}", quick.cv, still.cv);
    }

    #[test]
    fn fig1_claim_holds_for_volatile_scene() {
        // "changes drastically even within a small time window like 1 s".
        let st = trace_stats(&Scenario::FourGOutdoorQuick.trace(2), 1000.0);
        assert!(
            st.max_window_swing > st.mean * 0.5,
            "1 s swing {:.2} vs mean {:.2}",
            st.max_window_swing,
            st.mean
        );
    }
}

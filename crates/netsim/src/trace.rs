//! Recorded bandwidth traces: sampling, quantiles and replay.

use serde::{Deserialize, Serialize};

use crate::process::{BandwidthProcess, ProcessConfig};

/// A bandwidth trace sampled at a fixed period, in Mbps.
///
/// Traces drive both the offline context characterization (the paper takes
/// the upper and lower quartiles of a scene's bandwidth as its "good" and
/// "poor" levels, §VII Setup) and the online emulation/field replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthTrace {
    dt_ms: f64,
    samples: Vec<f64>,
}

impl BandwidthTrace {
    /// Wraps raw samples with their sampling period.
    ///
    /// # Panics
    ///
    /// Panics if `dt_ms` is not positive or `samples` is empty.
    pub fn new(dt_ms: f64, samples: Vec<f64>) -> Self {
        assert!(dt_ms > 0.0, "sampling period must be positive");
        assert!(!samples.is_empty(), "trace must contain samples");
        Self { dt_ms, samples }
    }

    /// Synthesizes a trace of `duration_ms` from a process config.
    pub fn synthesize(cfg: ProcessConfig, duration_ms: f64, dt_ms: f64, seed: u64) -> Self {
        assert!(duration_ms >= dt_ms, "duration shorter than one sample");
        let mut process = BandwidthProcess::new(cfg, seed);
        // Burn-in so the trace starts in steady state.
        for _ in 0..50 {
            process.step(dt_ms / 1000.0);
        }
        let n = (duration_ms / dt_ms).ceil() as usize;
        let samples = (0..n).map(|_| process.step(dt_ms / 1000.0)).collect();
        Self { dt_ms, samples }
    }

    /// Sampling period (ms).
    pub fn dt_ms(&self) -> f64 {
        self.dt_ms
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty (never true for constructed traces).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Trace duration (ms).
    pub fn duration_ms(&self) -> f64 {
        self.samples.len() as f64 * self.dt_ms
    }

    /// The raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Bandwidth at absolute time `t_ms`, clamping beyond either end.
    pub fn at_ms(&self, t_ms: f64) -> f64 {
        if t_ms <= 0.0 {
            return self.samples[0];
        }
        let idx = ((t_ms / self.dt_ms) as usize).min(self.samples.len() - 1);
        self.samples[idx]
    }

    /// Mean bandwidth.
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// Empirical quantile `q ∈ [0, 1]` (nearest-rank).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    }

    /// The paper's two bandwidth types for a context: `(poor, good)` =
    /// (lower quartile, upper quartile).
    pub fn quartile_levels(&self) -> (f64, f64) {
        (self.quantile(0.25), self.quantile(0.75))
    }

    /// Splits the trace at `t_ms` into `(before, after)` — e.g. a
    /// characterization half and a held-out execution half.
    ///
    /// # Panics
    ///
    /// Panics unless the split leaves at least one sample on each side.
    pub fn split_at_ms(&self, t_ms: f64) -> (BandwidthTrace, BandwidthTrace) {
        let idx = (t_ms / self.dt_ms).round() as usize;
        assert!(
            idx >= 1 && idx < self.samples.len(),
            "split must leave samples on both sides"
        );
        (
            BandwidthTrace::new(self.dt_ms, self.samples[..idx].to_vec()),
            BandwidthTrace::new(self.dt_ms, self.samples[idx..].to_vec()),
        )
    }
}

/// A replay cursor over a trace, advancing in wall-clock milliseconds.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a BandwidthTrace,
    t_ms: f64,
}

impl<'a> TraceCursor<'a> {
    /// Starts a cursor at t = 0.
    pub fn new(trace: &'a BandwidthTrace) -> Self {
        Self { trace, t_ms: 0.0 }
    }

    /// Current time (ms).
    pub fn time_ms(&self) -> f64 {
        self.t_ms
    }

    /// Bandwidth at the current position.
    pub fn bandwidth(&self) -> f64 {
        self.trace.at_ms(self.t_ms)
    }

    /// Advances by `dt_ms` (e.g. the latency a block just took).
    pub fn advance(&mut self, dt_ms: f64) {
        assert!(dt_ms >= 0.0, "cannot rewind a trace cursor");
        self.t_ms += dt_ms;
    }

    /// Whether the cursor ran past the end of the trace.
    pub fn exhausted(&self) -> bool {
        self.t_ms >= self.trace.duration_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(v: f64, n: usize) -> BandwidthTrace {
        BandwidthTrace::new(100.0, vec![v; n])
    }

    #[test]
    fn at_ms_indexes_and_clamps() {
        let t = BandwidthTrace::new(100.0, vec![1.0, 2.0, 3.0]);
        assert_eq!(t.at_ms(0.0), 1.0);
        assert_eq!(t.at_ms(150.0), 2.0);
        assert_eq!(t.at_ms(1e9), 3.0);
        assert_eq!(t.at_ms(-5.0), 1.0);
    }

    #[test]
    fn quantiles_ordered() {
        let t = BandwidthTrace::new(100.0, (1..=100).map(|v| v as f64).collect());
        let (poor, good) = t.quartile_levels();
        assert!(poor < good);
        assert!((poor - 25.0).abs() <= 1.0);
        assert!((good - 75.0).abs() <= 1.0);
    }

    #[test]
    fn mean_and_std_of_flat_trace() {
        let t = flat(5.0, 10);
        assert_eq!(t.mean(), 5.0);
        assert_eq!(t.std_dev(), 0.0);
    }

    #[test]
    fn cursor_advances_and_exhausts() {
        let t = BandwidthTrace::new(100.0, vec![1.0, 2.0, 3.0]);
        let mut c = TraceCursor::new(&t);
        assert_eq!(c.bandwidth(), 1.0);
        c.advance(120.0);
        assert_eq!(c.bandwidth(), 2.0);
        assert!(!c.exhausted());
        c.advance(1000.0);
        assert!(c.exhausted());
    }

    #[test]
    fn split_partitions_samples() {
        let t = BandwidthTrace::new(100.0, (0..10).map(|v| v as f64).collect());
        let (a, b) = t.split_at_ms(400.0);
        assert_eq!(a.samples(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(b.samples(), &[4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        assert_eq!(a.dt_ms(), 100.0);
    }

    #[test]
    #[should_panic(expected = "both sides")]
    fn split_rejects_degenerate_points() {
        let t = BandwidthTrace::new(100.0, vec![1.0, 2.0]);
        let _ = t.split_at_ms(0.0);
    }

    #[test]
    fn synthesize_is_deterministic() {
        let cfg = crate::process::ProcessConfig {
            mean_low: 3.0,
            mean_high: 10.0,
            reversion: 1.0,
            sigma: 1.5,
            switch_rate: 0.1,
            dropout_rate: 0.01,
            dropout_secs: 1.0,
            floor: 0.05,
        };
        let a = BandwidthTrace::synthesize(cfg, 10_000.0, 100.0, 7);
        let b = BandwidthTrace::synthesize(cfg, 10_000.0, 100.0, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn serde_roundtrip() {
        let t = BandwidthTrace::new(50.0, vec![1.5, 2.5]);
        let json = serde_json::to_string(&t).unwrap();
        let back: BandwidthTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}

//! The named real-life network scenarios of the paper's evaluation.
//!
//! Tables 3–5 evaluate under contexts like "4G (weak) indoor" or "WiFi
//! outdoor slow": a radio technology, a signal condition and a mobility
//! pattern (static / slow / quick). Each preset here maps one such context
//! to bandwidth-process parameters: weak signal ⇒ lower means and more
//! dropouts; faster motion ⇒ faster regime switching and higher volatility.

use serde::{Deserialize, Serialize};

use crate::process::ProcessConfig;
use crate::trace::BandwidthTrace;

/// A named network context from the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// "4G (weak) indoor"
    FourGWeakIndoor,
    /// "4G indoor static"
    FourGIndoorStatic,
    /// "4G indoor slow"
    FourGIndoorSlow,
    /// "4G outdoor quick"
    FourGOutdoorQuick,
    /// "WiFi (weak) indoor"
    WifiWeakIndoor,
    /// "WiFi (weak) outdoor"
    WifiWeakOutdoor,
    /// "WiFi outdoor slow"
    WifiOutdoorSlow,
}

impl Scenario {
    /// All scenarios, in the row order of Table 3 (VGG11 / Phone section).
    pub const ALL: [Scenario; 7] = [
        Scenario::FourGWeakIndoor,
        Scenario::FourGIndoorStatic,
        Scenario::FourGIndoorSlow,
        Scenario::FourGOutdoorQuick,
        Scenario::WifiWeakIndoor,
        Scenario::WifiWeakOutdoor,
        Scenario::WifiOutdoorSlow,
    ];

    /// The display name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::FourGWeakIndoor => "4G (weak) indoor",
            Scenario::FourGIndoorStatic => "4G indoor static",
            Scenario::FourGIndoorSlow => "4G indoor slow",
            Scenario::FourGOutdoorQuick => "4G outdoor quick",
            Scenario::WifiWeakIndoor => "WiFi (weak) indoor",
            Scenario::WifiWeakOutdoor => "WiFi (weak) outdoor",
            Scenario::WifiOutdoorSlow => "WiFi outdoor slow",
        }
    }

    /// Whether the context is cellular (4G) rather than WiFi.
    pub fn is_4g(self) -> bool {
        matches!(
            self,
            Scenario::FourGWeakIndoor
                | Scenario::FourGIndoorStatic
                | Scenario::FourGIndoorSlow
                | Scenario::FourGOutdoorQuick
        )
    }

    /// Whether the environment is stable (static, strong signal) — where
    /// the paper concedes its advantage over fixed partitioning shrinks.
    pub fn is_stable(self) -> bool {
        matches!(self, Scenario::FourGIndoorStatic)
    }

    /// Bandwidth-process parameters for this context.
    pub fn process_config(self) -> ProcessConfig {
        match self {
            Scenario::FourGWeakIndoor => ProcessConfig {
                mean_low: 1.2,
                mean_high: 4.5,
                reversion: 0.9,
                sigma: 1.2,
                switch_rate: 0.06,
                dropout_rate: 0.03,
                dropout_secs: 1.2,
                floor: 0.05,
            },
            Scenario::FourGIndoorStatic => ProcessConfig {
                mean_low: 8.0,
                mean_high: 10.0,
                reversion: 1.6,
                sigma: 0.8,
                switch_rate: 0.01,
                dropout_rate: 0.003,
                dropout_secs: 0.6,
                floor: 0.3,
            },
            Scenario::FourGIndoorSlow => ProcessConfig {
                mean_low: 4.0,
                mean_high: 9.0,
                reversion: 1.0,
                sigma: 1.8,
                switch_rate: 0.08,
                dropout_rate: 0.015,
                dropout_secs: 0.8,
                floor: 0.15,
            },
            Scenario::FourGOutdoorQuick => ProcessConfig {
                mean_low: 2.0,
                mean_high: 18.0,
                reversion: 0.8,
                sigma: 4.5,
                switch_rate: 0.30,
                dropout_rate: 0.05,
                dropout_secs: 0.7,
                floor: 0.1,
            },
            Scenario::WifiWeakIndoor => ProcessConfig {
                mean_low: 2.5,
                mean_high: 12.0,
                reversion: 1.1,
                sigma: 2.8,
                switch_rate: 0.12,
                dropout_rate: 0.04,
                dropout_secs: 1.0,
                floor: 0.1,
            },
            Scenario::WifiWeakOutdoor => ProcessConfig {
                mean_low: 1.8,
                mean_high: 10.0,
                reversion: 1.0,
                sigma: 3.2,
                switch_rate: 0.15,
                dropout_rate: 0.05,
                dropout_secs: 1.1,
                floor: 0.08,
            },
            Scenario::WifiOutdoorSlow => ProcessConfig {
                mean_low: 8.0,
                mean_high: 20.0,
                reversion: 1.0,
                sigma: 3.5,
                switch_rate: 0.10,
                dropout_rate: 0.02,
                dropout_secs: 0.8,
                floor: 0.3,
            },
        }
    }

    /// Synthesizes this scenario's reference trace (60 s at 10 Hz),
    /// deterministic for a given `seed`.
    pub fn trace(self, seed: u64) -> BandwidthTrace {
        let _span = cadmc_telemetry::span!(
            "netsim.trace",
            scenario = self.name(),
            seed = seed,
        );
        BandwidthTrace::synthesize(self.process_config(), 60_000.0, 100.0, seed ^ self.seed_salt())
    }

    /// Stable position of this scenario in [`Scenario::ALL`].
    pub fn index(self) -> usize {
        match self {
            Scenario::FourGWeakIndoor => 0,
            Scenario::FourGIndoorStatic => 1,
            Scenario::FourGIndoorSlow => 2,
            Scenario::FourGOutdoorQuick => 3,
            Scenario::WifiWeakIndoor => 4,
            Scenario::WifiWeakOutdoor => 5,
            Scenario::WifiOutdoorSlow => 6,
        }
    }

    fn seed_salt(self) -> u64 {
        // Distinct streams per scenario even with the same user seed.
        self.index() as u64 * 0x9e37_79b9
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_rows() {
        assert_eq!(Scenario::FourGWeakIndoor.name(), "4G (weak) indoor");
        assert_eq!(Scenario::WifiOutdoorSlow.name(), "WiFi outdoor slow");
    }

    #[test]
    fn weak_contexts_have_lower_means() {
        let weak = Scenario::FourGWeakIndoor.trace(1).mean();
        let strong = Scenario::FourGIndoorStatic.trace(1).mean();
        assert!(weak < strong, "weak {weak} vs static {strong}");
    }

    #[test]
    fn quick_mobility_is_most_volatile() {
        let quick = Scenario::FourGOutdoorQuick.trace(2).std_dev();
        let static_ = Scenario::FourGIndoorStatic.trace(2).std_dev();
        assert!(
            quick > 2.0 * static_,
            "quick σ={quick:.2} static σ={static_:.2}"
        );
    }

    #[test]
    fn static_context_has_tight_quartiles() {
        let t = Scenario::FourGIndoorStatic.trace(3);
        let (poor, good) = t.quartile_levels();
        assert!(good - poor < 4.0, "static quartile spread {:.2}", good - poor);
        let t2 = Scenario::FourGOutdoorQuick.trace(3);
        let (p2, g2) = t2.quartile_levels();
        assert!(g2 - p2 > good - poor, "quick should spread more");
    }

    #[test]
    fn traces_differ_across_scenarios_with_same_seed() {
        let a = Scenario::WifiWeakIndoor.trace(9);
        let b = Scenario::WifiWeakOutdoor.trace(9);
        assert_ne!(a, b);
    }

    #[test]
    fn all_traces_are_positive() {
        for s in Scenario::ALL {
            let t = s.trace(5);
            assert!(t.samples().iter().all(|&v| v > 0.0), "{s} has non-positive samples");
        }
    }
}

//! Property-based tests of the algebra and autodiff invariants.

#![cfg(test)]

use proptest::prelude::*;

use crate::gradcheck::assert_gradients_close;
use crate::{Graph, Matrix, ParamSet};

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Matrix multiplication distributes over addition.
    #[test]
    fn matmul_distributes(
        a in arb_matrix(3, 3),
        b in arb_matrix(3, 3),
        c in arb_matrix(3, 3),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Softmax rows are probability distributions regardless of input.
    #[test]
    fn softmax_is_distribution(a in arb_matrix(4, 6)) {
        let s = a.softmax_rows();
        for r in 0..4 {
            let row = s.row(r);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    /// hcat then slice_cols recovers the parts.
    #[test]
    fn hcat_slice_roundtrip(a in arb_matrix(3, 2), b in arb_matrix(3, 5)) {
        let joined = a.hcat(&b);
        prop_assert_eq!(joined.slice_cols(0, 2), a);
        prop_assert_eq!(joined.slice_cols(2, 5), b);
    }

    /// Analytic gradients of a random two-layer tanh network match finite
    /// differences.
    #[test]
    fn random_mlp_gradcheck(seed in 0u64..200) {
        let mut params = ParamSet::new();
        let w1 = params.insert("w1", Matrix::seeded_xavier(3, 5, seed));
        let w2 = params.insert("w2", Matrix::seeded_xavier(5, 2, seed ^ 1));
        let x = Matrix::seeded_xavier(4, 3, seed ^ 2);
        let run = |p: &ParamSet| -> (f32, Option<cadmc_grad::G>) {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let w1v = g.param(p, p.id("w1").expect("registered"));
            let w2v = g.param(p, p.id("w2").expect("registered"));
            let h = g.matmul(xv, w1v);
            let h = g.tanh(h);
            let out = g.matmul(h, w2v);
            let sq = g.square(out);
            let loss = g.mean_all(sq);
            let v = g.value(loss).at(0, 0);
            (v, Some(g.backward(loss)))
        };
        let (_, grads) = run(&params);
        assert_gradients_close(
            &params,
            &[w1, w2],
            &grads.expect("gradients computed"),
            |p| run(p).0,
            3e-2,
        );
    }

    /// Gradient of a sum of params w.r.t. each param is all-ones — and
    /// merging duplicates accumulates.
    #[test]
    fn param_reuse_accumulates(rows in 1usize..4, cols in 1usize..4) {
        let mut params = ParamSet::new();
        let p = params.insert("p", Matrix::zeros(rows, cols));
        let mut g = Graph::new();
        let a = g.param(&params, p);
        let b = g.param(&params, p);
        let s = g.add(a, b);
        let loss = g.sum_all(s);
        let grads = g.backward(loss);
        let gp = grads.get(p).expect("gradient exists");
        for &v in gp.data() {
            prop_assert_eq!(v, 2.0);
        }
    }
}

/// Tiny helper module so the closure type above can name the gradient type
/// without importing it at top level.
mod cadmc_grad {
    pub type G = crate::Gradients;
}

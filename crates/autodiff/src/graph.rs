//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records operations eagerly: every op both computes its value
//! (so intermediate results — e.g. policy logits to sample from — can be read
//! immediately) and appends a node to the tape. [`Graph::backward`] then
//! walks the tape in reverse, producing gradients for every parameter node.
//!
//! The op set is deliberately matched to what the higher layers need:
//! dense algebra and activations for LSTM policy controllers, softmax losses
//! for REINFORCE and knowledge distillation, and im2col / pooling ops for
//! the small-CNN runtime.

use std::collections::HashMap;

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamSet};

/// Handle to a node in a [`Graph`] tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

/// Convolution geometry for [`Graph::im2col`] and the NHWC/NCHW permutations.
///
/// Inputs are matrices of shape `(batch, channels * height * width)` in
/// NCHW element order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride (same in both spatial dims).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvGeom {
    /// Output height after the convolution/pool.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (kernel larger than the padded
    /// input, or zero stride).
    pub fn out_h(&self) -> usize {
        assert!(self.stride > 0, "stride must be positive");
        assert!(
            self.height + 2 * self.pad >= self.kernel,
            "kernel {} exceeds padded height {}",
            self.kernel,
            self.height + 2 * self.pad
        );
        (self.height + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output width after the convolution/pool.
    pub fn out_w(&self) -> usize {
        assert!(self.stride > 0, "stride must be positive");
        assert!(
            self.width + 2 * self.pad >= self.kernel,
            "kernel {} exceeds padded width {}",
            self.kernel,
            self.width + 2 * self.pad
        );
        (self.width + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Flattened input width `channels * height * width`.
    pub fn input_len(&self) -> usize {
        self.channels * self.height * self.width
    }
}

#[derive(Debug)]
enum Op {
    /// Leaf holding a constant (no gradient flows out).
    Constant,
    /// Leaf bound to a parameter in a [`ParamSet`].
    Param(ParamId),
    Add(VarId, VarId),
    Sub(VarId, VarId),
    Hadamard(VarId, VarId),
    Scale(VarId, f32),
    AddScalar(VarId),
    MatMul(VarId, VarId),
    Transpose(VarId),
    Sigmoid(VarId),
    Tanh(VarId),
    Relu(VarId),
    Square(VarId),
    AddBroadcastRow(VarId, VarId),
    HCat(VarId, VarId),
    SliceCols(VarId, usize),
    /// Fused `hcat(x, h) * w + b` (one LSTM gate pre-activation) — one
    /// node instead of three. `z` caches the concatenated input row for
    /// the weight gradient. Bit-identical to the HCat → MatMul →
    /// AddBroadcastRow chain it replaces in both directions.
    ConcatMatMulBias {
        x: VarId,
        h: VarId,
        w: VarId,
        b: VarId,
        z: Matrix,
    },
    /// Fused LSTM cell state `σ(gates_f) ∘ c_prev + σ(gates_i) ∘
    /// tanh(gates_g)` — one node instead of nine. The activated gate
    /// rows are cached for the backward pass. Gradient contributions
    /// scatter into disjoint column ranges of `gates`, so collapsing the
    /// per-gate nodes cannot change any sum.
    LstmCellState {
        gates: VarId,
        c_prev: VarId,
        i: Matrix,
        f: Matrix,
        g: Matrix,
    },
    /// Fused LSTM output `σ(gates_o) ∘ tanh(c)` — one node instead of
    /// four, with both activations cached for the backward pass.
    LstmOutGate {
        gates: VarId,
        c: VarId,
        o: Matrix,
        tanh_c: Matrix,
    },
    MeanAll(VarId),
    SumAll(VarId),
    SoftmaxCrossEntropy {
        logits: VarId,
        targets: Matrix,
        softmax: Matrix,
    },
    PickLogSoftmax {
        logits: VarId,
        picks: Vec<usize>,
        softmax: Matrix,
    },
    EntropyRows {
        logits: VarId,
        softmax: Matrix,
    },
    Im2Col {
        input: VarId,
        geom: ConvGeom,
        batch: usize,
    },
    NhwcToNchw {
        input: VarId,
        batch: usize,
        out_h: usize,
        out_w: usize,
        channels: usize,
    },
    MaxPool {
        input: VarId,
        argmax: Vec<usize>,
        in_cols: usize,
    },
}

#[derive(Debug)]
struct Node {
    value: Matrix,
    op: Op,
}

/// Gradients produced by [`Graph::backward`], keyed by parameter.
#[derive(Debug, Default)]
pub struct Gradients {
    by_param: HashMap<ParamId, Matrix>,
}

impl Gradients {
    /// Gradient for `param`, if it participated in the graph.
    pub fn get(&self, param: ParamId) -> Option<&Matrix> {
        self.by_param.get(&param)
    }

    /// Iterates over `(param, gradient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.by_param.iter().map(|(&k, v)| (k, v))
    }

    /// Number of parameters with gradients.
    pub fn len(&self) -> usize {
        self.by_param.len()
    }

    /// Whether no gradients were produced.
    pub fn is_empty(&self) -> bool {
        self.by_param.is_empty()
    }

    /// Merges another gradient set into this one (summing overlaps).
    pub fn merge(&mut self, other: Gradients) {
        for (k, v) in other.by_param {
            match self.by_param.get_mut(&k) {
                Some(acc) => acc.add_assign(&v),
                None => {
                    self.by_param.insert(k, v);
                }
            }
        }
    }

    /// Global L2 norm across all gradients.
    pub fn global_norm(&self) -> f32 {
        self.by_param
            .values()
            .map(|m| {
                let n = m.frobenius_norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients so the global norm does not exceed `max_norm`.
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for m in self.by_param.values_mut() {
                for v in m.data_mut() {
                    *v *= s;
                }
            }
        }
    }
}

/// An eager autodiff tape.
///
/// # Examples
///
/// ```
/// use cadmc_autodiff::{Graph, Matrix, ParamSet};
///
/// let mut params = ParamSet::new();
/// let w = params.insert("w", Matrix::from_rows(&[&[2.0]]));
/// let mut g = Graph::new();
/// let x = g.constant(Matrix::from_rows(&[&[3.0]]));
/// let wv = g.param(&params, w);
/// let y = g.matmul(x, wv);
/// let loss = g.mean_all(y);
/// let grads = g.backward(loss);
/// // d(3w)/dw = 3
/// assert_eq!(grads.get(w).unwrap().at(0, 0), 3.0);
/// ```
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Reads the computed value of a node.
    pub fn value(&self, id: VarId) -> &Matrix {
        &self.nodes[id.0].value
    }

    fn push(&mut self, value: Matrix, op: Op) -> VarId {
        self.nodes.push(Node { value, op });
        VarId(self.nodes.len() - 1)
    }

    /// Adds a constant leaf (no gradient flows into it).
    pub fn constant(&mut self, value: Matrix) -> VarId {
        self.push(value, Op::Constant)
    }

    /// Adds a leaf bound to `param`, cloning its current value.
    pub fn param(&mut self, set: &ParamSet, param: ParamId) -> VarId {
        self.push(set.value(param).clone(), Op::Param(param))
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn hadamard(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).hadamard(self.value(b));
        self.push(v, Op::Hadamard(a, b))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: VarId, s: f32) -> VarId {
        let v = self.value(a).scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&mut self, a: VarId, s: f32) -> VarId {
        let v = self.value(a).map(|x| x + s);
        self.push(v, Op::AddScalar(a))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: VarId) -> VarId {
        let v = self.value(a).transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Elementwise square.
    pub fn square(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x * x);
        self.push(v, Op::Square(a))
    }

    /// Adds a `1 x cols` bias row to every row of `a`.
    pub fn add_broadcast_row(&mut self, a: VarId, bias: VarId) -> VarId {
        let v = self.value(a).add_row_broadcast(self.value(bias));
        self.push(v, Op::AddBroadcastRow(a, bias))
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn hcat(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).hcat(self.value(b));
        self.push(v, Op::HCat(a, b))
    }

    /// Column slice `[start, start+width)`.
    pub fn slice_cols(&mut self, a: VarId, start: usize, width: usize) -> VarId {
        let v = self.value(a).slice_cols(start, width);
        self.push(v, Op::SliceCols(a, start))
    }

    /// Fused `hcat(x, h) * w + b`, recording a single tape node — the
    /// LSTM gate pre-activation. Forward values and backward gradients
    /// are bit-identical to [`hcat`] → [`matmul`] → [`add_broadcast_row`].
    ///
    /// [`hcat`]: Graph::hcat
    /// [`matmul`]: Graph::matmul
    /// [`add_broadcast_row`]: Graph::add_broadcast_row
    pub fn concat_matmul_bias(&mut self, x: VarId, h: VarId, w: VarId, b: VarId) -> VarId {
        let z = self.value(x).hcat(self.value(h));
        let mut v = z.matmul(self.value(w));
        v.add_row_broadcast_assign(self.value(b));
        self.push(v, Op::ConcatMatMulBias { x, h, w, b, z })
    }

    /// Fused LSTM cell state `σ(f̂) ∘ c_prev + σ(î) ∘ tanh(ĝ)` where
    /// `î, f̂, ĝ` are the first, second and fourth `hidden`-wide column
    /// blocks of `gates` (the standard `[i f o g]` packing). One tape
    /// node, bit-identical to the slice/activation/hadamard/add chain.
    pub fn lstm_cell_state(&mut self, gates: VarId, c_prev: VarId, hidden: usize) -> VarId {
        let gv = self.value(gates);
        let i = gv.slice_cols(0, hidden).map(|x| 1.0 / (1.0 + (-x).exp()));
        let f = gv.slice_cols(hidden, hidden).map(|x| 1.0 / (1.0 + (-x).exp()));
        let g = gv.slice_cols(3 * hidden, hidden).map(f32::tanh);
        // Single pass over the gate blocks; each element is the same
        // left-associated `(f∘c_prev) + (i∘g)` expression the hadamard →
        // hadamard → add chain computes, so the bits match.
        let cp = self.value(c_prev);
        let mut vdata = Vec::with_capacity(i.rows() * i.cols());
        for r in 0..i.rows() {
            for c in 0..i.cols() {
                vdata.push(f.at(r, c) * cp.at(r, c) + i.at(r, c) * g.at(r, c));
            }
        }
        let v = Matrix::from_vec(i.rows(), i.cols(), vdata);
        self.push(v, Op::LstmCellState { gates, c_prev, i, f, g })
    }

    /// Fused LSTM output `σ(ô) ∘ tanh(c)` where `ô` is the third
    /// `hidden`-wide column block of `gates`. One tape node,
    /// bit-identical to the slice/sigmoid/tanh/hadamard chain.
    pub fn lstm_out_gate(&mut self, gates: VarId, c: VarId, hidden: usize) -> VarId {
        let o = self
            .value(gates)
            .slice_cols(2 * hidden, hidden)
            .map(|x| 1.0 / (1.0 + (-x).exp()));
        let tanh_c = self.value(c).map(f32::tanh);
        let v = o.hadamard(&tanh_c);
        self.push(v, Op::LstmOutGate { gates, c, o, tanh_c })
    }

    /// Mean over all elements, producing a `1x1` value.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let v = Matrix::from_vec(1, 1, vec![self.value(a).mean()]);
        self.push(v, Op::MeanAll(a))
    }

    /// Sum over all elements, producing a `1x1` value.
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let v = Matrix::from_vec(1, 1, vec![self.value(a).sum()]);
        self.push(v, Op::SumAll(a))
    }

    /// Mean softmax cross-entropy between `logits` rows and soft `targets`
    /// rows (each a probability distribution), producing a `1x1` loss.
    ///
    /// Soft targets make this usable for both hard-label classification
    /// (one-hot rows) and knowledge distillation (teacher softmax rows).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn softmax_cross_entropy(&mut self, logits: VarId, targets: Matrix) -> VarId {
        let lv = self.value(logits);
        assert_eq!(lv.shape(), targets.shape(), "cross-entropy shape mismatch");
        let softmax = lv.softmax_rows();
        let mut loss = 0.0;
        for r in 0..lv.rows() {
            for c in 0..lv.cols() {
                let p = softmax.at(r, c).max(1e-12);
                loss -= targets.at(r, c) * p.ln();
            }
        }
        loss /= lv.rows() as f32;
        let v = Matrix::from_vec(1, 1, vec![loss]);
        self.push(
            v,
            Op::SoftmaxCrossEntropy {
                logits,
                targets,
                softmax,
            },
        )
    }

    /// For each row `i` of `logits`, the log of the softmax probability of
    /// class `picks[i]`, producing an `N x 1` column of log-probabilities.
    ///
    /// This is the building block for REINFORCE: multiply by advantages and
    /// sum to get the surrogate objective.
    ///
    /// # Panics
    ///
    /// Panics if `picks.len()` differs from the number of rows or any pick
    /// is out of range.
    pub fn pick_log_softmax(&mut self, logits: VarId, picks: &[usize]) -> VarId {
        let lv = self.value(logits);
        assert_eq!(picks.len(), lv.rows(), "one pick per logits row required");
        let softmax = lv.softmax_rows();
        let mut out = Matrix::zeros(lv.rows(), 1);
        for (r, &p) in picks.iter().enumerate() {
            assert!(p < lv.cols(), "pick {p} out of range for {} classes", lv.cols());
            *out.at_mut(r, 0) = softmax.at(r, p).max(1e-12).ln();
        }
        self.push(
            out,
            Op::PickLogSoftmax {
                logits,
                picks: picks.to_vec(),
                softmax,
            },
        )
    }

    /// Mean Shannon entropy of the row-wise softmax of `logits`, as a
    /// `1x1` node — the entropy-bonus term of regularized policy-gradient
    /// objectives. Rows with masked (−∞-ish) entries contribute only their
    /// live options, since masked options carry no probability mass.
    pub fn entropy_rows(&mut self, logits: VarId) -> VarId {
        let lv = self.value(logits);
        let softmax = lv.softmax_rows();
        let mut total = 0.0f32;
        for r in 0..softmax.rows() {
            for c in 0..softmax.cols() {
                let p = softmax.at(r, c);
                if p > 1e-12 {
                    total -= p * p.ln();
                }
            }
        }
        let v = Matrix::from_vec(1, 1, vec![total / softmax.rows() as f32]);
        self.push(v, Op::EntropyRows { logits, softmax })
    }

    /// im2col: unfolds conv patches of an NCHW batch.
    ///
    /// `input` must have shape `(batch, geom.input_len())`; the result has
    /// shape `(batch * out_h * out_w, channels * kernel * kernel)`, ready to
    /// be multiplied by a `(channels*k*k, out_channels)` weight matrix.
    ///
    /// # Panics
    ///
    /// Panics if the input width does not match the geometry.
    pub fn im2col(&mut self, input: VarId, geom: ConvGeom) -> VarId {
        let iv = self.value(input);
        assert_eq!(
            iv.cols(),
            geom.input_len(),
            "im2col input width mismatch: {} vs {}",
            iv.cols(),
            geom.input_len()
        );
        let batch = iv.rows();
        let v = im2col_forward(iv, geom);
        self.push(v, Op::Im2Col { input, geom, batch })
    }

    /// Permutes a `(batch*out_h*out_w, channels)` matrix (NHWC rows, the
    /// natural output of `im2col` matmul) into `(batch, channels*out_h*out_w)`
    /// NCHW layout.
    pub fn nhwc_to_nchw(
        &mut self,
        input: VarId,
        batch: usize,
        out_h: usize,
        out_w: usize,
    ) -> VarId {
        let iv = self.value(input);
        assert_eq!(iv.rows(), batch * out_h * out_w, "nhwc_to_nchw row mismatch");
        let channels = iv.cols();
        let v = nhwc_to_nchw_forward(iv, batch, out_h, out_w);
        self.push(
            v,
            Op::NhwcToNchw {
                input,
                batch,
                out_h,
                out_w,
                channels,
            },
        )
    }

    /// Max pooling over an NCHW batch described by `geom` (where
    /// `geom.kernel`/`geom.stride` are the pool window and stride).
    ///
    /// # Panics
    ///
    /// Panics if the input width does not match the geometry.
    pub fn max_pool(&mut self, input: VarId, geom: ConvGeom) -> VarId {
        let iv = self.value(input);
        assert_eq!(iv.cols(), geom.input_len(), "max_pool input width mismatch");
        let (v, argmax) = max_pool_forward(iv, geom);
        let in_cols = iv.cols();
        self.push(v, Op::MaxPool { input, argmax, in_cols })
    }

    /// Runs reverse-mode differentiation from `loss` (which must be `1x1`)
    /// and returns per-parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a `1x1` node.
    pub fn backward(&self, loss: VarId) -> Gradients {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward expects a scalar (1x1) loss node"
        );
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));
        let mut out = Gradients::default();

        for idx in (0..=loss.0).rev() {
            let Some(g) = grads[idx].take() else { continue };
            match &self.nodes[idx].op {
                Op::Constant => {}
                Op::Param(p) => match out.by_param.get_mut(p) {
                    Some(acc) => acc.add_assign(&g),
                    None => {
                        out.by_param.insert(*p, g);
                    }
                },
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g.scale(-1.0));
                }
                Op::Hadamard(a, b) => {
                    let ga = g.hadamard(self.value(*b));
                    let gb = g.hadamard(self.value(*a));
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Scale(a, s) => accumulate(&mut grads, *a, g.scale(*s)),
                Op::AddScalar(a) => accumulate(&mut grads, *a, g),
                Op::MatMul(a, b) => {
                    let ga = g.matmul_bt(self.value(*b));
                    let gb = self.value(*a).matmul_at(&g);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Transpose(a) => accumulate(&mut grads, *a, g.transpose()),
                Op::Sigmoid(a) => {
                    let y = &self.nodes[idx].value;
                    let gx = g.zip_map(y, |gv, yv| gv * yv * (1.0 - yv));
                    accumulate(&mut grads, *a, gx);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[idx].value;
                    let gx = g.zip_map(y, |gv, yv| gv * (1.0 - yv * yv));
                    accumulate(&mut grads, *a, gx);
                }
                Op::Relu(a) => {
                    let x = self.value(*a);
                    let gx = g.zip_map(x, |gv, xv| if xv > 0.0 { gv } else { 0.0 });
                    accumulate(&mut grads, *a, gx);
                }
                Op::Square(a) => {
                    let x = self.value(*a);
                    let gx = g.zip_map(x, |gv, xv| gv * 2.0 * xv);
                    accumulate(&mut grads, *a, gx);
                }
                Op::AddBroadcastRow(a, bias) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *bias, g.sum_rows());
                }
                Op::HCat(a, b) => {
                    let wa = self.value(*a).cols();
                    let wb = self.value(*b).cols();
                    accumulate(&mut grads, *a, g.slice_cols(0, wa));
                    accumulate(&mut grads, *b, g.slice_cols(wa, wb));
                }
                Op::SliceCols(a, start) => {
                    let src = self.value(*a);
                    let mut gx = Matrix::zeros(src.rows(), src.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            *gx.at_mut(r, start + c) += g.at(r, c);
                        }
                    }
                    accumulate(&mut grads, *a, gx);
                }
                Op::ConcatMatMulBias { x, h, w, b, z } => {
                    // Bias and weight gradients exactly as the
                    // AddBroadcastRow and MatMul arms would produce them;
                    // the input gradient is sliced out of `g * w^T`
                    // exactly as the HCat arm would. The slice headed for
                    // a constant input (the embedded layer features) is
                    // skipped outright — constants discard gradients.
                    accumulate(&mut grads, *b, g.sum_rows());
                    let gw = z.matmul_at(&g);
                    accumulate(&mut grads, *w, gw);
                    let wx = self.value(*x).cols();
                    let wh = self.value(*h).cols();
                    if matches!(self.nodes[x.0].op, Op::Constant) {
                        // Only the recurrent slice of `g * w^T` is ever
                        // consumed, so compute just those columns.
                        let gh = g.matmul_bt_cols(self.value(*w), wx, wh);
                        accumulate(&mut grads, *h, gh);
                    } else {
                        let gz = g.matmul_bt(self.value(*w));
                        accumulate(&mut grads, *x, gz.slice_cols(0, wx));
                        accumulate(&mut grads, *h, gz.slice_cols(wx, wh));
                    }
                }
                Op::LstmCellState {
                    gates,
                    c_prev,
                    i,
                    f,
                    g: gate_g,
                } => {
                    // Per-element expressions match the decomposed
                    // hadamard → sigmoid/tanh → slice-scatter chain
                    // (left-associated products, `+=` into zeros). The
                    // three gate ranges are disjoint columns of `gates`,
                    // so fusing their scatters cannot change any sum.
                    let src = self.value(*gates);
                    let hidden = i.cols();
                    let mut gx = Matrix::zeros(src.rows(), src.cols());
                    for r in 0..g.rows() {
                        for c in 0..hidden {
                            let gv = g.at(r, c);
                            let iv = i.at(r, c);
                            let fv = f.at(r, c);
                            let gg = gate_g.at(r, c);
                            *gx.at_mut(r, c) += gv * gg * iv * (1.0 - iv);
                            *gx.at_mut(r, hidden + c) +=
                                gv * self.value(*c_prev).at(r, c) * fv * (1.0 - fv);
                            *gx.at_mut(r, 3 * hidden + c) += gv * iv * (1.0 - gg * gg);
                        }
                    }
                    accumulate(&mut grads, *gates, gx);
                    accumulate(&mut grads, *c_prev, g.hadamard(f));
                }
                Op::LstmOutGate {
                    gates,
                    c,
                    o,
                    tanh_c,
                } => {
                    let src = self.value(*gates);
                    let hidden = o.cols();
                    let mut gx = Matrix::zeros(src.rows(), src.cols());
                    for r in 0..g.rows() {
                        for col in 0..hidden {
                            let gv = g.at(r, col);
                            let ov = o.at(r, col);
                            *gx.at_mut(r, 2 * hidden + col) +=
                                gv * tanh_c.at(r, col) * ov * (1.0 - ov);
                        }
                    }
                    accumulate(&mut grads, *gates, gx);
                    let gc = g
                        .hadamard(o)
                        .zip_map(tanh_c, |gv, yv| gv * (1.0 - yv * yv));
                    accumulate(&mut grads, *c, gc);
                }
                Op::MeanAll(a) => {
                    let src = self.value(*a);
                    let per = g.at(0, 0) / src.len() as f32;
                    accumulate(&mut grads, *a, Matrix::full(src.rows(), src.cols(), per));
                }
                Op::SumAll(a) => {
                    let src = self.value(*a);
                    accumulate(
                        &mut grads,
                        *a,
                        Matrix::full(src.rows(), src.cols(), g.at(0, 0)),
                    );
                }
                Op::SoftmaxCrossEntropy {
                    logits,
                    targets,
                    softmax,
                } => {
                    let n = softmax.rows() as f32;
                    let scale = g.at(0, 0) / n;
                    let gx = softmax.zip_map(targets, |s, t| (s - t) * scale);
                    accumulate(&mut grads, *logits, gx);
                }
                Op::PickLogSoftmax {
                    logits,
                    picks,
                    softmax,
                } => {
                    let mut gx = Matrix::zeros(softmax.rows(), softmax.cols());
                    for (r, &p) in picks.iter().enumerate() {
                        let up = g.at(r, 0);
                        for c in 0..softmax.cols() {
                            let onehot = if c == p { 1.0 } else { 0.0 };
                            *gx.at_mut(r, c) += up * (onehot - softmax.at(r, c));
                        }
                    }
                    accumulate(&mut grads, *logits, gx);
                }
                Op::EntropyRows { logits, softmax } => {
                    // dH/dz_j = -p_j (ln p_j + H_row), averaged over rows.
                    let n = softmax.rows() as f32;
                    let up = g.at(0, 0) / n;
                    let mut gx = Matrix::zeros(softmax.rows(), softmax.cols());
                    for r in 0..softmax.rows() {
                        let mut h_row = 0.0f32;
                        for c in 0..softmax.cols() {
                            let p = softmax.at(r, c);
                            if p > 1e-12 {
                                h_row -= p * p.ln();
                            }
                        }
                        for c in 0..softmax.cols() {
                            let p = softmax.at(r, c);
                            if p > 1e-12 {
                                *gx.at_mut(r, c) = -up * p * (p.ln() + h_row);
                            }
                        }
                    }
                    accumulate(&mut grads, *logits, gx);
                }
                Op::Im2Col { input, geom, batch } => {
                    let gx = im2col_backward(&g, *geom, *batch);
                    accumulate(&mut grads, *input, gx);
                }
                Op::NhwcToNchw {
                    input,
                    batch,
                    out_h,
                    out_w,
                    channels,
                } => {
                    let gx = nchw_to_nhwc_forward(&g, *batch, *out_h, *out_w, *channels);
                    accumulate(&mut grads, *input, gx);
                }
                Op::MaxPool {
                    input,
                    argmax,
                    in_cols,
                } => {
                    let src_rows = self.value(*input).rows();
                    let mut gx = Matrix::zeros(src_rows, *in_cols);
                    let out_cols = g.cols();
                    for r in 0..g.rows() {
                        for c in 0..out_cols {
                            let src = argmax[r * out_cols + c];
                            gx.data_mut()[r * in_cols + src] += g.at(r, c);
                        }
                    }
                    accumulate(&mut grads, *input, gx);
                }
            }
        }
        out
    }
}

fn accumulate(grads: &mut [Option<Matrix>], id: VarId, g: Matrix) {
    match &mut grads[id.0] {
        Some(acc) => acc.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

fn im2col_forward(input: &Matrix, geom: ConvGeom) -> Matrix {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let batch = input.rows();
    let patch = geom.channels * geom.kernel * geom.kernel;
    let mut out = Matrix::zeros(batch * oh * ow, patch);
    for n in 0..batch {
        let row = input.row(n);
        for oy in 0..oh {
            for ox in 0..ow {
                let orow = (n * oh + oy) * ow + ox;
                let base = orow * patch;
                for c in 0..geom.channels {
                    for ky in 0..geom.kernel {
                        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                        for kx in 0..geom.kernel {
                            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                            let dst = base + (c * geom.kernel + ky) * geom.kernel + kx;
                            if iy >= 0
                                && (iy as usize) < geom.height
                                && ix >= 0
                                && (ix as usize) < geom.width
                            {
                                let src =
                                    (c * geom.height + iy as usize) * geom.width + ix as usize;
                                out.data_mut()[dst] = row[src];
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

fn im2col_backward(grad: &Matrix, geom: ConvGeom, batch: usize) -> Matrix {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let mut out = Matrix::zeros(batch, geom.input_len());
    for n in 0..batch {
        for oy in 0..oh {
            for ox in 0..ow {
                let grow = (n * oh + oy) * ow + ox;
                for c in 0..geom.channels {
                    for ky in 0..geom.kernel {
                        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                        for kx in 0..geom.kernel {
                            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                            if iy >= 0
                                && (iy as usize) < geom.height
                                && ix >= 0
                                && (ix as usize) < geom.width
                            {
                                let gcol = (c * geom.kernel + ky) * geom.kernel + kx;
                                let dst =
                                    (c * geom.height + iy as usize) * geom.width + ix as usize;
                                *out.at_mut(n, dst) += grad.at(grow, gcol);
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

fn nhwc_to_nchw_forward(input: &Matrix, batch: usize, out_h: usize, out_w: usize) -> Matrix {
    let channels = input.cols();
    let mut out = Matrix::zeros(batch, channels * out_h * out_w);
    for n in 0..batch {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let srow = (n * out_h + oy) * out_w + ox;
                for c in 0..channels {
                    let dst = (c * out_h + oy) * out_w + ox;
                    *out.at_mut(n, dst) = input.at(srow, c);
                }
            }
        }
    }
    out
}

/// Inverse of [`nhwc_to_nchw_forward`]: used for the backward pass.
fn nchw_to_nhwc_forward(
    input: &Matrix,
    batch: usize,
    out_h: usize,
    out_w: usize,
    channels: usize,
) -> Matrix {
    let mut out = Matrix::zeros(batch * out_h * out_w, channels);
    for n in 0..batch {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let drow = (n * out_h + oy) * out_w + ox;
                for c in 0..channels {
                    let src = (c * out_h + oy) * out_w + ox;
                    *out.at_mut(drow, c) = input.at(n, src);
                }
            }
        }
    }
    out
}

fn max_pool_forward(input: &Matrix, geom: ConvGeom) -> (Matrix, Vec<usize>) {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let batch = input.rows();
    let out_cols = geom.channels * oh * ow;
    let mut out = Matrix::zeros(batch, out_cols);
    let mut argmax = vec![0usize; batch * out_cols];
    for n in 0..batch {
        let row = input.row(n);
        for c in 0..geom.channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..geom.kernel {
                        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                        if iy < 0 || iy as usize >= geom.height {
                            continue;
                        }
                        for kx in 0..geom.kernel {
                            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                            if ix < 0 || ix as usize >= geom.width {
                                continue;
                            }
                            let idx = (c * geom.height + iy as usize) * geom.width + ix as usize;
                            if row[idx] > best {
                                best = row[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = (c * oh + oy) * ow + ox;
                    *out.at_mut(n, o) = best;
                    argmax[n * out_cols + o] = best_idx;
                }
            }
        }
    }
    (out, argmax)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_lstm_ops_match_decomposed_chain_bitwise() {
        // Build a full two-step LSTM cell chain twice — once with the
        // fused ops, once with the primitive chain they replace — and
        // require bit-identical forward values and parameter gradients.
        let mut params = ParamSet::new();
        let (input, hidden) = (3, 4);
        let w_p = params.insert("w", Matrix::seeded_xavier(input + hidden, 4 * hidden, 3));
        let b_p = params.insert("b", Matrix::seeded_xavier(1, 4 * hidden, 4));
        let xs = [Matrix::seeded_xavier(1, input, 5), Matrix::seeded_xavier(1, input, 6)];

        let run = |fused: bool| {
            let mut g = Graph::new();
            let w = g.param(&params, w_p);
            let b = g.param(&params, b_p);
            let mut h = g.constant(Matrix::zeros(1, hidden));
            let mut c = g.constant(Matrix::zeros(1, hidden));
            for x_val in &xs {
                let x = g.constant(x_val.clone());
                if fused {
                    let gates = g.concat_matmul_bias(x, h, w, b);
                    c = g.lstm_cell_state(gates, c, hidden);
                    h = g.lstm_out_gate(gates, c, hidden);
                } else {
                    let z = g.hcat(x, h);
                    let gates_lin = g.matmul(z, w);
                    let gates = g.add_broadcast_row(gates_lin, b);
                    let i_lin = g.slice_cols(gates, 0, hidden);
                    let f_lin = g.slice_cols(gates, hidden, hidden);
                    let o_lin = g.slice_cols(gates, 2 * hidden, hidden);
                    let g_lin = g.slice_cols(gates, 3 * hidden, hidden);
                    let i = g.sigmoid(i_lin);
                    let f = g.sigmoid(f_lin);
                    let o = g.sigmoid(o_lin);
                    let gg = g.tanh(g_lin);
                    let fc = g.hadamard(f, c);
                    let ig = g.hadamard(i, gg);
                    c = g.add(fc, ig);
                    let c_tanh = g.tanh(c);
                    h = g.hadamard(o, c_tanh);
                }
            }
            let hc = g.hcat(h, c);
            let loss = g.sum_all(hc);
            let value = g.value(h).clone();
            (value, g.backward(loss))
        };

        let (v_fused, g_fused) = run(true);
        let (v_plain, g_plain) = run(false);
        for (a, b) in v_fused.data().iter().zip(v_plain.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for p in [w_p, b_p] {
            let gf = g_fused.get(p).expect("gradient flows");
            let gp = g_plain.get(p).expect("gradient flows");
            for (a, b) in gf.data().iter().zip(gp.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn add_and_backward() {
        let mut params = ParamSet::new();
        let p = params.insert("p", Matrix::from_rows(&[&[1.0, 2.0]]));
        let mut g = Graph::new();
        let a = g.param(&params, p);
        let b = g.constant(Matrix::from_rows(&[&[3.0, 4.0]]));
        let s = g.add(a, b);
        let loss = g.sum_all(s);
        assert_eq!(g.value(loss).at(0, 0), 10.0);
        let grads = g.backward(loss);
        assert_eq!(grads.get(p).unwrap(), &Matrix::from_rows(&[&[1.0, 1.0]]));
    }

    #[test]
    fn matmul_gradients_are_correct() {
        // loss = sum(A*B); dA = ones * B^T, dB = A^T * ones.
        let mut params = ParamSet::new();
        let pa = params.insert("a", Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let pb = params.insert("b", Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let mut g = Graph::new();
        let a = g.param(&params, pa);
        let b = g.param(&params, pb);
        let c = g.matmul(a, b);
        let loss = g.sum_all(c);
        let grads = g.backward(loss);
        assert_eq!(
            grads.get(pa).unwrap(),
            &Matrix::from_rows(&[&[11.0, 15.0], &[11.0, 15.0]])
        );
        assert_eq!(
            grads.get(pb).unwrap(),
            &Matrix::from_rows(&[&[4.0, 4.0], &[6.0, 6.0]])
        );
    }

    #[test]
    fn pick_log_softmax_matches_manual() {
        let mut g = Graph::new();
        let logits = g.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let lp = g.pick_log_softmax(logits, &[2]);
        let manual = {
            let s = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).softmax_rows();
            s.at(0, 2).ln()
        };
        assert!((g.value(lp).at(0, 0) - manual).abs() < 1e-6);
    }

    #[test]
    fn softmax_ce_gradient_direction() {
        // With target = class 0 and symmetric logits, gradient should push
        // class 0 logit up (negative gradient) and others down.
        let mut params = ParamSet::new();
        let p = params.insert("l", Matrix::from_rows(&[&[0.0, 0.0, 0.0]]));
        let mut g = Graph::new();
        let l = g.param(&params, p);
        let loss = g.softmax_cross_entropy(l, Matrix::from_rows(&[&[1.0, 0.0, 0.0]]));
        let grads = g.backward(loss);
        let gl = grads.get(p).unwrap();
        assert!(gl.at(0, 0) < 0.0);
        assert!(gl.at(0, 1) > 0.0);
        assert!(gl.at(0, 2) > 0.0);
    }

    #[test]
    fn entropy_of_uniform_is_log_n() {
        let mut g = Graph::new();
        let logits = g.constant(Matrix::zeros(2, 4));
        let h = g.entropy_rows(logits);
        assert!((g.value(h).at(0, 0) - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn entropy_gradient_pushes_toward_uniform() {
        // Maximizing entropy from a peaked distribution should lower the
        // large logit and raise the small ones.
        let mut params = ParamSet::new();
        let p = params.insert("l", Matrix::from_rows(&[&[3.0, 0.0, 0.0]]));
        let mut g = Graph::new();
        let l = g.param(&params, p);
        let h = g.entropy_rows(l);
        // Minimize -H (i.e. ascend entropy).
        let loss = g.scale(h, -1.0);
        let grads = g.backward(loss);
        let gl = grads.get(p).unwrap();
        assert!(gl.at(0, 0) > 0.0, "peak logit should be pushed down by -H loss gradient descent");
        assert!(gl.at(0, 1) < 0.0);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: im2col is a reshape.
        let geom = ConvGeom {
            channels: 2,
            height: 2,
            width: 2,
            kernel: 1,
            stride: 1,
            pad: 0,
        };
        let mut g = Graph::new();
        let x = g.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]]));
        let cols = g.im2col(x, geom);
        // rows = 4 spatial positions, cols = 2 channels.
        assert_eq!(g.value(cols).shape(), (4, 2));
        assert_eq!(g.value(cols).at(0, 0), 1.0);
        assert_eq!(g.value(cols).at(0, 1), 5.0);
        assert_eq!(g.value(cols).at(3, 0), 4.0);
        assert_eq!(g.value(cols).at(3, 1), 8.0);
    }

    #[test]
    fn max_pool_forward_and_backward_route_to_argmax() {
        let geom = ConvGeom {
            channels: 1,
            height: 2,
            width: 2,
            kernel: 2,
            stride: 2,
            pad: 0,
        };
        let mut params = ParamSet::new();
        let p = params.insert("x", Matrix::from_rows(&[&[1.0, 5.0, 3.0, 2.0]]));
        let mut g = Graph::new();
        let x = g.param(&params, p);
        let y = g.max_pool(x, geom);
        assert_eq!(g.value(y).at(0, 0), 5.0);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(
            grads.get(p).unwrap(),
            &Matrix::from_rows(&[&[0.0, 1.0, 0.0, 0.0]])
        );
    }

    #[test]
    fn nhwc_to_nchw_roundtrip_shapes() {
        let mut g = Graph::new();
        // batch=1, oh=2, ow=2, channels=3 -> rows 4, cols 3.
        let x = g.constant(Matrix::from_vec(4, 3, (0..12).map(|v| v as f32).collect()));
        let y = g.nhwc_to_nchw(x, 1, 2, 2);
        assert_eq!(g.value(y).shape(), (1, 12));
        // channel 0 plane should be elements (0,0),(1,0),(2,0),(3,0) = 0,3,6,9
        assert_eq!(&g.value(y).row(0)[..4], &[0.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn gradient_clipping_reduces_norm() {
        let mut params = ParamSet::new();
        let p = params.insert("p", Matrix::from_rows(&[&[100.0]]));
        let mut g = Graph::new();
        let a = g.param(&params, p);
        let sq = g.square(a);
        let loss = g.sum_all(sq);
        let mut grads = g.backward(loss);
        assert!(grads.global_norm() > 1.0);
        grads.clip_global_norm(1.0);
        assert!((grads.global_norm() - 1.0).abs() < 1e-4);
    }
}

//! Gradient-descent optimizers over [`ParamSet`]s.

use std::collections::HashMap;

use crate::graph::Gradients;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamSet};

/// Stochastic gradient descent with optional momentum.
///
/// # Examples
///
/// ```
/// use cadmc_autodiff::{Graph, Matrix, ParamSet, Sgd};
///
/// let mut params = ParamSet::new();
/// let w = params.insert("w", Matrix::from_rows(&[&[4.0]]));
/// let mut opt = Sgd::new(0.1);
/// // Minimize w^2 for a few steps.
/// for _ in 0..50 {
///     let mut g = Graph::new();
///     let wv = g.param(&params, w);
///     let sq = g.square(wv);
///     let loss = g.sum_all(sq);
///     let grads = g.backward(loss);
///     opt.step(&mut params, &grads);
/// }
/// assert!(params.value(w).at(0, 0).abs() < 0.01);
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<ParamId, Matrix>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum coefficient `momentum` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite or `momentum` is outside
    /// `[0, 1)`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update step.
    pub fn step(&mut self, params: &mut ParamSet, grads: &Gradients) {
        for (id, g) in grads.iter() {
            let v = self
                .velocity
                .entry(id)
                .or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            // v = momentum * v + g; w -= lr * v
            for (vi, &gi) in v.data_mut().iter_mut().zip(g.data()) {
                *vi = self.momentum * *vi + gi;
            }
            let w = params.value_mut(id);
            for (wi, &vi) in w.data_mut().iter_mut().zip(v.data()) {
                *wi -= self.lr * vi;
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: HashMap<ParamId, Matrix>,
    v: HashMap<ParamId, Matrix>,
}

impl Adam {
    /// Adam with the conventional defaults (β₁=0.9, β₂=0.999, ε=1e-8).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update step.
    pub fn step(&mut self, params: &mut ParamSet, grads: &Gradients) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (id, g) in grads.iter() {
            let m = self
                .m
                .entry(id)
                .or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            let v = self
                .v
                .entry(id)
                .or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            for ((mi, vi), &gi) in m.data_mut().iter_mut().zip(v.data_mut()).zip(g.data()) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let w = params.value_mut(id);
            for ((wi, &mi), &vi) in w.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let mhat = mi / b1t;
                let vhat = vi / b2t;
                *wi -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn quadratic_loss(params: &ParamSet, w: ParamId) -> (f32, Gradients) {
        let mut g = Graph::new();
        let wv = g.param(params, w);
        let sq = g.square(wv);
        let loss = g.sum_all(sq);
        let value = g.value(loss).at(0, 0);
        (value, g.backward(loss))
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut params = ParamSet::new();
        let w = params.insert("w", Matrix::from_rows(&[&[5.0, -3.0]]));
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            let (loss, grads) = quadratic_loss(&params, w);
            opt.step(&mut params, &grads);
            last = loss;
        }
        assert!(last < 1e-4, "did not converge: {last}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut params = ParamSet::new();
        let w = params.insert("w", Matrix::from_rows(&[&[5.0, -3.0]]));
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            let (_, grads) = quadratic_loss(&params, w);
            opt.step(&mut params, &grads);
        }
        assert!(params.value(w).max_abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn negative_lr_rejected() {
        let _ = Sgd::new(-1.0);
    }
}

//! Numeric gradient checking utilities for tests.

use crate::graph::Gradients;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamSet};

/// Result of a gradient check for one parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradient.
    pub max_abs_err: f32,
    /// Largest relative difference (normalized by magnitude, floored at 1).
    pub max_rel_err: f32,
}

/// Compares analytic gradients against central finite differences.
///
/// `loss_fn` must rebuild the computation from scratch on each call (the
/// tape is eager, so re-running it with perturbed parameters re-evaluates
/// the whole function). Returns the worst-case report over all checked
/// parameters.
///
/// # Panics
///
/// Panics if `grads` lacks a gradient for one of `ids` — that usually means
/// the parameter never entered the graph.
pub fn check_gradients(
    params: &ParamSet,
    ids: &[ParamId],
    grads: &Gradients,
    mut loss_fn: impl FnMut(&ParamSet) -> f32,
    epsilon: f32,
) -> GradCheckReport {
    let mut report = GradCheckReport {
        max_abs_err: 0.0,
        max_rel_err: 0.0,
    };
    let mut probe = params.clone();
    for &id in ids {
        let analytic = grads
            .get(id)
            .unwrap_or_else(|| panic!("no gradient for parameter {:?}", params.name(id)))
            .clone();
        let n = params.value(id).len();
        for i in 0..n {
            let orig = probe.value(id).data()[i];
            probe.value_mut(id).data_mut()[i] = orig + epsilon;
            let plus = loss_fn(&probe);
            probe.value_mut(id).data_mut()[i] = orig - epsilon;
            let minus = loss_fn(&probe);
            probe.value_mut(id).data_mut()[i] = orig;
            let numeric = (plus - minus) / (2.0 * epsilon);
            let a = analytic.data()[i];
            let abs = (a - numeric).abs();
            let rel = abs / a.abs().max(numeric.abs()).max(1.0);
            report.max_abs_err = report.max_abs_err.max(abs);
            report.max_rel_err = report.max_rel_err.max(rel);
        }
    }
    report
}

/// Convenience: asserts gradients match numerically within `tol`.
///
/// # Panics
///
/// Panics (failing the test) if the relative error exceeds `tol`.
pub fn assert_gradients_close(
    params: &ParamSet,
    ids: &[ParamId],
    grads: &Gradients,
    loss_fn: impl FnMut(&ParamSet) -> f32,
    tol: f32,
) {
    let report = check_gradients(params, ids, grads, loss_fn, 1e-2);
    assert!(
        report.max_rel_err < tol,
        "gradient check failed: max_rel_err={} max_abs_err={} (tol {tol})",
        report.max_rel_err,
        report.max_abs_err
    );
}

/// Returns a `Matrix` of ones — convenient for seeding simple losses in
/// tests and examples.
pub fn ones(rows: usize, cols: usize) -> Matrix {
    Matrix::full(rows, cols, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ConvGeom, Graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gradcheck_dense_sigmoid_chain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = ParamSet::new();
        let w1 = params.insert("w1", Matrix::xavier(3, 4, &mut rng));
        let b1 = params.insert("b1", Matrix::zeros(1, 4));
        let w2 = params.insert("w2", Matrix::xavier(4, 2, &mut rng));
        let x = Matrix::xavier(5, 3, &mut rng);
        let target = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 0.0],
        ]);

        let run = |p: &ParamSet| -> (f32, Option<Gradients>) {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let w1v = g.param(p, p.id("w1").unwrap());
            let b1v = g.param(p, p.id("b1").unwrap());
            let w2v = g.param(p, p.id("w2").unwrap());
            let h0 = g.matmul(xv, w1v);
            let h1 = g.add_broadcast_row(h0, b1v);
            let h2 = g.sigmoid(h1);
            let logits = g.matmul(h2, w2v);
            let loss = g.softmax_cross_entropy(logits, target.clone());
            let v = g.value(loss).at(0, 0);
            (v, Some(g.backward(loss)))
        };
        let (_, grads) = run(&params);
        assert_gradients_close(
            &params,
            &[w1, b1, w2],
            &grads.unwrap(),
            |p| run(p).0,
            2e-2,
        );
    }

    #[test]
    fn gradcheck_conv_pipeline() {
        let mut rng = StdRng::seed_from_u64(2);
        let geom = ConvGeom {
            channels: 2,
            height: 4,
            width: 4,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let out_ch = 3;
        let mut params = ParamSet::new();
        let w = params.insert(
            "w",
            Matrix::xavier(geom.channels * geom.kernel * geom.kernel, out_ch, &mut rng),
        );
        let x = Matrix::xavier(2, geom.input_len(), &mut rng);

        let run = |p: &ParamSet| -> (f32, Option<Gradients>) {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let wv = g.param(p, p.id("w").unwrap());
            let cols = g.im2col(xv, geom);
            let y = g.matmul(cols, wv);
            let nchw = g.nhwc_to_nchw(y, 2, geom.out_h(), geom.out_w());
            let act = g.tanh(nchw);
            let pool_geom = ConvGeom {
                channels: out_ch,
                height: geom.out_h(),
                width: geom.out_w(),
                kernel: 2,
                stride: 2,
                pad: 0,
            };
            let pooled = g.max_pool(act, pool_geom);
            let loss = g.mean_all(pooled);
            let v = g.value(loss).at(0, 0);
            (v, Some(g.backward(loss)))
        };
        let (_, grads) = run(&params);
        assert_gradients_close(&params, &[w], &grads.unwrap(), |p| run(p).0, 2e-2);
    }

    #[test]
    fn gradcheck_pick_log_softmax() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = ParamSet::new();
        let l = params.insert("l", Matrix::xavier(3, 5, &mut rng));
        let picks = vec![0usize, 3, 4];
        let adv = Matrix::from_rows(&[&[1.5], &[-0.5], &[2.0]]);

        let run = |p: &ParamSet| -> (f32, Option<Gradients>) {
            let mut g = Graph::new();
            let lv = g.param(p, p.id("l").unwrap());
            let lp = g.pick_log_softmax(lv, &picks);
            let advv = g.constant(adv.clone());
            let weighted = g.hadamard(lp, advv);
            let sum = g.sum_all(weighted);
            let loss = g.scale(sum, -1.0);
            let v = g.value(loss).at(0, 0);
            (v, Some(g.backward(loss)))
        };
        let (_, grads) = run(&params);
        assert_gradients_close(&params, &[l], &grads.unwrap(), |p| run(p).0, 2e-2);
    }
}

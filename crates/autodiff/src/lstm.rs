//! LSTM building blocks on top of the autodiff [`Graph`].
//!
//! The paper's decision engine uses a bidirectional LSTM to read a DNN's
//! layer-hyperparameter sequence (Fig. 6). [`LstmCell`] is a standard cell;
//! [`BiLstm`] runs one forward and one backward cell over a sequence and
//! concatenates the per-step hidden states.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::graph::{Graph, VarId};
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamSet};

/// A single LSTM cell with fused gate weights.
///
/// Gate layout inside the fused weight matrix is `[i | f | o | g]`, each of
/// width `hidden`.
#[derive(Debug, Clone)]
pub struct LstmCell {
    input_size: usize,
    hidden: usize,
    w: ParamId,
    b: ParamId,
}

impl LstmCell {
    /// Registers a cell's parameters in `params` under `prefix` and returns
    /// the cell. The forget-gate bias is initialized to 1.0 (standard trick
    /// to preserve long-range gradients early in training).
    pub fn new(
        params: &mut ParamSet,
        prefix: &str,
        input_size: usize,
        hidden: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = params.insert(
            format!("{prefix}.w"),
            Matrix::xavier(input_size + hidden, 4 * hidden, &mut rng),
        );
        let mut bias = Matrix::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            *bias.at_mut(0, c) = 1.0;
        }
        let b = params.insert(format!("{prefix}.b"), bias);
        Self {
            input_size,
            hidden,
            w,
            b,
        }
    }

    /// Hidden state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Zero-initialized `(h, c)` state as constants in `graph`.
    pub fn zero_state(&self, graph: &mut Graph) -> (VarId, VarId) {
        let h = graph.constant(Matrix::zeros(1, self.hidden));
        let c = graph.constant(Matrix::zeros(1, self.hidden));
        (h, c)
    }

    /// One LSTM step: consumes `x` (1×input) and state `(h, c)`, returning
    /// the next `(h, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `1 x input_size`.
    pub fn step(
        &self,
        graph: &mut Graph,
        params: &ParamSet,
        x: VarId,
        state: (VarId, VarId),
    ) -> (VarId, VarId) {
        let w = graph.param(params, self.w);
        let b = graph.param(params, self.b);
        self.step_with(graph, (w, b), x, state)
    }

    /// [`step`] with the weight/bias graph nodes supplied by the caller,
    /// so a sequence run binds each parameter once instead of cloning it
    /// into the tape at every timestep. Gradients are unchanged: the
    /// backward pass accumulates per-use contributions in the same
    /// (reverse-step) order whether they flow through one shared node or
    /// one node per step.
    ///
    /// [`step`]: LstmCell::step
    fn step_with(
        &self,
        graph: &mut Graph,
        (w, b): (VarId, VarId),
        x: VarId,
        state: (VarId, VarId),
    ) -> (VarId, VarId) {
        assert_eq!(
            graph.value(x).shape(),
            (1, self.input_size),
            "LSTM input shape mismatch"
        );
        let (h_prev, c_prev) = state;
        let gates = graph.concat_matmul_bias(x, h_prev, w, b);
        let c = graph.lstm_cell_state(gates, c_prev, self.hidden);
        let h = graph.lstm_out_gate(gates, c, self.hidden);
        (h, c)
    }

    /// Runs the cell over a sequence, returning the hidden state after each
    /// step.
    pub fn run(&self, graph: &mut Graph, params: &ParamSet, inputs: &[VarId]) -> Vec<VarId> {
        let w = graph.param(params, self.w);
        let b = graph.param(params, self.b);
        let mut state = self.zero_state(graph);
        let mut hs = Vec::with_capacity(inputs.len());
        for &x in inputs {
            state = self.step_with(graph, (w, b), x, state);
            hs.push(state.0);
        }
        hs
    }
}

/// A bidirectional LSTM: a forward and a backward [`LstmCell`] whose per-step
/// hidden states are concatenated, giving `2 * hidden` features per step.
#[derive(Debug, Clone)]
pub struct BiLstm {
    forward: LstmCell,
    backward: LstmCell,
}

impl BiLstm {
    /// Registers both directions' parameters under `prefix`.
    pub fn new(
        params: &mut ParamSet,
        prefix: &str,
        input_size: usize,
        hidden: usize,
        seed: u64,
    ) -> Self {
        Self {
            forward: LstmCell::new(params, &format!("{prefix}.fwd"), input_size, hidden, seed),
            backward: LstmCell::new(
                params,
                &format!("{prefix}.bwd"),
                input_size,
                hidden,
                seed.wrapping_add(0x9e3779b9),
            ),
        }
    }

    /// Per-direction hidden width (the output width is twice this).
    pub fn hidden(&self) -> usize {
        self.forward.hidden()
    }

    /// Output feature width per step (`2 * hidden`).
    pub fn output_size(&self) -> usize {
        2 * self.forward.hidden()
    }

    /// Runs the sequence through both directions; element `t` of the result
    /// is `[h_fwd_t | h_bwd_t]` for input step `t`.
    pub fn run(&self, graph: &mut Graph, params: &ParamSet, inputs: &[VarId]) -> Vec<VarId> {
        let fwd = self.forward.run(graph, params, inputs);
        let rev_inputs: Vec<VarId> = inputs.iter().rev().copied().collect();
        let mut bwd = self.backward.run(graph, params, &rev_inputs);
        bwd.reverse();
        fwd.iter()
            .zip(bwd)
            .map(|(&f, b)| graph.hcat(f, b))
            .collect()
    }

    /// Runs the sequence and returns the final summary feature
    /// `[h_fwd_last | h_bwd_first-step-of-reverse]`, i.e. both directions'
    /// terminal states — a whole-sequence embedding.
    pub fn run_to_summary(&self, graph: &mut Graph, params: &ParamSet, inputs: &[VarId]) -> VarId {
        let hs = self.run(graph, params, inputs);
        *hs.last().expect("BiLstm::run_to_summary needs a non-empty sequence")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;

    #[test]
    fn lstm_step_shapes() {
        let mut params = ParamSet::new();
        let cell = LstmCell::new(&mut params, "cell", 3, 5, 0);
        let mut g = Graph::new();
        let x = g.constant(Matrix::zeros(1, 3));
        let state = cell.zero_state(&mut g);
        let (h, c) = cell.step(&mut g, &params, x, state);
        assert_eq!(g.value(h).shape(), (1, 5));
        assert_eq!(g.value(c).shape(), (1, 5));
    }

    #[test]
    fn bilstm_output_width_is_double() {
        let mut params = ParamSet::new();
        let bi = BiLstm::new(&mut params, "bi", 4, 6, 0);
        let mut g = Graph::new();
        let xs: Vec<VarId> = (0..3)
            .map(|i| g.constant(Matrix::full(1, 4, i as f32)))
            .collect();
        let hs = bi.run(&mut g, &params, &xs);
        assert_eq!(hs.len(), 3);
        for h in hs {
            assert_eq!(g.value(h).shape(), (1, 12));
        }
    }

    #[test]
    fn lstm_can_learn_sequence_sum_sign() {
        // Train a tiny LSTM to classify whether the sum of a length-4
        // sequence is positive: exercises full BPTT through the cell.
        let mut params = ParamSet::new();
        let cell = LstmCell::new(&mut params, "cell", 1, 8, 42);
        let mut rng_seq = StdRng::seed_from_u64(7);
        let head = params.insert("head", Matrix::xavier(8, 2, &mut rng_seq));
        let mut opt = Adam::new(0.02);

        let data: Vec<(Vec<f32>, usize)> = {
            use rand::RngExt;
            let mut rng = StdRng::seed_from_u64(11);
            (0..40)
                .map(|_| {
                    let xs: Vec<f32> = (0..4).map(|_| rng.random_range(-1.0..1.0)).collect();
                    let label = usize::from(xs.iter().sum::<f32>() > 0.0);
                    (xs, label)
                })
                .collect()
        };

        let mut last_loss = f32::INFINITY;
        for _ in 0..150 {
            let mut total = 0.0;
            let mut grads_acc = None::<crate::graph::Gradients>;
            for (xs, label) in &data {
                let mut g = Graph::new();
                let inputs: Vec<VarId> = xs
                    .iter()
                    .map(|&v| g.constant(Matrix::from_vec(1, 1, vec![v])))
                    .collect();
                let hs = cell.run(&mut g, &params, &inputs);
                let headv = g.param(&params, head);
                let logits = g.matmul(*hs.last().unwrap(), headv);
                let mut target = Matrix::zeros(1, 2);
                *target.at_mut(0, *label) = 1.0;
                let loss = g.softmax_cross_entropy(logits, target);
                total += g.value(loss).at(0, 0);
                let grads = g.backward(loss);
                match &mut grads_acc {
                    Some(acc) => acc.merge(grads),
                    slot @ None => *slot = Some(grads),
                }
            }
            opt.step(&mut params, &grads_acc.unwrap());
            last_loss = total / data.len() as f32;
        }
        assert!(last_loss < 0.3, "LSTM failed to learn, loss={last_loss}");
    }
}

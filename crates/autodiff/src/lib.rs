//! # cadmc-autodiff
//!
//! Tape-based reverse-mode automatic differentiation over `f32` matrices,
//! purpose-built for the `cadmc` reproduction of *Context-Aware Deep Model
//! Compression for Edge Cloud Computing* (ICDCS 2020).
//!
//! Two consumers drive the op set:
//!
//! * the paper's **LSTM policy controllers** (partition + compression search)
//!   need dense algebra, gate activations, softmax policies and REINFORCE
//!   surrogate losses;
//! * the **small-CNN runtime** in `cadmc-nn` needs im2col convolution, max
//!   pooling and cross-entropy / distillation losses to actually train
//!   networks end to end.
//!
//! ## Example
//!
//! ```
//! use cadmc_autodiff::{Graph, Matrix, ParamSet, Sgd};
//!
//! // Fit y = 2x with one weight.
//! let mut params = ParamSet::new();
//! let w = params.insert("w", Matrix::from_rows(&[&[0.0]]));
//! let mut opt = Sgd::new(0.1);
//! for _ in 0..100 {
//!     let mut g = Graph::new();
//!     let x = g.constant(Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]));
//!     let wv = g.param(&params, w);
//!     let pred = g.matmul(x, wv);
//!     let target = g.constant(Matrix::from_rows(&[&[2.0], &[4.0], &[6.0]]));
//!     let diff = g.sub(pred, target);
//!     let sq = g.square(diff);
//!     let loss = g.mean_all(sq);
//!     let grads = g.backward(loss);
//!     opt.step(&mut params, &grads);
//! }
//! assert!((params.value(w).at(0, 0) - 2.0).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gradcheck;
mod graph;
mod proptests;
mod lstm;
mod matrix;
mod optim;
mod params;

pub use graph::{ConvGeom, Gradients, Graph, VarId};
pub use lstm::{BiLstm, LstmCell};
pub use matrix::Matrix;
pub use optim::{Adam, Sgd};
pub use params::{ParamId, ParamSet};

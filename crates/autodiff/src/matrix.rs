//! Dense row-major `f32` matrices.
//!
//! [`Matrix`] is the single value type flowing through the autodiff
//! [`Graph`](crate::Graph). It is deliberately small: just enough linear
//! algebra for policy networks (LSTMs, softmax heads) and small CNNs
//! (im2col convolution), with shape checking on every operation.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A dense, row-major matrix of `f32` values.
///
/// # Examples
///
/// ```
/// use cadmc_autodiff::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})[", self.rows, self.cols)?;
        let show = self.data.len().min(8);
        for (i, v) in self.data[..show].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > show {
            write!(f, ", ..")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows in from_rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a 1×`n` row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Samples a matrix with entries uniform in `[-scale, scale]`.
    pub fn uniform(rows: usize, cols: usize, scale: f32, rng: &mut StdRng) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.random_range(-scale..=scale))
            .collect();
        Self { rows, cols, data }
    }

    /// Samples a matrix using Xavier/Glorot uniform initialization,
    /// suitable for layers with `rows` inputs and `cols` outputs.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let scale = (6.0 / (rows + cols) as f32).sqrt();
        Self::uniform(rows, cols, scale, rng)
    }

    /// Samples a matrix deterministically from a seed (Xavier scale).
    pub fn seeded_xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::xavier(rows, cols, &mut rng)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the row-major backing storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major backing storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }

    /// Borrow of row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: streams over `other` rows for cache friendliness.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let dst = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (d, &b) in dst.iter_mut().zip(orow) {
                    *d += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self * other^T` without materializing the
    /// transpose. Bit-identical to `self.matmul(&other.transpose())`:
    /// the loop structure and per-element accumulation order (ascending
    /// `k`, including the exact-zero skip) are the same.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_bt shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let dst = &mut out.data[i * other.rows..(i + 1) * other.rows];
                for (j, d) in dst.iter_mut().enumerate() {
                    *d += a * other.data[j * other.cols + k];
                }
            }
        }
        out
    }

    /// Columns `[start, start+width)` of `self * other^T`, i.e. the
    /// product against rows `start..start+width` of `other` only.
    /// Bit-identical to `self.matmul_bt(other).slice_cols(start, width)`:
    /// each retained element receives the exact same contribution
    /// sequence (ascending `k` with the exact-zero skip), and the slice
    /// is a pure copy. Lets the LSTM backward pass skip the gradient
    /// columns headed for a constant input.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols` or the column range is out of
    /// bounds.
    pub fn matmul_bt_cols(&self, other: &Matrix, start: usize, width: usize) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_bt_cols shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        assert!(
            start + width <= other.rows,
            "matmul_bt_cols column range {start}..{} out of bounds for {} output columns",
            start + width,
            other.rows
        );
        let mut out = Matrix::zeros(self.rows, width);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let dst = &mut out.data[i * width..(i + 1) * width];
                for (j, d) in dst.iter_mut().enumerate() {
                    *d += a * other.data[(start + j) * other.cols + k];
                }
            }
        }
        out
    }

    /// Matrix product `self^T * other` without materializing the
    /// transpose. Bit-identical to `self.transpose().matmul(other)` for
    /// the same reason as [`matmul_bt`].
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    ///
    /// [`matmul_bt`]: Matrix::matmul_bt
    pub fn matmul_at(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_at shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for i in 0..self.cols {
            for k in 0..self.rows {
                let a = self.data[k * self.cols + i];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let dst = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (d, &b) in dst.iter_mut().zip(orow) {
                    *d += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise binary map into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "elementwise shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Elementwise unary map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.iter().map(|&a| f(a)).collect())
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|a| a * s)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Adds a 1×cols row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Adds a 1×cols row vector to every row in place. Produces the same
    /// bits as [`add_row_broadcast`] without the intermediate copy.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols`.
    ///
    /// [`add_row_broadcast`]: Matrix::add_row_broadcast
    pub fn add_row_broadcast_assign(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        for r in 0..self.rows {
            for c in 0..self.cols {
                self.data[r * self.cols + c] += bias.data[c];
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Sum over rows, producing a 1×cols row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, v| m.max(v.abs()))
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.data[r * out.cols..r * out.cols + self.cols]
                .copy_from_slice(self.row(r));
            out.data[r * out.cols + self.cols..(r + 1) * out.cols]
                .copy_from_slice(other.row(r));
        }
        out
    }

    /// Vertical concatenation (self on top of other).
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vcat column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Copies columns `[start, start+width)` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the matrix width.
    pub fn slice_cols(&self, start: usize, width: usize) -> Matrix {
        assert!(start + width <= self.cols, "slice_cols out of range");
        let mut out = Matrix::zeros(self.rows, width);
        for r in 0..self.rows {
            out.data[r * width..(r + 1) * width]
                .copy_from_slice(&self.data[r * self.cols + start..r * self.cols + start + width]);
        }
        out
    }

    /// Copies rows `[start, start+height)` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the matrix height.
    pub fn slice_rows(&self, start: usize, height: usize) -> Matrix {
        assert!(start + height <= self.rows, "slice_rows out of range");
        Matrix::from_vec(
            height,
            self.cols,
            self.data[start * self.cols..(start + height) * self.cols].to_vec(),
        )
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = &mut out.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }

    /// Index of the largest element in row `r` (first on ties).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    /// Returns true if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::eye(3)), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn fused_transpose_products_are_bit_identical() {
        let a = Matrix::seeded_xavier(3, 5, 11);
        let b = Matrix::seeded_xavier(4, 5, 12);
        let fused = a.matmul_bt(&b);
        let reference = a.matmul(&b.transpose());
        assert_eq!(fused.shape(), (3, 4));
        for (x, y) in fused.data().iter().zip(reference.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }

        let c = Matrix::seeded_xavier(5, 3, 13);
        let d = Matrix::seeded_xavier(5, 4, 14);
        let fused = c.matmul_at(&d);
        let reference = c.transpose().matmul(&d);
        assert_eq!(fused.shape(), (3, 4));
        for (x, y) in fused.data().iter().zip(reference.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matmul_bt_cols_matches_full_product_slice_bitwise() {
        let a = Matrix::seeded_xavier(2, 6, 21);
        let b = Matrix::seeded_xavier(7, 6, 22);
        let full = a.matmul_bt(&b);
        for (start, width) in [(0, 7), (0, 3), (2, 4), (5, 2), (6, 1)] {
            let cols = a.matmul_bt_cols(&b, start, width);
            let reference = full.slice_cols(start, width);
            assert_eq!(cols.shape(), (2, width));
            for (x, y) in cols.data().iter().zip(reference.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let b = Matrix::row_vector(&[101.0, 102.0, 103.0]);
        let sa = a.softmax_rows();
        let sb = b.softmax_rows();
        for (x, y) in sa.data().iter().zip(sb.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn hcat_vcat_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        assert_eq!(a.hcat(&b).shape(), (2, 7));
        let c = Matrix::zeros(5, 3);
        assert_eq!(a.vcat(&c).shape(), (7, 3));
    }

    #[test]
    fn slice_cols_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]]);
        let left = a.slice_cols(0, 2);
        let right = a.slice_cols(2, 2);
        assert_eq!(left.hcat(&right), a);
    }

    #[test]
    fn sum_rows_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.sum_rows(), Matrix::row_vector(&[9.0, 12.0]));
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let a = Matrix::zeros(2, 3);
        let bias = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let out = a.add_row_broadcast(&bias);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn argmax_row_first_on_ties() {
        let a = Matrix::row_vector(&[0.5, 0.9, 0.9, 0.1]);
        assert_eq!(a.argmax_row(0), 1);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn xavier_is_deterministic_per_seed() {
        let a = Matrix::seeded_xavier(4, 4, 7);
        let b = Matrix::seeded_xavier(4, 4, 7);
        let c = Matrix::seeded_xavier(4, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

//! Named parameter storage shared by graphs and optimizers.

use std::collections::HashMap;
use std::fmt;

use crate::matrix::Matrix;

/// Handle to a parameter in a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Raw index of the parameter within its set.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A set of named trainable matrices.
///
/// Graphs reference parameters by [`ParamId`]; optimizers update them in
/// place from [`Gradients`](crate::Gradients).
///
/// # Examples
///
/// ```
/// use cadmc_autodiff::{Matrix, ParamSet};
///
/// let mut params = ParamSet::new();
/// let w = params.insert("w", Matrix::zeros(2, 2));
/// assert_eq!(params.value(w).shape(), (2, 2));
/// assert_eq!(params.id("w"), Some(w));
/// ```
#[derive(Clone, Default)]
pub struct ParamSet {
    names: Vec<String>,
    by_name: HashMap<String, ParamId>,
    values: Vec<Matrix>,
}

impl fmt::Debug for ParamSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ParamSet({} params, {} scalars)", self.len(), self.num_scalars())
    }
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a parameter under `name` and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn insert(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "parameter name {name:?} already registered"
        );
        let id = ParamId(self.values.len());
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        self.values.push(value);
        id
    }

    /// Looks up a parameter handle by name.
    pub fn id(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied()
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable value of a parameter.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Iterates over `(id, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.values.iter().enumerate().map(|(i, v)| (ParamId(i), v))
    }

    /// All parameter handles.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.values.len()).map(ParamId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut set = ParamSet::new();
        let a = set.insert("a", Matrix::zeros(1, 2));
        let b = set.insert("b", Matrix::zeros(3, 4));
        assert_eq!(set.id("a"), Some(a));
        assert_eq!(set.id("b"), Some(b));
        assert_eq!(set.id("c"), None);
        assert_eq!(set.name(b), "b");
        assert_eq!(set.len(), 2);
        assert_eq!(set.num_scalars(), 2 + 12);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_name_panics() {
        let mut set = ParamSet::new();
        set.insert("a", Matrix::zeros(1, 1));
        set.insert("a", Matrix::zeros(1, 1));
    }
}

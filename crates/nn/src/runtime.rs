//! A runnable, trainable CNN runtime compiled from [`ModelSpec`]s.
//!
//! [`RuntimeModel::compile`] lowers a spec to primitive autodiff ops
//! (im2col convolution, depthwise convolution, max pooling, global average
//! pooling, fully-connected) including the composite blocks produced by the
//! compression rewrites (Fire modules, inverted residuals, residual blocks),
//! so compressed models remain *actually trainable* — the property the
//! paper relies on when it fine-tunes transformed models with knowledge
//! distillation.
//!
//! Batch-norm and dropout lower to identity: they carry no MACCs in the
//! paper's latency model and the tiny synthetic task does not need them.

use cadmc_autodiff::{ConvGeom, Graph, Matrix, ParamId, ParamSet, VarId};

use crate::layer::{LayerSpec, Shape, ShapeError};
use crate::model::ModelSpec;

/// Errors from lowering a [`ModelSpec`] to a runnable model.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Shape inference failed.
    Shape(ShapeError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Shape(e) => write!(f, "shape error while compiling: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ShapeError> for CompileError {
    fn from(e: ShapeError) -> Self {
        CompileError::Shape(e)
    }
}

#[derive(Debug, Clone)]
enum RtOp {
    Conv {
        geom: ConvGeom,
        w: ParamId,
        b: ParamId,
        relu: bool,
    },
    DwConv {
        geom: ConvGeom,
        w: ParamId,
        b: ParamId,
        relu: bool,
    },
    MaxPool {
        geom: ConvGeom,
    },
    GlobalAvgPool {
        pool: Matrix,
    },
    Fc {
        w: ParamId,
        b: ParamId,
        relu: bool,
    },
    /// Run `left` and `right` on the same input and concatenate channels.
    ChannelConcat {
        left: Vec<RtOp>,
        right: Vec<RtOp>,
    },
    /// Run `body`; add the (possibly projected) input back; ReLU.
    ResidualAdd {
        body: Vec<RtOp>,
        projection: Option<Box<RtOp>>,
    },
}

/// A compiled, trainable model instance.
///
/// # Examples
///
/// ```
/// use cadmc_nn::{runtime::RuntimeModel, zoo};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = RuntimeModel::compile(&zoo::tiny_cnn(), 42)?;
/// let data = cadmc_nn::dataset::synthetic(4, 0.05, 1);
/// let logits = model.forward(data.images());
/// assert_eq!(logits.shape(), (4, 10));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeModel {
    spec: ModelSpec,
    params: ParamSet,
    ops: Vec<RtOp>,
    classes: usize,
}

struct Compiler<'a> {
    params: &'a mut ParamSet,
    seed: u64,
    counter: usize,
}

impl Compiler<'_> {
    fn next_seed(&mut self) -> u64 {
        self.counter += 1;
        self.seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.counter as u64)
    }

    fn conv(
        &mut self,
        shape: Shape,
        kernel: usize,
        stride: usize,
        pad: usize,
        out_ch: usize,
        relu: bool,
    ) -> RtOp {
        let geom = ConvGeom {
            channels: shape.c,
            height: shape.h,
            width: shape.w,
            kernel,
            stride,
            pad,
        };
        let fan_in = shape.c * kernel * kernel;
        let name = format!("conv{}", self.counter);
        let seed = self.next_seed();
        let w = self
            .params
            .insert(format!("{name}.w"), Matrix::seeded_xavier(fan_in, out_ch, seed));
        let b = self.params.insert(format!("{name}.b"), Matrix::zeros(1, out_ch));
        RtOp::Conv { geom, w, b, relu }
    }

    fn dwconv(&mut self, shape: Shape, kernel: usize, stride: usize, pad: usize, relu: bool) -> RtOp {
        let geom = ConvGeom {
            channels: shape.c,
            height: shape.h,
            width: shape.w,
            kernel,
            stride,
            pad,
        };
        let name = format!("dwconv{}", self.counter);
        let seed = self.next_seed();
        let w = self.params.insert(
            format!("{name}.w"),
            Matrix::seeded_xavier(kernel * kernel, shape.c, seed),
        );
        let b = self.params.insert(format!("{name}.b"), Matrix::zeros(1, shape.c));
        RtOp::DwConv { geom, w, b, relu }
    }

    fn fc(&mut self, in_features: usize, out_features: usize, relu: bool) -> RtOp {
        let name = format!("fc{}", self.counter);
        let seed = self.next_seed();
        let w = self.params.insert(
            format!("{name}.w"),
            Matrix::seeded_xavier(in_features, out_features, seed),
        );
        let b = self
            .params
            .insert(format!("{name}.b"), Matrix::zeros(1, out_features));
        RtOp::Fc { w, b, relu }
    }

    /// Lowers one spec layer at `shape`; `relu` applies to its output.
    fn lower(&mut self, layer: &LayerSpec, shape: Shape, relu: bool) -> Result<Vec<RtOp>, CompileError> {
        Ok(match *layer {
            LayerSpec::Conv2d {
                kernel,
                stride,
                pad,
                out_channels,
            } => vec![self.conv(shape, kernel, stride, pad, out_channels, relu)],
            LayerSpec::DepthwiseConv2d { kernel, stride, pad } => {
                vec![self.dwconv(shape, kernel, stride, pad, relu)]
            }
            LayerSpec::MaxPool2d { kernel, stride } => vec![RtOp::MaxPool {
                geom: ConvGeom {
                    channels: shape.c,
                    height: shape.h,
                    width: shape.w,
                    kernel,
                    stride,
                    pad: 0,
                },
            }],
            LayerSpec::GlobalAvgPool => {
                let hw = shape.h * shape.w;
                let mut pool = Matrix::zeros(shape.len(), shape.c);
                for c in 0..shape.c {
                    for i in 0..hw {
                        *pool.at_mut(c * hw + i, c) = 1.0 / hw as f32;
                    }
                }
                vec![RtOp::GlobalAvgPool { pool }]
            }
            LayerSpec::Flatten | LayerSpec::BatchNorm | LayerSpec::Dropout => vec![],
            LayerSpec::Fc { out_features } => vec![self.fc(shape.len(), out_features, relu)],
            LayerSpec::Fire {
                squeeze,
                expand1,
                expand3,
            } => {
                let sq = self.conv(shape, 1, 1, 0, squeeze, true);
                let mid = LayerSpec::conv(1, 1, 0, squeeze).output_shape(shape)?;
                let e1 = self.conv(mid, 1, 1, 0, expand1, relu);
                let e3 = self.conv(mid, 3, 1, 1, expand3, relu);
                vec![
                    sq,
                    RtOp::ChannelConcat {
                        left: vec![e1],
                        right: vec![e3],
                    },
                ]
            }
            LayerSpec::InvertedResidual {
                expansion,
                stride,
                out_channels,
            } => {
                let hidden = shape.c * expansion;
                let expand = self.conv(shape, 1, 1, 0, hidden, true);
                let mid = LayerSpec::conv(1, 1, 0, hidden).output_shape(shape)?;
                let dw = self.dwconv(mid, 3, stride, 1, true);
                let dw_out = LayerSpec::DepthwiseConv2d {
                    kernel: 3,
                    stride,
                    pad: 1,
                }
                .output_shape(mid)?;
                let project = self.conv(dw_out, 1, 1, 0, out_channels, false);
                let body = vec![expand, dw, project];
                if stride == 1 && out_channels == shape.c {
                    vec![RtOp::ResidualAdd {
                        body,
                        projection: None,
                    }]
                } else {
                    body
                }
            }
            LayerSpec::Residual {
                ref body,
                projection,
            } => {
                let mut ops = Vec::new();
                let mut s = shape;
                for (i, l) in body.iter().enumerate() {
                    // Last body layer is linear; the ReLU comes after the add.
                    let inner_relu = i + 1 < body.len();
                    ops.extend(self.lower(l, s, inner_relu)?);
                    s = l.output_shape(s)?;
                }
                let proj = projection
                    .map(|(out_c, stride)| Box::new(self.conv(shape, 1, stride, 0, out_c, false)));
                vec![RtOp::ResidualAdd {
                    body: ops,
                    projection: proj,
                }]
            }
        })
    }
}

impl RuntimeModel {
    /// Compiles `spec` with parameters initialized deterministically from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] if shape inference fails inside a composite
    /// block (a valid `ModelSpec` otherwise always compiles).
    pub fn compile(spec: &ModelSpec, seed: u64) -> Result<Self, CompileError> {
        let mut params = ParamSet::new();
        let mut compiler = Compiler {
            params: &mut params,
            seed,
            counter: 0,
        };
        // The final weighted layer produces logits (no ReLU).
        let last_weighted = spec
            .layers()
            .iter()
            .rposition(LayerSpec::is_weighted)
            .unwrap_or(usize::MAX);
        let mut ops = Vec::new();
        for (i, layer) in spec.layers().iter().enumerate() {
            let relu = i != last_weighted;
            ops.extend(compiler.lower(layer, spec.layer_input(i), relu)?);
        }
        let classes = spec.output_shape().len();
        Ok(Self {
            spec: spec.clone(),
            params,
            ops,
            classes,
        })
    }

    /// The spec this model was compiled from.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The trainable parameters.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Mutable access to the trainable parameters (used by optimizers).
    pub fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    /// Builds the forward computation inside an existing graph; returns the
    /// logits node. `x` must be an `(N, C*H*W)` batch matching the spec's
    /// input shape.
    pub fn forward_graph(&self, g: &mut Graph, x: VarId) -> VarId {
        let batch = g.value(x).rows();
        run_ops(&self.ops, g, &self.params, x, batch)
    }

    /// Convenience forward pass: returns logits for a batch.
    ///
    /// # Panics
    ///
    /// Panics if `images` width does not match the input shape.
    pub fn forward(&self, images: &Matrix) -> Matrix {
        assert_eq!(
            images.cols(),
            self.spec.input_shape().len(),
            "input width mismatch"
        );
        let mut g = Graph::new();
        let x = g.constant(images.clone());
        let logits = self.forward_graph(&mut g, x);
        g.value(logits).clone()
    }

    /// Predicted class per row of `images`.
    pub fn predict(&self, images: &Matrix) -> Vec<usize> {
        let logits = self.forward(images);
        (0..logits.rows()).map(|r| logits.argmax_row(r)).collect()
    }

    /// Top-1 accuracy on a labelled set, in `[0, 1]`.
    pub fn accuracy(&self, images: &Matrix, labels: &[usize]) -> f32 {
        assert_eq!(images.rows(), labels.len(), "label count mismatch");
        if labels.is_empty() {
            return 0.0;
        }
        let preds = self.predict(images);
        let correct = preds
            .iter()
            .zip(labels)
            .filter(|(p, l)| p == l)
            .count();
        correct as f32 / labels.len() as f32
    }
}

fn run_ops(ops: &[RtOp], g: &mut Graph, params: &ParamSet, mut x: VarId, batch: usize) -> VarId {
    for op in ops {
        x = run_op(op, g, params, x, batch);
    }
    x
}

fn run_op(op: &RtOp, g: &mut Graph, params: &ParamSet, x: VarId, batch: usize) -> VarId {
    match op {
        RtOp::Conv { geom, w, b, relu } => {
            let cols = g.im2col(x, *geom);
            let wv = g.param(params, *w);
            let bv = g.param(params, *b);
            let y = g.matmul(cols, wv);
            let y = g.add_broadcast_row(y, bv);
            let y = g.nhwc_to_nchw(y, batch, geom.out_h(), geom.out_w());
            if *relu {
                g.relu(y)
            } else {
                y
            }
        }
        RtOp::DwConv { geom, w, b, relu } => {
            let hw = geom.height * geom.width;
            let chan_geom = ConvGeom {
                channels: 1,
                ..*geom
            };
            let wv = g.param(params, *w);
            let mut cat: Option<VarId> = None;
            for c in 0..geom.channels {
                let xc = g.slice_cols(x, c * hw, hw);
                let cols = g.im2col(xc, chan_geom);
                let wc = g.slice_cols(wv, c, 1);
                let yc = g.matmul(cols, wc);
                cat = Some(match cat {
                    Some(acc) => g.hcat(acc, yc),
                    None => yc,
                });
            }
            let y = cat.expect("depthwise conv needs at least one channel");
            let bv = g.param(params, *b);
            let y = g.add_broadcast_row(y, bv);
            let y = g.nhwc_to_nchw(y, batch, geom.out_h(), geom.out_w());
            if *relu {
                g.relu(y)
            } else {
                y
            }
        }
        RtOp::MaxPool { geom } => g.max_pool(x, *geom),
        RtOp::GlobalAvgPool { pool } => {
            let m = g.constant(pool.clone());
            g.matmul(x, m)
        }
        RtOp::Fc { w, b, relu } => {
            let wv = g.param(params, *w);
            let bv = g.param(params, *b);
            let y = g.matmul(x, wv);
            let y = g.add_broadcast_row(y, bv);
            if *relu {
                g.relu(y)
            } else {
                y
            }
        }
        RtOp::ChannelConcat { left, right } => {
            let l = run_ops(left, g, params, x, batch);
            let r = run_ops(right, g, params, x, batch);
            // NCHW channel concat is a plain horizontal concat of rows.
            g.hcat(l, r)
        }
        RtOp::ResidualAdd { body, projection } => {
            let y = run_ops(body, g, params, x, batch);
            let skip = match projection {
                Some(p) => run_op(p, g, params, x, batch),
                None => x,
            };
            let sum = g.add(y, skip);
            g.relu(sum)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn tiny_cnn_forward_shapes() {
        let model = RuntimeModel::compile(&zoo::tiny_cnn(), 1).unwrap();
        let data = crate::dataset::synthetic(6, 0.05, 2);
        let logits = model.forward(data.images());
        assert_eq!(logits.shape(), (6, 10));
        assert!(!logits.has_non_finite());
    }

    #[test]
    fn compile_is_deterministic() {
        let a = RuntimeModel::compile(&zoo::tiny_cnn(), 9).unwrap();
        let b = RuntimeModel::compile(&zoo::tiny_cnn(), 9).unwrap();
        let data = crate::dataset::synthetic(3, 0.05, 2);
        assert_eq!(a.forward(data.images()), b.forward(data.images()));
    }

    #[test]
    fn different_seeds_differ() {
        let a = RuntimeModel::compile(&zoo::tiny_cnn(), 1).unwrap();
        let b = RuntimeModel::compile(&zoo::tiny_cnn(), 2).unwrap();
        let data = crate::dataset::synthetic(3, 0.05, 2);
        assert_ne!(a.forward(data.images()), b.forward(data.images()));
    }

    #[test]
    fn composite_blocks_compile_and_run() {
        use crate::layer::LayerSpec;
        use crate::layer::Shape;
        let spec = ModelSpec::new(
            "composite",
            Shape::new(3, 12, 12),
            vec![
                LayerSpec::conv(3, 1, 1, 8),
                LayerSpec::Fire {
                    squeeze: 4,
                    expand1: 8,
                    expand3: 8,
                },
                LayerSpec::max_pool(2, 2),
                LayerSpec::InvertedResidual {
                    expansion: 2,
                    stride: 1,
                    out_channels: 16,
                },
                LayerSpec::Residual {
                    body: vec![LayerSpec::conv(3, 1, 1, 16), LayerSpec::conv(3, 1, 1, 16)],
                    projection: None,
                },
                LayerSpec::GlobalAvgPool,
                LayerSpec::Flatten,
                LayerSpec::fc(10),
            ],
        )
        .unwrap();
        let model = RuntimeModel::compile(&spec, 3).unwrap();
        let data = crate::dataset::synthetic(2, 0.05, 2);
        let logits = model.forward(data.images());
        assert_eq!(logits.shape(), (2, 10));
        assert!(!logits.has_non_finite());
    }

    #[test]
    fn depthwise_conv_runs() {
        use crate::layer::{LayerSpec, Shape};
        let spec = ModelSpec::new(
            "dw",
            Shape::new(3, 8, 8),
            vec![
                LayerSpec::DepthwiseConv2d {
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
                LayerSpec::conv(1, 1, 0, 4),
                LayerSpec::GlobalAvgPool,
                LayerSpec::Flatten,
                LayerSpec::fc(10),
            ],
        )
        .unwrap();
        let model = RuntimeModel::compile(&spec, 3).unwrap();
        let x = Matrix::full(2, 3 * 8 * 8, 0.5);
        let logits = model.forward(&x);
        assert_eq!(logits.shape(), (2, 10));
    }

    #[test]
    fn accuracy_of_untrained_model_is_chancey() {
        let model = RuntimeModel::compile(&zoo::tiny_cnn(), 5).unwrap();
        let data = crate::dataset::synthetic(100, 0.05, 2);
        let acc = model.accuracy(data.images(), data.labels());
        assert!(acc < 0.5, "untrained accuracy suspiciously high: {acc}");
    }
}

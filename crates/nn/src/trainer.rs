//! Minibatch training and knowledge distillation for [`RuntimeModel`]s.
//!
//! The paper fine-tunes every transformed (compressed) model with
//! **knowledge distillation** — training the student against the base
//! model's output logits instead of ground-truth labels (§VI-D) — to speed
//! up convergence and recover accuracy. [`distill`] implements exactly
//! that; [`train`] is plain supervised training for teachers.

use cadmc_autodiff::{Adam, Graph, Matrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::dataset::Dataset;
use crate::runtime::RuntimeModel;

/// Hyper-parameters for [`train`] and [`distill`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Passes over the dataset.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Optional global-norm gradient clip.
    pub clip_norm: Option<f32>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            batch_size: 16,
            lr: 5e-3,
            seed: 0,
            clip_norm: Some(5.0),
        }
    }
}

/// Per-epoch loss trace returned by the trainers.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss per epoch, in order.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// Loss after the final epoch.
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }

    /// Whether the loss decreased from first to last epoch.
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(a), Some(b)) => b < a,
            _ => false,
        }
    }
}

fn shuffled_indices(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

fn gather_rows(images: &Matrix, idx: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(idx.len(), images.cols());
    for (r, &i) in idx.iter().enumerate() {
        out.data_mut()[r * images.cols()..(r + 1) * images.cols()]
            .copy_from_slice(images.row(i));
    }
    out
}

/// Supervised training with softmax cross-entropy against hard labels.
///
/// # Panics
///
/// Panics if `cfg.batch_size == 0` or the dataset is empty.
pub fn train(model: &mut RuntimeModel, data: &Dataset, cfg: &TrainConfig) -> TrainReport {
    run(model, data, cfg, None)
}

/// Knowledge distillation: trains `student` against `teacher`'s
/// temperature-softened softmax outputs (§VI-D of the paper).
///
/// # Panics
///
/// Panics if the teacher and student disagree on input width or class
/// count, if `temperature` is not positive, or on an empty dataset.
pub fn distill(
    student: &mut RuntimeModel,
    teacher: &RuntimeModel,
    data: &Dataset,
    temperature: f32,
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(temperature > 0.0, "temperature must be positive");
    assert_eq!(
        student.classes(),
        teacher.classes(),
        "student/teacher class mismatch"
    );
    run(student, data, cfg, Some((teacher, temperature)))
}

fn run(
    model: &mut RuntimeModel,
    data: &Dataset,
    cfg: &TrainConfig,
    teacher: Option<(&RuntimeModel, f32)>,
) -> TrainReport {
    assert!(cfg.batch_size > 0, "batch size must be positive");
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for _ in 0..cfg.epochs {
        let order = shuffled_indices(data.len(), &mut rng);
        let mut total = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let images = gather_rows(data.images(), chunk);
            let targets = match teacher {
                Some((t, temp)) => {
                    // Temperature-softened teacher distribution.
                    let logits = t.forward(&images);
                    logits.map(|v| v / temp).softmax_rows()
                }
                None => {
                    let mut oh = Matrix::zeros(chunk.len(), model.classes());
                    for (r, &i) in chunk.iter().enumerate() {
                        *oh.at_mut(r, data.labels()[i]) = 1.0;
                    }
                    oh
                }
            };
            let mut g = Graph::new();
            let x = g.constant(images);
            let mut logits = model.forward_graph(&mut g, x);
            if let Some((_, temp)) = teacher {
                logits = g.scale(logits, 1.0 / temp);
            }
            let loss = g.softmax_cross_entropy(logits, targets);
            total += g.value(loss).at(0, 0);
            batches += 1;
            let mut grads = g.backward(loss);
            if let Some(max) = cfg.clip_norm {
                grads.clip_global_norm(max);
            }
            opt.step(model.params_mut(), &grads);
        }
        epoch_losses.push(total / batches as f32);
    }
    TrainReport { epoch_losses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::synthetic;
    use crate::runtime::RuntimeModel;
    use crate::zoo;

    fn quick_cfg(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 20,
            lr: 8e-3,
            seed: 0,
            clip_norm: Some(5.0),
        }
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let data = synthetic(200, 0.08, 1);
        let (train_set, test_set) = data.split(160);
        let mut model = RuntimeModel::compile(&zoo::tiny_cnn(), 7).unwrap();
        let report = train(&mut model, &train_set, &quick_cfg(6));
        assert!(report.improved(), "loss trace: {:?}", report.epoch_losses);
        let acc = model.accuracy(test_set.images(), test_set.labels());
        assert!(acc > 0.5, "test accuracy too low: {acc}");
    }

    #[test]
    fn distillation_transfers_teacher_behaviour() {
        let data = synthetic(160, 0.08, 2);
        let mut teacher = RuntimeModel::compile(&zoo::tiny_cnn(), 7).unwrap();
        train(&mut teacher, &data, &quick_cfg(6));

        // Student: a narrower spec (as compression would produce).
        use crate::layer::{LayerSpec, Shape};
        let student_spec = crate::model::ModelSpec::new(
            "student",
            Shape::new(3, 12, 12),
            vec![
                LayerSpec::conv(3, 1, 1, 6),
                LayerSpec::max_pool(2, 2),
                LayerSpec::conv(3, 1, 1, 12),
                LayerSpec::max_pool(2, 2),
                LayerSpec::Flatten,
                LayerSpec::fc(24),
                LayerSpec::fc(10),
            ],
        )
        .unwrap();
        let mut student = RuntimeModel::compile(&student_spec, 13).unwrap();
        let before = student.accuracy(data.images(), data.labels());
        let report = distill(&mut student, &teacher, &data, 2.0, &quick_cfg(6));
        assert!(report.improved());
        let after = student.accuracy(data.images(), data.labels());
        assert!(
            after > before + 0.2,
            "distillation did not help: {before} -> {after}"
        );
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn distill_rejects_zero_temperature() {
        let data = synthetic(10, 0.05, 1);
        let teacher = RuntimeModel::compile(&zoo::tiny_cnn(), 1).unwrap();
        let mut student = RuntimeModel::compile(&zoo::tiny_cnn(), 2).unwrap();
        let _ = distill(&mut student, &teacher, &data, 0.0, &quick_cfg(1));
    }

    #[test]
    fn report_final_loss_matches_last_epoch() {
        let report = TrainReport {
            epoch_losses: vec![2.0, 1.0, 0.5],
        };
        assert_eq!(report.final_loss(), 0.5);
        assert!(report.improved());
    }
}

//! Model zoo: the base DNNs used throughout the paper.
//!
//! * **VGG11 / AlexNet on CIFAR10** (32×32×3) are the deployment targets of
//!   the evaluation (§VII Setup): base accuracies 92.01 % and 84.04 %.
//! * **VGG19 and ResNet-50/101/152 at 224×224×3** appear in Table 1's
//!   device latency measurements.
//! * **TinyCnn** is our laptop-scale stand-in used where the reproduction
//!   actually trains networks (see DESIGN.md substitution table).

use crate::layer::{LayerSpec, Shape};
use crate::model::ModelSpec;

/// CIFAR10 input shape.
pub fn cifar10_input() -> Shape {
    Shape::new(3, 32, 32)
}

/// ImageNet-style input shape used by Table 1.
pub fn imagenet_input() -> Shape {
    Shape::new(3, 224, 224)
}

fn conv3(out: usize) -> LayerSpec {
    LayerSpec::conv(3, 1, 1, out)
}

/// VGG11 (configuration A) adapted to CIFAR10, as used for the paper's main
/// experiments. Base accuracy in the paper: **92.01 %**.
pub fn vgg11_cifar() -> ModelSpec {
    ModelSpec::new(
        "VGG11",
        cifar10_input(),
        vec![
            conv3(64),
            LayerSpec::max_pool(2, 2),
            conv3(128),
            LayerSpec::max_pool(2, 2),
            conv3(256),
            conv3(256),
            LayerSpec::max_pool(2, 2),
            conv3(512),
            conv3(512),
            LayerSpec::max_pool(2, 2),
            conv3(512),
            conv3(512),
            LayerSpec::max_pool(2, 2),
            LayerSpec::Flatten,
            LayerSpec::fc(512),
            LayerSpec::Dropout,
            LayerSpec::fc(512),
            LayerSpec::Dropout,
            LayerSpec::fc(10),
        ],
    )
    .expect("VGG11 spec is shape-consistent")
}

/// AlexNet adapted to CIFAR10. Base accuracy in the paper: **84.04 %**.
pub fn alexnet_cifar() -> ModelSpec {
    ModelSpec::new(
        "AlexNet",
        cifar10_input(),
        vec![
            conv3(64),
            LayerSpec::max_pool(2, 2),
            conv3(128),
            LayerSpec::max_pool(2, 2),
            conv3(192),
            conv3(192),
            conv3(128),
            LayerSpec::max_pool(2, 2),
            LayerSpec::Flatten,
            LayerSpec::fc(1024),
            LayerSpec::Dropout,
            LayerSpec::fc(512),
            LayerSpec::Dropout,
            LayerSpec::fc(10),
        ],
    )
    .expect("AlexNet spec is shape-consistent")
}

/// VGG19 (configuration E) at ImageNet scale — Table 1's heaviest model.
pub fn vgg19_imagenet() -> ModelSpec {
    let mut layers = Vec::new();
    let cfg: &[(usize, usize)] = &[(2, 64), (2, 128), (4, 256), (4, 512), (4, 512)];
    for &(reps, ch) in cfg {
        for _ in 0..reps {
            layers.push(conv3(ch));
        }
        layers.push(LayerSpec::max_pool(2, 2));
    }
    layers.push(LayerSpec::Flatten);
    layers.push(LayerSpec::fc(4096));
    layers.push(LayerSpec::Dropout);
    layers.push(LayerSpec::fc(4096));
    layers.push(LayerSpec::Dropout);
    layers.push(LayerSpec::fc(1000));
    ModelSpec::new("VGG19", imagenet_input(), layers).expect("VGG19 spec is shape-consistent")
}

/// ResNet depth selector for [`resnet_imagenet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResNetDepth {
    /// ResNet-50: stages of [3, 4, 6, 3] bottlenecks.
    D50,
    /// ResNet-101: stages of [3, 4, 23, 3] bottlenecks.
    D101,
    /// ResNet-152: stages of [3, 8, 36, 3] bottlenecks.
    D152,
}

impl ResNetDepth {
    fn stages(self) -> [usize; 4] {
        match self {
            ResNetDepth::D50 => [3, 4, 6, 3],
            ResNetDepth::D101 => [3, 4, 23, 3],
            ResNetDepth::D152 => [3, 8, 36, 3],
        }
    }

    fn name(self) -> &'static str {
        match self {
            ResNetDepth::D50 => "ResNet50",
            ResNetDepth::D101 => "ResNet101",
            ResNetDepth::D152 => "ResNet152",
        }
    }
}

fn bottleneck(mid: usize, out: usize, stride: usize, project: bool) -> LayerSpec {
    LayerSpec::Residual {
        body: vec![
            LayerSpec::conv(1, 1, 0, mid),
            LayerSpec::conv(3, stride, 1, mid),
            LayerSpec::conv(1, 1, 0, out),
        ],
        projection: if project { Some((out, stride)) } else { None },
    }
}

/// Bottleneck ResNet at ImageNet scale (v1.5 stride placement), for
/// Table 1's latency measurements.
pub fn resnet_imagenet(depth: ResNetDepth) -> ModelSpec {
    let mut layers = vec![
        // Stem: 7x7/2 conv then 2x2/2 pool (nets 224 -> 56).
        LayerSpec::conv(7, 2, 3, 64),
        LayerSpec::max_pool(2, 2),
    ];
    let stages = depth.stages();
    let mids = [64usize, 128, 256, 512];
    for (stage, (&reps, &mid)) in stages.iter().zip(&mids).enumerate() {
        let out = mid * 4;
        for rep in 0..reps {
            let stride = if stage > 0 && rep == 0 { 2 } else { 1 };
            let project = rep == 0;
            layers.push(bottleneck(mid, out, stride, project));
        }
    }
    layers.push(LayerSpec::GlobalAvgPool);
    layers.push(LayerSpec::Flatten);
    layers.push(LayerSpec::fc(1000));
    ModelSpec::new(depth.name(), imagenet_input(), layers)
        .expect("ResNet spec is shape-consistent")
}

/// VGG16 (configuration D) adapted to CIFAR10 — a heavier target for
/// stress-testing the search on deeper chains.
pub fn vgg16_cifar() -> ModelSpec {
    let mut layers = Vec::new();
    let cfg: &[(usize, usize)] = &[(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)];
    for &(reps, ch) in cfg {
        for _ in 0..reps {
            layers.push(conv3(ch));
        }
        layers.push(LayerSpec::max_pool(2, 2));
    }
    layers.push(LayerSpec::Flatten);
    layers.push(LayerSpec::fc(512));
    layers.push(LayerSpec::Dropout);
    layers.push(LayerSpec::fc(512));
    layers.push(LayerSpec::Dropout);
    layers.push(LayerSpec::fc(10));
    ModelSpec::new("VGG16", cifar10_input(), layers).expect("VGG16 spec is shape-consistent")
}

/// MobileNetV1-style CIFAR10 network built from depthwise-separable
/// convolutions — the reference architecture behind technique C1.
pub fn mobilenet_cifar() -> ModelSpec {
    let mut layers = vec![LayerSpec::conv(3, 1, 1, 32)];
    let cfg: &[(usize, usize)] = &[
        // (stride, out_channels) per depthwise-separable block.
        (1, 64),
        (2, 128),
        (1, 128),
        (2, 256),
        (1, 256),
        (2, 512),
        (1, 512),
    ];
    let mut _in_ch = 32;
    for &(stride, out) in cfg {
        layers.push(LayerSpec::DepthwiseConv2d {
            kernel: 3,
            stride,
            pad: 1,
        });
        layers.push(LayerSpec::conv(1, 1, 0, out));
        _in_ch = out;
    }
    layers.push(LayerSpec::GlobalAvgPool);
    layers.push(LayerSpec::Flatten);
    layers.push(LayerSpec::fc(10));
    ModelSpec::new("MobileNet", cifar10_input(), layers)
        .expect("MobileNet spec is shape-consistent")
}

/// SqueezeNet-style CIFAR10 network built from Fire modules — the
/// reference architecture behind technique C3. Uses a global-average-
/// pooling classifier head (technique F3's target structure).
pub fn squeezenet_cifar() -> ModelSpec {
    let fire = |squeeze: usize, expand: usize| LayerSpec::Fire {
        squeeze,
        expand1: expand / 2,
        expand3: expand - expand / 2,
    };
    ModelSpec::new(
        "SqueezeNet",
        cifar10_input(),
        vec![
            LayerSpec::conv(3, 1, 1, 64),
            LayerSpec::max_pool(2, 2),
            fire(16, 128),
            fire(16, 128),
            LayerSpec::max_pool(2, 2),
            fire(32, 256),
            fire(32, 256),
            LayerSpec::max_pool(2, 2),
            fire(48, 384),
            fire(48, 384),
            LayerSpec::conv(1, 1, 0, 10),
            LayerSpec::GlobalAvgPool,
            LayerSpec::Flatten,
        ],
    )
    .expect("SqueezeNet spec is shape-consistent")
}

/// ResNet basic block (two 3×3 convs) for CIFAR-scale residual nets.
fn basic_block(out: usize, stride: usize, project: bool) -> LayerSpec {
    LayerSpec::Residual {
        body: vec![LayerSpec::conv(3, stride, 1, out), LayerSpec::conv(3, 1, 1, out)],
        projection: if project { Some((out, stride)) } else { None },
    }
}

/// CIFAR-scale ResNet-18 (basic blocks, stages 2-2-2-2).
pub fn resnet18_cifar() -> ModelSpec {
    resnet_cifar("ResNet18", [2, 2, 2, 2])
}

/// CIFAR-scale ResNet-34 (basic blocks, stages 3-4-6-3).
pub fn resnet34_cifar() -> ModelSpec {
    resnet_cifar("ResNet34", [3, 4, 6, 3])
}

fn resnet_cifar(name: &str, stages: [usize; 4]) -> ModelSpec {
    let mut layers = vec![conv3(64)];
    let channels = [64usize, 128, 256, 512];
    for (stage, (&reps, &ch)) in stages.iter().zip(&channels).enumerate() {
        for rep in 0..reps {
            let stride = if stage > 0 && rep == 0 { 2 } else { 1 };
            let project = stage > 0 && rep == 0;
            layers.push(basic_block(ch, stride, project));
        }
    }
    layers.push(LayerSpec::GlobalAvgPool);
    layers.push(LayerSpec::Flatten);
    layers.push(LayerSpec::fc(10));
    ModelSpec::new(name, cifar10_input(), layers).expect("CIFAR ResNet spec is shape-consistent")
}

/// The input shape of the synthetic dataset / TinyCnn pair.
pub fn tiny_input() -> Shape {
    Shape::new(3, 12, 12)
}

/// A small CNN that the in-repo runtime can actually train in seconds on
/// the synthetic dataset (see `cadmc_nn::dataset`). Structurally a
/// miniature VGG: conv-pool-conv-pool-fc-fc.
pub fn tiny_cnn() -> ModelSpec {
    ModelSpec::new(
        "TinyCnn",
        tiny_input(),
        vec![
            conv3(8),
            LayerSpec::max_pool(2, 2),
            conv3(16),
            LayerSpec::max_pool(2, 2),
            LayerSpec::Flatten,
            LayerSpec::fc(32),
            LayerSpec::fc(10),
        ],
    )
    .expect("TinyCnn spec is shape-consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg11_structure() {
        let m = vgg11_cifar();
        assert_eq!(m.output_shape(), Shape::features(10));
        let convs = m
            .layers()
            .iter()
            .filter(|l| matches!(l, LayerSpec::Conv2d { .. }))
            .count();
        assert_eq!(convs, 8, "VGG11 has 8 conv layers");
        // CIFAR VGG11 convs are ~150-280 MMACCs total.
        let mm = m.total_maccs() as f64 / 1e6;
        assert!((100.0..400.0).contains(&mm), "VGG11 MMACCs={mm}");
    }

    #[test]
    fn alexnet_is_lighter_than_vgg11() {
        assert!(alexnet_cifar().total_maccs() < vgg11_cifar().total_maccs());
    }

    #[test]
    fn vgg19_imagenet_scale() {
        let m = vgg19_imagenet();
        // Literature value: ~19.6 GMACCs for VGG19 at 224.
        let gm = m.total_maccs() as f64 / 1e9;
        assert!((17.0..22.0).contains(&gm), "VGG19 GMACCs={gm}");
        assert_eq!(m.output_shape(), Shape::features(1000));
    }

    #[test]
    fn resnet_maccs_ordering_and_scale() {
        let r50 = resnet_imagenet(ResNetDepth::D50).total_maccs();
        let r101 = resnet_imagenet(ResNetDepth::D101).total_maccs();
        let r152 = resnet_imagenet(ResNetDepth::D152).total_maccs();
        assert!(r50 < r101 && r101 < r152);
        // Literature: ~3.8-4.2 / ~7.6-8 / ~11-11.6 GMACCs.
        let g50 = r50 as f64 / 1e9;
        let g101 = r101 as f64 / 1e9;
        let g152 = r152 as f64 / 1e9;
        assert!((3.0..5.0).contains(&g50), "ResNet50 GMACCs={g50}");
        assert!((6.5..9.0).contains(&g101), "ResNet101 GMACCs={g101}");
        assert!((10.0..13.0).contains(&g152), "ResNet152 GMACCs={g152}");
    }

    #[test]
    fn resnet_shapes_close() {
        let m = resnet_imagenet(ResNetDepth::D50);
        assert_eq!(m.output_shape(), Shape::features(1000));
    }

    #[test]
    fn table1_latency_ratios_roughly_hold() {
        // Table 1 latencies: VGG19 5734.89, R50 1103.20, R101 2238.79,
        // R152 3729.10 ms — implied MACC ratios should be in the same
        // ballpark since the phone latency model is MACC-linear.
        let vgg = vgg19_imagenet().total_maccs() as f64;
        let r50 = resnet_imagenet(ResNetDepth::D50).total_maccs() as f64;
        let ratio = vgg / r50;
        let paper_ratio = 5734.89 / 1103.20;
        assert!(
            (ratio / paper_ratio - 1.0).abs() < 0.35,
            "MACC ratio {ratio:.2} vs paper latency ratio {paper_ratio:.2}"
        );
    }

    #[test]
    fn vgg16_is_heavier_than_vgg11() {
        assert!(vgg16_cifar().total_maccs() > vgg11_cifar().total_maccs());
        assert_eq!(vgg16_cifar().output_shape(), Shape::features(10));
    }

    #[test]
    fn mobilenet_is_macc_frugal() {
        let mobile = mobilenet_cifar();
        let vgg = vgg11_cifar();
        assert!(mobile.total_maccs() < vgg.total_maccs() / 3);
        assert_eq!(mobile.output_shape(), Shape::features(10));
    }

    #[test]
    fn squeezenet_has_few_parameters() {
        let sq = squeezenet_cifar();
        // SqueezeNet's selling point: "50x fewer parameters".
        assert!(sq.total_params() < vgg11_cifar().total_params() / 5);
        assert_eq!(sq.output_shape(), Shape::features(10));
    }

    #[test]
    fn cifar_resnets_are_consistent() {
        let r18 = resnet18_cifar();
        let r34 = resnet34_cifar();
        assert_eq!(r18.output_shape(), Shape::features(10));
        assert_eq!(r34.output_shape(), Shape::features(10));
        assert!(r34.total_maccs() > r18.total_maccs());
        // ResNet-18 on CIFAR is ~0.5-0.6 GMACC in the literature.
        let gm = r18.total_maccs() as f64 / 1e9;
        assert!((0.3..0.8).contains(&gm), "ResNet18 GMACCs={gm}");
        // The DAG expansion must preserve totals through the skip paths.
        use crate::graph::ModelDag;
        assert_eq!(ModelDag::from_spec(&r18).total_maccs(), r18.total_maccs());
    }

    #[test]
    fn reference_architectures_compile_in_runtime() {
        use crate::runtime::RuntimeModel;
        for spec in [mobilenet_cifar(), squeezenet_cifar()] {
            RuntimeModel::compile(&spec, 1)
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", spec.name()));
        }
    }

    #[test]
    fn tiny_cnn_is_trainable_scale() {
        let m = tiny_cnn();
        assert!(m.total_params() < 100_000);
        assert_eq!(m.output_shape(), Shape::features(10));
    }
}

//! Explicit DAG form of a model.
//!
//! The dynamic-DNN-surgery baseline (Hu et al., INFOCOM'19) formulates
//! partitioning as a min-cut over the DNN's *dataflow graph*, which for
//! networks with skip connections is a genuine DAG rather than a chain.
//! [`ModelDag::from_spec`] expands a [`ModelSpec`] — including its
//! composite residual / Fire / inverted-residual blocks — into primitive
//! dataflow nodes with explicit predecessor edges, per-node MACC counts
//! and per-edge feature sizes, ready for min-cut construction.

use crate::layer::{LayerSpec, Shape};
use crate::model::ModelSpec;

/// The computational role of a DAG node.
#[derive(Debug, Clone, PartialEq)]
pub enum DagOp {
    /// A primitive layer (conv / depthwise / fc / pool / …).
    Layer(LayerSpec),
    /// Elementwise addition joining a residual body and its skip path.
    Add,
    /// Channel concatenation joining Fire-module expand paths.
    Concat,
}

impl DagOp {
    /// Short display name.
    pub fn name(&self) -> String {
        match self {
            DagOp::Layer(l) => l.encode(),
            DagOp::Add => "Add".to_string(),
            DagOp::Concat => "Concat".to_string(),
        }
    }
}

/// One node of the dataflow DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct DagNode {
    /// The operation.
    pub op: DagOp,
    /// Indices of predecessor nodes (empty for nodes fed by the input).
    pub preds: Vec<usize>,
    /// Output shape.
    pub output: Shape,
    /// MACC cost of this node.
    pub maccs: u64,
}

/// A model's dataflow DAG. Nodes are stored in topological order (every
/// predecessor index is smaller than the node's own index).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDag {
    input: Shape,
    nodes: Vec<DagNode>,
    /// Indices of nodes whose output feeds the final result.
    outputs: Vec<usize>,
}

impl ModelDag {
    /// Expands `spec` into its primitive dataflow DAG.
    pub fn from_spec(spec: &ModelSpec) -> Self {
        let mut dag = ModelDag {
            input: spec.input_shape(),
            nodes: Vec::new(),
            outputs: Vec::new(),
        };
        // `frontier` is the node producing the current activation
        // (None = the network input).
        let mut frontier: Option<usize> = None;
        let mut shape = spec.input_shape();
        for layer in spec.layers() {
            frontier = Some(dag.expand_layer(layer, frontier, shape));
            shape = layer
                .output_shape(shape)
                .expect("validated shapes");
        }
        if let Some(f) = frontier {
            dag.outputs = vec![f];
        }
        dag
    }

    /// Input shape of the network.
    pub fn input(&self) -> Shape {
        self.input
    }

    /// The nodes, topologically ordered.
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the DAG is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Output node indices.
    pub fn outputs(&self) -> &[usize] {
        &self.outputs
    }

    /// Total MACCs (equals the spec's total).
    pub fn total_maccs(&self) -> u64 {
        self.nodes.iter().map(|n| n.maccs).sum()
    }

    /// All dataflow edges as `(from, to, bytes)`; `from == None` denotes
    /// the network input.
    pub fn edges(&self) -> Vec<(Option<usize>, usize, u64)> {
        let mut out = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if n.preds.is_empty() {
                out.push((None, i, self.input.transfer_bytes()));
            } else {
                for &p in &n.preds {
                    out.push((Some(p), i, self.nodes[p].output.transfer_bytes()));
                }
            }
        }
        out
    }

    fn push(&mut self, op: DagOp, preds: Vec<usize>, input: Shape) -> usize {
        let (output, maccs) = match &op {
            DagOp::Layer(l) => (
                l.output_shape(input).expect("validated shapes"),
                l.maccs(input),
            ),
            // Joins keep the (already combined) shape and are free.
            DagOp::Add | DagOp::Concat => (input, 0),
        };
        self.nodes.push(DagNode {
            op,
            preds,
            output,
            maccs,
        });
        self.nodes.len() - 1
    }

    fn pred_vec(frontier: Option<usize>) -> Vec<usize> {
        frontier.into_iter().collect()
    }

    /// Expands one spec layer (possibly composite) and returns the node
    /// producing its output.
    fn expand_layer(&mut self, layer: &LayerSpec, frontier: Option<usize>, input: Shape) -> usize {
        match layer {
            LayerSpec::Fire {
                squeeze,
                expand1,
                expand3,
            } => {
                let sq = self.push(
                    DagOp::Layer(LayerSpec::conv(1, 1, 0, *squeeze)),
                    Self::pred_vec(frontier),
                    input,
                );
                let mid = self.nodes[sq].output;
                let e1 = self.push(
                    DagOp::Layer(LayerSpec::conv(1, 1, 0, *expand1)),
                    vec![sq],
                    mid,
                );
                let e3 = self.push(
                    DagOp::Layer(LayerSpec::conv(3, 1, 1, *expand3)),
                    vec![sq],
                    mid,
                );
                let joined = Shape::new(expand1 + expand3, mid.h, mid.w);
                self.push(DagOp::Concat, vec![e1, e3], joined)
            }
            LayerSpec::InvertedResidual {
                expansion,
                stride,
                out_channels,
            } => {
                let hidden = input.c * expansion;
                let expand = self.push(
                    DagOp::Layer(LayerSpec::conv(1, 1, 0, hidden)),
                    Self::pred_vec(frontier),
                    input,
                );
                let mid = self.nodes[expand].output;
                let dw = self.push(
                    DagOp::Layer(LayerSpec::DepthwiseConv2d {
                        kernel: 3,
                        stride: *stride,
                        pad: 1,
                    }),
                    vec![expand],
                    mid,
                );
                let dw_out = self.nodes[dw].output;
                let project = self.push(
                    DagOp::Layer(LayerSpec::conv(1, 1, 0, *out_channels)),
                    vec![dw],
                    dw_out,
                );
                if *stride == 1 && *out_channels == input.c {
                    let mut preds = vec![project];
                    preds.extend(frontier);
                    let out = self.nodes[project].output;
                    self.push(DagOp::Add, preds, out)
                } else {
                    project
                }
            }
            LayerSpec::Residual { body, projection } => {
                let entry = frontier;
                let mut cur = frontier;
                let mut shape = input;
                for l in body {
                    cur = Some(self.expand_layer(l, cur, shape));
                    shape = l.output_shape(shape).expect("validated shapes");
                }
                let body_out = cur.expect("residual body is non-empty");
                let skip = match projection {
                    Some((out_c, stride)) => Some(self.push(
                        DagOp::Layer(LayerSpec::Conv2d {
                            kernel: 1,
                            stride: *stride,
                            pad: 0,
                            out_channels: *out_c,
                        }),
                        Self::pred_vec(entry),
                        input,
                    )),
                    None => entry,
                };
                let mut preds = vec![body_out];
                preds.extend(skip);
                self.push(DagOp::Add, preds, shape)
            }
            primitive => self.push(
                DagOp::Layer(primitive.clone()),
                Self::pred_vec(frontier),
                input,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn chain_model_expands_to_chain_dag() {
        let spec = zoo::vgg11_cifar();
        let dag = ModelDag::from_spec(&spec);
        assert_eq!(dag.len(), spec.len());
        // Every node has at most one predecessor in a chain.
        for n in dag.nodes() {
            assert!(n.preds.len() <= 1);
        }
        assert_eq!(dag.total_maccs(), spec.total_maccs());
    }

    #[test]
    fn fire_expands_to_diamond() {
        use crate::layer::LayerSpec;
        let spec = ModelSpec::new(
            "fire",
            Shape::new(32, 8, 8),
            vec![LayerSpec::Fire {
                squeeze: 8,
                expand1: 16,
                expand3: 16,
            }],
        )
        .unwrap();
        let dag = ModelDag::from_spec(&spec);
        // squeeze, e1, e3, concat.
        assert_eq!(dag.len(), 4);
        let concat = &dag.nodes()[3];
        assert_eq!(concat.op, DagOp::Concat);
        assert_eq!(concat.preds, vec![1, 2]);
        assert_eq!(concat.output, Shape::new(32, 8, 8));
        assert_eq!(dag.total_maccs(), spec.total_maccs());
    }

    #[test]
    fn resnet_dag_has_skip_edges() {
        let spec = zoo::resnet_imagenet(zoo::ResNetDepth::D50);
        let dag = ModelDag::from_spec(&spec);
        assert_eq!(dag.total_maccs(), spec.total_maccs());
        // Residual adds have two predecessors.
        let adds: Vec<&DagNode> = dag
            .nodes()
            .iter()
            .filter(|n| n.op == DagOp::Add)
            .collect();
        assert_eq!(adds.len(), 16, "ResNet50 has 16 bottleneck blocks");
        for add in adds {
            assert_eq!(add.preds.len(), 2);
        }
    }

    #[test]
    fn topological_order_holds() {
        let spec = zoo::resnet_imagenet(zoo::ResNetDepth::D50);
        let dag = ModelDag::from_spec(&spec);
        for (i, n) in dag.nodes().iter().enumerate() {
            for &p in &n.preds {
                assert!(p < i, "edge {p} -> {i} violates topological order");
            }
        }
    }

    #[test]
    fn edges_carry_feature_bytes() {
        let spec = zoo::tiny_cnn();
        let dag = ModelDag::from_spec(&spec);
        let edges = dag.edges();
        // The input edge carries the raw input size.
        let input_edges: Vec<_> = edges.iter().filter(|(f, _, _)| f.is_none()).collect();
        assert_eq!(input_edges.len(), 1);
        assert_eq!(input_edges[0].2, spec.input_bytes());
        // All internal edges carry the producer's output bytes.
        for (from, _, bytes) in edges {
            if let Some(f) = from {
                assert_eq!(bytes, dag.nodes()[f].output.transfer_bytes());
            }
        }
    }

    #[test]
    fn inverted_residual_with_skip() {
        use crate::layer::LayerSpec;
        let spec = ModelSpec::new(
            "ir",
            Shape::new(16, 8, 8),
            vec![LayerSpec::InvertedResidual {
                expansion: 2,
                stride: 1,
                out_channels: 16,
            }],
        )
        .unwrap();
        let dag = ModelDag::from_spec(&spec);
        // expand, dw, project, add (skip from input => add has 1 node pred).
        assert_eq!(dag.len(), 4);
        let add = &dag.nodes()[3];
        assert_eq!(add.op, DagOp::Add);
        // Skip comes from the network input (entry frontier None), so the
        // add has only the project node as an in-graph predecessor.
        assert_eq!(add.preds, vec![2]);
    }
}

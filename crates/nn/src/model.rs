//! Whole-model specifications, block slicing and cut-point accounting.

use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

use crate::layer::{LayerSpec, Shape, ShapeError};

/// Lazily-computed derived quantities of a [`ModelSpec`]: the structural
/// hash and the per-layer / total MACC counts. Both are pure functions of
/// the spec, re-derived on demand — so the cache is invisible to equality,
/// serialization, and cloning, and is simply reset whenever the spec
/// changes (every mutation path goes through [`ModelSpec::new`] or
/// [`ModelSpec::set_name`]).
#[derive(Debug, Default)]
struct ModelCache {
    hash: OnceLock<u64>,
    /// `(per-layer MACCs, their sum)`.
    maccs: OnceLock<(Vec<u64>, u64)>,
    /// Cost-class prefix sums, `layers.len() + 1` entries; entry `i`
    /// covers layers `[0, i)`.
    class_prefix: OnceLock<Vec<ClassSums>>,
}

impl Clone for ModelCache {
    fn clone(&self) -> Self {
        let out = Self::default();
        if let Some(&h) = self.hash.get() {
            let _ = out.hash.set(h);
        }
        if let Some(m) = self.maccs.get() {
            let _ = out.maccs.set(m.clone());
        }
        if let Some(p) = self.class_prefix.get() {
            let _ = out.class_prefix.set(p.clone());
        }
        out
    }
}

/// Grouped cost totals for a contiguous layer range: how many layers in
/// the range carry nonzero MACCs, and the MACC total per latency cost
/// class (see [`LayerSpec::cost_class`]).
///
/// Device latency over a range is an exact function of these integers —
/// `overhead · weighted_layers + Σ_class coeff[class] · maccs[class]` —
/// so differences of prefix sums reproduce a scalar walk bit-for-bit:
/// integer sums are associative, and the final float expression is
/// evaluated in one fixed order either way.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassSums {
    /// Number of layers in the range with nonzero MACC cost (each pays
    /// the device's per-layer overhead once).
    pub weighted_layers: u64,
    /// Total MACCs per cost class.
    pub maccs: [u64; LayerSpec::NUM_COST_CLASSES],
}

impl ClassSums {
    /// Accumulates one layer's contribution.
    fn add_layer(&mut self, class: Option<usize>, maccs: u64) {
        if maccs == 0 {
            return;
        }
        self.weighted_layers += 1;
        // A layer with nonzero MACCs always has a cost class; the
        // fallback keeps the sum total-preserving even if a future layer
        // kind forgets to declare one.
        let class = class.unwrap_or(1);
        self.maccs[class] += maccs;
    }

    /// The range `[start, end)` as a difference of two prefixes
    /// (`self` covers `[0, end)`, `earlier` covers `[0, start)`).
    fn minus(mut self, earlier: &ClassSums) -> ClassSums {
        self.weighted_layers -= earlier.weighted_layers;
        for (m, e) in self.maccs.iter_mut().zip(earlier.maccs) {
            *m -= e;
        }
        self
    }
}

// The cache carries no information beyond what the spec itself determines.
impl PartialEq for ModelCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Serialize for ModelCache {
    fn serialize(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl Deserialize for ModelCache {
    fn deserialize(_: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self::default())
    }
}

/// A sequential DNN specification: the substrate every search strategy in
/// the paper manipulates.
///
/// The paper's decision engine treats the DNN as a chain of layers grouped
/// into `N` blocks; partition happens at layer granularity, compression at
/// layer granularity within the edge part.
///
/// # Examples
///
/// ```
/// use cadmc_nn::{LayerSpec, ModelSpec, Shape};
///
/// let spec = ModelSpec::new(
///     "toy",
///     Shape::new(3, 32, 32),
///     vec![
///         LayerSpec::conv(3, 1, 1, 16),
///         LayerSpec::max_pool(2, 2),
///         LayerSpec::Flatten,
///         LayerSpec::fc(10),
///     ],
/// ).unwrap();
/// assert_eq!(spec.output_shape(), Shape::features(10));
/// assert!(spec.total_maccs() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    name: String,
    input: Shape,
    layers: Vec<LayerSpec>,
    /// Output shape after each layer (same length as `layers`).
    shapes: Vec<Shape>,
    /// Memoized structural hash and MACC counts (serialized as null,
    /// rebuilt on demand after deserialization).
    cache: ModelCache,
}

impl ModelSpec {
    /// Builds and shape-checks a model.
    ///
    /// # Errors
    ///
    /// Returns the first [`ShapeError`] encountered while propagating the
    /// input shape through `layers`.
    pub fn new(
        name: impl Into<String>,
        input: Shape,
        layers: Vec<LayerSpec>,
    ) -> Result<Self, ShapeError> {
        let mut shapes = Vec::with_capacity(layers.len());
        let mut s = input;
        for layer in &layers {
            s = layer.output_shape(s)?;
            shapes.push(s);
        }
        Ok(Self {
            name: name.into(),
            input,
            layers,
            shapes,
            cache: ModelCache::default(),
        })
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the model (used by compression rewrites). Resets the cached
    /// structural hash, which covers the name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
        self.cache = ModelCache::default();
    }

    /// Input shape.
    pub fn input_shape(&self) -> Shape {
        self.input
    }

    /// Final output shape.
    pub fn output_shape(&self) -> Shape {
        self.shapes.last().copied().unwrap_or(self.input)
    }

    /// The layer sequence.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Input shape of layer `i`.
    pub fn layer_input(&self, i: usize) -> Shape {
        if i == 0 {
            self.input
        } else {
            self.shapes[i - 1]
        }
    }

    /// Output shape of layer `i`.
    pub fn layer_output(&self, i: usize) -> Shape {
        self.shapes[i]
    }

    /// Per-layer MACCs and their sum, computed once per spec. Layer MACC
    /// inference walks the layer's arithmetic every call, and the searches
    /// ask for these counts on every candidate evaluation — memoizing them
    /// is one of the wins that makes parallel rollouts scale.
    fn maccs(&self) -> &(Vec<u64>, u64) {
        self.cache.maccs.get_or_init(|| {
            let per_layer: Vec<u64> = (0..self.layers.len())
                .map(|i| self.layers[i].maccs(self.layer_input(i)))
                .collect();
            let total = per_layer.iter().sum();
            (per_layer, total)
        })
    }

    /// MACCs of layer `i` given its in-network input shape.
    pub fn layer_maccs(&self, i: usize) -> u64 {
        self.maccs().0[i]
    }

    /// Total MACCs of the model (Eqs. 4–5 summed over layers).
    pub fn total_maccs(&self) -> u64 {
        self.maccs().1
    }

    /// Cost-class prefix sums (`len() + 1` entries), built once per spec.
    fn class_prefix(&self) -> &[ClassSums] {
        self.cache.class_prefix.get_or_init(|| {
            let mut prefix = Vec::with_capacity(self.layers.len() + 1);
            let mut acc = ClassSums::default();
            prefix.push(acc);
            for (i, layer) in self.layers.iter().enumerate() {
                acc.add_layer(layer.cost_class(), self.layer_maccs(i));
                prefix.push(acc);
            }
            prefix
        })
    }

    /// Grouped cost totals of layers `[start, end)` in O(1) via prefix-sum
    /// difference. An empty range yields the zero sums.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > len()`.
    pub fn class_sums(&self, start: usize, end: usize) -> ClassSums {
        assert!(start <= end && end <= self.layers.len(), "bad class-sum range");
        let prefix = self.class_prefix();
        prefix[end].minus(&prefix[start])
    }

    /// Scalar oracle for [`ModelSpec::class_sums`]: walks the range layer
    /// by layer. Exists for differential testing — the prefix-sum path
    /// must agree with this to 0 ULP downstream.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > len()`.
    pub fn class_sums_scalar(&self, start: usize, end: usize) -> ClassSums {
        assert!(start <= end && end <= self.layers.len(), "bad class-sum range");
        let mut acc = ClassSums::default();
        for i in start..end {
            acc.add_layer(self.layers[i].cost_class(), self.layer_maccs(i));
        }
        acc
    }

    /// Total trainable parameters.
    pub fn total_params(&self) -> u64 {
        (0..self.layers.len())
            .map(|i| self.layers[i].param_count(self.layer_input(i)))
            .sum()
    }

    /// Storage footprint of the weights as 4-byte floats.
    pub fn param_bytes(&self) -> u64 {
        self.total_params() * 4
    }

    /// Bytes transferred if the network is cut *after* layer `i`
    /// (`i == len()` means "run everything on the edge", cutting after the
    /// final layer; `i == 0`..`len()-1` sends the output features of layer
    /// `i`). Cutting "before layer 0" (send raw input) is `input_bytes`.
    pub fn cut_bytes_after(&self, i: usize) -> u64 {
        assert!(i < self.layers.len(), "cut index out of range");
        self.shapes[i].transfer_bytes()
    }

    /// Bytes of the raw input (cut before any layer: full cloud execution).
    pub fn input_bytes(&self) -> u64 {
        self.input.transfer_bytes()
    }

    /// The Eq. 1 state string for the whole model: one encoded layer per
    /// line, prefixed by the input shape.
    pub fn encode(&self) -> String {
        let mut s = format!("{}@{}", self.name, self.input);
        for l in &self.layers {
            s.push(';');
            s.push_str(&l.encode());
        }
        s
    }

    /// A stable 64-bit hash of the structural encoding — the key used by
    /// the search memo pool. Computed once per spec: the memo pool hashes
    /// every candidate it sees, and candidates are re-looked-up far more
    /// often than they are built.
    pub fn structural_hash(&self) -> u64 {
        *self.cache.hash.get_or_init(|| {
            let mut h = DefaultHasher::new();
            self.encode().hash(&mut h);
            h.finish()
        })
    }

    /// Replaces layer `i` with a sequence of layers, revalidating shapes.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the replacement breaks shape inference.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn replace_layer(
        &self,
        i: usize,
        replacement: Vec<LayerSpec>,
    ) -> Result<ModelSpec, ShapeError> {
        assert!(i < self.layers.len(), "layer index out of range");
        let mut layers = Vec::with_capacity(self.layers.len() + replacement.len());
        layers.extend_from_slice(&self.layers[..i]);
        layers.extend(replacement);
        layers.extend_from_slice(&self.layers[i + 1..]);
        ModelSpec::new(self.name.clone(), self.input, layers)
    }

    /// Extracts layers `[start, end)` as a standalone sub-model whose input
    /// shape is the in-network input of `start`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the slice is not shape-consistent (it
    /// always is for untouched slices of a valid model).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or empty.
    pub fn slice(&self, start: usize, end: usize) -> Result<ModelSpec, ShapeError> {
        assert!(start < end && end <= self.layers.len(), "bad slice range");
        ModelSpec::new(
            format!("{}[{start}..{end}]", self.name),
            self.layer_input(start),
            self.layers[start..end].to_vec(),
        )
    }

    /// Concatenates another model after this one.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `other`'s layers cannot consume this
    /// model's output shape.
    pub fn concat(&self, other: &ModelSpec) -> Result<ModelSpec, ShapeError> {
        let mut layers = self.layers.clone();
        layers.extend(other.layers.iter().cloned());
        ModelSpec::new(self.name.clone(), self.input, layers)
    }

    /// Splits the model into `n` blocks of roughly equal MACC cost,
    /// returning the block boundaries as layer-index ranges.
    ///
    /// Boundaries never split a layer, every block is non-empty (when
    /// `n <= len()`), and the concatenation of all blocks is the original
    /// layer sequence. This mirrors the paper's "slice the base DNN into
    /// blocks" step (Alg. 3 line 2) with N blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > len()`.
    pub fn block_ranges(&self, n: usize) -> Vec<std::ops::Range<usize>> {
        assert!(n > 0, "block count must be positive");
        assert!(n <= self.layers.len(), "more blocks than layers");
        let total = self.total_maccs().max(1);
        let target = total / n as u64;
        let mut ranges = Vec::with_capacity(n);
        let mut start = 0usize;
        let mut acc = 0u64;
        for i in 0..self.layers.len() {
            acc += self.layer_maccs(i);
            let blocks_left = n - ranges.len();
            let layers_left = self.layers.len() - (i + 1);
            // Close the block when we pass the per-block budget, but always
            // leave at least one layer per remaining block.
            if ranges.len() + 1 < n && (acc >= target || layers_left < blocks_left) {
                ranges.push(start..i + 1);
                start = i + 1;
                acc = 0;
            }
        }
        ranges.push(start..self.layers.len());
        ranges
    }

    /// Splits into `n` block sub-models (see [`ModelSpec::block_ranges`]).
    pub fn blocks(&self, n: usize) -> Vec<ModelSpec> {
        self.block_ranges(n)
            .into_iter()
            .map(|r| {
                self.slice(r.start, r.end)
                    .expect("valid block slice")
            })
            .collect()
    }
}

impl std::fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} (input {}, {} layers, {:.1} MMACCs, {:.2} M params)",
            self.name,
            self.input,
            self.layers.len(),
            self.total_maccs() as f64 / 1e6,
            self.total_params() as f64 / 1e6,
        )?;
        for (i, l) in self.layers.iter().enumerate() {
            writeln!(
                f,
                "  {i:2}: {:<20} -> {:<12} {:>12} MACCs",
                l.encode(),
                self.layer_output(i).to_string(),
                self.layer_maccs(i)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ModelSpec {
        ModelSpec::new(
            "toy",
            Shape::new(3, 32, 32),
            vec![
                LayerSpec::conv(3, 1, 1, 16),
                LayerSpec::max_pool(2, 2),
                LayerSpec::conv(3, 1, 1, 32),
                LayerSpec::max_pool(2, 2),
                LayerSpec::Flatten,
                LayerSpec::fc(64),
                LayerSpec::fc(10),
            ],
        )
        .unwrap()
    }

    #[test]
    fn shapes_propagate() {
        let m = toy();
        assert_eq!(m.layer_output(0), Shape::new(16, 32, 32));
        assert_eq!(m.layer_output(1), Shape::new(16, 16, 16));
        assert_eq!(m.layer_output(3), Shape::new(32, 8, 8));
        assert_eq!(m.layer_output(4), Shape::features(32 * 8 * 8));
        assert_eq!(m.output_shape(), Shape::features(10));
    }

    #[test]
    fn total_maccs_is_sum_of_layers() {
        let m = toy();
        let sum: u64 = (0..m.len()).map(|i| m.layer_maccs(i)).sum();
        assert_eq!(m.total_maccs(), sum);
    }

    #[test]
    fn slice_concat_roundtrip() {
        let m = toy();
        let a = m.slice(0, 3).unwrap();
        let b = m.slice(3, m.len()).unwrap();
        let joined = a.concat(&b).unwrap();
        assert_eq!(joined.layers(), m.layers());
        assert_eq!(joined.total_maccs(), m.total_maccs());
    }

    #[test]
    fn replace_layer_revalidates() {
        let m = toy();
        // Replace conv(3,1,1,32) with depthwise+pointwise (MobileNet-style).
        let replaced = m
            .replace_layer(
                2,
                vec![
                    LayerSpec::DepthwiseConv2d {
                        kernel: 3,
                        stride: 1,
                        pad: 1,
                    },
                    LayerSpec::conv(1, 1, 0, 32),
                ],
            )
            .unwrap();
        assert_eq!(replaced.len(), m.len() + 1);
        assert_eq!(replaced.output_shape(), m.output_shape());
        assert!(replaced.total_maccs() < m.total_maccs());
    }

    #[test]
    fn replace_layer_rejects_bad_shapes() {
        let m = toy();
        // FC directly on a spatial feature map should fail.
        assert!(m.replace_layer(2, vec![LayerSpec::fc(10)]).is_err());
    }

    #[test]
    fn block_ranges_partition_all_layers() {
        let m = toy();
        for n in 1..=3 {
            let ranges = m.block_ranges(n);
            assert_eq!(ranges.len(), n);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, m.len());
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
                assert!(!pair[0].is_empty());
            }
        }
    }

    #[test]
    fn blocks_concat_to_original() {
        let m = toy();
        let blocks = m.blocks(3);
        let mut joined = blocks[0].clone();
        for b in &blocks[1..] {
            joined = joined.concat(b).unwrap();
        }
        assert_eq!(joined.layers(), m.layers());
    }

    #[test]
    fn structural_hash_distinguishes_models() {
        let m = toy();
        let other = m.replace_layer(0, vec![LayerSpec::conv(3, 1, 1, 8)]).unwrap();
        assert_ne!(m.structural_hash(), other.structural_hash());
        assert_eq!(m.structural_hash(), toy().structural_hash());
    }

    #[test]
    fn cached_hash_tracks_renames() {
        let mut m = toy();
        let h0 = m.structural_hash();
        assert_eq!(m.structural_hash(), h0, "cached lookup is stable");
        m.set_name("renamed");
        assert_ne!(m.structural_hash(), h0, "rename must invalidate the hash");
    }

    #[test]
    fn clone_and_serde_roundtrip_preserve_derived_values() {
        let m = toy();
        let h = m.structural_hash();
        let maccs = m.total_maccs();
        let cloned = m.clone();
        assert_eq!(cloned.structural_hash(), h);
        assert_eq!(cloned.total_maccs(), maccs);
        let back = ModelSpec::deserialize(&m.serialize()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.structural_hash(), h);
        assert_eq!(back.total_maccs(), maccs);
    }

    #[test]
    fn cut_bytes_match_shapes() {
        let m = toy();
        assert_eq!(m.cut_bytes_after(1), 16 * 16 * 16 * 4);
        assert_eq!(m.input_bytes(), 3 * 32 * 32 * 4);
    }

    #[test]
    fn display_contains_layers() {
        let text = toy().to_string();
        assert!(text.contains("Conv,3,1,1,16"));
        assert!(text.contains("FC,0,0,0,10"));
    }
}

//! # cadmc-nn
//!
//! The DNN substrate for the `cadmc` reproduction of *Context-Aware Deep
//! Model Compression for Edge Cloud Computing* (ICDCS 2020).
//!
//! Three layers of fidelity:
//!
//! 1. **Specs** — [`LayerSpec`] / [`ModelSpec`] mirror the paper's Eq. 1
//!    hyper-parameter encoding `(l, k, s, p, n)` and its MACC cost model
//!    (Eqs. 4–5). Everything the search engine manipulates is a spec.
//! 2. **Zoo** — [`zoo`] provides the paper's base models (VGG11 / AlexNet
//!    at CIFAR scale, VGG19 / ResNet-50/101/152 at 224×224 for Table 1).
//! 3. **Runtime** — [`runtime::RuntimeModel`] compiles small specs into
//!    actually-trainable networks over `cadmc-autodiff`, with
//!    [`trainer::distill`] implementing the paper's knowledge-distillation
//!    fine-tuning on the [`dataset`] synthetic task.
//!
//! ## Example
//!
//! ```
//! use cadmc_nn::zoo;
//!
//! let vgg = zoo::vgg11_cifar();
//! println!("{vgg}");
//! assert_eq!(vgg.blocks(3).len(), 3); // the paper's N = 3 blocks
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod graph;
mod layer;
mod model;
mod proptests;
pub mod runtime;
pub mod trainer;
pub mod zoo;

pub use layer::{LayerSpec, Shape, ShapeError};
pub use model::{ClassSums, ModelSpec};

//! Layer specifications and per-layer cost accounting.
//!
//! The paper expresses a DNN layer as the hyper-parameter tuple
//! `x_i = (l, k, s, p, n)` — layer type, kernel size, stride, padding and
//! output channels (Eq. 1) — and estimates computational cost from the
//! number of multiply-accumulate operations (MACCs): Eq. 4 for convolutions
//! and Eq. 5 for fully-connected layers, with batch-norm / pooling / dropout
//! treated as free. [`LayerSpec`] mirrors that model exactly, while also
//! carrying enough structure (composite residual / fire / inverted-residual
//! blocks) to describe the model zoo and the compression rewrites.

use serde::{Deserialize, Serialize};

/// The spatial/channel shape of a feature map flowing between layers.
///
/// Fully-connected features are represented with `h == w == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    /// Channels (or features for FC layers).
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl Shape {
    /// Convenience constructor.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        Self { c, h, w }
    }

    /// A flat feature vector of `n` features.
    pub fn features(n: usize) -> Self {
        Self { c: n, h: 1, w: 1 }
    }

    /// Total number of scalar elements.
    pub fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Whether the shape is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes when transferred as `f32` features (the paper sends
    /// intermediate features to the cloud as 4-byte floats).
    pub fn transfer_bytes(&self) -> u64 {
        self.len() as u64 * 4
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

/// Errors from shape inference over layer sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// Kernel does not fit the (padded) input.
    KernelTooLarge {
        /// The offending layer's display name.
        layer: String,
        /// Input shape that was too small.
        input: Shape,
    },
    /// A layer that requires flat features received a spatial input.
    ExpectedFlat {
        /// The offending layer's display name.
        layer: String,
        /// The spatial input shape.
        input: Shape,
    },
    /// Residual body output shape does not match its input (and no
    /// downsample projection was provided).
    ResidualMismatch {
        /// Shape entering the residual block.
        input: Shape,
        /// Shape produced by the body.
        body: Shape,
    },
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::KernelTooLarge { layer, input } => {
                write!(f, "kernel of {layer} does not fit input {input}")
            }
            ShapeError::ExpectedFlat { layer, input } => {
                write!(f, "{layer} expects flat features, got {input}")
            }
            ShapeError::ResidualMismatch { input, body } => {
                write!(f, "residual body output {body} does not match input {input}")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

/// A single layer (or composite block) of a DNN.
///
/// Cheap layers (pooling, batch-norm, dropout, activations) carry zero MACC
/// cost, matching the paper's estimation model. Activations are implicit:
/// conv/FC layers in this codebase are assumed ReLU-activated except the
/// final classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Standard 2-D convolution with square kernel.
    Conv2d {
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Output channels.
        out_channels: usize,
    },
    /// Depthwise convolution (one filter per input channel).
    DepthwiseConv2d {
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Max pooling (zero MACC cost).
    MaxPool2d {
        /// Window size.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling: collapses spatial dims to 1×1 (zero cost).
    GlobalAvgPool,
    /// Flatten a spatial map into a feature vector (zero cost).
    Flatten,
    /// Fully-connected layer.
    Fc {
        /// Output features.
        out_features: usize,
    },
    /// Batch normalization (zero cost in the latency model).
    BatchNorm,
    /// Dropout (zero cost; inference no-op).
    Dropout,
    /// SqueezeNet *Fire* module: 1×1 squeeze then parallel 1×1 and 3×3
    /// expands whose outputs concatenate along channels.
    Fire {
        /// Squeeze 1×1 output channels.
        squeeze: usize,
        /// Expand 1×1 output channels.
        expand1: usize,
        /// Expand 3×3 output channels.
        expand3: usize,
    },
    /// MobileNetV2 inverted-residual block: 1×1 expand, 3×3 depthwise,
    /// 1×1 project, with a skip connection when shapes allow.
    InvertedResidual {
        /// Channel expansion factor applied to the input channels.
        expansion: usize,
        /// Stride of the depthwise stage.
        stride: usize,
        /// Output channels of the projection.
        out_channels: usize,
    },
    /// Generic residual block: a body of layers whose output is added back
    /// to the block input, with an optional 1×1 projection on the skip path.
    Residual {
        /// The residual body.
        body: Vec<LayerSpec>,
        /// Optional projection conv `(kernel=1)` output channels + stride
        /// for the skip path when the body changes shape.
        projection: Option<(usize, usize)>,
    },
}

impl LayerSpec {
    /// Standard conv constructor.
    pub fn conv(kernel: usize, stride: usize, pad: usize, out_channels: usize) -> Self {
        LayerSpec::Conv2d {
            kernel,
            stride,
            pad,
            out_channels,
        }
    }

    /// Fully-connected constructor.
    pub fn fc(out_features: usize) -> Self {
        LayerSpec::Fc { out_features }
    }

    /// Max-pool constructor.
    pub fn max_pool(kernel: usize, stride: usize) -> Self {
        LayerSpec::MaxPool2d { kernel, stride }
    }

    /// Short human/RL-readable type name (the `l` of Eq. 1).
    pub fn kind_name(&self) -> &'static str {
        match self {
            LayerSpec::Conv2d { .. } => "Conv",
            LayerSpec::DepthwiseConv2d { .. } => "DWConv",
            LayerSpec::MaxPool2d { .. } => "MaxPool",
            LayerSpec::GlobalAvgPool => "GAP",
            LayerSpec::Flatten => "Flatten",
            LayerSpec::Fc { .. } => "FC",
            LayerSpec::BatchNorm => "BN",
            LayerSpec::Dropout => "Dropout",
            LayerSpec::Fire { .. } => "Fire",
            LayerSpec::InvertedResidual { .. } => "InvRes",
            LayerSpec::Residual { .. } => "Residual",
        }
    }

    /// Numeric id of the layer type, used by controller embeddings.
    pub fn kind_id(&self) -> usize {
        match self {
            LayerSpec::Conv2d { .. } => 0,
            LayerSpec::DepthwiseConv2d { .. } => 1,
            LayerSpec::MaxPool2d { .. } => 2,
            LayerSpec::GlobalAvgPool => 3,
            LayerSpec::Flatten => 4,
            LayerSpec::Fc { .. } => 5,
            LayerSpec::BatchNorm => 6,
            LayerSpec::Dropout => 7,
            LayerSpec::Fire { .. } => 8,
            LayerSpec::InvertedResidual { .. } => 9,
            LayerSpec::Residual { .. } => 10,
        }
    }

    /// Number of distinct [`LayerSpec::kind_id`] values.
    pub const NUM_KINDS: usize = 11;

    /// The paper's Eq. 1 tuple `(l, k, s, p, n)` with zeros for fields a
    /// layer does not have. Composite blocks report their dominant conv.
    pub fn hyperparams(&self) -> (usize, usize, usize, usize, usize) {
        match *self {
            LayerSpec::Conv2d {
                kernel,
                stride,
                pad,
                out_channels,
            } => (self.kind_id(), kernel, stride, pad, out_channels),
            LayerSpec::DepthwiseConv2d { kernel, stride, pad } => {
                (self.kind_id(), kernel, stride, pad, 0)
            }
            LayerSpec::MaxPool2d { kernel, stride } => (self.kind_id(), kernel, stride, 0, 0),
            LayerSpec::GlobalAvgPool
            | LayerSpec::Flatten
            | LayerSpec::BatchNorm
            | LayerSpec::Dropout => (self.kind_id(), 0, 0, 0, 0),
            LayerSpec::Fc { out_features } => (self.kind_id(), 0, 0, 0, out_features),
            LayerSpec::Fire {
                squeeze,
                expand1,
                expand3,
            } => {
                let _ = squeeze;
                (self.kind_id(), 3, 1, 1, expand1 + expand3)
            }
            LayerSpec::InvertedResidual {
                expansion,
                stride,
                out_channels,
            } => (self.kind_id(), 3, stride, 1, out_channels * expansion / expansion.max(1)),
            LayerSpec::Residual { ref body, .. } => {
                // Report the first conv in the body as the representative.
                for l in body {
                    if let LayerSpec::Conv2d { .. } = l {
                        let (_, k, s, p, n) = l.hyperparams();
                        return (self.kind_id(), k, s, p, n);
                    }
                }
                (self.kind_id(), 0, 0, 0, 0)
            }
        }
    }

    /// Encodes the layer as the string form the paper uses for MDP states,
    /// e.g. `"Conv,3,1,1,64"`.
    pub fn encode(&self) -> String {
        let (_, k, s, p, n) = self.hyperparams();
        format!("{},{k},{s},{p},{n}", self.kind_name())
    }

    /// Output shape for a given input shape.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the layer cannot consume `input`.
    pub fn output_shape(&self, input: Shape) -> Result<Shape, ShapeError> {
        match *self {
            LayerSpec::Conv2d {
                kernel,
                stride,
                pad,
                out_channels,
            } => {
                let (h, w) = conv_out(input, kernel, stride, pad)
                    .ok_or_else(|| self.kernel_err(input))?;
                Ok(Shape::new(out_channels, h, w))
            }
            LayerSpec::DepthwiseConv2d { kernel, stride, pad } => {
                let (h, w) = conv_out(input, kernel, stride, pad)
                    .ok_or_else(|| self.kernel_err(input))?;
                Ok(Shape::new(input.c, h, w))
            }
            LayerSpec::MaxPool2d { kernel, stride } => {
                let (h, w) =
                    conv_out(input, kernel, stride, 0).ok_or_else(|| self.kernel_err(input))?;
                Ok(Shape::new(input.c, h, w))
            }
            LayerSpec::GlobalAvgPool => Ok(Shape::new(input.c, 1, 1)),
            LayerSpec::Flatten => Ok(Shape::features(input.len())),
            LayerSpec::Fc { out_features } => {
                if input.h != 1 || input.w != 1 {
                    return Err(ShapeError::ExpectedFlat {
                        layer: self.encode(),
                        input,
                    });
                }
                Ok(Shape::features(out_features))
            }
            LayerSpec::BatchNorm | LayerSpec::Dropout => Ok(input),
            LayerSpec::Fire {
                expand1, expand3, ..
            } => {
                // squeeze 1x1 keeps H,W; expands keep H,W (3x3 is pad 1).
                Ok(Shape::new(expand1 + expand3, input.h, input.w))
            }
            LayerSpec::InvertedResidual {
                stride,
                out_channels,
                ..
            } => {
                let (h, w) =
                    conv_out(input, 3, stride, 1).ok_or_else(|| self.kernel_err(input))?;
                Ok(Shape::new(out_channels, h, w))
            }
            LayerSpec::Residual {
                ref body,
                projection,
            } => {
                let mut s = input;
                for l in body {
                    s = l.output_shape(s)?;
                }
                match projection {
                    Some((out_c, stride)) => {
                        let (h, w) = conv_out(input, 1, stride, 0)
                            .ok_or_else(|| self.kernel_err(input))?;
                        let proj = Shape::new(out_c, h, w);
                        if proj != s {
                            return Err(ShapeError::ResidualMismatch { input, body: s });
                        }
                        Ok(s)
                    }
                    None => {
                        if s != input {
                            return Err(ShapeError::ResidualMismatch { input, body: s });
                        }
                        Ok(s)
                    }
                }
            }
        }
    }

    /// MACC count for this layer given its input shape (Eq. 4 / Eq. 5;
    /// cheap layers are zero).
    pub fn maccs(&self, input: Shape) -> u64 {
        match *self {
            LayerSpec::Conv2d {
                kernel,
                stride,
                pad,
                out_channels,
            } => match conv_out(input, kernel, stride, pad) {
                Some((h, w)) => {
                    (kernel * kernel) as u64
                        * input.c as u64
                        * out_channels as u64
                        * h as u64
                        * w as u64
                }
                None => 0,
            },
            LayerSpec::DepthwiseConv2d { kernel, stride, pad } => {
                match conv_out(input, kernel, stride, pad) {
                    Some((h, w)) => {
                        (kernel * kernel) as u64 * input.c as u64 * h as u64 * w as u64
                    }
                    None => 0,
                }
            }
            LayerSpec::Fc { out_features } => input.len() as u64 * out_features as u64,
            LayerSpec::MaxPool2d { .. }
            | LayerSpec::GlobalAvgPool
            | LayerSpec::Flatten
            | LayerSpec::BatchNorm
            | LayerSpec::Dropout => 0,
            LayerSpec::Fire {
                squeeze,
                expand1,
                expand3,
            } => {
                let sq = LayerSpec::conv(1, 1, 0, squeeze);
                let mid = match sq.output_shape(input) {
                    Ok(s) => s,
                    Err(_) => return 0,
                };
                sq.maccs(input)
                    + LayerSpec::conv(1, 1, 0, expand1).maccs(mid)
                    + LayerSpec::conv(3, 1, 1, expand3).maccs(mid)
            }
            LayerSpec::InvertedResidual {
                expansion,
                stride,
                out_channels,
            } => {
                let hidden = input.c * expansion;
                let expand = LayerSpec::conv(1, 1, 0, hidden);
                let mid = match expand.output_shape(input) {
                    Ok(s) => s,
                    Err(_) => return 0,
                };
                let dw = LayerSpec::DepthwiseConv2d {
                    kernel: 3,
                    stride,
                    pad: 1,
                };
                let dw_out = match dw.output_shape(mid) {
                    Ok(s) => s,
                    Err(_) => return 0,
                };
                expand.maccs(input)
                    + dw.maccs(mid)
                    + LayerSpec::conv(1, 1, 0, out_channels).maccs(dw_out)
            }
            LayerSpec::Residual {
                ref body,
                projection,
            } => {
                let mut total = 0;
                let mut s = input;
                for l in body {
                    total += l.maccs(s);
                    s = match l.output_shape(s) {
                        Ok(next) => next,
                        Err(_) => return total,
                    };
                }
                if let Some((out_c, stride)) = projection {
                    total += LayerSpec::Conv2d {
                        kernel: 1,
                        stride,
                        pad: 0,
                        out_channels: out_c,
                    }
                    .maccs(input);
                }
                total
            }
        }
    }

    /// Trainable parameter count (weights + biases) for this layer.
    pub fn param_count(&self, input: Shape) -> u64 {
        match *self {
            LayerSpec::Conv2d {
                kernel,
                out_channels,
                ..
            } => (kernel * kernel * input.c * out_channels + out_channels) as u64,
            LayerSpec::DepthwiseConv2d { kernel, .. } => {
                (kernel * kernel * input.c + input.c) as u64
            }
            LayerSpec::Fc { out_features } => (input.len() * out_features + out_features) as u64,
            LayerSpec::MaxPool2d { .. }
            | LayerSpec::GlobalAvgPool
            | LayerSpec::Flatten
            | LayerSpec::Dropout => 0,
            LayerSpec::BatchNorm => 2 * input.c as u64,
            LayerSpec::Fire {
                squeeze,
                expand1,
                expand3,
            } => {
                let sq = LayerSpec::conv(1, 1, 0, squeeze);
                let mid = match sq.output_shape(input) {
                    Ok(s) => s,
                    Err(_) => return 0,
                };
                sq.param_count(input)
                    + LayerSpec::conv(1, 1, 0, expand1).param_count(mid)
                    + LayerSpec::conv(3, 1, 1, expand3).param_count(mid)
            }
            LayerSpec::InvertedResidual {
                expansion,
                stride,
                out_channels,
            } => {
                let hidden = input.c * expansion;
                let expand = LayerSpec::conv(1, 1, 0, hidden);
                let mid = match expand.output_shape(input) {
                    Ok(s) => s,
                    Err(_) => return 0,
                };
                let dw = LayerSpec::DepthwiseConv2d {
                    kernel: 3,
                    stride,
                    pad: 1,
                };
                let dw_out = match dw.output_shape(mid) {
                    Ok(s) => s,
                    Err(_) => return 0,
                };
                expand.param_count(input)
                    + dw.param_count(mid)
                    + LayerSpec::conv(1, 1, 0, out_channels).param_count(dw_out)
            }
            LayerSpec::Residual {
                ref body,
                projection,
            } => {
                let mut total = 0;
                let mut s = input;
                for l in body {
                    total += l.param_count(s);
                    s = match l.output_shape(s) {
                        Ok(next) => next,
                        Err(_) => return total,
                    };
                }
                if let Some((out_c, stride)) = projection {
                    total += LayerSpec::Conv2d {
                        kernel: 1,
                        stride,
                        pad: 0,
                        out_channels: out_c,
                    }
                    .param_count(input);
                }
                total
            }
        }
    }

    /// Number of distinct latency cost classes (see [`LayerSpec::cost_class`]).
    pub const NUM_COST_CLASSES: usize = 6;

    /// Latency cost class of this layer, or `None` for zero-cost layers.
    ///
    /// Device latency models charge every compute-bearing layer a fixed
    /// per-layer overhead plus a per-MACC coefficient that depends only on
    /// this class — conv layers bucketed by kernel size (classes 0–3),
    /// depthwise convs (4) and fully-connected layers (5). Composite
    /// blocks (Fire / inverted-residual / residual) are dominated by 3×3
    /// convolutions and share the 3×3 conv class. Because the coefficient
    /// is constant within a class, a device's latency over any layer range
    /// reduces to six MACC sums plus a weighted-layer count — which is
    /// what makes prefix-sum latency kernels exact rather than
    /// approximate.
    pub fn cost_class(&self) -> Option<usize> {
        match self {
            LayerSpec::Conv2d { kernel, .. } => Some(match kernel {
                0..=1 => 0,
                2..=3 => 1,
                4..=5 => 2,
                _ => 3,
            }),
            LayerSpec::DepthwiseConv2d { .. } => Some(4),
            LayerSpec::Fc { .. } => Some(5),
            LayerSpec::Fire { .. }
            | LayerSpec::InvertedResidual { .. }
            | LayerSpec::Residual { .. } => Some(1),
            LayerSpec::MaxPool2d { .. }
            | LayerSpec::GlobalAvgPool
            | LayerSpec::Flatten
            | LayerSpec::BatchNorm
            | LayerSpec::Dropout => None,
        }
    }

    /// Whether this layer carries trainable weight (a compression target).
    pub fn is_weighted(&self) -> bool {
        matches!(
            self,
            LayerSpec::Conv2d { .. }
                | LayerSpec::DepthwiseConv2d { .. }
                | LayerSpec::Fc { .. }
                | LayerSpec::Fire { .. }
                | LayerSpec::InvertedResidual { .. }
                | LayerSpec::Residual { .. }
        )
    }

    fn kernel_err(&self, input: Shape) -> ShapeError {
        ShapeError::KernelTooLarge {
            layer: self.encode(),
            input,
        }
    }
}

fn conv_out(input: Shape, kernel: usize, stride: usize, pad: usize) -> Option<(usize, usize)> {
    if stride == 0 {
        return None;
    }
    let ph = input.h + 2 * pad;
    let pw = input.w + 2 * pad;
    if ph < kernel || pw < kernel {
        return None;
    }
    Some(((ph - kernel) / stride + 1, (pw - kernel) / stride + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_macc_matches_eq4() {
        // Eq. 4: K*K*Cin*Cout*Hout*Wout.
        let layer = LayerSpec::conv(3, 1, 1, 64);
        let input = Shape::new(3, 32, 32);
        assert_eq!(layer.maccs(input), 3 * 3 * 3 * 64 * 32 * 32);
    }

    #[test]
    fn fc_macc_matches_eq5() {
        let layer = LayerSpec::fc(1000);
        let input = Shape::features(4096);
        assert_eq!(layer.maccs(input), 4096 * 1000);
    }

    #[test]
    fn cheap_layers_cost_zero() {
        let input = Shape::new(64, 16, 16);
        assert_eq!(LayerSpec::max_pool(2, 2).maccs(input), 0);
        assert_eq!(LayerSpec::BatchNorm.maccs(input), 0);
        assert_eq!(LayerSpec::Dropout.maccs(input), 0);
        assert_eq!(LayerSpec::GlobalAvgPool.maccs(input), 0);
        assert_eq!(LayerSpec::Flatten.maccs(input), 0);
    }

    #[test]
    fn conv_shape_inference() {
        let layer = LayerSpec::conv(3, 2, 1, 128);
        let out = layer.output_shape(Shape::new(64, 32, 32)).unwrap();
        assert_eq!(out, Shape::new(128, 16, 16));
    }

    #[test]
    fn pool_halves_spatial() {
        let out = LayerSpec::max_pool(2, 2)
            .output_shape(Shape::new(64, 32, 32))
            .unwrap();
        assert_eq!(out, Shape::new(64, 16, 16));
    }

    #[test]
    fn fc_rejects_spatial_input() {
        let err = LayerSpec::fc(10).output_shape(Shape::new(64, 4, 4));
        assert!(matches!(err, Err(ShapeError::ExpectedFlat { .. })));
    }

    #[test]
    fn depthwise_is_cout_times_cheaper() {
        let input = Shape::new(64, 16, 16);
        let full = LayerSpec::conv(3, 1, 1, 64).maccs(input);
        let dw = LayerSpec::DepthwiseConv2d {
            kernel: 3,
            stride: 1,
            pad: 1,
        }
        .maccs(input);
        assert_eq!(full, dw * 64);
    }

    #[test]
    fn mobilenet_split_is_cheaper_than_conv() {
        // Depthwise 3x3 + pointwise 1x1 vs full 3x3 conv.
        let input = Shape::new(64, 16, 16);
        let full = LayerSpec::conv(3, 1, 1, 64).maccs(input);
        let dw = LayerSpec::DepthwiseConv2d {
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let split = dw.maccs(input) + LayerSpec::conv(1, 1, 0, 64).maccs(input);
        assert!(split < full / 4, "split={split} full={full}");
    }

    #[test]
    fn fire_module_shape_and_maccs() {
        let fire = LayerSpec::Fire {
            squeeze: 16,
            expand1: 64,
            expand3: 64,
        };
        let input = Shape::new(96, 16, 16);
        assert_eq!(fire.output_shape(input).unwrap(), Shape::new(128, 16, 16));
        // Fire should be cheaper than the 3x3 conv it replaces at same width.
        let conv = LayerSpec::conv(3, 1, 1, 128);
        assert!(fire.maccs(input) < conv.maccs(input));
    }

    #[test]
    fn inverted_residual_shape() {
        let ir = LayerSpec::InvertedResidual {
            expansion: 6,
            stride: 2,
            out_channels: 32,
        };
        let out = ir.output_shape(Shape::new(16, 32, 32)).unwrap();
        assert_eq!(out, Shape::new(32, 16, 16));
        assert!(ir.maccs(Shape::new(16, 32, 32)) > 0);
    }

    #[test]
    fn residual_requires_matching_shapes() {
        let good = LayerSpec::Residual {
            body: vec![LayerSpec::conv(3, 1, 1, 64), LayerSpec::conv(3, 1, 1, 64)],
            projection: None,
        };
        assert!(good.output_shape(Shape::new(64, 8, 8)).is_ok());
        let bad = LayerSpec::Residual {
            body: vec![LayerSpec::conv(3, 1, 1, 128)],
            projection: None,
        };
        assert!(matches!(
            bad.output_shape(Shape::new(64, 8, 8)),
            Err(ShapeError::ResidualMismatch { .. })
        ));
    }

    #[test]
    fn residual_with_projection() {
        let block = LayerSpec::Residual {
            body: vec![
                LayerSpec::conv(1, 1, 0, 64),
                LayerSpec::conv(3, 2, 1, 64),
                LayerSpec::conv(1, 1, 0, 256),
            ],
            projection: Some((256, 2)),
        };
        let out = block.output_shape(Shape::new(128, 16, 16)).unwrap();
        assert_eq!(out, Shape::new(256, 8, 8));
    }

    #[test]
    fn encode_matches_eq1_format() {
        assert_eq!(LayerSpec::conv(3, 1, 1, 64).encode(), "Conv,3,1,1,64");
        assert_eq!(LayerSpec::fc(1024).encode(), "FC,0,0,0,1024");
    }

    #[test]
    fn transfer_bytes_are_f32() {
        assert_eq!(Shape::new(64, 16, 16).transfer_bytes(), 64 * 16 * 16 * 4);
    }

    #[test]
    fn param_count_conv() {
        let layer = LayerSpec::conv(3, 1, 1, 64);
        assert_eq!(layer.param_count(Shape::new(3, 32, 32)), 3 * 3 * 3 * 64 + 64);
    }
}

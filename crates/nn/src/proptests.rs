//! Property-based tests of the spec algebra: shape propagation, block
//! slicing, MACC accounting and DAG expansion over randomized models.

#![cfg(test)]

use proptest::prelude::*;

use crate::graph::ModelDag;
use crate::layer::{LayerSpec, Shape};
use crate::model::ModelSpec;

/// Random valid chain specs: conv stacks with occasional pools, a flatten
/// and an FC head, over a 16×16 input.
fn arb_spec() -> impl Strategy<Value = ModelSpec> {
    let block = prop_oneof![
        3 => (prop_oneof![Just(8usize), Just(16), Just(32)], 1usize..=2)
            .prop_map(|(c, s)| vec![LayerSpec::conv(3, s, 1, c)]),
        1 => Just(vec![LayerSpec::max_pool(2, 2)]),
        1 => (4usize..=16).prop_map(|sq| vec![LayerSpec::Fire {
            squeeze: sq,
            expand1: sq * 2,
            expand3: sq * 2,
        }]),
    ];
    proptest::collection::vec(block, 1..4).prop_filter_map("shape-valid spec", |blocks| {
        let mut layers: Vec<LayerSpec> = blocks.into_iter().flatten().collect();
        layers.push(LayerSpec::GlobalAvgPool);
        layers.push(LayerSpec::Flatten);
        layers.push(LayerSpec::fc(10));
        ModelSpec::new("rand", Shape::new(3, 16, 16), layers).ok()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Slicing at any point and re-concatenating reproduces the model.
    #[test]
    fn slice_concat_identity(spec in arb_spec(), cut in 1usize..8) {
        let cut = cut.min(spec.len() - 1);
        let a = spec.slice(0, cut).expect("prefix slice");
        let b = spec.slice(cut, spec.len()).expect("suffix slice");
        let joined = a.concat(&b).expect("slices re-concatenate");
        prop_assert_eq!(joined.layers(), spec.layers());
        prop_assert_eq!(joined.total_maccs(), spec.total_maccs());
        prop_assert_eq!(joined.output_shape(), spec.output_shape());
    }

    /// Block ranges tile the layer sequence exactly for every feasible N.
    #[test]
    fn blocks_tile_the_model(spec in arb_spec()) {
        for n in 1..=spec.len().min(4) {
            let ranges = spec.block_ranges(n);
            prop_assert_eq!(ranges.len(), n);
            let mut expected_start = 0;
            for r in &ranges {
                prop_assert_eq!(r.start, expected_start);
                prop_assert!(!r.is_empty());
                expected_start = r.end;
            }
            prop_assert_eq!(expected_start, spec.len());
        }
    }

    /// Per-layer MACCs sum to the total, and the DAG expansion preserves
    /// the total exactly.
    #[test]
    fn macc_accounting_consistent(spec in arb_spec()) {
        let per_layer: u64 = (0..spec.len()).map(|i| spec.layer_maccs(i)).sum();
        prop_assert_eq!(per_layer, spec.total_maccs());
        let dag = ModelDag::from_spec(&spec);
        prop_assert_eq!(dag.total_maccs(), spec.total_maccs());
    }

    /// Shape propagation is consistent: each layer's recorded input equals
    /// the previous layer's output.
    #[test]
    fn shapes_chain(spec in arb_spec()) {
        for i in 1..spec.len() {
            prop_assert_eq!(spec.layer_input(i), spec.layer_output(i - 1));
        }
        prop_assert_eq!(spec.layer_input(0), spec.input_shape());
    }

    /// The Eq. 1 encoding uniquely keys structure: equal encodes imply
    /// equal layer lists (over this generator's space).
    #[test]
    fn encode_is_injective_enough(a in arb_spec(), b in arb_spec()) {
        if a.encode() == b.encode() {
            prop_assert_eq!(a.layers(), b.layers());
        }
    }

    /// transfer_bytes is 4 bytes per element everywhere.
    #[test]
    fn transfer_bytes_are_4x_len(spec in arb_spec()) {
        for i in 0..spec.len() {
            let shape = spec.layer_output(i);
            prop_assert_eq!(shape.transfer_bytes(), shape.len() as u64 * 4);
        }
    }
}

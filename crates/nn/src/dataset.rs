//! Synthetic image-classification data.
//!
//! The paper trains on CIFAR10, which we cannot (no GPU training stack —
//! see DESIGN.md). This module generates a deterministic 10-class dataset
//! of small RGB images with parametric class structure (stripes, disks,
//! checkerboards, …) plus Gaussian noise, so that the in-repo CNN runtime
//! can demonstrably *learn* — real gradients, real generalization — at
//! laptop scale.

use cadmc_autodiff::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::layer::Shape;

/// Number of classes in the synthetic task (matching CIFAR10's 10).
pub const NUM_CLASSES: usize = 10;

/// An in-memory labelled image set.
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Matrix,
    labels: Vec<usize>,
    shape: Shape,
}

impl Dataset {
    /// Wraps raw data.
    ///
    /// # Panics
    ///
    /// Panics if row count and label count disagree, or the image width
    /// does not match `shape`.
    pub fn new(images: Matrix, labels: Vec<usize>, shape: Shape) -> Self {
        assert_eq!(images.rows(), labels.len(), "one label per image required");
        assert_eq!(images.cols(), shape.len(), "image width must match shape");
        Self {
            images,
            labels,
            shape,
        }
    }

    /// The images as an `(N, C*H*W)` matrix (NCHW element order per row).
    pub fn images(&self) -> &Matrix {
        &self.images
    }

    /// Ground-truth labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-image shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Copies examples `[start, start+count)` as a minibatch.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the dataset.
    pub fn batch(&self, start: usize, count: usize) -> (Matrix, &[usize]) {
        assert!(start + count <= self.len(), "batch out of range");
        (
            self.images.slice_rows(start, count),
            &self.labels[start..start + count],
        )
    }

    /// One-hot label matrix for examples `[start, start+count)`.
    pub fn one_hot(&self, start: usize, count: usize) -> Matrix {
        let mut out = Matrix::zeros(count, NUM_CLASSES);
        for (r, &l) in self.labels[start..start + count].iter().enumerate() {
            *out.at_mut(r, l) = 1.0;
        }
        out
    }

    /// Splits into `(first_n, rest)` by index.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn split(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len(), "split point out of range");
        let a = Dataset::new(
            self.images.slice_rows(0, n),
            self.labels[..n].to_vec(),
            self.shape,
        );
        let b = Dataset::new(
            self.images.slice_rows(n, self.len() - n),
            self.labels[n..].to_vec(),
            self.shape,
        );
        (a, b)
    }
}

/// Generates `n` examples of the synthetic task with noise level `sigma`,
/// deterministically from `seed`. Classes are balanced round-robin and the
/// order is shuffled.
pub fn synthetic(n: usize, sigma: f32, seed: u64) -> Dataset {
    let shape = Shape::new(3, 12, 12);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut images = Matrix::zeros(n, shape.len());
    let mut labels = Vec::with_capacity(n);
    // Shuffled class order.
    let mut order: Vec<usize> = (0..n).map(|i| i % NUM_CLASSES).collect();
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    for (row, &class) in order.iter().enumerate() {
        let img = render_class(class, shape, &mut rng, sigma);
        images.data_mut()[row * shape.len()..(row + 1) * shape.len()].copy_from_slice(&img);
        labels.push(class);
    }
    Dataset::new(images, labels, shape)
}

/// Renders a single image of `class` (NCHW order) with per-class structure
/// and channel signature, plus Gaussian-ish noise.
fn render_class(class: usize, shape: Shape, rng: &mut StdRng, sigma: f32) -> Vec<f32> {
    let (h, w) = (shape.h, shape.w);
    let mut img = vec![0.0f32; shape.len()];
    // Channel signature: each class tints a different channel mix.
    let tint = [
        f32::from(u8::from(class.is_multiple_of(3))) * 0.4 + 0.3,
        f32::from(u8::from(class % 3 == 1)) * 0.4 + 0.3,
        f32::from(u8::from(class % 3 == 2)) * 0.4 + 0.3,
    ];
    let phase = rng.random_range(0..3) as usize;
    for y in 0..h {
        for x in 0..w {
            let fy = y as f32 / (h - 1) as f32;
            let fx = x as f32 / (w - 1) as f32;
            let cy = fy - 0.5;
            let cx = fx - 0.5;
            let r2 = cx * cx + cy * cy;
            let base = match class {
                0 => ((y + phase) / 2 % 2) as f32,                      // horizontal stripes
                1 => ((x + phase) / 2 % 2) as f32,                      // vertical stripes
                2 => (((x + phase) / 2 + (y + phase) / 2) % 2) as f32,  // checkerboard
                3 => f32::from(r2 < 0.09),                              // disk
                4 => f32::from(cx.abs() < 0.12 || cy.abs() < 0.12),     // cross
                5 => f32::from((fx - fy).abs() < 0.18),                 // main diagonal
                6 => f32::from(r2 > 0.16),                              // corners
                7 => f32::from((0.05..0.14).contains(&r2)),             // ring
                8 => fx,                                                // gradient
                _ => 0.6,                                               // solid
            };
            for c in 0..3 {
                let noise: f32 = approx_gauss(rng) * sigma;
                img[(c * h + y) * w + x] = (base * tint[c] + noise).clamp(-1.0, 2.0);
            }
        }
    }
    img
}

/// Cheap approximately-Gaussian sample (Irwin–Hall with 4 uniforms).
fn approx_gauss(rng: &mut StdRng) -> f32 {
    let s: f32 = (0..4).map(|_| rng.random_range(-0.5..0.5)).sum();
    s * (12.0f32 / 4.0).sqrt() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = synthetic(40, 0.1, 3);
        let b = synthetic(40, 0.1, 3);
        assert_eq!(a.images(), b.images());
        assert_eq!(a.labels(), b.labels());
        let c = synthetic(40, 0.1, 4);
        assert_ne!(a.images(), c.images());
    }

    #[test]
    fn classes_are_balanced() {
        let d = synthetic(100, 0.05, 1);
        let mut counts = [0usize; NUM_CLASSES];
        for &l in d.labels() {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn batches_and_one_hot() {
        let d = synthetic(30, 0.05, 1);
        let (imgs, labels) = d.batch(10, 5);
        assert_eq!(imgs.rows(), 5);
        assert_eq!(labels.len(), 5);
        let oh = d.one_hot(10, 5);
        for (r, &label) in labels.iter().enumerate() {
            let sum: f32 = oh.row(r).iter().sum();
            assert_eq!(sum, 1.0);
            assert_eq!(oh.at(r, label), 1.0);
        }
    }

    #[test]
    fn split_preserves_total() {
        let d = synthetic(50, 0.05, 1);
        let (a, b) = d.split(30);
        assert_eq!(a.len(), 30);
        assert_eq!(b.len(), 20);
        assert_eq!(a.shape(), d.shape());
    }

    #[test]
    fn class_means_are_distinct() {
        // Sanity: the rendered classes are actually distinguishable.
        let d = synthetic(200, 0.02, 7);
        let len = d.shape().len();
        let mut means = vec![vec![0.0f32; len]; NUM_CLASSES];
        let mut counts = vec![0usize; NUM_CLASSES];
        for i in 0..d.len() {
            let l = d.labels()[i];
            counts[l] += 1;
            for (m, &v) in means[l].iter_mut().zip(d.images().row(i)) {
                *m += v;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        // Every pair of class means should differ noticeably in L2.
        for a in 0..NUM_CLASSES {
            for b in a + 1..NUM_CLASSES {
                let d2: f32 = means[a]
                    .iter()
                    .zip(&means[b])
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum();
                assert!(d2.sqrt() > 0.5, "classes {a} and {b} too similar: {}", d2.sqrt());
            }
        }
    }
}

//! Concurrency and differential coverage for [`ClassSums`] prefix sums.
//!
//! The O(1) `class_sums` path lazily builds its prefix table behind a
//! `OnceLock`, so the first calls from a parallel rollout race on
//! initialization. These tests drive that race directly (and run under
//! Miri in CI) alongside an exhaustive scalar-oracle comparison.

use std::sync::{Arc, Barrier};

use cadmc_nn::zoo;
use cadmc_nn::ModelSpec;

fn models() -> Vec<ModelSpec> {
    // Squeezenet brings Fire modules (nested convs), mobilenet brings
    // depthwise layers — both exercise nonzero classes beyond plain conv.
    vec![zoo::tiny_cnn(), zoo::squeezenet_cifar(), zoo::mobilenet_cifar()]
}

#[test]
fn prefix_sums_match_scalar_oracle_on_every_range() {
    for spec in models() {
        let n = spec.len();
        for start in 0..=n {
            for end in start..=n {
                assert_eq!(
                    spec.class_sums(start, end),
                    spec.class_sums_scalar(start, end),
                    "{}: range [{start}, {end}) diverged from the scalar walk",
                    spec.name()
                );
            }
        }
    }
}

#[test]
fn racing_first_use_yields_one_consistent_prefix_table() {
    // Many threads hit the cold OnceLock at once; every observed answer
    // must equal the scalar oracle regardless of which thread won init.
    let threads = 8;
    for spec in models() {
        let spec = Arc::new(spec);
        let n = spec.len();
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let spec = Arc::clone(&spec);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    // Thread-dependent range order so initialization is
                    // reached through different first queries.
                    for i in 0..=n {
                        let (start, end) = if t % 2 == 0 { (0, i) } else { (i, n) };
                        let got = spec.class_sums(start, end);
                        assert_eq!(got, spec.class_sums_scalar(start, end));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("class-sums worker panicked");
        }
    }
}

#[test]
fn empty_and_full_ranges_are_exact() {
    for spec in models() {
        let n = spec.len();
        let zero = spec.class_sums(0, 0);
        assert_eq!(zero.weighted_layers, 0);
        assert!(zero.maccs.iter().all(|&m| m == 0));
        let full = spec.class_sums(0, n);
        assert_eq!(
            full.maccs.iter().sum::<u64>(),
            spec.total_maccs(),
            "{}: class totals must partition total MACCs",
            spec.name()
        );
    }
}

//! Property-based tests: technique applicability/apply consistency and
//! numeric factorization invariants over random inputs.

#![cfg(test)]

use proptest::prelude::*;

use cadmc_autodiff::Matrix;
use cadmc_nn::{zoo, LayerSpec, ModelSpec, Shape};

use crate::prune::{filter_l1_norms, kept_count, prune_filters, select_filters};
use crate::svd::{low_rank_factors, relative_error, svd};
use crate::technique::Technique;

fn arb_conv_model() -> impl Strategy<Value = ModelSpec> {
    // Random small conv stacks over a 16x16 input.
    let channel = prop_oneof![Just(8usize), Just(16), Just(32), Just(64)];
    proptest::collection::vec((channel, 1usize..=2), 1..5).prop_map(|convs| {
        let mut layers = Vec::new();
        for (c, stride) in convs {
            layers.push(LayerSpec::conv(3, stride, 1, c));
        }
        layers.push(LayerSpec::GlobalAvgPool);
        layers.push(LayerSpec::Flatten);
        layers.push(LayerSpec::fc(10));
        // Strides can shrink the map; 16x16 with <=4 stride-2 convs is safe.
        ModelSpec::new("rand", Shape::new(3, 16, 16), layers).expect("valid random model")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `applicable` and `apply` agree on every (technique, layer) pair,
    /// and successful applications preserve the model's output shape.
    #[test]
    fn applicable_iff_apply_succeeds(model in arb_conv_model(), t_idx in 0usize..7) {
        let t = Technique::ALL[t_idx];
        for i in 0..model.len() {
            let applicable = t.applicable(&model, i);
            let result = t.apply(&model, i);
            prop_assert_eq!(applicable, result.is_ok(), "{} at layer {}", t, i);
            if let Ok(out) = result {
                prop_assert_eq!(out.output_shape(), model.output_shape());
            }
        }
    }

    /// Applying a technique never increases parameter count on layers it
    /// accepts (compression compresses).
    #[test]
    fn apply_never_explodes_params(model in arb_conv_model(), t_idx in 0usize..7) {
        let t = Technique::ALL[t_idx];
        for i in 0..model.len() {
            if let Ok(out) = t.apply(&model, i) {
                prop_assert!(
                    out.total_params() <= model.total_params() * 2,
                    "{} at {} ballooned params {} -> {}",
                    t, i, model.total_params(), out.total_params()
                );
            }
        }
    }

    /// Rank-k factors reconstruct no worse than rank-(k-1) factors.
    #[test]
    fn svd_rank_monotonicity(seed in 0u64..300, m in 3usize..8, n in 3usize..8) {
        let a = Matrix::seeded_xavier(m, n, seed);
        let r = m.min(n);
        let mut prev = f32::INFINITY;
        for k in 1..=r {
            let (p, q) = low_rank_factors(&a, k);
            let err = relative_error(&a, &p.matmul(&q));
            prop_assert!(err <= prev + 1e-4, "rank {k}: {err} > {prev}");
            prev = err;
        }
        prop_assert!(prev < 1e-3, "full-rank reconstruction error {prev}");
    }

    /// Singular values are non-negative and descending for any matrix.
    #[test]
    fn svd_spectrum_sane(seed in 0u64..300, m in 2usize..9, n in 2usize..9) {
        let a = Matrix::seeded_xavier(m, n, seed);
        let dec = svd(&a);
        prop_assert_eq!(dec.sigma.len(), m.min(n));
        for pair in dec.sigma.windows(2) {
            prop_assert!(pair[0] >= pair[1] - 1e-5);
        }
        prop_assert!(dec.sigma.iter().all(|&s| s >= 0.0));
    }

    /// Pruning keeps exactly the requested filters, in order, and the kept
    /// set always has maximal total L1 norm.
    #[test]
    fn pruning_selects_maximal_norm_subset(seed in 0u64..300, out in 2usize..12) {
        let w = Matrix::seeded_xavier(9, out, seed);
        let norms = filter_l1_norms(&w);
        let keep = kept_count(out, 0.25);
        let kept = select_filters(&norms, keep);
        prop_assert_eq!(kept.len(), keep);
        // Sorted ascending and unique.
        for pair in kept.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
        let kept_sum: f32 = kept.iter().map(|&i| norms[i]).sum();
        // Any filter not kept must have norm <= every kept filter's norm
        // would be too strict with ties; compare against the best possible
        // subset sum instead.
        let mut sorted = norms.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let best_sum: f32 = sorted[..keep].iter().sum();
        prop_assert!((kept_sum - best_sum).abs() < 1e-5);
        let pruned = prune_filters(&w, &kept);
        prop_assert_eq!(pruned.shape(), (9, keep));
    }

    /// Every technique application on VGG11 produces a model whose encode
    /// string differs (the memo pool relies on structural hashes).
    #[test]
    fn rewrites_change_structural_hash(t_idx in 0usize..7) {
        let base = zoo::vgg11_cifar();
        let t = Technique::ALL[t_idx];
        for i in 0..base.len() {
            if let Ok(out) = t.apply(&base, i) {
                prop_assert_ne!(out.structural_hash(), base.structural_hash());
            }
        }
    }
}

//! The seven compression techniques of the paper's Table 2, as structural
//! rewrites over [`ModelSpec`]s.
//!
//! | Code | Name | Replaced structure | New structure |
//! |------|------|--------------------|---------------|
//! | F1 | SVD | `m×n` FC weight | `m×k` + `k×n` FC pair, `k ≪ min(m,n)` |
//! | F2 | KSVD | same | same with sparse factors (lower effective rank) |
//! | F3 | Global Average Pooling | the FC head | 1×1 conv to classes + GAP |
//! | C1 | MobileNet | `k×k` conv | depthwise `k×k` + pointwise 1×1 |
//! | C2 | MobileNetV2 | conv | inverted residual (expand/dw/project + skip) |
//! | C3 | SqueezeNet | conv | Fire module |
//! | W1 | Filter pruning | conv | conv with insignificant filters removed |
//!
//! Structural rewrites change MACCs/latency immediately; the accuracy
//! consequence is modeled by `cadmc-accuracy` (oracle) or measured by
//! retraining via `cadmc-nn` (tiny scale).

use serde::{Deserialize, Serialize};

use cadmc_nn::{LayerSpec, ModelSpec, ShapeError};

/// Default prune ratio for W1 (fraction of filters removed).
pub const W1_PRUNE_RATIO: f32 = 0.25;

/// A compression technique from Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technique {
    /// F1: truncated-SVD factorization of an FC layer.
    F1Svd,
    /// F2: sparse (KSVD-style) factorization of an FC layer.
    F2Ksvd,
    /// F3: replace the FC head with a 1×1 conv + global average pooling.
    F3Gap,
    /// C1: MobileNet depthwise-separable rewrite of a conv layer.
    C1MobileNet,
    /// C2: MobileNetV2 inverted-residual rewrite of a conv layer.
    C2MobileNetV2,
    /// C3: SqueezeNet Fire-module rewrite of a conv layer.
    C3SqueezeNet,
    /// W1: structured filter pruning of a conv layer.
    W1FilterPrune,
}

/// Errors from applying a technique.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressError {
    /// The technique does not apply to the layer at this position.
    NotApplicable {
        /// The technique that was attempted.
        technique: Technique,
        /// Index of the target layer.
        layer_index: usize,
        /// Encoded form of the target layer.
        layer: String,
    },
    /// The rewrite produced a shape-inconsistent model.
    Shape(ShapeError),
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::NotApplicable {
                technique,
                layer_index,
                layer,
            } => write!(
                f,
                "{} is not applicable to layer {layer_index} ({layer})",
                technique.code()
            ),
            CompressError::Shape(e) => write!(f, "rewrite produced invalid shapes: {e}"),
        }
    }
}

impl std::error::Error for CompressError {}

impl From<ShapeError> for CompressError {
    fn from(e: ShapeError) -> Self {
        CompressError::Shape(e)
    }
}

impl Technique {
    /// All techniques, in Table 2 order.
    pub const ALL: [Technique; 7] = [
        Technique::F1Svd,
        Technique::F2Ksvd,
        Technique::F3Gap,
        Technique::C1MobileNet,
        Technique::C2MobileNetV2,
        Technique::C3SqueezeNet,
        Technique::W1FilterPrune,
    ];

    /// Table 2 code, e.g. `"F1"`.
    pub fn code(self) -> &'static str {
        match self {
            Technique::F1Svd => "F1",
            Technique::F2Ksvd => "F2",
            Technique::F3Gap => "F3",
            Technique::C1MobileNet => "C1",
            Technique::C2MobileNetV2 => "C2",
            Technique::C3SqueezeNet => "C3",
            Technique::W1FilterPrune => "W1",
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Technique::F1Svd => "SVD",
            Technique::F2Ksvd => "KSVD",
            Technique::F3Gap => "Global Average Pooling",
            Technique::C1MobileNet => "MobileNet",
            Technique::C2MobileNetV2 => "MobileNetV2",
            Technique::C3SqueezeNet => "SqueezeNet",
            Technique::W1FilterPrune => "Filter Pruning",
        }
    }

    /// Stable index into [`Technique::ALL`] (used by controller softmax
    /// heads).
    pub fn index(self) -> usize {
        match self {
            Technique::F1Svd => 0,
            Technique::F2Ksvd => 1,
            Technique::F3Gap => 2,
            Technique::C1MobileNet => 3,
            Technique::C2MobileNetV2 => 4,
            Technique::C3SqueezeNet => 5,
            Technique::W1FilterPrune => 6,
        }
    }

    /// Relative accuracy-risk weight used by the accuracy oracle: larger
    /// means the technique typically costs more accuracy before
    /// distillation recovery. Unitless, calibrated so W1 ≈ mild and
    /// F3 ≈ aggressive, consistent with the compression literature the
    /// paper cites (refs. 16, 17, 19–22 of the paper).
    pub fn aggressiveness(self) -> f32 {
        match self {
            Technique::F1Svd => 0.6,
            Technique::F2Ksvd => 0.8,
            Technique::F3Gap => 1.0,
            Technique::C1MobileNet => 0.5,
            Technique::C2MobileNetV2 => 0.7,
            Technique::C3SqueezeNet => 0.8,
            Technique::W1FilterPrune => 0.4,
        }
    }

    /// Whether the technique applies to layer `idx` of `spec`.
    pub fn applicable(self, spec: &ModelSpec, idx: usize) -> bool {
        if idx >= spec.len() {
            return false;
        }
        let layer = &spec.layers()[idx];
        match self {
            Technique::F1Svd | Technique::F2Ksvd => match layer {
                LayerSpec::Fc { out_features } => {
                    let m = spec.layer_input(idx).len();
                    m.min(*out_features) >= 8
                }
                _ => false,
            },
            Technique::F3Gap => {
                // Applies to the first FC of an FC head preceded by Flatten.
                matches!(layer, LayerSpec::Fc { .. })
                    && idx > 0
                    && spec.layers()[..idx]
                        .iter()
                        .rev()
                        .take_while(|l| {
                            matches!(
                                l,
                                LayerSpec::Fc { .. }
                                    | LayerSpec::Dropout
                                    | LayerSpec::BatchNorm
                                    | LayerSpec::Flatten
                            )
                        })
                        .any(|l| matches!(l, LayerSpec::Flatten))
            }
            Technique::C1MobileNet => {
                matches!(layer, LayerSpec::Conv2d { kernel, .. } if *kernel > 1)
            }
            Technique::C2MobileNetV2 => matches!(
                layer,
                LayerSpec::Conv2d { kernel: 3, pad: 1, .. }
            ),
            Technique::C3SqueezeNet => {
                // A Fire module only saves MACCs when the input is already
                // wide: on a thin stem (e.g. 3 RGB channels) the 3×3 expand
                // path costs more than the conv it replaces.
                spec.layer_input(idx).c >= 16
                    && matches!(
                        layer,
                        LayerSpec::Conv2d {
                            kernel: 3,
                            stride: 1,
                            pad: 1,
                            out_channels,
                        } if *out_channels >= 16
                    )
            }
            Technique::W1FilterPrune => matches!(
                layer,
                LayerSpec::Conv2d { out_channels, .. } if *out_channels >= 4
            ),
        }
    }

    /// Applies the rewrite at layer `idx`, returning the transformed model.
    ///
    /// # Errors
    ///
    /// [`CompressError::NotApplicable`] when [`Technique::applicable`] is
    /// false; [`CompressError::Shape`] if the rewrite breaks inference
    /// (does not happen for applicable layers of valid models).
    pub fn apply(self, spec: &ModelSpec, idx: usize) -> Result<ModelSpec, CompressError> {
        if !self.applicable(spec, idx) {
            return Err(CompressError::NotApplicable {
                technique: self,
                layer_index: idx,
                layer: spec
                    .layers()
                    .get(idx)
                    .map(LayerSpec::encode)
                    .unwrap_or_else(|| "<out of range>".into()),
            });
        }
        if self == Technique::F3Gap {
            return apply_gap(spec, idx);
        }
        let mut out = spec.replace_layer(idx, self.replacement_layers(spec, idx))?;
        out.set_name(format!("{}+{}@{}", spec.name(), self.code(), idx));
        Ok(out)
    }

    /// The layer sequence a *local* (non-F3) rewrite substitutes for layer
    /// `idx`. Local rewrites read only the target layer and its input
    /// shape — both unchanged by rewrites at higher indices — which is
    /// what lets [`crate::CompressionPlan`] splice all replacements into
    /// the original spec in one pass instead of rebuilding the model per
    /// action.
    ///
    /// # Panics
    ///
    /// Panics if called for F3 (whose rewrite is not local: it replaces
    /// the whole FC head below its own index) or when the technique is
    /// not applicable at `idx` — callers check [`Technique::applicable`]
    /// first.
    pub fn replacement_layers(self, spec: &ModelSpec, idx: usize) -> Vec<LayerSpec> {
        match (self, &spec.layers()[idx]) {
            (Technique::F1Svd, LayerSpec::Fc { out_features }) => {
                let m = spec.layer_input(idx).len();
                let k = (m.min(*out_features) / 4).max(1);
                vec![LayerSpec::fc(k), LayerSpec::fc(*out_features)]
            }
            (Technique::F2Ksvd, LayerSpec::Fc { out_features }) => {
                let m = spec.layer_input(idx).len();
                let k = (m.min(*out_features) / 6).max(1);
                vec![LayerSpec::fc(k), LayerSpec::fc(*out_features)]
            }
            (
                Technique::C1MobileNet,
                &LayerSpec::Conv2d {
                    kernel,
                    stride,
                    pad,
                    out_channels,
                },
            ) => vec![
                LayerSpec::DepthwiseConv2d {
                    kernel,
                    stride,
                    pad,
                },
                LayerSpec::conv(1, 1, 0, out_channels),
            ],
            (
                Technique::C2MobileNetV2,
                &LayerSpec::Conv2d {
                    stride,
                    out_channels,
                    ..
                },
            ) => vec![LayerSpec::InvertedResidual {
                expansion: 2,
                stride,
                out_channels,
            }],
            (Technique::C3SqueezeNet, &LayerSpec::Conv2d { out_channels, .. }) => {
                let squeeze = (out_channels / 4).max(1);
                let expand1 = out_channels / 2;
                let expand3 = out_channels - expand1;
                vec![LayerSpec::Fire {
                    squeeze,
                    expand1,
                    expand3,
                }]
            }
            (
                Technique::W1FilterPrune,
                &LayerSpec::Conv2d {
                    kernel,
                    stride,
                    pad,
                    out_channels,
                },
            ) => {
                let kept = crate::prune::kept_count(out_channels, W1_PRUNE_RATIO);
                vec![LayerSpec::conv(kernel, stride, pad, kept)]
            }
            _ => unreachable!("applicability was checked above"),
        }
    }

    /// Techniques applicable to layer `idx` of `spec`.
    pub fn applicable_at(spec: &ModelSpec, idx: usize) -> Vec<Technique> {
        Technique::ALL
            .into_iter()
            .filter(|t| t.applicable(spec, idx))
            .collect()
    }
}

impl std::fmt::Display for Technique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.code(), self.name())
    }
}

/// F3: replace everything from the Flatten preceding `idx` to the end of
/// the FC head with `1×1 conv → classes` + GAP.
fn apply_gap(spec: &ModelSpec, idx: usize) -> Result<ModelSpec, CompressError> {
    let classes = spec.output_shape().len();
    // Find the Flatten that starts the head.
    let Some(flatten_idx) = spec.layers()[..idx]
        .iter()
        .rposition(|l| matches!(l, LayerSpec::Flatten))
    else {
        return Err(CompressError::NotApplicable {
            technique: Technique::F3Gap,
            layer_index: idx,
            layer: "no Flatten precedes the FC head".to_string(),
        });
    };
    let mut layers: Vec<LayerSpec> = spec.layers()[..flatten_idx].to_vec();
    layers.push(LayerSpec::conv(1, 1, 0, classes));
    layers.push(LayerSpec::GlobalAvgPool);
    layers.push(LayerSpec::Flatten);
    let mut out = ModelSpec::new(
        format!("{}+F3", spec.name()),
        spec.input_shape(),
        layers,
    )?;
    out.set_name(format!("{}+F3@{idx}", spec.name()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;

    #[test]
    fn every_technique_reduces_maccs_on_vgg11() {
        let base = zoo::vgg11_cifar();
        for t in Technique::ALL {
            let idx = (0..base.len())
                .find(|&i| t.applicable(&base, i))
                .unwrap_or_else(|| panic!("{t} not applicable anywhere on VGG11"));
            let out = t.apply(&base, idx).unwrap();
            assert!(
                out.total_maccs() < base.total_maccs(),
                "{t} did not reduce MACCs: {} -> {}",
                base.total_maccs(),
                out.total_maccs()
            );
            assert_eq!(out.output_shape(), base.output_shape(), "{t} changed output");
        }
    }

    #[test]
    fn f1_produces_two_fc_layers() {
        let base = zoo::vgg11_cifar();
        let fc_idx = base
            .layers()
            .iter()
            .position(|l| matches!(l, LayerSpec::Fc { .. }))
            .unwrap();
        let out = Technique::F1Svd.apply(&base, fc_idx).unwrap();
        assert_eq!(out.len(), base.len() + 1);
        // 512 -> 512: rank 128.
        assert!(matches!(
            out.layers()[fc_idx],
            LayerSpec::Fc { out_features: 128 }
        ));
    }

    #[test]
    fn f2_uses_lower_rank_than_f1() {
        let base = zoo::vgg11_cifar();
        let fc_idx = base
            .layers()
            .iter()
            .position(|l| matches!(l, LayerSpec::Fc { .. }))
            .unwrap();
        let f1 = Technique::F1Svd.apply(&base, fc_idx).unwrap();
        let f2 = Technique::F2Ksvd.apply(&base, fc_idx).unwrap();
        assert!(f2.total_maccs() < f1.total_maccs());
    }

    #[test]
    fn f3_removes_all_fc_but_keeps_classes() {
        let base = zoo::vgg11_cifar();
        let fc_idx = base
            .layers()
            .iter()
            .position(|l| matches!(l, LayerSpec::Fc { .. }))
            .unwrap();
        let out = Technique::F3Gap.apply(&base, fc_idx).unwrap();
        assert!(!out
            .layers()
            .iter()
            .any(|l| matches!(l, LayerSpec::Fc { .. })));
        assert_eq!(out.output_shape().len(), 10);
    }

    #[test]
    fn c1_swaps_conv_for_depthwise_pair() {
        let base = zoo::vgg11_cifar();
        let out = Technique::C1MobileNet.apply(&base, 2).unwrap();
        assert!(matches!(
            out.layers()[2],
            LayerSpec::DepthwiseConv2d { kernel: 3, .. }
        ));
        assert!(matches!(
            out.layers()[3],
            LayerSpec::Conv2d { kernel: 1, .. }
        ));
    }

    #[test]
    fn not_applicable_is_an_error_not_a_panic() {
        let base = zoo::vgg11_cifar();
        // Layer 1 is a max-pool; nothing applies.
        for t in Technique::ALL {
            assert!(matches!(
                t.apply(&base, 1),
                Err(CompressError::NotApplicable { .. })
            ));
        }
    }

    #[test]
    fn applicable_at_pool_is_empty() {
        let base = zoo::vgg11_cifar();
        assert!(Technique::applicable_at(&base, 1).is_empty());
        assert!(!Technique::applicable_at(&base, 0).is_empty());
    }

    #[test]
    fn compressed_models_still_compile_and_run() {
        use cadmc_nn::runtime::RuntimeModel;
        let base = zoo::tiny_cnn();
        for t in Technique::ALL {
            let Some(idx) = (0..base.len()).find(|&i| t.applicable(&base, i)) else {
                continue; // some techniques need larger layers than TinyCnn has
            };
            let out = t.apply(&base, idx).unwrap();
            let rt = RuntimeModel::compile(&out, 1)
                .unwrap_or_else(|e| panic!("{t} output failed to compile: {e}"));
            let data = cadmc_nn::dataset::synthetic(2, 0.05, 1);
            let logits = rt.forward(data.images());
            assert_eq!(logits.shape(), (2, 10), "{t}");
        }
    }

    #[test]
    fn codes_are_table2() {
        let codes: Vec<&str> = Technique::ALL.iter().map(|t| t.code()).collect();
        assert_eq!(codes, vec!["F1", "F2", "F3", "C1", "C2", "C3", "W1"]);
    }
}

//! Per-layer compression plans — the compression controller's action
//! vector applied as one transaction.

use serde::{Deserialize, Serialize};

use cadmc_nn::ModelSpec;

use crate::technique::{CompressError, Technique};

/// A per-layer assignment of compression techniques for a model (the
/// compression controller emits one action per layer; `None` means "leave
/// the layer alone").
///
/// # Examples
///
/// ```
/// use cadmc_compress::{CompressionPlan, Technique};
/// use cadmc_nn::zoo;
///
/// let base = zoo::vgg11_cifar();
/// let mut plan = CompressionPlan::identity(base.len());
/// plan.set(0, Some(Technique::W1FilterPrune));
/// let compressed = plan.apply(&base).unwrap();
/// assert!(compressed.total_maccs() < base.total_maccs());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressionPlan {
    actions: Vec<Option<Technique>>,
}

impl CompressionPlan {
    /// A plan that changes nothing, for a model with `len` layers.
    pub fn identity(len: usize) -> Self {
        Self {
            actions: vec![None; len],
        }
    }

    /// Builds a plan from explicit per-layer actions.
    pub fn from_actions(actions: Vec<Option<Technique>>) -> Self {
        Self { actions }
    }

    /// Number of layers covered.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the plan covers zero layers.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The action for layer `i`.
    pub fn get(&self, i: usize) -> Option<Technique> {
        self.actions.get(i).copied().flatten()
    }

    /// Sets the action for layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, action: Option<Technique>) {
        self.actions[i] = action;
    }

    /// The per-layer actions.
    pub fn actions(&self) -> &[Option<Technique>] {
        &self.actions
    }

    /// Whether any layer is compressed.
    pub fn is_identity(&self) -> bool {
        self.actions.iter().all(Option::is_none)
    }

    /// Whether the plan contains an F3 (GAP) action — the one rewrite
    /// that is not local: it replaces the whole FC head *below* its own
    /// index, so lower-index actions must be evaluated against the
    /// rewritten model rather than the original.
    fn has_gap(&self) -> bool {
        self.actions
            .iter()
            .any(|a| matches!(a, Some(Technique::F3Gap)))
    }

    /// Applies all actions to `spec`.
    ///
    /// Actions are applied right-to-left so that layer indices recorded in
    /// the plan remain valid as rewrites insert/remove layers. If an F3
    /// (GAP) rewrite removes a layer that a lower-index action targeted,
    /// that action still refers to its original (conv-side) layer because
    /// F3 only rewrites the FC head at the tail.
    ///
    /// Plans without F3 take a single-splice fast path: every other
    /// rewrite is local (it reads only the target layer and its input
    /// shape, both untouched by higher-index rewrites), so applicability
    /// checks and replacement layers computed against the *original* spec
    /// match the sequential walk exactly, and the output model — layers,
    /// name chain, shapes — is built in one pass. The sequential walk
    /// stays available as [`CompressionPlan::apply_sequential`], the
    /// differential-testing oracle.
    ///
    /// # Errors
    ///
    /// Propagates [`CompressError`] if any action is not applicable.
    ///
    /// # Panics
    ///
    /// Panics if the plan length differs from the model's layer count.
    pub fn apply(&self, spec: &ModelSpec) -> Result<ModelSpec, CompressError> {
        assert_eq!(
            self.actions.len(),
            spec.len(),
            "plan length {} does not match model layers {}",
            self.actions.len(),
            spec.len()
        );
        if self.has_gap() {
            return self.apply_sequential(spec);
        }
        // Check applicability and collect replacements right-to-left so
        // the name chain and first-error behavior match the oracle.
        let mut name = spec.name().to_string();
        let mut slots: Vec<Option<Vec<cadmc_nn::LayerSpec>>> = vec![None; spec.len()];
        let mut spliced = false;
        for idx in (0..self.actions.len()).rev() {
            if let Some(t) = self.actions[idx] {
                if !t.applicable(spec, idx) {
                    return Err(CompressError::NotApplicable {
                        technique: t,
                        layer_index: idx,
                        layer: spec.layers()[idx].encode(),
                    });
                }
                name.push_str(&format!("+{}@{}", t.code(), idx));
                slots[idx] = Some(t.replacement_layers(spec, idx));
                spliced = true;
            }
        }
        if !spliced {
            return Ok(spec.clone());
        }
        let mut layers = Vec::with_capacity(spec.len() + 4);
        for (i, layer) in spec.layers().iter().enumerate() {
            match slots[i].take() {
                Some(repl) => layers.extend(repl),
                None => layers.push(layer.clone()),
            }
        }
        ModelSpec::new(name, spec.input_shape(), layers).map_err(CompressError::from)
    }

    /// The sequential (one rewrite at a time, right-to-left) reference
    /// implementation of [`CompressionPlan::apply`]. Kept as the
    /// differential-testing oracle for the single-splice fast path, and
    /// used directly for plans containing F3.
    ///
    /// # Errors
    ///
    /// Propagates [`CompressError`] if any action is not applicable.
    ///
    /// # Panics
    ///
    /// Panics if the plan length differs from the model's layer count.
    pub fn apply_sequential(&self, spec: &ModelSpec) -> Result<ModelSpec, CompressError> {
        assert_eq!(
            self.actions.len(),
            spec.len(),
            "plan length {} does not match model layers {}",
            self.actions.len(),
            spec.len()
        );
        let mut out = spec.clone();
        for idx in (0..self.actions.len()).rev() {
            if let Some(t) = self.actions[idx] {
                out = t.apply(&out, idx)?;
            }
        }
        Ok(out)
    }

    /// Returns a copy of the plan with inapplicable actions removed
    /// (checked against `spec` right-to-left, mirroring [`apply`]).
    ///
    /// Plans without F3 check every action against the original spec in
    /// O(actions) — local rewrites cannot invalidate (or validate) each
    /// other — instead of rebuilding a probe model per action. Plans with
    /// F3 fall back to [`CompressionPlan::sanitized_sequential`].
    ///
    /// [`apply`]: CompressionPlan::apply
    pub fn sanitized(&self, spec: &ModelSpec) -> CompressionPlan {
        if self.has_gap() {
            return self.sanitized_sequential(spec);
        }
        let mut actions = self.actions.clone();
        for (idx, slot) in actions.iter_mut().enumerate() {
            if let Some(t) = *slot {
                if !t.applicable(spec, idx) {
                    *slot = None;
                }
            }
        }
        CompressionPlan { actions }
    }

    /// Sequential reference implementation of
    /// [`CompressionPlan::sanitized`]: probes rewrites right-to-left on a
    /// scratch model, dropping each action that fails. The oracle for the
    /// fast path, and the real path for F3-bearing plans.
    pub fn sanitized_sequential(&self, spec: &ModelSpec) -> CompressionPlan {
        let mut actions = self.actions.clone();
        let mut probe = spec.clone();
        for idx in (0..actions.len()).rev() {
            if let Some(t) = actions[idx] {
                match t.apply(&probe, idx) {
                    Ok(next) => probe = next,
                    Err(_) => actions[idx] = None,
                }
            }
        }
        CompressionPlan { actions }
    }

    /// Short human-readable form like `"W1@0,C1@2"` (or `"id"`).
    pub fn summary(&self) -> String {
        let parts: Vec<String> = self
            .actions
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.map(|t| format!("{}@{i}", t.code())))
            .collect();
        if parts.is_empty() {
            "id".to_string()
        } else {
            parts.join(",")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;

    #[test]
    fn identity_plan_is_noop() {
        let base = zoo::vgg11_cifar();
        let plan = CompressionPlan::identity(base.len());
        assert!(plan.is_identity());
        let out = plan.apply(&base).unwrap();
        assert_eq!(out.layers(), base.layers());
    }

    #[test]
    fn multiple_actions_apply_right_to_left() {
        let base = zoo::vgg11_cifar();
        let mut plan = CompressionPlan::identity(base.len());
        plan.set(0, Some(Technique::W1FilterPrune));
        plan.set(2, Some(Technique::C1MobileNet));
        // First FC layer index:
        let fc_idx = base
            .layers()
            .iter()
            .position(|l| matches!(l, cadmc_nn::LayerSpec::Fc { .. }))
            .unwrap();
        plan.set(fc_idx, Some(Technique::F1Svd));
        let out = plan.apply(&base).unwrap();
        assert!(out.total_maccs() < base.total_maccs());
        assert_eq!(out.output_shape(), base.output_shape());
        assert_eq!(plan.summary(), format!("W1@0,C1@2,F1@{fc_idx}"));
    }

    #[test]
    fn inapplicable_action_errors() {
        let base = zoo::vgg11_cifar();
        let mut plan = CompressionPlan::identity(base.len());
        plan.set(1, Some(Technique::C1MobileNet)); // layer 1 is a pool
        assert!(plan.apply(&base).is_err());
    }

    #[test]
    fn sanitize_drops_bad_actions() {
        let base = zoo::vgg11_cifar();
        let mut plan = CompressionPlan::identity(base.len());
        plan.set(0, Some(Technique::W1FilterPrune));
        plan.set(1, Some(Technique::C1MobileNet)); // invalid
        let clean = plan.sanitized(&base);
        assert_eq!(clean.get(0), Some(Technique::W1FilterPrune));
        assert_eq!(clean.get(1), None);
        assert!(clean.apply(&base).is_ok());
    }

    #[test]
    fn summary_of_identity() {
        assert_eq!(CompressionPlan::identity(4).summary(), "id");
    }
}

//! Per-layer compression plans — the compression controller's action
//! vector applied as one transaction.

use serde::{Deserialize, Serialize};

use cadmc_nn::ModelSpec;

use crate::technique::{CompressError, Technique};

/// A per-layer assignment of compression techniques for a model (the
/// compression controller emits one action per layer; `None` means "leave
/// the layer alone").
///
/// # Examples
///
/// ```
/// use cadmc_compress::{CompressionPlan, Technique};
/// use cadmc_nn::zoo;
///
/// let base = zoo::vgg11_cifar();
/// let mut plan = CompressionPlan::identity(base.len());
/// plan.set(0, Some(Technique::W1FilterPrune));
/// let compressed = plan.apply(&base).unwrap();
/// assert!(compressed.total_maccs() < base.total_maccs());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressionPlan {
    actions: Vec<Option<Technique>>,
}

impl CompressionPlan {
    /// A plan that changes nothing, for a model with `len` layers.
    pub fn identity(len: usize) -> Self {
        Self {
            actions: vec![None; len],
        }
    }

    /// Builds a plan from explicit per-layer actions.
    pub fn from_actions(actions: Vec<Option<Technique>>) -> Self {
        Self { actions }
    }

    /// Number of layers covered.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the plan covers zero layers.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The action for layer `i`.
    pub fn get(&self, i: usize) -> Option<Technique> {
        self.actions.get(i).copied().flatten()
    }

    /// Sets the action for layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, action: Option<Technique>) {
        self.actions[i] = action;
    }

    /// The per-layer actions.
    pub fn actions(&self) -> &[Option<Technique>] {
        &self.actions
    }

    /// Whether any layer is compressed.
    pub fn is_identity(&self) -> bool {
        self.actions.iter().all(Option::is_none)
    }

    /// Applies all actions to `spec`.
    ///
    /// Actions are applied right-to-left so that layer indices recorded in
    /// the plan remain valid as rewrites insert/remove layers. If an F3
    /// (GAP) rewrite removes a layer that a lower-index action targeted,
    /// that action still refers to its original (conv-side) layer because
    /// F3 only rewrites the FC head at the tail.
    ///
    /// # Errors
    ///
    /// Propagates [`CompressError`] if any action is not applicable.
    ///
    /// # Panics
    ///
    /// Panics if the plan length differs from the model's layer count.
    pub fn apply(&self, spec: &ModelSpec) -> Result<ModelSpec, CompressError> {
        assert_eq!(
            self.actions.len(),
            spec.len(),
            "plan length {} does not match model layers {}",
            self.actions.len(),
            spec.len()
        );
        let mut out = spec.clone();
        for idx in (0..self.actions.len()).rev() {
            if let Some(t) = self.actions[idx] {
                out = t.apply(&out, idx)?;
            }
        }
        Ok(out)
    }

    /// Returns a copy of the plan with inapplicable actions removed
    /// (checked against `spec` right-to-left, mirroring [`apply`]).
    ///
    /// [`apply`]: CompressionPlan::apply
    pub fn sanitized(&self, spec: &ModelSpec) -> CompressionPlan {
        let mut actions = self.actions.clone();
        let mut probe = spec.clone();
        for idx in (0..actions.len()).rev() {
            if let Some(t) = actions[idx] {
                match t.apply(&probe, idx) {
                    Ok(next) => probe = next,
                    Err(_) => actions[idx] = None,
                }
            }
        }
        CompressionPlan { actions }
    }

    /// Short human-readable form like `"W1@0,C1@2"` (or `"id"`).
    pub fn summary(&self) -> String {
        let parts: Vec<String> = self
            .actions
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.map(|t| format!("{}@{i}", t.code())))
            .collect();
        if parts.is_empty() {
            "id".to_string()
        } else {
            parts.join(",")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadmc_nn::zoo;

    #[test]
    fn identity_plan_is_noop() {
        let base = zoo::vgg11_cifar();
        let plan = CompressionPlan::identity(base.len());
        assert!(plan.is_identity());
        let out = plan.apply(&base).unwrap();
        assert_eq!(out.layers(), base.layers());
    }

    #[test]
    fn multiple_actions_apply_right_to_left() {
        let base = zoo::vgg11_cifar();
        let mut plan = CompressionPlan::identity(base.len());
        plan.set(0, Some(Technique::W1FilterPrune));
        plan.set(2, Some(Technique::C1MobileNet));
        // First FC layer index:
        let fc_idx = base
            .layers()
            .iter()
            .position(|l| matches!(l, cadmc_nn::LayerSpec::Fc { .. }))
            .unwrap();
        plan.set(fc_idx, Some(Technique::F1Svd));
        let out = plan.apply(&base).unwrap();
        assert!(out.total_maccs() < base.total_maccs());
        assert_eq!(out.output_shape(), base.output_shape());
        assert_eq!(plan.summary(), format!("W1@0,C1@2,F1@{fc_idx}"));
    }

    #[test]
    fn inapplicable_action_errors() {
        let base = zoo::vgg11_cifar();
        let mut plan = CompressionPlan::identity(base.len());
        plan.set(1, Some(Technique::C1MobileNet)); // layer 1 is a pool
        assert!(plan.apply(&base).is_err());
    }

    #[test]
    fn sanitize_drops_bad_actions() {
        let base = zoo::vgg11_cifar();
        let mut plan = CompressionPlan::identity(base.len());
        plan.set(0, Some(Technique::W1FilterPrune));
        plan.set(1, Some(Technique::C1MobileNet)); // invalid
        let clean = plan.sanitized(&base);
        assert_eq!(clean.get(0), Some(Technique::W1FilterPrune));
        assert_eq!(clean.get(1), None);
        assert!(clean.apply(&base).is_ok());
    }

    #[test]
    fn summary_of_identity() {
        assert_eq!(CompressionPlan::identity(4).summary(), "id");
    }
}

//! Filter pruning on real weights — technique **W1** of Table 2.
//!
//! Structured pruning removes whole convolution filters (output channels)
//! ranked by L1 norm, keeping the layer-wise structure intact, exactly as
//! described for W1 ("insignificant filters pruned Conv layer").

use cadmc_autodiff::Matrix;

/// L1 norm of each filter in a conv weight matrix laid out as
/// `(fan_in, out_channels)` — one column per filter (the layout used by the
/// `cadmc-nn` runtime).
pub fn filter_l1_norms(w: &Matrix) -> Vec<f32> {
    let mut norms = vec![0.0f32; w.cols()];
    for r in 0..w.rows() {
        for (c, n) in norms.iter_mut().enumerate() {
            *n += w.at(r, c).abs();
        }
    }
    norms
}

/// Indices of the `keep` most significant filters (largest L1 norm),
/// returned in ascending index order so channel order is preserved.
///
/// # Panics
///
/// Panics if `keep` is zero or exceeds the filter count.
pub fn select_filters(norms: &[f32], keep: usize) -> Vec<usize> {
    assert!(keep > 0, "must keep at least one filter");
    assert!(keep <= norms.len(), "cannot keep more filters than exist");
    let mut order: Vec<usize> = (0..norms.len()).collect();
    order.sort_by(|&a, &b| norms[b].total_cmp(&norms[a]));
    let mut kept: Vec<usize> = order[..keep].to_vec();
    kept.sort_unstable();
    kept
}

/// Copies only the selected filter columns out of a `(fan_in, out)` weight.
///
/// # Panics
///
/// Panics if any index is out of range.
pub fn prune_filters(w: &Matrix, kept: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(w.rows(), kept.len());
    for (new_c, &old_c) in kept.iter().enumerate() {
        assert!(old_c < w.cols(), "filter index out of range");
        for r in 0..w.rows() {
            *out.at_mut(r, new_c) = w.at(r, old_c);
        }
    }
    out
}

/// Number of filters kept when pruning with `ratio` removed, never below 1.
pub fn kept_count(out_channels: usize, ratio: f32) -> usize {
    assert!((0.0..1.0).contains(&ratio), "prune ratio must be in [0,1)");
    (((out_channels as f32) * (1.0 - ratio)).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_match_manual() {
        let w = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[-1.0, 2.0, 0.5]]);
        assert_eq!(filter_l1_norms(&w), vec![2.0, 4.0, 1.0]);
    }

    #[test]
    fn selects_largest_and_preserves_order() {
        let norms = vec![2.0, 4.0, 1.0, 3.0];
        assert_eq!(select_filters(&norms, 2), vec![1, 3]);
        assert_eq!(select_filters(&norms, 3), vec![0, 1, 3]);
    }

    #[test]
    fn prune_copies_columns() {
        let w = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let pruned = prune_filters(&w, &[0, 2]);
        assert_eq!(pruned, Matrix::from_rows(&[&[1.0, 3.0], &[4.0, 6.0]]));
    }

    #[test]
    fn kept_count_floors_at_one() {
        assert_eq!(kept_count(64, 0.25), 48);
        assert_eq!(kept_count(64, 0.5), 32);
        assert_eq!(kept_count(1, 0.9), 1);
    }

    #[test]
    #[should_panic(expected = "prune ratio")]
    fn ratio_must_be_valid() {
        let _ = kept_count(10, 1.0);
    }
}
